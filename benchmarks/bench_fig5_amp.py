"""Figure 5 benchmark: AMP prediction vs ground truth on all four models."""

from conftest import run_once, save_result
from repro.experiments import fig5_amp


def test_fig5_amp(benchmark):
    result = run_once(benchmark, fig5_amp.run)
    save_result(result)
    print("\n" + result.render())
    assert len(result.rows) == 4
    for row in result.rows:
        model, baseline, truth, pred, gain, error = row
        assert truth < baseline, f"AMP should help {model}"
        assert error < 13.0, f"{model}: error {error:.1f}% exceeds paper band"
    # BERT gains modest, CNN/seq2seq gains large (paper Section 6.2)
    gains = dict(zip(result.column("model"),
                     result.column("gt_improvement_%")))
    assert gains["bert_large"] < gains["resnet50"]
