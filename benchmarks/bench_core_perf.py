"""Micro-benchmarks of Daydream's own analysis cost.

The paper's pitch is that what-if analysis is *cheap* relative to
implementing optimizations (or renting a cluster).  These benchmarks time
the pipeline stages on the largest workload (BERT_large: ~13k tasks) so
regressions in the graph machinery are caught, and write the numbers to
``BENCH_core.json`` at the repo root so the perf trajectory is tracked
across PRs.

Timing protocol: best of N ``perf_counter`` runs (the host is a noisy
shared box; the minimum is the stable statistic).  ``SEED_BASELINE_S``
holds the seed implementation's numbers measured on the same host with the
same protocol (PR 1), so speedups vs seed are reproducible from the JSON
alone.
"""

import json
import os
import time

import pytest

from repro.analysis.session import WhatIfSession
from repro.core.construction import build_graph
from repro.core.simulate import simulate
from repro.framework.config import TrainingConfig
from repro.framework.engine import Engine
from repro.hw.device import GPU_2080TI
from repro.hw.network import NetworkSpec
from repro.hw.topology import ClusterSpec
from repro.models.registry import build_model
from repro.optimizations import (
    AutomaticMixedPrecision,
    DistributedTraining,
    FusedAdam,
)
from repro.optimizations.base import WhatIfContext

BENCH_JSON = os.path.join(os.path.dirname(__file__), os.pardir,
                          "BENCH_core.json")

#: seed (pre-event-driven-core) timings, same workload/host/protocol
SEED_BASELINE_S = {
    "simulate": 0.0746,
    "graph_copy": 0.0605,
    "fusedadam_transform": 0.2552,
    "whatif_sweep3": 0.6451,
    "fig8_full_run": 12.40,
}

_RECORDS = {}


def _record(name: str, fn, rounds: int = 9):
    """Best-of-N wall time for ``fn``; stores the number for the JSON."""
    times = []
    result = None
    for _ in range(rounds):
        # drop the previous round's result *before* timing: a retained
        # overlay would otherwise charge this round for quiescing it
        result = None
        t0 = time.perf_counter()
        result = fn()
        times.append(time.perf_counter() - t0)
    _RECORDS[name] = min(times)
    return result


@pytest.fixture(scope="module")
def bert_trace():
    model = build_model("bert_large")
    return Engine(model=model, config=TrainingConfig()).run_iteration()


@pytest.fixture(scope="module")
def bert_graph(bert_trace):
    return build_graph(bert_trace)


@pytest.fixture(scope="module")
def bert_session(bert_trace):
    session = WhatIfSession.from_trace(bert_trace)
    session.baseline_result  # materialize outside the timed region
    return session


@pytest.fixture(scope="module", autouse=True)
def write_bench_json():
    """Dump collected timings (plus seed comparison) after the module runs.

    Partial runs (``-k`` selections) merge into the existing JSON instead
    of truncating the committed perf trajectory to whatever ran.
    """
    yield
    if not _RECORDS:
        return
    timings = {}
    try:
        with open(BENCH_JSON) as f:
            timings = dict(json.load(f).get("timings_s", {}))
    except (OSError, ValueError):
        pass
    timings.update({k: round(v, 6) for k, v in _RECORDS.items()})
    speedups = {
        name: round(SEED_BASELINE_S[name] / timing, 2)
        for name, timing in timings.items()
        if name in SEED_BASELINE_S and timing > 0
    }
    payload = {
        "workload": "bert_large (~13.3k tasks)",
        "protocol": "best-of-N time.perf_counter, serial process",
        "timings_s": timings,
        "seed_baseline_s": SEED_BASELINE_S,
        "speedup_vs_seed": speedups,
    }
    with open(BENCH_JSON, "w") as f:
        json.dump(payload, f, indent=1, sort_keys=True)
        f.write("\n")


def test_perf_engine_profile(benchmark):
    model = build_model("resnet50")
    engine = Engine(model=model, config=TrainingConfig())
    trace = benchmark(engine.run_iteration)
    assert len(trace) > 1000


def test_perf_graph_construction(bert_trace):
    graph = _record("graph_construction", lambda: build_graph(bert_trace),
                    rounds=5)
    assert len(graph) > 10_000


def test_perf_simulation(bert_graph):
    result = _record("simulate", lambda: simulate(bert_graph), rounds=15)
    assert result.makespan_us > 0


def test_perf_graph_copy(bert_graph):
    """Working-graph acquisition for one what-if question.

    The question path now takes a copy-on-write overlay (tasks shared until
    written) instead of a deep copy — that *is* the copy step sessions pay
    per question; the full deep copy is tracked separately below.
    """
    clone = _record("graph_copy", bert_graph.overlay, rounds=15)
    assert len(clone) == len(bert_graph)


def test_perf_graph_deepcopy(bert_graph):
    clone = _record("graph_deepcopy", bert_graph.copy, rounds=9)
    assert len(clone) == len(bert_graph)


def test_perf_fusedadam_transform(bert_trace, bert_graph):
    """The Figure-7 transform: ~10k task removals plus a rewrite."""
    ctx = WhatIfContext.from_trace(bert_trace)

    def transform():
        working = bert_graph.overlay()
        FusedAdam().apply(working, ctx)
        return working

    graph = _record("fusedadam_transform", transform, rounds=9)
    assert len(graph) < len(bert_graph)


def test_perf_amp_transform(bert_trace, bert_graph):
    ctx = WhatIfContext.from_trace(bert_trace)

    def transform():
        working = bert_graph.overlay()
        AutomaticMixedPrecision().apply(working, ctx)
        return working

    graph = _record("amp_transform", transform, rounds=5)
    assert len(graph) == len(bert_graph)


def test_perf_whatif_sweep(bert_session):
    """Three canonical questions end-to-end (transform + simulate each)."""
    cluster = ClusterSpec(4, 2, GPU_2080TI, NetworkSpec(bandwidth_gbps=10))
    questions = [
        (FusedAdam(), None),
        (AutomaticMixedPrecision(), None),
        (DistributedTraining(), cluster),
    ]
    predictions = _record(
        "whatif_sweep3",
        lambda: bert_session.sweep(questions, processes=1),
        rounds=5,
    )
    assert len(predictions) == 3
    assert all(p.predicted_us > 0 for p in predictions)


def test_perf_fig8_sweep():
    """Full Figure-8 grid (84 cells): the headline sweep wall-clock."""
    from repro.experiments import fig8_distributed

    result = _record("fig8_full_run", fig8_distributed.run, rounds=1)
    assert len(result.rows) == 84
