"""Micro-benchmarks of Daydream's own analysis cost.

The paper's pitch is that what-if analysis is *cheap* relative to
implementing optimizations (or renting a cluster).  These benchmarks time
the three pipeline stages on the largest workload (BERT_large: ~13k tasks)
so regressions in the graph machinery are caught.
"""

import pytest

from repro.core.construction import build_graph
from repro.core.simulate import simulate
from repro.framework.config import TrainingConfig
from repro.framework.engine import Engine
from repro.models.registry import build_model
from repro.optimizations import AutomaticMixedPrecision
from repro.optimizations.base import WhatIfContext


@pytest.fixture(scope="module")
def bert_trace():
    model = build_model("bert_large")
    return Engine(model=model, config=TrainingConfig()).run_iteration()


@pytest.fixture(scope="module")
def bert_graph(bert_trace):
    return build_graph(bert_trace)


def test_perf_engine_profile(benchmark):
    model = build_model("resnet50")
    engine = Engine(model=model, config=TrainingConfig())
    trace = benchmark(engine.run_iteration)
    assert len(trace) > 1000


def test_perf_graph_construction(benchmark, bert_trace):
    graph = benchmark(build_graph, bert_trace)
    assert len(graph) > 10_000


def test_perf_simulation(benchmark, bert_graph):
    result = benchmark(simulate, bert_graph)
    assert result.makespan_us > 0


def test_perf_graph_copy(benchmark, bert_graph):
    clone = benchmark(bert_graph.copy)
    assert len(clone) == len(bert_graph)


def test_perf_amp_transform(benchmark, bert_graph):
    def transform_copy():
        graph = bert_graph.copy()
        AutomaticMixedPrecision().apply(graph, WhatIfContext())
        return graph

    graph = benchmark(transform_copy)
    assert len(graph) == len(bert_graph)
