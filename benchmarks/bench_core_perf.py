"""Micro-benchmarks of Daydream's own analysis cost.

The paper's pitch is that what-if analysis is *cheap* relative to
implementing optimizations (or renting a cluster).  These benchmarks time
the pipeline stages on the largest workload (BERT_large: ~13k tasks) so
regressions in the graph machinery are caught, and write the numbers to
``BENCH_core.json`` at the repo root so the perf trajectory is tracked
across PRs.

Timing protocol: best of N ``perf_counter`` runs (the host is a noisy
shared box; the minimum is the stable statistic).  ``SEED_BASELINE_S``
holds the seed implementation's numbers measured on the same host with the
same protocol (PR 1), so speedups vs seed are reproducible from the JSON
alone.
"""

import json
import os
import time

import pytest

from repro.analysis.session import WhatIfSession
from repro.core.construction import build_graph
from repro.core.simulate import simulate
from repro.framework.config import TrainingConfig
from repro.framework.engine import Engine
from repro.hw.device import GPU_2080TI
from repro.hw.network import NetworkSpec
from repro.hw.topology import ClusterSpec
from repro.models.registry import build_model
from repro.optimizations import (
    AutomaticMixedPrecision,
    DistributedTraining,
    FusedAdam,
)
from repro.optimizations.base import WhatIfContext

BENCH_JSON = os.path.join(os.path.dirname(__file__), os.pardir,
                          "BENCH_core.json")

#: seed (pre-event-driven-core) timings, same workload/host/protocol
SEED_BASELINE_S = {
    "simulate": 0.0746,
    "graph_copy": 0.0605,
    "fusedadam_transform": 0.2552,
    "whatif_sweep3": 0.6451,
    "fig8_full_run": 12.40,
}

_RECORDS = {}


def _record(name: str, fn, rounds: int = 9):
    """Best-of-N wall time for ``fn``; stores the number for the JSON."""
    times = []
    result = None
    for _ in range(rounds):
        # drop the previous round's result *before* timing: a retained
        # overlay would otherwise charge this round for quiescing it
        result = None
        t0 = time.perf_counter()
        result = fn()
        times.append(time.perf_counter() - t0)
    _RECORDS[name] = min(times)
    return result


@pytest.fixture(scope="module")
def bert_trace():
    model = build_model("bert_large")
    return Engine(model=model, config=TrainingConfig()).run_iteration()


@pytest.fixture(scope="module")
def bert_graph(bert_trace):
    return build_graph(bert_trace)


@pytest.fixture(scope="module")
def bert_session(bert_trace):
    session = WhatIfSession.from_trace(bert_trace)
    session.baseline_result  # materialize outside the timed region
    return session


@pytest.fixture(scope="module", autouse=True)
def write_bench_json():
    """Dump collected timings (plus seed comparison) after the module runs.

    Partial runs (``-k`` selections) merge into the existing JSON instead
    of truncating the committed perf trajectory to whatever ran.
    """
    yield
    if not _RECORDS:
        return
    timings = {}
    try:
        with open(BENCH_JSON) as f:
            timings = dict(json.load(f).get("timings_s", {}))
    except (OSError, ValueError):
        pass
    timings.update({k: round(v, 6) for k, v in _RECORDS.items()})
    speedups = {
        name: round(SEED_BASELINE_S[name] / timing, 2)
        for name, timing in timings.items()
        if name in SEED_BASELINE_S and timing > 0
    }
    payload = {
        "workload": "bert_large (~13.3k tasks)",
        "protocol": "best-of-N time.perf_counter, serial process",
        "timings_s": timings,
        "seed_baseline_s": SEED_BASELINE_S,
        "speedup_vs_seed": speedups,
    }
    with open(BENCH_JSON, "w") as f:
        json.dump(payload, f, indent=1, sort_keys=True)
        f.write("\n")


def test_perf_engine_profile(benchmark):
    model = build_model("resnet50")
    engine = Engine(model=model, config=TrainingConfig())
    trace = benchmark(engine.run_iteration)
    assert len(trace) > 1000


def test_perf_graph_construction(bert_trace):
    graph = _record("graph_construction", lambda: build_graph(bert_trace),
                    rounds=5)
    assert len(graph) > 10_000


def test_perf_simulation(bert_graph):
    result = _record("simulate", lambda: simulate(bert_graph), rounds=15)
    assert result.makespan_us > 0


def test_perf_simulate_compiled(bert_graph):
    """The array engine on a warm lowering, vs the object engine.

    ``simulate()`` itself reaches this path after a graph goes hot (the
    tiered selection in :mod:`repro.core.simulate`); this row times the
    engine loop alone, with the lowering done outside the timed region.
    Quick gate: the compiled engine must never lose to the object engine
    it replaces — and must agree with it bit-for-bit.
    """
    from repro.core.compiled import compiled_for
    from repro.core.simulate import _DEFAULT_POLICY, _simulate_event_driven

    compiled = compiled_for(bert_graph)
    result = _record("simulate_compiled", compiled.run, rounds=15)
    reference = _record(
        "simulate_object",
        lambda: _simulate_event_driven(bert_graph, _DEFAULT_POLICY),
        rounds=9,
    )
    assert result.makespan_us == reference.makespan_us
    assert result.start_us == reference.start_us
    assert _RECORDS["simulate_compiled"] <= _RECORDS["simulate_object"]


def test_perf_graph_copy(bert_graph):
    """Working-graph acquisition for one what-if question.

    The question path now takes a copy-on-write overlay (tasks shared until
    written) instead of a deep copy — that *is* the copy step sessions pay
    per question; the full deep copy is tracked separately below.
    """
    clone = _record("graph_copy", bert_graph.overlay, rounds=15)
    assert len(clone) == len(bert_graph)


def test_perf_graph_deepcopy(bert_graph):
    clone = _record("graph_deepcopy", bert_graph.copy, rounds=9)
    assert len(clone) == len(bert_graph)


def test_perf_fusedadam_transform(bert_trace, bert_graph):
    """The Figure-7 transform: ~10k task removals plus a rewrite."""
    ctx = WhatIfContext.from_trace(bert_trace)

    def transform():
        working = bert_graph.overlay()
        FusedAdam().apply(working, ctx)
        return working

    graph = _record("fusedadam_transform", transform, rounds=9)
    assert len(graph) < len(bert_graph)


def test_perf_amp_transform(bert_trace, bert_graph):
    ctx = WhatIfContext.from_trace(bert_trace)

    def transform():
        working = bert_graph.overlay()
        AutomaticMixedPrecision().apply(working, ctx)
        return working

    graph = _record("amp_transform", transform, rounds=5)
    assert len(graph) == len(bert_graph)


def test_perf_whatif_sweep(bert_session):
    """Three canonical questions end-to-end (transform + simulate each)."""
    cluster = ClusterSpec(4, 2, GPU_2080TI, NetworkSpec(bandwidth_gbps=10))
    questions = [
        (FusedAdam(), None),
        (AutomaticMixedPrecision(), None),
        (DistributedTraining(), cluster),
    ]
    predictions = _record(
        "whatif_sweep3",
        lambda: bert_session.sweep(questions, processes=1),
        rounds=5,
    )
    assert len(predictions) == 3
    assert all(p.predicted_us > 0 for p in predictions)


def test_perf_simulate_many(bert_session):
    """Batched multi-simulate: a 24-cell GPU-duration-scaling grid.

    One shared compiled baseline, each cell a sparse column patch — versus
    the per-cell path (overlay + ~5k copy-on-write task writes + simulate
    each).  The batched grid must be at least 5x faster and bit-identical.
    """
    from repro.core.compiled import CellDelta

    graph = bert_session.graph
    gpu = [t for t in graph.tasks() if t.is_gpu]
    factors = [0.80 + 0.01 * i for i in range(24)]
    cells = [CellDelta.scale_durations(gpu, f, label=f"cell{i}")
             for i, f in enumerate(factors)]
    batched = _record("simulate_many_24cell",
                      lambda: bert_session.simulate_many(cells), rounds=3)
    assert len(batched) == 24

    base = {t: t.duration for t in gpu}

    def per_cell():
        out = []
        for factor in factors:
            working = graph.overlay()
            for t in [t for t in working.tasks() if t.is_gpu]:
                t.duration = base.get(t, t.duration) * factor
            out.append(simulate(working))
        return out

    reference = _record("simulate_percell_24cell", per_cell, rounds=1)
    assert all(b.makespan_us == r.makespan_us
               for b, r in zip(batched, reference))
    assert (_RECORDS["simulate_many_24cell"] * 5
            <= _RECORDS["simulate_percell_24cell"])


def test_perf_fig8_sweep():
    """Full Figure-8 grid (84 cells): the headline sweep wall-clock."""
    from repro.experiments import fig8_distributed

    result = _record("fig8_full_run", fig8_distributed.run, rounds=1)
    assert len(result.rows) == 84
