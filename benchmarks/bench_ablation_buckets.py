"""Ablation: DDP gradient-bucket capacity vs communication overlap.

PyTorch's 25 MB default balances two forces the dependency graph makes
explicit: small buckets start all-reducing earlier (better overlap with the
backward pass) but pay per-primitive overhead more often; huge buckets
amortize overhead but serialize communication behind the backward pass.
Daydream answers the sweep from one profile per capacity — a what-if a
practitioner would otherwise measure on a real cluster.
"""

from conftest import run_once
from repro.analysis.session import WhatIfSession
from repro.framework.config import TrainingConfig
from repro.hw.device import GPU_2080TI
from repro.hw.network import NetworkSpec
from repro.hw.topology import ClusterSpec
from repro.models.registry import build_model
from repro.optimizations import DistributedTraining

CAPACITIES_MB = (1.0, 5.0, 25.0, 200.0)


def test_ablation_bucket_capacity(benchmark):
    def run():
        model = build_model("gnmt")
        cluster = ClusterSpec(4, 1, GPU_2080TI, NetworkSpec(10.0))
        rows = []
        for cap in CAPACITIES_MB:
            config = TrainingConfig(bucket_cap_mb=cap)
            session = WhatIfSession.from_model(model, config=config)
            pred = session.predict(DistributedTraining(), cluster=cluster)
            n_buckets = len(session.trace.metadata["buckets"])
            rows.append((cap, n_buckets, pred.predicted_us / 1000.0))
        return rows

    rows = run_once(benchmark, run)
    for cap, n_buckets, ms in rows:
        print(f"\nbucket_cap={cap:6.1f} MB  buckets={n_buckets:3d}  "
              f"iter={ms:8.1f} ms")
    caps = {cap: ms for cap, _, ms in rows}
    # one giant bucket destroys overlap: worse than the 25 MB default
    assert caps[200.0] > caps[25.0]
    # bucket counts decrease monotonically with capacity
    counts = [n for _, n, _ in rows]
    assert counts == sorted(counts, reverse=True)
