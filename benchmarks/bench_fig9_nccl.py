"""Figure 9 benchmark: per-allreduce runtimes in one GNMT iteration."""

from conftest import run_once, save_result
from repro.experiments import fig9_nccl


def test_fig9_per_reduction(benchmark):
    result = run_once(benchmark, fig9_nccl.run)
    save_result(result)
    print("\n" + result.render())
    ratios = result.column("baseline_over_theoretical")
    mean_ratio = sum(ratios) / len(ratios)
    # Paper: ground truth ~34% above theoretical on average
    assert 1.2 < mean_ratio < 1.55
    # sync brings primitives close to optimal
    base = sum(result.column("baseline_ms"))
    sync = sum(result.column("sync_ms"))
    improvement = (base - sync) / base * 100.0
    assert 10.0 < improvement < 35.0  # paper: 22.8% on average


def test_fig9_sync_never_degrades(benchmark):
    result = run_once(benchmark, fig9_nccl.run_sync_impact)
    result.experiment = "fig9b"
    save_result(result)
    print("\n" + result.render())
    improvements = result.column("improvement_%")
    assert all(imp > -1.0 for imp in improvements)  # never degrades
    assert max(improvements) > 5.0                  # and can help a lot
