"""Ablations of Daydream's design decisions (DESIGN.md Section 5).

These quantify why the paper's design choices matter:

* **kernel-level vs layer-level granularity** — a layer-level model cannot
  distinguish compute-bound from memory-bound kernels inside one layer, so
  AMP predictions degrade;
* **gap modeling** — dropping the CPU inter-task gaps (the non-CUDA runtime
  CUPTI cannot see) makes even the *baseline* replay wrong;
* **sync-duration stripping** — replaying measured sync waits instead of
  re-deriving them from dependencies bakes stale waits into predictions.
"""


from conftest import run_once
from repro.analysis.metrics import prediction_error
from repro.analysis.session import WhatIfSession
from repro.core import transform
from repro.core.simulate import simulate
from repro.framework import groundtruth
from repro.models.registry import build_model
from repro.optimizations import AutomaticMixedPrecision


#: layer kinds a layer-level tool would call 'compute-bound' wholesale
_COMPUTE_LAYER_KINDS = ("conv", "linear", "attention", "ffn", "lstm")


def _layer_level_amp_prediction(session):
    """What AMP prediction looks like without kernel granularity.

    A layer-level tool sees layers, not kernels: it must shrink *all* of a
    layer's GPU time by one factor chosen from the layer type.  That wrongly
    applies the 3x tensor-core factor to the many memory-bound kernels
    inside attention/FFN/LSTM layers (transposes, softmax, dropout...).
    """
    graph = session.graph.copy()
    kinds = dict(session.trace.metadata.get("layer_kinds", {}))
    for task in transform.select_gpu_tasks(graph):
        if task.phase == "weight_update":
            continue
        if kinds.get(task.layer) in _COMPUTE_LAYER_KINDS:
            task.scale_duration(1.0 / 3.0)
        else:
            task.scale_duration(1.0 / 2.0)
    return simulate(graph).makespan_us


def test_ablation_granularity(benchmark):
    """Kernel-level AMP modeling beats layer-level on mixed-kernel layers.

    On BERT (attention/FFN layers mixing GEMMs with memory-bound kernels)
    the layer-level model over-shrinks; on pure-conv ResNet the two nearly
    tie — exactly why the paper insists on kernel granularity for
    transformer-era models.
    """

    def run():
        rows = []
        for name in ("bert_base", "gnmt"):
            model = build_model(name)
            session = WhatIfSession.from_model(model)
            truth = groundtruth.run_amp(model).iteration_us
            kernel_pred = session.predict(AutomaticMixedPrecision()).predicted_us
            layer_pred = _layer_level_amp_prediction(session)
            rows.append((name,
                         prediction_error(kernel_pred, truth),
                         prediction_error(layer_pred, truth)))
        return rows

    rows = run_once(benchmark, run)
    for name, kernel_err, layer_err in rows:
        print(f"\n{name}: kernel-level err={kernel_err * 100:.1f}% "
              f"layer-level err={layer_err * 100:.1f}%")
        assert kernel_err <= layer_err + 1e-9, name


def test_ablation_gap_modeling(benchmark):
    """Dropping CPU gaps breaks baseline replay fidelity (Section 4.2.1)."""

    def run():
        session = WhatIfSession.profile("bert_base")
        true_time = session.trace.duration_us
        with_gaps = session.baseline_us
        stripped = session.graph.copy()
        for task in stripped.tasks():
            task.gap = 0.0
        without_gaps = simulate(stripped).makespan_us
        return true_time, with_gaps, without_gaps

    true_time, with_gaps, without_gaps = run_once(benchmark, run)
    print(f"\ntraced={true_time / 1000:.1f}ms with_gaps={with_gaps / 1000:.1f}ms "
          f"without_gaps={without_gaps / 1000:.1f}ms")
    assert prediction_error(with_gaps, true_time) < 0.01
    # gap-free replay underestimates the iteration materially
    assert without_gaps < true_time * 0.9


def test_ablation_amp_markers(benchmark):
    """The sgemm/scudnn name selection matters: shrinking everything 3x
    (ignoring kernel class) overestimates AMP."""

    def run():
        model = build_model("resnet50")
        session = WhatIfSession.from_model(model)
        truth = groundtruth.run_amp(model).iteration_us
        correct = session.predict(AutomaticMixedPrecision()).predicted_us
        graph = session.graph.copy()
        transform.shrink_durations(transform.select_gpu_tasks(graph), 3.0)
        uniform3x = simulate(graph).makespan_us
        return truth, correct, uniform3x

    truth, correct, uniform3x = run_once(benchmark, run)
    assert prediction_error(correct, truth) < prediction_error(uniform3x, truth)
    assert uniform3x < correct  # the naive model is too optimistic
