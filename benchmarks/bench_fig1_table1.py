"""Figure 1 and Table 1 benchmarks: profiler timeline and catalog."""

from conftest import run_once, save_result
from repro.experiments import fig1_timeline, table1_catalog


def test_fig1_timeline(benchmark):
    result = run_once(benchmark, fig1_timeline.run)
    save_result(result)
    print("\n" + result.render())
    values = dict(zip(result.column("quantity"), result.column("value")))
    assert values["gpu_kernels"] > 500      # kernel-level granularity
    assert values["threads"] == 3           # 2 CPU threads + default stream
    assert "#" in result.notes              # the ASCII timeline painted


def test_table1_catalog(benchmark):
    result = run_once(benchmark, table1_catalog.run)
    save_result(result)
    print("\n" + result.render())
    assert len(result.rows) == 10
    assert sum(1 for r in result.rows if r[3] == "yes") == 5
