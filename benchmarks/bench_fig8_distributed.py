"""Figure 8 benchmark: distributed-training predictions across deployments.

Covers all four sub-figures (ResNet-50, GNMT, BERT_base, BERT_large) across
the paper's 7 cluster shapes and 3 bandwidths: 84 (config, model) points.
"""

from conftest import run_once, save_result
from repro.experiments import fig8_distributed


def test_fig8_distributed(benchmark):
    result = run_once(benchmark, fig8_distributed.run)
    save_result(result)
    print("\n" + result.render())
    assert len(result.rows) == 4 * 3 * 7
    errors = result.column("prediction_error_%")
    # Paper: at most ~10% error in most configurations, few exceptions
    over_10 = sum(1 for e in errors if e > 10.0)
    assert over_10 <= len(errors) * 0.15
    assert max(errors) < 20.0
