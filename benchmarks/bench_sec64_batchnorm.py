"""Section 6.4 benchmark: reconstructing batchnorm on DenseNet-121."""

from conftest import run_once, save_result
from repro.experiments import sec64_batchnorm


def test_sec64_batchnorm(benchmark):
    result = run_once(benchmark, sec64_batchnorm.run)
    save_result(result)
    print("\n" + result.render())
    values = dict(zip(result.column("quantity"), result.column("value")))
    predicted = values["predicted_improvement_%"]
    truth = values["ground_truth_improvement_%"]
    # the paper's conclusion chain: claimed 17.5% > predicted (~12.7%) >
    # measured (~7%)
    assert 17.5 > predicted > truth > 3.0
    assert abs(predicted - 12.7) < 4.0
    assert abs(truth - 7.0) < 3.0
