"""Figure 6 benchmark: FP32 vs FP16 runtime decomposition."""

from conftest import run_once, save_result
from repro.experiments import fig6_breakdown


def test_fig6_breakdown(benchmark):
    result = run_once(benchmark, fig6_breakdown.run)
    save_result(result)
    print("\n" + result.render())
    assert len(result.rows) == 8  # 4 models x 2 precisions
    by_key = {(r[0], r[1]): r for r in result.rows}
    for model in ("resnet50", "gnmt", "bert_base", "bert_large"):
        fp32 = by_key[(model, "fp32")]
        fp16 = by_key[(model, "fp16")]
        total32, cpu32, gpu32, par32 = fp32[2:]
        total16, cpu16, gpu16, par16 = fp16[2:]
        assert total16 < total32, f"fp16 should be faster on {model}"
        assert gpu16 < gpu32, f"GPU-only should shrink on {model}"
        # the paper's signature: CPU-side runtime barely changes
        assert cpu16 + par16 <= (cpu32 + par32) * 1.05
