"""Load-test the prediction daemon: latency, QPS and warm-hit ratio.

The service promises the paper's value proposition *as a service*: once a
workload's session is warm and its answers are memoized, a what-if query
costs an HTTP round-trip plus a store read — no profiling, no simulation.
This driver stands up one real daemon (socket and all), hammers it with
concurrent threaded clients drawn from a small scenario mix, and records
the numbers the ROADMAP asks for in ``BENCH_service.json``: p50/p99
request latency, sustained QPS, and the warm-hit ratio under load.  Every
response is also checked against the serial path, so the load test is a
correctness test at volume.

Quick mode (``REPRO_BENCH_QUICK=1``, the CI smoke) shrinks the client
count and request volume and writes ``BENCH_service_quick.json`` so the
committed full-mode record never gets clobbered by a CI runner's timings.
"""

import json
import os
import shutil
import tempfile
import threading
import time
import urllib.request

from conftest import run_once
from repro.scenarios import (
    PredictServer,
    PredictService,
    Scenario,
    ScenarioRunner,
    SweepStore,
)

#: quick mode (CI smoke): fewer clients, fewer requests, one workload
QUICK = bool(os.environ.get("REPRO_BENCH_QUICK"))

#: quick runs must not clobber the committed full-mode record
BENCH_SERVICE_JSON = os.path.join(
    os.path.dirname(__file__), os.pardir,
    "BENCH_service_quick.json" if QUICK else "BENCH_service.json")

CLIENTS = 2 if QUICK else 8
REQUESTS_PER_CLIENT = 5 if QUICK else 40


def _scenario_mix():
    """The workload mix clients draw from (two models, two stacks full)."""
    models = ["resnet50"] if QUICK else ["resnet50", "vgg19"]
    return [Scenario(model=model, optimizations=stack)
            for model in models
            for stack in ([], ["amp"])]


def _post_predict(url: str, body: bytes):
    """One client request; returns ``(latency_s, parsed response)``."""
    request = urllib.request.Request(url + "/predict", data=body)
    t0 = time.perf_counter()
    with urllib.request.urlopen(request, timeout=60) as response:
        payload = json.loads(response.read())
    return time.perf_counter() - t0, payload


def _percentile(samples, q):
    """Nearest-rank percentile (samples must be non-empty)."""
    ordered = sorted(samples)
    rank = min(len(ordered) - 1, max(0, round(q * len(ordered)) - 1))
    return ordered[rank]


def test_service_latency_qps_and_warm_hits(benchmark):
    """One daemon, many clients: every answer exact, and fast when warm."""
    mix = _scenario_mix()
    expected = {s.label(): ScenarioRunner().run(s).as_row() for s in mix}
    bodies = [(s.label(), json.dumps(s.to_dict()).encode("utf-8"))
              for s in mix]
    tmp = tempfile.mkdtemp(prefix="bench-service-")

    def run():
        store = SweepStore(os.path.join(tmp, "store"))
        service = PredictService(store=store, workers=4)
        latencies = []
        failures = []
        lock = threading.Lock()

        with PredictServer(service) as server:
            # cold pass: one request per scenario pays profile + simulate
            t0 = time.perf_counter()
            for label, body in bodies:
                _, answer = _post_predict(server.url, body)
                if answer["row"] != expected[label] or answer["cached"]:
                    failures.append(("cold", label, answer))
            cold_s = time.perf_counter() - t0

            def client(worker: int) -> None:
                for round_ in range(REQUESTS_PER_CLIENT):
                    label, body = bodies[(worker + round_) % len(bodies)]
                    try:
                        latency, answer = _post_predict(server.url, body)
                    except Exception as exc:  # noqa: BLE001 — reported
                        with lock:
                            failures.append((worker, round_, repr(exc)))
                        return
                    with lock:
                        latencies.append(latency)
                        if answer["row"] != expected[label]:
                            failures.append((worker, round_, answer))

            threads = [threading.Thread(target=client, args=(i,))
                       for i in range(CLIENTS)]
            t0 = time.perf_counter()
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            elapsed_s = time.perf_counter() - t0
        return service, latencies, failures, cold_s, elapsed_s

    try:
        service, latencies, failures, cold_s, elapsed_s = \
            run_once(benchmark, run)
    finally:
        shutil.rmtree(tmp, ignore_errors=True)

    assert not failures, failures[:5]
    total = CLIENTS * REQUESTS_PER_CLIENT
    assert len(latencies) == total

    memo = service.stats()["memo"]
    # warm-hit ratio over the loaded phase: of the `total` requests, all
    # were memoized by the cold pass, so every one should be a store hit
    warm_hits = memo["hits"]
    warm_ratio = warm_hits / total
    p50_ms = _percentile(latencies, 0.50) * 1000.0
    p99_ms = _percentile(latencies, 0.99) * 1000.0
    qps = total / elapsed_s if elapsed_s > 0 else float("inf")

    payload = {
        "mode": "quick" if QUICK else "full",
        "clients": CLIENTS,
        "requests": total,
        "scenario_mix": len(bodies),
        "workers": 4,
        "cold_pass_s": round(cold_s, 4),
        "p50_ms": round(p50_ms, 3),
        "p99_ms": round(p99_ms, 3),
        "qps": round(qps, 1),
        "warm_hit_ratio": round(warm_ratio, 4),
        "protocol": "one HTTP daemon + sweep-store memo; cold pass "
                    "answers each scenario once, then N threaded clients "
                    "replay the mix; latency is client-side wall clock "
                    "per request, every row checked against the serial "
                    "path",
    }
    with open(BENCH_SERVICE_JSON, "w") as f:
        json.dump(payload, f, indent=1, sort_keys=True)
        f.write("\n")

    assert warm_ratio >= 0.99, payload
    assert qps > (1.0 if QUICK else 20.0), payload
    assert p99_ms >= p50_ms > 0.0, payload
