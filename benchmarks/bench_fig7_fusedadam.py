"""Figure 7 benchmark: FusedAdam prediction vs ground truth."""

from conftest import run_once, save_result
from repro.experiments import fig7_fusedadam


def test_fig7_fusedadam(benchmark):
    result = run_once(benchmark, fig7_fusedadam.run)
    save_result(result)
    print("\n" + result.render())
    rows = {r[0]: r for r in result.rows}
    for model, row in rows.items():
        assert row[5] < 13.0, f"{model}: error {row[5]:.1f}%"
    # BERT improves dramatically; GNMT barely (weight update <10% of iter)
    def gain(row):
        return (row[1] - row[2]) / row[1] * 100.0
    assert gain(rows["bert_large"]) > 30.0
    assert gain(rows["gnmt"]) < 15.0
    # kernel counts from Section 6.3
    assert abs(rows["bert_base"][6] - 2633) / 2633 < 0.05
    assert abs(rows["bert_large"][6] - 5164) / 5164 < 0.05
