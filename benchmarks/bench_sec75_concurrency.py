"""Section 7.5 benchmark: concurrent kernels vs serialized profiles."""

from conftest import run_once, save_result
from repro.experiments import sec75_concurrency


def test_sec75_concurrency(benchmark):
    result = run_once(benchmark, sec75_concurrency.run)
    save_result(result)
    print("\n" + result.render())
    values = dict(zip(result.column("quantity"), result.column("value")))
    assert values["conservatism_%"] > 0            # estimate is conservative
    assert values["prediction_error_%"] < 10.0     # but still accurate (GNMT)
