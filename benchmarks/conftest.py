"""Benchmark harness support.

Each benchmark regenerates one of the paper's tables/figures.  Because the
underlying experiments are deterministic simulations, we run each exactly
once (``pedantic(rounds=1)``) — the timing measures the analysis cost, and
the *content* (the reproduced rows) is written to ``benchmarks/results/``
and sanity-asserted against the paper's bands.
"""

import os

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def save_result(result) -> str:
    """Write an ExperimentResult's rendering to benchmarks/results/."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{result.experiment}.txt")
    with open(path, "w") as f:
        f.write(result.render() + "\n")
    return path


def run_once(benchmark, func, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs,
                              rounds=1, iterations=1)
