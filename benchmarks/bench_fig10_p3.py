"""Figure 10 benchmark: P3 on ResNet-50 and VGG-19 over bandwidth sweeps."""

from conftest import run_once, save_result
from repro.experiments import fig10_p3


def _check(result):
    baselines = result.column("baseline_ms")
    truths = result.column("p3_ground_truth_ms")
    errors = result.column("prediction_error_%")
    # higher bandwidth -> faster baseline (trend)
    assert baselines == sorted(baselines, reverse=True)
    # P3 never slower than the PS baseline
    for base, truth in zip(baselines, truths):
        assert truth <= base * 1.01
    # paper: at most 16.2% error (allow a little headroom)
    assert max(errors) < 20.0


def test_fig10_p3_resnet50(benchmark):
    result = run_once(benchmark, fig10_p3.run, "resnet50")
    result.experiment = "fig10a_resnet50"
    save_result(result)
    print("\n" + result.render())
    _check(result)


def test_fig10_p3_vgg19(benchmark):
    result = run_once(benchmark, fig10_p3.run, "vgg19")
    result.experiment = "fig10b_vgg19"
    save_result(result)
    print("\n" + result.render())
    _check(result)
