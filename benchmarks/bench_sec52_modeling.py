"""Section 5.2 benchmark: the modeling-only optimizations."""

from conftest import run_once, save_result
from repro.experiments import sec52_modeling


def test_sec52_modeling(benchmark):
    result = run_once(benchmark, sec52_modeling.run)
    save_result(result)
    print("\n" + result.render())
    deltas = dict(zip(result.column("optimization"), result.column("delta_%")))
    assert deltas["blueconnect"] < 0   # hierarchical ring helps on 4x2
    assert deltas["dgc"] < 0           # compression helps when comm-bound
    assert deltas["metaflow"] < 0      # fusion removes memory-bound kernels
    assert deltas["vdnn"] >= 0         # offloading costs runtime
    assert deltas["gist"] > 0          # encode/decode costs runtime
