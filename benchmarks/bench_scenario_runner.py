"""Scenario-layer benchmark: the declarative path must not tax the analysis.

Every experiment and CLI command now flows through the
:class:`~repro.scenarios.runner.ScenarioRunner`; this driver pins two
properties of that refactor:

* **identity** — a scenario prediction is bit-identical to hand-wiring the
  session/optimization objects (the pipeline is pure plumbing);
* **overhead** — resolving registry entries, validating the pipeline and
  dispatching through the runner costs a negligible fraction of one
  prediction (the simulate call dominates).
"""

import time

from conftest import run_once
from repro.analysis.session import WhatIfSession
from repro.optimizations import AutomaticMixedPrecision
from repro.scenarios import Scenario, ScenarioRunner


def test_scenario_runner_identity_and_overhead(benchmark):
    def run():
        runner = ScenarioRunner()
        base = Scenario(model="resnet50", optimizations=["amp"])
        outcome = runner.run(base)

        session = WhatIfSession.from_model(outcome.model,
                                           config=outcome.config)
        legacy = session.predict(AutomaticMixedPrecision())

        # declarative dispatch overhead, isolated from session profiling:
        # re-run the already-cached scenario vs a direct predict
        t0 = time.perf_counter()
        for _ in range(5):
            runner.run(base)
        declarative_s = time.perf_counter() - t0
        t0 = time.perf_counter()
        for _ in range(5):
            session.predict(AutomaticMixedPrecision())
        direct_s = time.perf_counter() - t0
        return outcome, legacy, declarative_s, direct_s

    outcome, legacy, declarative_s, direct_s = run_once(benchmark, run)
    assert outcome.baseline_us == legacy.baseline_us
    assert outcome.predicted_us == legacy.predicted_us
    # plumbing, not a second analysis pass: well under 2x a direct predict
    assert declarative_s < direct_s * 2.0, (declarative_s, direct_s)


def test_scenario_grid_matches_serial(benchmark):
    """Fork-parallel grids return exactly the serial predictions."""
    def run():
        base = Scenario(model="resnet50",
                        optimizations=["distributed_training"])
        scenarios = [base.with_cluster(machines, gpus, bandwidth_gbps=bw)
                     for bw in (10.0, 25.0)
                     for machines, gpus in ((2, 1), (4, 1), (4, 2))]
        parallel = ScenarioRunner().run_grid(scenarios)
        serial = [ScenarioRunner().run(s) for s in scenarios]
        return parallel, serial

    parallel, serial = run_once(benchmark, run)
    assert [o.predicted_us for o in parallel] == \
        [o.predicted_us for o in serial]
