"""Scenario-layer benchmark: the declarative path must not tax the analysis.

Every experiment and CLI command now flows through the
:class:`~repro.scenarios.runner.ScenarioRunner`; this driver pins two
properties of that refactor:

* **identity** — a scenario prediction is bit-identical to hand-wiring the
  session/optimization objects (the pipeline is pure plumbing);
* **overhead** — resolving registry entries, validating the pipeline and
  dispatching through the runner costs a negligible fraction of one
  prediction (the simulate call dominates).
"""

import json
import os
import shutil
import tempfile
import time

from conftest import run_once
from repro.analysis.session import WhatIfSession
from repro.optimizations import AutomaticMixedPrecision
from repro.scenarios import Scenario, ScenarioGrid, ScenarioRunner, SweepStore

#: quick mode (CI smoke): a reduced grid, and only a >1x warm-cache gate
QUICK = bool(os.environ.get("REPRO_BENCH_QUICK"))

#: quick runs must not clobber the committed full-mode record
BENCH_SWEEP_JSON = os.path.join(
    os.path.dirname(__file__), os.pardir,
    "BENCH_sweep_quick.json" if QUICK else "BENCH_sweep.json")


def test_scenario_runner_identity_and_overhead(benchmark):
    def run():
        runner = ScenarioRunner()
        base = Scenario(model="resnet50", optimizations=["amp"])
        outcome = runner.run(base)

        session = WhatIfSession.from_model(outcome.model,
                                           config=outcome.config)
        legacy = session.predict(AutomaticMixedPrecision())

        # declarative dispatch overhead, isolated from session profiling:
        # re-run the already-cached scenario vs a direct predict
        t0 = time.perf_counter()
        for _ in range(5):
            runner.run(base)
        declarative_s = time.perf_counter() - t0
        t0 = time.perf_counter()
        for _ in range(5):
            session.predict(AutomaticMixedPrecision())
        direct_s = time.perf_counter() - t0
        return outcome, legacy, declarative_s, direct_s

    outcome, legacy, declarative_s, direct_s = run_once(benchmark, run)
    assert outcome.baseline_us == legacy.baseline_us
    assert outcome.predicted_us == legacy.predicted_us
    # plumbing, not a second analysis pass: well under 2x a direct predict
    assert declarative_s < direct_s * 2.0, (declarative_s, direct_s)


def test_scenario_grid_matches_serial(benchmark):
    """Fork-parallel grids return exactly the serial predictions."""
    def run():
        base = Scenario(model="resnet50",
                        optimizations=["distributed_training"])
        scenarios = [base.with_cluster(machines, gpus, bandwidth_gbps=bw)
                     for bw in (10.0, 25.0)
                     for machines, gpus in ((2, 1), (4, 1), (4, 2))]
        parallel = ScenarioRunner().run_grid(scenarios)
        serial = [ScenarioRunner().run(s) for s in scenarios]
        return parallel, serial

    parallel, serial = run_once(benchmark, run)
    assert [o.predicted_us for o in parallel] == \
        [o.predicted_us for o in serial]


def test_spawn_sweep_rows_match_serial(benchmark):
    """Portability smoke: the spawn start method is a drop-in substrate.

    Runs a reduced grid on the batch executor under the spawn context
    (fresh worker interpreters rebuilding state from the WorkerManifest)
    and requires the rows to be bit-identical to a serial run, plus a
    warm store re-run to serve every cell.  CI runs this in the
    bench-sweep job so the macOS/Windows execution path cannot rot on
    Linux-only development.
    """
    base = Scenario(model="resnet50",
                    optimizations=["distributed_training"]).with_cluster(
                        2, 1, bandwidth_gbps=10.0)
    scenarios = ScenarioGrid(base=base, axes={
        "cluster.bandwidth_gbps": [10.0, 20.0],
        "cluster.machines": [2, 4],
    }).expand()
    tmp = tempfile.mkdtemp(prefix="bench-spawn-")
    try:
        def run():
            store = SweepStore(os.path.join(tmp, "store"))
            spawned = ScenarioRunner().run_grid(scenarios, parallel=2,
                                                store=store,
                                                start_method="spawn")
            warm = ScenarioRunner().run_grid(scenarios, store=store)
            serial = ScenarioRunner().run_grid(scenarios, processes=1)
            return spawned, warm, serial

        spawned, warm, serial = run_once(benchmark, run)
    finally:
        shutil.rmtree(tmp, ignore_errors=True)

    serial_rows = [o.as_row() for o in serial]
    assert [o.as_row() for o in spawned] == serial_rows
    assert [o.as_row() for o in warm] == serial_rows
    assert all(not o.cached for o in spawned)
    assert all(o.cached for o in warm)


def _sweep_grid() -> ScenarioGrid:
    """The pinned fig8-style grid the cold/warm sweep numbers refer to."""
    base = Scenario(model="resnet50",
                    optimizations=["distributed_training"]).with_cluster(
                        2, 1, bandwidth_gbps=10.0)
    axes = {
        "model": ["resnet50"] if QUICK else ["resnet50", "gnmt"],
        "cluster.bandwidth_gbps": [10.0, 20.0] if QUICK
        else [10.0, 20.0, 40.0],
        "cluster.gpus_per_machine": [1] if QUICK else [1, 2],
        "cluster.machines": [2, 4],
    }
    return ScenarioGrid(base=base, axes=axes)


def test_sweep_store_cold_vs_warm(benchmark):
    """Cold vs warm wall-clock of the store-backed batch executor.

    Cold profiles every workload and simulates every cell through the
    process pool; warm serves every cell from the store.  Rows must be
    bit-identical across the serial, pool and cached paths, and the warm
    re-run must be the promised multiple faster (≥5x full mode, >1x in
    the reduced CI smoke grid).
    """
    scenarios = _sweep_grid().expand()
    tmp = tempfile.mkdtemp(prefix="bench-sweep-")
    try:
        def run():
            store = SweepStore(os.path.join(tmp, "store"))
            t0 = time.perf_counter()
            cold = ScenarioRunner().run_grid(scenarios, parallel=4,
                                             store=store)
            cold_s = time.perf_counter() - t0
            t0 = time.perf_counter()
            warm = ScenarioRunner().run_grid(scenarios, parallel=4,
                                             store=store)
            warm_s = time.perf_counter() - t0
            serial = ScenarioRunner().run_grid(scenarios, processes=1)
            return cold, warm, serial, cold_s, warm_s

        cold, warm, serial, cold_s, warm_s = run_once(benchmark, run)
    finally:
        shutil.rmtree(tmp, ignore_errors=True)

    serial_rows = [o.as_row() for o in serial]
    assert [o.as_row() for o in cold] == serial_rows
    assert [o.as_row() for o in warm] == serial_rows
    assert all(not o.cached for o in cold)
    assert all(o.cached for o in warm)

    speedup = cold_s / warm_s if warm_s > 0 else float("inf")
    payload = {
        "grid": "fig8-style: model x bandwidth x (machines x gpus), "
                "distributed_training stack",
        "mode": "quick" if QUICK else "full",
        "cells": len(scenarios),
        "jobs": 4,
        "cold_s": round(cold_s, 4),
        "warm_s": round(warm_s, 4),
        "warm_speedup": round(speedup, 1),
        "protocol": "single cold run (profile+simulate, pool of 4) vs "
                    "warm store re-run of the identical grid",
    }
    with open(BENCH_SWEEP_JSON, "w") as f:
        json.dump(payload, f, indent=1, sort_keys=True)
        f.write("\n")
    assert speedup > (1.0 if QUICK else 5.0), payload
