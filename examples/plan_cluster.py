#!/usr/bin/env python3
"""Capacity planning without a cluster (paper Section 6.5 / Figure 8).

Answers, from a *single-GPU* profile:

* "How will my workload scale with the number of GPUs?"
* "Would upgrading to a faster network improve training throughput?"
* "Would gradient compression (DGC) or hierarchical all-reduce
  (BlueConnect) help at my bandwidth?"

Run:  python examples/plan_cluster.py [model]
"""

import sys

from repro import ClusterSpec, GPU_2080TI, NetworkSpec, WhatIfSession
from repro.common.texttable import render_table
from repro.core.simulate import simulate
from repro.optimizations import (
    BlueConnect,
    DeepGradientCompression,
    DistributedTraining,
)


def scaling_table(session: WhatIfSession) -> None:
    configs = ((1, 1), (2, 1), (4, 1), (2, 2), (4, 2), (4, 4))
    rows = []
    for bw in (10.0, 20.0, 40.0):
        for machines, gpus in configs:
            cluster = ClusterSpec(machines, gpus, GPU_2080TI, NetworkSpec(bw))
            if cluster.is_distributed:
                pred = session.predict(DistributedTraining(), cluster=cluster)
                iter_ms = pred.predicted_us / 1000.0
            else:
                iter_ms = session.baseline_us / 1000.0
            # throughput relative to one GPU (samples/s, normalized)
            scale = (cluster.n_workers * session.baseline_us
                     / (iter_ms * 1000.0))
            rows.append([f"{bw:g}", cluster.label(), iter_ms,
                         f"{scale:.2f}x"])
    print(render_table(
        ["bandwidth_gbps", "config", "iteration_ms", "scaling_efficiency"],
        rows, title="Predicted data-parallel scaling from one profile"))


def communication_fixes(session: WhatIfSession, bandwidth: float) -> None:
    """Stack communication optimizations on the distributed prediction."""
    cluster = ClusterSpec(4, 2, GPU_2080TI, NetworkSpec(bandwidth))
    context = session.context(cluster)
    rows = []

    base_graph = session.graph.copy()
    DistributedTraining().apply(base_graph, context)
    base = simulate(base_graph).makespan_us
    rows.append(["plain NCCL ring", base / 1000.0, "-"])

    for label, opt in (("BlueConnect decomposition", BlueConnect()),
                       ("DGC 100x compression",
                        DeepGradientCompression(compression_ratio=0.01))):
        graph = session.graph.copy()
        DistributedTraining().apply(graph, context)
        outcome = opt.apply(graph, context)
        t = simulate(outcome.graph, outcome.scheduler).makespan_us
        rows.append([label, t / 1000.0, f"{(base - t) / base * 100:+.1f}%"])

    print()
    print(render_table(
        ["communication strategy", "iteration_ms", "vs plain ring"],
        rows, title=f"Communication what-ifs on 4x2 @ {bandwidth:g} Gbps"))


def main() -> None:
    model = sys.argv[1] if len(sys.argv) > 1 else "gnmt"
    session = WhatIfSession.profile(model)
    print(f"profiled {model}: {session.baseline_us / 1000:.1f} ms/iteration "
          "on one GPU\n")
    scaling_table(session)
    communication_fixes(session, bandwidth=10.0)


if __name__ == "__main__":
    main()
