#!/usr/bin/env python3
"""Capacity planning without a cluster (paper Section 6.5 / Figure 8).

Answers, from a *single-GPU* profile:

* "How will my workload scale with the number of GPUs?"
* "Would upgrading to a faster network improve training throughput?"
* "Would gradient compression (DGC) or hierarchical all-reduce
  (BlueConnect) help at my bandwidth?"

The whole study is a list of declared scenarios (bandwidth x cluster shape,
plus three stacked-optimization questions); the fork-based runner fans the
predictions across CPU cores.

Run:  python examples/plan_cluster.py [model]
"""

import sys

from repro.common.texttable import render_table
from repro.scenarios import Scenario, ScenarioRunner


def scaling_table(runner: ScenarioRunner, base: Scenario) -> None:
    scenarios = []
    for bw in (10.0, 20.0, 40.0):
        for machines, gpus in ((1, 1), (2, 1), (4, 1), (2, 2), (4, 2), (4, 4)):
            distributed = machines * gpus > 1
            scenarios.append(base.with_(
                optimizations=["distributed_training"] if distributed else []
            ).with_cluster(machines, gpus, bandwidth_gbps=bw))

    rows = []
    for outcome in runner.run_grid(scenarios):
        cluster = outcome.cluster
        iter_ms = outcome.predicted_us / 1000.0
        # throughput relative to one GPU (samples/s, normalized)
        scale = (cluster.n_workers * outcome.baseline_us
                 / (iter_ms * 1000.0))
        rows.append([f"{cluster.network.bandwidth_gbps:g}", cluster.label(),
                     iter_ms, f"{scale:.2f}x"])
    print(render_table(
        ["bandwidth_gbps", "config", "iteration_ms", "scaling_efficiency"],
        rows, title="Predicted data-parallel scaling from one profile"))


def communication_fixes(runner: ScenarioRunner, base: Scenario,
                        bandwidth: float) -> None:
    """Stack communication optimizations on the distributed prediction."""
    target = base.with_cluster(4, 2, bandwidth_gbps=bandwidth)
    plain = runner.run(target.with_(optimizations=["distributed_training"]))

    rows = [["plain NCCL ring", plain.predicted_us / 1000.0, "-"]]
    for label, stack in (
        ("BlueConnect decomposition",
         ["distributed_training", "blueconnect"]),
        ("DGC 100x compression",
         ["distributed_training",
          {"name": "dgc", "params": {"compression_ratio": 0.01}}]),
    ):
        outcome = runner.run(target.with_(optimizations=stack))
        delta = ((plain.predicted_us - outcome.predicted_us)
                 / plain.predicted_us * 100.0)
        rows.append([label, outcome.predicted_us / 1000.0, f"{delta:+.1f}%"])

    print()
    print(render_table(
        ["communication strategy", "iteration_ms", "vs plain ring"],
        rows, title=f"Communication what-ifs on 4x2 @ {bandwidth:g} Gbps"))


def main() -> None:
    model = sys.argv[1] if len(sys.argv) > 1 else "gnmt"
    runner = ScenarioRunner()
    base = Scenario(model=model)
    session = runner.session(base)
    print(f"profiled {model}: {session.baseline_us / 1000:.1f} ms/iteration "
          "on one GPU\n")
    scaling_table(runner, base)
    communication_fixes(runner, base, bandwidth=10.0)


if __name__ == "__main__":
    main()
