#!/usr/bin/env python3
"""Quickstart: declare scenarios, ask what-if questions.

Profiles one ResNet-50 training iteration on the simulated RTX 2080Ti
substrate, then uses Daydream's declarative scenario layer to answer:

* "Will mixed precision help my model?"
* "What does one iteration actually spend its time on?"
* "How would my job scale to a 4-machine cluster on a 10 Gbps network?"

Run:  python examples/quickstart.py
"""

from repro.scenarios import Scenario, ScenarioRunner


def main() -> None:
    # one profiled iteration = one cached session = many questions
    runner = ScenarioRunner()
    base = Scenario(model="resnet50")
    session = runner.session(base)
    print(f"baseline iteration: {session.baseline_us / 1000:.1f} ms")

    # Where does the time go? (paper Figure 6 machinery)
    breakdown = session.breakdown()
    print(f"  CPU-only  {breakdown.cpu_only_us / 1000:7.1f} ms")
    print(f"  GPU-only  {breakdown.gpu_only_us / 1000:7.1f} ms")
    print(f"  parallel  {breakdown.parallel_us / 1000:7.1f} ms")

    # What if we trained with mixed precision? (paper Algorithm 3)
    amp = runner.run(base.with_(optimizations=["amp"])).prediction
    print(f"\nAMP: {amp.predicted_us / 1000:.1f} ms "
          f"({amp.improvement_percent:+.1f}%, {amp.speedup:.2f}x)")

    # How would this scale out? (paper Algorithm 6, Figure 8)
    print("\ndata-parallel scaling @ 10 Gbps:")
    scenarios = [
        base.with_(optimizations=["distributed_training"]).with_cluster(
            machines, gpus, bandwidth_gbps=10.0)
        for machines, gpus in ((2, 1), (4, 1), (4, 2))
    ]
    for outcome in runner.run_grid(scenarios):
        cluster = outcome.cluster
        print(f"  {cluster.label()}: {outcome.predicted_us / 1000:7.1f} "
              f"ms/iter ({cluster.n_workers}x batch throughput)")


if __name__ == "__main__":
    main()
