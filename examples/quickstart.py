#!/usr/bin/env python3
"""Quickstart: profile once, ask what-if questions.

Profiles one ResNet-50 training iteration on the simulated RTX 2080Ti
substrate, then uses Daydream's dependency-graph machinery to answer:

* "Will mixed precision help my model?"
* "What does one iteration actually spend its time on?"
* "How would my job scale to a 4-machine cluster on a 10 Gbps network?"

Run:  python examples/quickstart.py
"""

from repro import ClusterSpec, GPU_2080TI, NetworkSpec, WhatIfSession
from repro.optimizations import AutomaticMixedPrecision, DistributedTraining


def main() -> None:
    # one profiled iteration = one trace = many questions
    session = WhatIfSession.profile("resnet50")
    print(f"baseline iteration: {session.baseline_us / 1000:.1f} ms")

    # Where does the time go? (paper Figure 6 machinery)
    breakdown = session.breakdown()
    print(f"  CPU-only  {breakdown.cpu_only_us / 1000:7.1f} ms")
    print(f"  GPU-only  {breakdown.gpu_only_us / 1000:7.1f} ms")
    print(f"  parallel  {breakdown.parallel_us / 1000:7.1f} ms")

    # What if we trained with mixed precision? (paper Algorithm 3)
    amp = session.predict(AutomaticMixedPrecision())
    print(f"\nAMP: {amp.predicted_us / 1000:.1f} ms "
          f"({amp.improvement_percent:+.1f}%, {amp.speedup:.2f}x)")

    # How would this scale out? (paper Algorithm 6, Figure 8)
    print("\ndata-parallel scaling @ 10 Gbps:")
    for machines, gpus in ((2, 1), (4, 1), (4, 2)):
        cluster = ClusterSpec(machines, gpus, GPU_2080TI,
                              NetworkSpec(bandwidth_gbps=10.0))
        pred = session.predict(DistributedTraining(), cluster=cluster)
        print(f"  {cluster.label()}: {pred.predicted_us / 1000:7.1f} ms/iter "
              f"({cluster.n_workers}x batch throughput)")


if __name__ == "__main__":
    main()
