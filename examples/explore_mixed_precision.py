#!/usr/bin/env python3
"""Should *my* model use mixed precision?  (Paper Sections 6.2 and 6.3.)

The efficacy of AMP varies wildly across models: compute-bound CNNs gain
nearly the full tensor-core speedup, while CPU-bound transformer fine-tuning
barely moves.  This example reproduces that analysis for every model in the
zoo, cross-checks the prediction against the ground-truth (fp16 cost model)
execution, and prints the runtime breakdown that explains the difference —
the paper's core argument for kernel-level (not layer-level) modeling.

Run:  python examples/explore_mixed_precision.py
"""

from repro import TrainingConfig, WhatIfSession, available_models, build_model
from repro.analysis.metrics import improvement_percent, prediction_error
from repro.common.texttable import render_table
from repro.core.breakdown import compute_breakdown
from repro.core.construction import build_graph
from repro.core.simulate import simulate
from repro.framework import groundtruth
from repro.framework.engine import Engine
from repro.optimizations import AutomaticMixedPrecision, FusedAdam


def amp_study() -> None:
    rows = []
    for name in available_models():
        model = build_model(name)
        session = WhatIfSession.from_model(model)
        pred = session.predict(AutomaticMixedPrecision())
        truth = groundtruth.run_amp(model)
        rows.append([
            name,
            session.baseline_us / 1000.0,
            pred.predicted_us / 1000.0,
            truth.iteration_us / 1000.0,
            improvement_percent(session.baseline_us, truth.iteration_us),
            prediction_error(pred.predicted_us, truth.iteration_us) * 100.0,
        ])
    print(render_table(
        ["model", "baseline_ms", "predicted_ms", "ground_truth_ms",
         "actual_gain_%", "prediction_err_%"],
        rows, title="Automatic Mixed Precision across the zoo"))


def why_bert_is_different() -> None:
    """BERT's update phase is launch-bound: AMP can't touch it, FusedAdam
    can.  Compare the two optimizations head-to-head."""
    rows = []
    for name in ("bert_base", "bert_large"):
        session = WhatIfSession.profile(name)
        amp = session.predict(AutomaticMixedPrecision())
        fused = session.predict(FusedAdam())
        rows.append([name, session.baseline_us / 1000.0,
                     amp.improvement_percent, fused.improvement_percent])
    print()
    print(render_table(
        ["model", "baseline_ms", "amp_gain_%", "fused_adam_gain_%"],
        rows, title="AMP vs FusedAdam on BERT (pick your optimization)"))


def breakdown_study() -> None:
    rows = []
    for name in ("resnet50", "bert_large"):
        model = build_model(name)
        for precision in ("fp32", "fp16"):
            trace = Engine(model=model,
                           config=TrainingConfig(precision=precision)
                           ).run_iteration()
            graph = build_graph(trace)
            b = compute_breakdown(graph, simulate(graph))
            rows.append([name, precision, *[f"{v:.1f}" for v in b.as_row()]])
    print()
    print(render_table(
        ["model", "precision", "total_ms", "cpu_only_ms", "gpu_only_ms",
         "parallel_ms"],
        rows, title="Runtime breakdown: where AMP's savings come from"))


if __name__ == "__main__":
    amp_study()
    why_bert_is_different()
    breakdown_study()
