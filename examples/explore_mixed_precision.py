#!/usr/bin/env python3
"""Should *my* model use mixed precision?  (Paper Sections 6.2 and 6.3.)

The efficacy of AMP varies wildly across models: compute-bound CNNs gain
nearly the full tensor-core speedup, while CPU-bound transformer fine-tuning
barely moves.  This example reproduces that analysis for every model in the
zoo, cross-checks the prediction against the ground-truth (fp16 cost model)
execution, and prints the runtime breakdown that explains the difference —
the paper's core argument for kernel-level (not layer-level) modeling.

Every question is a declared scenario (the precision study literally flips
``precision="fp16"`` on the baseline scenario); one runner executes all of
them against cached profiles.

Run:  python examples/explore_mixed_precision.py
"""

from repro import available_models
from repro.analysis.metrics import improvement_percent, prediction_error
from repro.common.texttable import render_table
from repro.framework import groundtruth
from repro.scenarios import Scenario, ScenarioRunner


def amp_study(runner: ScenarioRunner) -> None:
    rows = []
    for name in available_models():
        outcome = runner.run(Scenario(model=name, optimizations=["amp"]))
        truth = groundtruth.run_amp(outcome.model)
        rows.append([
            name,
            outcome.baseline_us / 1000.0,
            outcome.predicted_us / 1000.0,
            truth.iteration_us / 1000.0,
            improvement_percent(outcome.baseline_us, truth.iteration_us),
            prediction_error(outcome.predicted_us, truth.iteration_us) * 100.0,
        ])
    print(render_table(
        ["model", "baseline_ms", "predicted_ms", "ground_truth_ms",
         "actual_gain_%", "prediction_err_%"],
        rows, title="Automatic Mixed Precision across the zoo"))


def why_bert_is_different(runner: ScenarioRunner) -> None:
    """BERT's update phase is launch-bound: AMP can't touch it, FusedAdam
    can.  Compare the two optimizations head-to-head."""
    rows = []
    for name in ("bert_base", "bert_large"):
        base = Scenario(model=name)
        amp, fused = runner.run_grid([
            base.with_(optimizations=["amp"]),
            base.with_(optimizations=["fused_adam"]),
        ])
        rows.append([name, amp.baseline_us / 1000.0,
                     amp.improvement_percent, fused.improvement_percent])
    print()
    print(render_table(
        ["model", "baseline_ms", "amp_gain_%", "fused_adam_gain_%"],
        rows, title="AMP vs FusedAdam on BERT (pick your optimization)"))


def breakdown_study(runner: ScenarioRunner) -> None:
    rows = []
    for name in ("resnet50", "bert_large"):
        for precision in ("fp32", "fp16"):
            session = runner.session(Scenario(model=name,
                                              precision=precision))
            b = session.breakdown()
            rows.append([name, precision, *[f"{v:.1f}" for v in b.as_row()]])
    print()
    print(render_table(
        ["model", "precision", "total_ms", "cpu_only_ms", "gpu_only_ms",
         "parallel_ms"],
        rows, title="Runtime breakdown: where AMP's savings come from"))


if __name__ == "__main__":
    shared_runner = ScenarioRunner()
    amp_study(shared_runner)
    why_bert_is_different(shared_runner)
    breakdown_study(shared_runner)
