#!/usr/bin/env python3
"""Estimate the runtime cost of memory-footprint optimizations.

vDNN and Gist trade runtime for GPU memory: offloading feature maps over
PCIe or encoding them adds work.  Before adopting either (to fit a larger
mini-batch), a practitioner wants the runtime bill — exactly the what-if
question the paper models in Section 5.2 (Algorithms 10 and 11).

Each (model, optimization) pair is one declared scenario; the runner
profiles each model once and answers every question from that profile.

Run:  python examples/memory_optimizations.py
"""

from repro.common.texttable import render_table
from repro.scenarios import Scenario, ScenarioRunner

STACKS = (
    ["vdnn"],
    ["gist"],
    [{"name": "gist", "params": {"lossy": True}}],
)


def main() -> None:
    runner = ScenarioRunner()
    rows = []
    for model in ("resnet50", "vgg19", "densenet121"):
        base = Scenario(model=model)
        outcomes = runner.run_grid(
            [base.with_(optimizations=list(stack)) for stack in STACKS])
        rows.append([
            model,
            outcomes[0].baseline_us / 1000.0,
            *(f"{-o.improvement_percent:+.1f}%" for o in outcomes),
        ])
    print(render_table(
        ["model", "baseline_ms", "vdnn_overhead", "gist_overhead",
         "gist_lossy_overhead"],
        rows,
        title="Runtime overhead of memory-footprint optimizations"))
    print("\nPositive numbers are slowdowns: the price paid for freeing "
          "GPU memory.\nvDNN is PCIe-bound (large conv feature maps), Gist "
          "adds encode/decode kernels.")


if __name__ == "__main__":
    main()
