#!/usr/bin/env python3
"""Estimate the runtime cost of memory-footprint optimizations.

vDNN and Gist trade runtime for GPU memory: offloading feature maps over
PCIe or encoding them adds work.  Before adopting either (to fit a larger
mini-batch), a practitioner wants the runtime bill — exactly the what-if
question the paper models in Section 5.2 (Algorithms 10 and 11).

Run:  python examples/memory_optimizations.py
"""

from repro import WhatIfSession
from repro.common.texttable import render_table
from repro.optimizations import Gist, VirtualizedDNN


def main() -> None:
    rows = []
    for model in ("resnet50", "vgg19", "densenet121"):
        session = WhatIfSession.profile(model)
        vdnn = session.predict(VirtualizedDNN())
        gist = session.predict(Gist())
        gist_lossy = session.predict(Gist(lossy=True))
        rows.append([
            model,
            session.baseline_us / 1000.0,
            f"{-vdnn.improvement_percent:+.1f}%",
            f"{-gist.improvement_percent:+.1f}%",
            f"{-gist_lossy.improvement_percent:+.1f}%",
        ])
    print(render_table(
        ["model", "baseline_ms", "vdnn_overhead", "gist_overhead",
         "gist_lossy_overhead"],
        rows,
        title="Runtime overhead of memory-footprint optimizations"))
    print("\nPositive numbers are slowdowns: the price paid for freeing "
          "GPU memory.\nvDNN is PCIe-bound (large conv feature maps), Gist "
          "adds encode/decode kernels.")


if __name__ == "__main__":
    main()
