#!/usr/bin/env python3
"""Bring your own model: register a workload and analyze it declaratively.

The zoo covers the paper's five models, but any
:class:`~repro.models.base.ModelSpec` works.  This example builds a small
MLP-Mixer-style network from the layer blocks, registers it under a name,
and from there treats it exactly like a zoo model: scenarios reference it
by name, the runner profiles it, and what-if stacks apply unchanged.

Run:  python examples/custom_model.py
"""

from typing import Optional

from repro.core.mapping import mapping_coverage
from repro.models.base import ModelSpec
from repro.models.blocks import (
    dropout_layer,
    linear_layer,
    loss_layer,
    relu_layer,
)
from repro.models.registry import register_model
from repro.scenarios import Scenario, ScenarioRunner
from repro.tracing.trace import render_timeline


def build_mlp(batch_size: Optional[int] = None, width: int = 4096,
              depth: int = 6) -> ModelSpec:
    """A deep MLP: big GEMMs + activations, Adam-trained."""
    batch = batch_size or 64
    layers = []
    in_dim = 1024
    for i in range(depth):
        layers.append(linear_layer(f"block{i}.fc", batch, in_dim, width))
        layers.append(relu_layer(f"block{i}.relu", batch * width))
        layers.append(dropout_layer(f"block{i}.drop", batch * width))
        in_dim = width
    layers.append(linear_layer("head", batch, in_dim, 1000))
    layers.append(loss_layer("loss", batch, 1000))
    return ModelSpec(
        name="custom_mlp",
        layers=layers,
        batch_size=batch,
        input_sample_bytes=1024 * 4,
        default_optimizer="adam",
        application="custom",
    )


def main() -> None:
    # one registration makes the model addressable from every scenario
    register_model("custom_mlp", build_mlp)

    runner = ScenarioRunner()
    scenario = Scenario(model="custom_mlp")
    session = runner.session(scenario)
    print(session.trace.metadata["model"], "registered and profiled")
    print(f"\nbaseline: {session.baseline_us / 1000:.2f} ms/iteration")

    # peek under the hood: the trace and the dependency graph
    print(f"trace events: {len(session.trace)}")
    graph = session.graph
    print(f"graph tasks: {len(graph)} on {len(graph.threads())} threads, "
          f"layer-mapping coverage {mapping_coverage(graph) * 100:.1f}%")
    print("\n" + render_timeline(session.trace, width=80))

    # what-ifs work on registered models exactly like on the zoo
    for stack in (["amp"], ["fused_adam"]):
        outcome = runner.run(scenario.with_(optimizations=stack))
        print(outcome.prediction)


if __name__ == "__main__":
    main()
