#!/usr/bin/env python3
"""Bring your own model: define a workload and analyze it with Daydream.

The zoo covers the paper's five models, but the public API accepts any
:class:`~repro.models.base.ModelSpec`.  This example builds a small custom
MLP-Mixer-style network from the layer blocks, profiles it, inspects the
trace and the kernel-level dependency graph directly, and runs a what-if.

Run:  python examples/custom_model.py
"""

from repro import TrainingConfig, WhatIfSession
from repro.core.mapping import mapping_coverage
from repro.models.base import ModelSpec
from repro.models.blocks import (
    dropout_layer,
    linear_layer,
    loss_layer,
    relu_layer,
)
from repro.optimizations import AutomaticMixedPrecision, FusedAdam
from repro.tracing.trace import render_timeline


def build_mlp(batch: int = 64, width: int = 4096, depth: int = 6) -> ModelSpec:
    """A deep MLP: big GEMMs + activations, Adam-trained."""
    layers = []
    in_dim = 1024
    for i in range(depth):
        layers.append(linear_layer(f"block{i}.fc", batch, in_dim, width))
        layers.append(relu_layer(f"block{i}.relu", batch * width))
        layers.append(dropout_layer(f"block{i}.drop", batch * width))
        in_dim = width
    layers.append(linear_layer("head", batch, in_dim, 1000))
    layers.append(loss_layer("loss", batch, 1000))
    return ModelSpec(
        name="custom_mlp",
        layers=layers,
        batch_size=batch,
        input_sample_bytes=1024 * 4,
        default_optimizer="adam",
        application="custom",
    )


def main() -> None:
    model = build_mlp()
    print(model.summary())

    session = WhatIfSession.from_model(model, config=TrainingConfig())
    print(f"\nbaseline: {session.baseline_us / 1000:.2f} ms/iteration")

    # peek under the hood: the trace and the dependency graph
    print(f"trace events: {len(session.trace)}")
    graph = session.graph
    print(f"graph tasks: {len(graph)} on {len(graph.threads())} threads, "
          f"layer-mapping coverage {mapping_coverage(graph) * 100:.1f}%")
    print("\n" + render_timeline(session.trace, width=80))

    # what-ifs work on custom models exactly like on the zoo
    for opt in (AutomaticMixedPrecision(), FusedAdam()):
        print(session.predict(opt))


if __name__ == "__main__":
    main()
