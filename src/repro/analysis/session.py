"""The :class:`WhatIfSession`: profile once, ask many questions.

This is the package's main entry point (paper Section 7.1: "Daydream's
profiling can be performed just once, and using that profile ... one can
answer questions for many different optimizations"):

    >>> from repro.analysis import WhatIfSession
    >>> from repro.optimizations import AutomaticMixedPrecision
    >>> session = WhatIfSession.profile("resnet50")
    >>> pred = session.predict(AutomaticMixedPrecision())
    >>> pred.speedup  # doctest: +SKIP
    1.6...
"""

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.analysis.metrics import improvement_percent, speedup
from repro.analysis.parallel import fork_map
from repro.core.breakdown import RuntimeBreakdown, compute_breakdown
from repro.core.compiled import CellDelta, CompiledGraph, compiled_for
from repro.core.compiled import simulate_many as _compiled_simulate_many
from repro.core.construction import build_graph
from repro.core.graph import DependencyGraph
from repro.core.simulate import SimulationResult, simulate
from repro.core.task import Task
from repro.framework.config import TrainingConfig
from repro.framework.engine import Engine
from repro.hw.topology import ClusterSpec
from repro.models.base import ModelSpec
from repro.models.registry import build_model
from repro.optimizations.base import (
    OptimizationModel,
    WhatIfContext,
    device_specs_from_trace,
)
from repro.tracing.trace import Trace


@dataclass(frozen=True)
class Prediction:
    """Daydream's answer to one what-if question."""

    optimization: str
    baseline_us: float
    predicted_us: float

    @property
    def speedup(self) -> float:
        """Predicted speedup over the baseline."""
        return speedup(self.baseline_us, self.predicted_us)

    @property
    def improvement_percent(self) -> float:
        """Predicted iteration-time improvement in percent."""
        return improvement_percent(self.baseline_us, self.predicted_us)

    def __str__(self) -> str:
        return (f"{self.optimization}: {self.baseline_us / 1000:.2f} ms -> "
                f"{self.predicted_us / 1000:.2f} ms "
                f"({self.improvement_percent:+.1f}%)")


class WhatIfSession:
    """A profiled baseline plus the machinery to explore optimizations.

    Construct via :meth:`profile` (runs the framework engine) or
    :meth:`from_trace` (replays a saved trace — e.g. one collected on a
    machine you no longer have access to).
    """

    def __init__(self, trace: Trace, config: Optional[TrainingConfig] = None,
                 copy_on_write: bool = True):
        self.trace = trace
        self.config = config or TrainingConfig()
        self.copy_on_write = copy_on_write
        self._graph: Optional[DependencyGraph] = None
        self._baseline: Optional[SimulationResult] = None
        # old task -> pristine clone the base graph swapped in after a
        # copy-on-write overlay materialized a write (see _on_task_swapped)
        self._task_forward: Dict[Task, Task] = {}

    # ------------------------------------------------------------ constructors

    @classmethod
    def profile(
        cls,
        model: str,
        batch_size: Optional[int] = None,
        config: Optional[TrainingConfig] = None,
    ) -> "WhatIfSession":
        """Profile one training iteration of a registry model."""
        spec = build_model(model, batch_size=batch_size)
        return cls.from_model(spec, config=config)

    @classmethod
    def from_model(
        cls, model: ModelSpec, config: Optional[TrainingConfig] = None
    ) -> "WhatIfSession":
        """Profile one training iteration of an explicit model spec."""
        config = config or TrainingConfig()
        trace = Engine(model=model, config=config).run_iteration()
        return cls(trace, config)

    @classmethod
    def from_trace(
        cls, trace: Trace, config: Optional[TrainingConfig] = None
    ) -> "WhatIfSession":
        """Wrap an existing trace (e.g. loaded from disk).

        Without an explicit ``config``, the GPU/CPU specs recorded in the
        trace metadata (when present) are adopted, so a trace profiled on a
        Quadro P4000 is not silently analyzed as an RTX 2080Ti.
        """
        if config is None:
            gpu, cpu = device_specs_from_trace(trace)
            kwargs = {}
            if gpu is not None:
                kwargs["gpu"] = gpu
            if cpu is not None:
                kwargs["cpu"] = cpu
            for key in ("framework", "precision", "optimizer"):
                value = trace.metadata.get(key)
                if isinstance(value, str):
                    kwargs[key] = value
            config = TrainingConfig(**kwargs)
        return cls(trace, config)

    # ----------------------------------------------------------------- queries

    @property
    def graph(self) -> DependencyGraph:
        """The baseline dependency graph (constructed lazily, cached)."""
        if self._graph is None:
            self._graph = build_graph(self.trace)
            # keep the cached baseline result keyed correctly when a
            # copy-on-write overlay materializes a mutated task and the base
            # graph swaps in a pristine clone
            self._graph.add_swap_listener(self._on_task_swapped)
        return self._graph

    def _on_task_swapped(self, old, new) -> None:
        self._task_forward[old] = new
        if self._baseline is not None:
            start = self._baseline.start_us.pop(old, None)
            if start is not None:
                self._baseline.start_us[new] = start

    def _current_task(self, task: Task) -> Task:
        """Follow copy-on-write swaps to the task's current incarnation.

        Baseline task references held across :meth:`predict`/:meth:`sweep`
        calls can go stale: when an overlay materializes a write, the base
        graph swaps in a pristine clone of the shared task.  The swap
        chain is followed so a :class:`~repro.core.compiled.CellDelta`
        built from ``session.graph.tasks()`` stays valid for the whole
        session lifetime.
        """
        forward = self._task_forward
        while task in forward:
            task = forward[task]
        return task

    def _working_graph(self) -> DependencyGraph:
        """A mutable graph for one what-if question.

        Copy-on-write sessions hand out a cheap overlay (shares unmutated
        tasks with the baseline); otherwise a full deep copy.
        """
        if self.copy_on_write:
            return self.graph.overlay()
        return self.graph.copy()

    @property
    def baseline_result(self) -> SimulationResult:
        """Simulation of the unmodified graph."""
        if self._baseline is None:
            self._baseline = simulate(self.graph)
        return self._baseline

    @property
    def baseline_us(self) -> float:
        """Simulated baseline iteration time."""
        return self.baseline_result.makespan_us

    def compiled_baseline(self) -> CompiledGraph:
        """The baseline graph lowered to struct-of-arrays form.

        Built once per graph generation and cached *on the graph* (see
        :func:`repro.core.compiled.compiled_for`), so every consumer —
        :meth:`simulate_many`, :meth:`sweep` cell batches, forked sweep
        workers that inherit this session — shares one lowering.  The
        existing copy-on-write write barrier invalidates it: any
        structural mutation or in-place task write bumps the graph
        generation and the next access relowers.
        """
        return compiled_for(self.graph)

    def breakdown(self) -> RuntimeBreakdown:
        """CPU-only / GPU-only / parallel decomposition of the baseline."""
        return compute_breakdown(self.graph, self.baseline_result)

    def context(self, cluster: Optional[ClusterSpec] = None) -> WhatIfContext:
        """Build the what-if context for this profile."""
        return WhatIfContext.from_trace(
            self.trace, gpu=self.config.gpu, cpu=self.config.cpu,
            cluster=cluster,
        )

    # ------------------------------------------------------------- prediction

    def predict(
        self,
        optimization: OptimizationModel,
        cluster: Optional[ClusterSpec] = None,
    ) -> Prediction:
        """Predict the effect of one optimization on iteration time.

        The baseline graph is viewed copy-on-write (or deep-copied for
        ``copy_on_write=False`` sessions), transformed by the optimization
        model, and re-simulated (with the model's custom scheduler when
        supplied).
        """
        working = self._working_graph()
        outcome = optimization.apply(working, self.context(cluster))
        result = simulate(outcome.graph, outcome.scheduler)
        return Prediction(
            optimization=optimization.name,
            baseline_us=self.baseline_us,
            predicted_us=result.makespan_us,
        )

    def predict_simulation(
        self,
        optimization: OptimizationModel,
        cluster: Optional[ClusterSpec] = None,
    ):
        """Like :meth:`predict` but returns ``(graph, SimulationResult)``
        for deeper inspection (per-task start times, breakdowns)."""
        working = self._working_graph()
        outcome = optimization.apply(working, self.context(cluster))
        result = simulate(outcome.graph, outcome.scheduler)
        return outcome.graph, result

    # ------------------------------------------------------------------ sweeps

    def simulate_many(
        self,
        cells: Sequence[CellDelta],
        scheduler=None,
    ) -> List[SimulationResult]:
        """Batched multi-simulate: many cells, one shared compiled baseline.

        Every :class:`~repro.core.compiled.CellDelta` is a sparse set of
        per-task duration/gap overrides onto *this* session's baseline.
        The baseline is lowered once (:meth:`compiled_baseline`) and each
        cell re-runs only the array engine over patched columns —
        O(N + |delta|) per cell instead of a full overlay + graph setup —
        bit-identical to transforming and simulating each cell's graph
        from scratch.

        ``scheduler`` must be heap-friendly (a
        :class:`~repro.core.simulate.SchedulePolicy` or ``None``).
        """
        if self._task_forward:
            cells = [
                CellDelta(
                    label=cell.label,
                    durations={self._current_task(t): v
                               for t, v in cell.durations.items()},
                    gaps={self._current_task(t): v
                          for t, v in cell.gaps.items()},
                ) for cell in cells
            ]
        return _compiled_simulate_many(self.compiled_baseline(), list(cells),
                                       scheduler)

    def sweep(
        self,
        questions: Iterable[Union[OptimizationModel, CellDelta,
                                  Tuple[OptimizationModel,
                                        Optional[ClusterSpec]]]],
        cluster: Optional[ClusterSpec] = None,
        processes: Optional[int] = None,
    ) -> List["Prediction"]:
        """Answer many what-if questions, fanned out across CPU cores.

        Args:
            questions: optimization models, ``(model, cluster)`` pairs for
                per-question clusters (Figure-8-style grids), or
                :class:`~repro.core.compiled.CellDelta` parameter cells.
                Cells are answered in-process through the batched
                :meth:`simulate_many` path — one shared compiled baseline,
                no per-cell fork or graph setup.
            cluster: default cluster for bare-model questions.
            processes: worker count (see
                :func:`repro.analysis.parallel.fork_map`); serial fallback
                preserves exactly the same results.

        Returns:
            One :class:`Prediction` per question, in question order.
        """
        entries: List[Tuple[str, object]] = []
        for question in questions:
            if isinstance(question, CellDelta):
                entries.append(("cell", question))
            elif isinstance(question, tuple):
                entries.append(("opt", question))
            else:
                entries.append(("opt", (question, cluster)))
        # materialize the shared state *before* forking so every worker
        # inherits the built graph and baseline instead of rebuilding them
        self.baseline_result
        cells = [q for kind, q in entries if kind == "cell"]
        cell_answers = iter(())
        if cells:
            baseline_us = self.baseline_us
            cell_answers = iter([
                Prediction(optimization=cell.label, baseline_us=baseline_us,
                           predicted_us=result.makespan_us)
                for cell, result in zip(cells, self.simulate_many(cells))
            ])
        pairs = [q for kind, q in entries if kind == "opt"]
        opt_answers = iter(fork_map(
            lambda pair: self.predict(pair[0], cluster=pair[1]),
            pairs,
            processes=processes,
        )) if pairs else iter(())
        return [next(cell_answers) if kind == "cell" else next(opt_answers)
                for kind, _ in entries]
