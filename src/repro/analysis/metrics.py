"""Prediction-quality metrics used throughout the evaluation."""

from repro.common.errors import ConfigError


def prediction_error(predicted_us: float, ground_truth_us: float) -> float:
    """Relative prediction error ``|pred - truth| / truth`` (Figures 5-10)."""
    if ground_truth_us <= 0:
        raise ConfigError("ground truth must be positive")
    return abs(predicted_us - ground_truth_us) / ground_truth_us


def speedup(baseline_us: float, optimized_us: float) -> float:
    """Baseline / optimized (how many times faster)."""
    if optimized_us <= 0:
        raise ConfigError("optimized time must be positive")
    return baseline_us / optimized_us


def improvement_percent(baseline_us: float, optimized_us: float) -> float:
    """Iteration-time improvement in percent (paper's headline metric)."""
    if baseline_us <= 0:
        raise ConfigError("baseline must be positive")
    return (baseline_us - optimized_us) / baseline_us * 100.0
