"""Per-layer time attribution — the 'framework built-in profiler' view.

Section 2.3 of the paper describes the layer-level profilers built into
PyTorch/MXNet/TensorFlow: intuitive for "where does time go?", but hiding
the CPU/GPU parallelism that Daydream needs.  We provide that view *on top
of* the kernel-level graph: per layer and phase, the CPU time, GPU time,
and kernel counts — useful both as a reporting tool and as the baseline the
paper argues is insufficient for what-if prediction.
"""

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.common.texttable import render_table
from repro.core.graph import DependencyGraph
from repro.core.simulate import SimulationResult


@dataclass
class LayerPhaseProfile:
    """Aggregated times of one (layer, phase) pair, in microseconds."""

    layer: str
    phase: str
    cpu_us: float = 0.0
    cpu_gap_us: float = 0.0
    gpu_us: float = 0.0
    kernels: int = 0

    @property
    def cpu_total_us(self) -> float:
        """CPU API time plus the hidden framework gaps."""
        return self.cpu_us + self.cpu_gap_us


@dataclass
class LayerProfile:
    """Per-layer profile of a simulated (or replayed) iteration."""

    entries: Dict[Tuple[str, str], LayerPhaseProfile] = field(
        default_factory=dict)

    def get(self, layer: str, phase: str) -> LayerPhaseProfile:
        """Profile of one (layer, phase); zeros if never executed."""
        return self.entries.get((layer, phase),
                                LayerPhaseProfile(layer=layer, phase=phase))

    def layers(self) -> List[str]:
        """Distinct layer names, in first-seen order."""
        seen: List[str] = []
        for layer, _ in self.entries:
            if layer not in seen:
                seen.append(layer)
        return seen

    def top_layers(self, n: int = 10, phase: Optional[str] = None
                   ) -> List[LayerPhaseProfile]:
        """The heaviest (layer, phase) entries by GPU time."""
        rows = [p for p in self.entries.values()
                if phase is None or p.phase == phase]
        rows.sort(key=lambda p: p.gpu_us, reverse=True)
        return rows[:n]

    def render(self, n: int = 15) -> str:
        """Render the heaviest entries as a table."""
        rows = []
        for p in self.top_layers(n):
            rows.append([p.layer, p.phase, p.gpu_us / 1000.0,
                         p.cpu_total_us / 1000.0, p.kernels])
        return render_table(
            ["layer", "phase", "gpu_ms", "cpu_ms", "kernels"], rows,
            title=f"Top {len(rows)} layer phases by GPU time")


def profile_layers(graph: DependencyGraph,
                   result: Optional[SimulationResult] = None) -> LayerProfile:
    """Aggregate the graph's mapped tasks into a per-layer profile.

    ``result`` is accepted for signature symmetry with other analyses but
    durations come from the tasks themselves (the simulation does not change
    them) — only inclusion requires the task to have been simulated when a
    result is given.
    """
    profile = LayerProfile()
    for task in graph.tasks():
        if task.layer is None or task.phase is None:
            continue
        if result is not None and task not in result.start_us:
            continue
        key = (task.layer, task.phase)
        entry = profile.entries.setdefault(
            key, LayerPhaseProfile(layer=task.layer, phase=task.phase))
        if task.is_gpu:
            entry.gpu_us += task.duration
            entry.kernels += 1
        elif task.is_cpu:
            entry.cpu_us += task.duration
            entry.cpu_gap_us += task.gap
    return profile
