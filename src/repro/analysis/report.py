"""Session reports: compare many what-if predictions in one table.

The workflow the paper advocates (Section 7.1) is 'profile once, evaluate
every candidate optimization, implement only the winners'.  This module
renders that decision table for a session, optionally with ground-truth
columns when the caller has them.
"""

from dataclasses import dataclass, field
from typing import List, Optional

from repro.analysis.session import Prediction, WhatIfSession
from repro.common.texttable import render_table
from repro.hw.topology import ClusterSpec
from repro.optimizations.base import OptimizationModel


@dataclass
class OptimizationReport:
    """A ranked summary of what-if predictions for one profile."""

    session: WhatIfSession
    predictions: List[Prediction] = field(default_factory=list)

    def evaluate(self, optimization: OptimizationModel,
                 cluster: Optional[ClusterSpec] = None) -> Prediction:
        """Predict one optimization and record it."""
        prediction = self.session.predict(optimization, cluster=cluster)
        self.predictions.append(prediction)
        return prediction

    def ranked(self) -> List[Prediction]:
        """Predictions sorted by improvement, best first."""
        return sorted(self.predictions,
                      key=lambda p: p.predicted_us)

    def best(self) -> Prediction:
        """The most beneficial optimization evaluated so far."""
        if not self.predictions:
            raise ValueError("no predictions recorded yet")
        return self.ranked()[0]

    def render(self) -> str:
        """Render the decision table."""
        model = self.session.trace.metadata.get("model", "?")
        rows = []
        for pred in self.ranked():
            rows.append([
                pred.optimization,
                pred.predicted_us / 1000.0,
                f"{pred.improvement_percent:+.1f}%",
                f"{pred.speedup:.2f}x",
            ])
        title = (f"What-if report for {model} "
                 f"(baseline {self.session.baseline_us / 1000:.1f} ms)")
        return render_table(
            ["optimization", "predicted_ms", "improvement", "speedup"],
            rows, title=title)


def quick_report(session: WhatIfSession,
                 optimizations: List[OptimizationModel],
                 cluster: Optional[ClusterSpec] = None) -> OptimizationReport:
    """Evaluate a list of optimizations and return the filled report."""
    report = OptimizationReport(session=session)
    for optimization in optimizations:
        report.evaluate(optimization, cluster=cluster)
    return report
