"""High-level what-if API, metrics, and reporting."""

from repro.analysis.metrics import improvement_percent, prediction_error, speedup
from repro.analysis.session import Prediction, WhatIfSession

__all__ = [
    "WhatIfSession",
    "Prediction",
    "prediction_error",
    "speedup",
    "improvement_percent",
]
