"""GPU memory-footprint estimation.

Answers the paper's introduction question "Does GPU memory capacity limit
the performance of my model?" and provides the *motivation* numbers for the
memory optimizations (vDNN, Gist): how much memory a training iteration
needs, split into weights, gradients, optimizer state, and stashed
activations — and how large a mini-batch fits on a given GPU.

Estimates follow the standard accounting:

* weights + gradients: 4 bytes per parameter each;
* optimizer state: Adam keeps two moments (8 bytes/param); SGD keeps one
  momentum buffer (4 bytes/param);
* activations: forward outputs stashed for the backward pass, estimated
  from each layer's kernel output traffic;
* workspace: cuDNN scratch, modeled as a fixed fraction of activations.
"""

from dataclasses import dataclass

from repro.common.errors import ConfigError
from repro.hw.device import GPUSpec
from repro.kernels.kernel import KernelKind
from repro.models.base import ModelSpec

FP32_BYTES = 4
_WORKSPACE_FRACTION = 0.10


@dataclass(frozen=True)
class MemoryFootprint:
    """Estimated GPU memory use of one training iteration, in bytes."""

    weights: float
    gradients: float
    optimizer_state: float
    activations: float
    workspace: float

    @property
    def total(self) -> float:
        """Total bytes required."""
        return (self.weights + self.gradients + self.optimizer_state
                + self.activations + self.workspace)

    def fits(self, gpu: GPUSpec, headroom: float = 0.92) -> bool:
        """Whether the footprint fits in the GPU's DRAM (with headroom for
        the CUDA context and allocator fragmentation)."""
        return self.total <= gpu.memory_gb * 1e9 * headroom

    def as_gb(self) -> dict:
        """Human-readable breakdown in GB."""
        return {
            "weights_gb": self.weights / 1e9,
            "gradients_gb": self.gradients / 1e9,
            "optimizer_state_gb": self.optimizer_state / 1e9,
            "activations_gb": self.activations / 1e9,
            "workspace_gb": self.workspace / 1e9,
            "total_gb": self.total / 1e9,
        }


def estimate_footprint(model: ModelSpec,
                       optimizer: str = "") -> MemoryFootprint:
    """Estimate the training memory footprint of a model spec."""
    optimizer = optimizer or model.default_optimizer
    if optimizer not in ("sgd", "adam", "fused_adam"):
        raise ConfigError(f"unknown optimizer {optimizer!r}")
    params = model.param_numel
    weights = params * FP32_BYTES
    gradients = params * FP32_BYTES
    per_param_state = 8 if optimizer in ("adam", "fused_adam") else 4
    optimizer_state = params * per_param_state

    activations = 0.0
    for layer in model.layers:
        for kernel in layer.forward_kernels:
            out_bytes = kernel.metadata.get("output_bytes")
            if out_bytes is not None:
                activations += float(out_bytes)
            elif kernel.kind in (KernelKind.ELEMENTWISE, KernelKind.BATCHNORM,
                                 KernelKind.LAYERNORM, KernelKind.SOFTMAX,
                                 KernelKind.DROPOUT, KernelKind.GEMM,
                                 KernelKind.POOLING, KernelKind.EMBEDDING):
                # outputs are roughly a third of a kernel's total traffic
                activations += kernel.bytes / 3.0

    workspace = activations * _WORKSPACE_FRACTION
    return MemoryFootprint(
        weights=weights,
        gradients=gradients,
        optimizer_state=optimizer_state,
        activations=activations,
        workspace=workspace,
    )


def max_batch_size(build, gpu: GPUSpec, start: int = 1,
                   limit: int = 4096) -> int:
    """Largest power-of-two batch size that fits on ``gpu``.

    Args:
        build: callable ``batch_size -> ModelSpec`` (e.g. a registry
            builder).
        gpu: target device.
        start: smallest batch size to try.
        limit: give up above this.

    Returns:
        The largest fitting power-of-two batch size, or 0 if even ``start``
        does not fit.
    """
    if start < 1:
        raise ConfigError("start batch size must be >= 1")
    best = 0
    batch = start
    while batch <= limit:
        model = build(batch)
        if estimate_footprint(model).fits(gpu):
            best = batch
            batch *= 2
        else:
            break
    return best
