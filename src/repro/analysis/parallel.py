"""Fork-based fan-out for what-if sweeps.

Figure-8-style grids evaluate dozens of independent (model, cluster,
bandwidth) cells; each cell re-runs the ground-truth engine and a
prediction, so the grid parallelizes embarrassingly.  :func:`fork_map` fans
a callable over items with ``multiprocessing`` *fork* workers:

* the callable and items are inherited by the children through fork,
  **never pickled** — closures over sessions, graphs, and optimization
  models all work;
* only integer indices go down to the workers and only the (picklable)
  results come back;
* result order matches item order, and because the substrate is
  deterministic (``repro.common.prng`` is keyed, not stateful) the results
  are identical to a serial run;
* platforms without fork (or ``processes=1``, or a nested call) fall back
  to a plain serial map.
"""

import multiprocessing
import os
from typing import Callable, Iterable, List, Optional, Sequence, TypeVar

T = TypeVar("T")
R = TypeVar("R")

# fork-inherited state for the worker processes (never pickled)
_WORK_FN: Optional[Callable] = None
_WORK_ITEMS: Optional[Sequence] = None


def _invoke(index: int):
    assert _WORK_FN is not None and _WORK_ITEMS is not None
    return _WORK_FN(_WORK_ITEMS[index])


def default_processes() -> int:
    """Worker count when the caller does not choose: one per CPU."""
    return os.cpu_count() or 1


def fork_map(
    fn: Callable[[T], R],
    items: Iterable[T],
    processes: Optional[int] = None,
) -> List[R]:
    """``[fn(x) for x in items]``, fanned out over fork workers.

    Args:
        fn: the per-item callable; may close over arbitrary unpicklable
            state (it is inherited via fork, not sent).  Results must be
            picklable.
        items: the work items.
        processes: worker count; ``None`` uses one per CPU, capped at the
            item count.  ``1`` (or a single item, or no fork support, or a
            nested ``fork_map``) runs serially in-process.
    """
    global _WORK_FN, _WORK_ITEMS
    work = list(items)
    n = len(work)
    if n == 0:
        return []
    if processes is None:
        processes = default_processes()
    processes = max(1, min(processes, n))
    if (
        processes == 1
        or _WORK_FN is not None  # nested call: stay serial in the worker
        or "fork" not in multiprocessing.get_all_start_methods()
    ):
        return [fn(x) for x in work]
    _WORK_FN, _WORK_ITEMS = fn, work
    try:
        ctx = multiprocessing.get_context("fork")
        with ctx.Pool(processes) as pool:
            return pool.map(_invoke, range(n))
    finally:
        _WORK_FN = _WORK_ITEMS = None
