"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``profile MODEL``      — profile one iteration, print summary (optionally
                           save the trace or a Chrome-trace JSON);
* ``whatif MODEL``       — what-if report; ``--opt`` picks optimizations
                           from the registry (repeatable), default is every
                           applicable one;
* ``run SCENARIO.json``  — execute a declared scenario or scenario grid;
* ``sweep GRID.json``    — batch-execute a grid over the multiprocess
                           executor and a persistent result store
                           (``--jobs``, ``--store``, ``--resume``,
                           ``--force``, ``--start-method``, ``--remote``
                           for a read-through shared tier with
                           ``--remote-timeout``/``--remote-backoff``
                           transport knobs, ``--max-cell-retries`` for
                           worker-crash recovery);
* ``experiment NAME``    — regenerate one paper table/figure
                           (fig1, table1, fig5, fig6, fig7, fig8, fig9,
                           fig9b, fig10-resnet50, fig10-vgg19, sec52,
                           sec64, sec75); ``--store``/``--jobs``/
                           ``--force`` cache engine ground truth in a
                           sweep store;
* ``store ACTION DIR``   — manage a sweep store (``stats``, ``gc``,
                           ``prune``, ``verify``, and the shared-tier
                           actions ``serve``, ``push``, ``pull``);
* ``serve-predict``      — run the persistent prediction daemon: an LRU
                           pool of warm sessions answering scenario-JSON
                           ``POST /predict`` queries over HTTP, memoized
                           on a sweep store (``--workers``,
                           ``--max-sessions``, ``--auth-token``,
                           ``--store``/``--remote`` tiers);
* ``models``             — list available models;
* ``optimizations``      — list the optimization registry.
"""

import argparse
import inspect
import json
import sys

from repro.analysis.report import quick_report
from repro.analysis.session import WhatIfSession
from repro.common.errors import DaydreamError
from repro.models.registry import available_models
from repro.scenarios import (
    DEFAULT_MAX_CELL_RETRIES,
    DEFAULT_MAX_SESSIONS,
    DEFAULT_WORKERS,
    START_METHODS,
    ClusterShape,
    HTTPBackend,
    OptimizationPipeline,
    PredictServer,
    PredictService,
    ScenarioRunner,
    StoreServer,
    SweepStore,
    default_registry,
    store_salt,
    sync_retry_policy,
)
from repro.tracing.export import trace_to_chrome
from repro.tracing.trace import render_timeline


def cmd_models(_args) -> int:
    for name in available_models():
        print(name)
    return 0


def cmd_optimizations(_args) -> int:
    registry = default_registry()
    for spec in registry.specs():
        print(f"{spec.key:24s} {spec.summary}")
        for param in spec.params:
            print(f"{'':24s}   --opt '{spec.key}={{\"{param.name}\": ...}}'"
                  f"  ({param.kind}, default {param.default!r}: {param.doc})")
    return 0


def cmd_profile(args) -> int:
    session = WhatIfSession.profile(args.model, batch_size=args.batch_size)
    trace = session.trace
    print(f"{args.model}: {trace.duration_us / 1000:.2f} ms/iteration, "
          f"{len(trace)} events on {len(trace.threads())} threads")
    breakdown = session.breakdown()
    print(f"  cpu-only {breakdown.cpu_only_us / 1000:.1f} ms | "
          f"gpu-only {breakdown.gpu_only_us / 1000:.1f} ms | "
          f"parallel {breakdown.parallel_us / 1000:.1f} ms")
    print(render_timeline(trace, width=90))
    if args.save:
        trace.save(args.save)
        print(f"trace saved to {args.save}")
    if args.chrome:
        with open(args.chrome, "w") as f:
            f.write(trace_to_chrome(trace))
        print(f"chrome trace saved to {args.chrome} "
              "(load in chrome://tracing)")
    return 0


def _parse_opt_flag(value: str):
    """Parse one ``--opt`` value: a registry key or ``key={json params}``."""
    if "=" not in value:
        return value
    key, _, params = value.partition("=")
    try:
        parsed = json.loads(params)
    except json.JSONDecodeError as exc:
        raise DaydreamError(f"--opt {key}: bad params JSON: {exc}") from None
    if not isinstance(parsed, dict):
        raise DaydreamError(f"--opt {key}: params must be a JSON object")
    return {"name": key, "params": parsed}


def _parse_cluster_flag(shape: str, bandwidth: float) -> ClusterShape:
    """Parse ``--cluster MxG`` plus ``--bandwidth`` into a ClusterShape."""
    try:
        machines, _, gpus = shape.partition("x")
        return ClusterShape(machines=int(machines),
                            gpus_per_machine=int(gpus or "1"),
                            bandwidth_gbps=bandwidth)
    except ValueError:
        raise DaydreamError(
            f"--cluster wants the paper's MxG notation (e.g. 4x2), "
            f"got {shape!r}") from None


def cmd_whatif(args) -> int:
    registry = default_registry()
    session = WhatIfSession.profile(args.model, batch_size=args.batch_size)
    cluster = None
    if args.cluster:
        shape = _parse_cluster_flag(args.cluster, args.bandwidth)
        cluster = shape.build(default_gpu=session.config.gpu)
    if args.opt:
        # --opt flags compose one validated stack (a single flag is a
        # one-member stack: same path, same prerequisite diagnostics)
        entries = [_parse_opt_flag(v) for v in args.opt]
        optimizations = [OptimizationPipeline(entries, registry=registry)]
    else:
        optimizations = registry.whatif_defaults(session.trace.metadata)
    report = quick_report(session, optimizations, cluster=cluster)
    print(report.render())
    return 0


def cmd_run(args) -> int:
    runner = ScenarioRunner()
    outcomes = runner.run_file(args.scenario, processes=args.processes)
    result = runner.to_result(outcomes, experiment="scenario",
                              title=f"Scenarios from {args.scenario}")
    print(result.render())
    return 0


def _remote_tier(url, timeout_s: float, backoff_s: float,
                 auth_token=None):
    """Build the HTTP remote tier carrying the CLI's transport knobs.

    ``--remote-timeout`` caps each request; ``--remote-backoff`` seeds
    the escalating down-window an unreachable remote is parked behind;
    ``--auth-token`` is the Bearer token an admin-mode server requires
    on PUT/DELETE.
    """
    if url is None:
        return None
    return HTTPBackend(url, timeout_s=timeout_s, backoff_s=backoff_s,
                       auth_token=auth_token)


def cmd_sweep(args) -> int:
    import time

    if args.remote and not args.store:
        raise DaydreamError("--remote needs --store: the local store is "
                            "the write-back cache the remote tier reads "
                            "through into")
    remote = _remote_tier(args.remote, args.remote_timeout,
                          args.remote_backoff, args.auth_token)
    store = SweepStore(args.store, remote=remote) if args.store \
        else None
    # --no-resume and --force both mean "do not trust prior entries";
    # either way fresh rows are written back to the store
    force = args.force or not args.resume
    runner = ScenarioRunner()

    def progress(done, total, cell):
        tag = "cached" if cell.cached else "computed"
        print(f"  [{done}/{total}] {tag} {cell.scenario.label()}",
              file=sys.stderr)

    from repro.analysis.parallel import default_processes
    jobs = args.jobs or default_processes()
    t0 = time.perf_counter()
    outcomes = runner.run_file(args.scenario, parallel=jobs,
                               store=store, force=force, progress=progress,
                               start_method=args.start_method,
                               max_cell_retries=args.max_cell_retries)
    elapsed = time.perf_counter() - t0
    result = runner.to_result(outcomes, experiment="sweep",
                              title=f"Sweep of {args.scenario}")
    print(result.render())
    hits = sum(1 for o in outcomes if o.cached)
    summary = (f"{len(outcomes)} cell(s) in {elapsed:.2f}s — "
               f"{hits} from store, {len(outcomes) - hits} computed")
    if store is not None:
        summary += f" (store: {store.root}, {len(store)} entries"
        if args.remote:
            summary += f", {store.stats.remote_hits} via remote"
        summary += ")"
    print(summary, file=sys.stderr)
    return 0


def cmd_experiment(args) -> int:
    from functools import partial

    from repro.experiments import (
        fig1_timeline, fig5_amp, fig6_breakdown, fig7_fusedadam,
        fig8_distributed, fig9_nccl, fig10_p3, sec52_modeling,
        sec64_batchnorm, sec75_concurrency, table1_catalog,
    )
    runners = {
        "fig1": fig1_timeline.run,
        "table1": table1_catalog.run,
        "fig5": fig5_amp.run,
        "fig6": fig6_breakdown.run,
        "fig7": fig7_fusedadam.run,
        "fig8": fig8_distributed.run,
        "fig9": fig9_nccl.run,
        "fig9b": fig9_nccl.run_sync_impact,
        "fig10-resnet50": partial(fig10_p3.run, "resnet50"),
        "fig10-vgg19": partial(fig10_p3.run, "vgg19"),
        "sec52": sec52_modeling.run,
        "sec64": sec64_batchnorm.run,
        "sec75": sec75_concurrency.run,
    }
    if args.name not in runners:
        print(f"unknown experiment {args.name!r}; "
              f"choose from {sorted(runners)}", file=sys.stderr)
        return 2
    runner = runners[args.name]
    if args.remote and not args.store:
        raise DaydreamError("--remote needs --store: the local store is "
                            "the write-back cache the remote tier reads "
                            "through into")
    # hand each experiment only the flags its runner understands, and say
    # so when a requested flag would be silently ignored
    offered = {
        "store": (SweepStore(args.store,
                             remote=_remote_tier(args.remote,
                                                 args.remote_timeout,
                                                 args.remote_backoff,
                                                 args.auth_token))
                  if args.store else None),
        "jobs": args.jobs,
        "force": args.force or None,
        "models": ([m.strip() for m in args.models.split(",") if m.strip()]
                   if args.models else None),
    }
    params = inspect.signature(runner).parameters
    kwargs = {}
    for name, value in offered.items():
        if value is None:
            continue
        if name in params:
            kwargs[name] = value
        else:
            print(f"note: experiment {args.name!r} does not take "
                  f"--{name.replace('_', '-')}; ignoring it",
                  file=sys.stderr)
    print(runner(**kwargs).render())
    if "store" in kwargs:
        store = kwargs["store"]
        print(f"store: {store.root} — {len(store)} entries, "
              f"{store.stats.hits} hit(s), {store.stats.writes} write(s) "
              "this run", file=sys.stderr)
    return 0


def cmd_store(args) -> int:
    store = SweepStore(args.dir)
    if args.action == "stats":
        verify = store.verify()
        payload = {
            "root": store.root,
            "entries": len(store),
            "bytes": store.total_bytes(),
            "salt": store_salt(store.registry),
            "live": len(verify.live),
            "stale": len(verify.stale),
            "corrupt": len(verify.corrupt),
        }
        if args.remote:
            # the hub's own GET /stats probe rides along (loud: a dead
            # hub fails the command rather than printing silence)
            payload["remote"] = HTTPBackend(args.remote).stats()
        print(json.dumps(payload, indent=2))
        return 0
    if args.action == "gc":
        report = store.gc(max_bytes=args.max_bytes)
        print(json.dumps(report.as_dict(), indent=2))
        return 0
    if args.action == "prune":
        report = store.prune(keep_salt=args.salt)
        print(json.dumps(report.as_dict(), indent=2))
        return 0
    if args.action == "verify":
        report = store.verify()
        print(json.dumps(report.as_dict(), indent=2))
        if not report.ok:
            print("store has untrustworthy entries; run "
                  "'repro store gc' to remove them", file=sys.stderr)
            return 1
        return 0
    if args.action == "serve":
        server = StoreServer(store.root, host=args.host, port=args.port,
                             read_only=args.read_only,
                             auth_token=args.auth_token)
        mode = "read-only" if args.read_only else (
            "admin-token" if args.auth_token else "read-write")
        span = (f"for {args.duration:g}s" if args.duration is not None
                else "until interrupted")
        print(f"serving {store.root} at {server.url}/ ({mode}) {span}",
              file=sys.stderr)
        try:
            server.serve(duration_s=args.duration)
        except KeyboardInterrupt:
            pass
        return 0
    if args.action in ("push", "pull"):
        remote = _remote_tier(args.remote, args.remote_timeout,
                              args.remote_backoff, args.auth_token)
        retry = sync_retry_policy(retries=args.retries)
        if args.action == "push":
            report = store.push(remote, force=args.force, retry=retry,
                                since=args.since)
        else:
            report = store.pull(remote, retry=retry, since=args.since)
        print(json.dumps(report.as_dict(), indent=2))
        return 0
    raise AssertionError(f"unhandled store action {args.action!r}")


def cmd_serve_predict(args) -> int:
    if args.remote and not args.store:
        raise DaydreamError("--remote needs --store: the local store is "
                            "the write-back cache the remote tier reads "
                            "through into")
    remote = _remote_tier(args.remote, args.remote_timeout,
                          args.remote_backoff)
    store = SweepStore(args.store, remote=remote) if args.store else None
    service = PredictService(store=store, max_sessions=args.max_sessions,
                             workers=args.workers)
    server = PredictServer(service, host=args.host, port=args.port,
                           auth_token=args.auth_token)
    memo = f"memoized on {store.root}" if store is not None else "unmemoized"
    if args.remote:
        memo += f" + remote {args.remote}"
    gate = "token-gated" if args.auth_token else "open"
    span = (f"for {args.duration:g}s" if args.duration is not None
            else "until interrupted")
    print(f"predicting at {server.url}/predict ({gate}, {memo}, "
          f"{args.max_sessions} warm sessions, {args.workers} workers) "
          f"{span}", file=sys.stderr)
    try:
        server.serve(duration_s=args.duration)
    except KeyboardInterrupt:
        pass
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Daydream reproduction: what-if analysis for DNN training",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("models", help="list available models")
    sub.add_parser("optimizations",
                   help="list the optimization registry (keys + parameters)")

    profile = sub.add_parser("profile", help="profile one training iteration")
    profile.add_argument("model")
    profile.add_argument("--batch-size", type=int, default=None)
    profile.add_argument("--save", help="write the trace JSON here")
    profile.add_argument("--chrome", help="write a chrome://tracing JSON here")

    whatif = sub.add_parser("whatif", help="what-if report from the registry")
    whatif.add_argument("model")
    whatif.add_argument("--batch-size", type=int, default=None)
    whatif.add_argument(
        "--opt", action="append", default=None, metavar="NAME[=PARAMS]",
        help="registry optimization to evaluate; PARAMS is a JSON object, "
             "e.g. --opt 'gist={\"lossy\": true}'.  Repeated flags compose "
             "one ordered stack.  Default: every applicable registered "
             "optimization, compared individually")
    whatif.add_argument("--cluster", default=None, metavar="MxG",
                        help="target cluster for communication what-ifs, "
                             "e.g. 4x2")
    whatif.add_argument("--bandwidth", type=float, default=10.0,
                        help="network bandwidth in Gbps (with --cluster)")

    run = sub.add_parser("run", help="execute a scenario JSON file "
                                     "(single scenario or grid)")
    run.add_argument("scenario", help="path to the scenario/grid JSON")
    run.add_argument("--processes", type=int, default=None,
                     help="worker processes for grid fan-out")

    sweep = sub.add_parser(
        "sweep", help="batch-execute a scenario grid over the process-pool "
                      "executor and a persistent result store")
    sweep.add_argument("scenario", help="path to the scenario/grid JSON")
    sweep.add_argument("--jobs", type=int, default=None, metavar="N",
                       help="worker processes (default: one per CPU)")
    sweep.add_argument("--store", default=None, metavar="DIR",
                       help="persistent result store directory; cells "
                            "already stored are served without simulation")
    sweep.add_argument("--resume", action=argparse.BooleanOptionalAction,
                       default=True,
                       help="reuse results already in the store (default; "
                            "--no-resume recomputes but still writes back)")
    sweep.add_argument("--force", action="store_true",
                       help="recompute every cell, overwriting store entries")
    sweep.add_argument("--start-method", default=None,
                       choices=list(START_METHODS),
                       help="worker start method: fork inherits runtime "
                            "state, spawn rebuilds it from a pickled "
                            "manifest (macOS/Windows), serial disables "
                            "the pool; default picks automatically")
    sweep.add_argument("--remote", default=None, metavar="URL",
                       help="read-through remote store tier (a 'repro "
                            "store serve' URL); local misses consult it, "
                            "verified entries cache locally, and an "
                            "unreachable or corrupt remote is just a "
                            "miss.  Needs --store")
    sweep.add_argument("--max-cell-retries", type=int,
                       default=DEFAULT_MAX_CELL_RETRIES, metavar="N",
                       help="requeues one cell gets after its chunk "
                            "crashed a worker before it is quarantined "
                            "and re-run serially in the parent "
                            f"(default {DEFAULT_MAX_CELL_RETRIES})")

    experiment = sub.add_parser("experiment",
                                help="regenerate a paper table/figure")
    experiment.add_argument("name")
    experiment.add_argument("--store", nargs="?", const=".sweep-store",
                            default=None, metavar="DIR",
                            help="cache engine ground truth (and, where "
                                 "supported, predictions) in this sweep "
                                 "store; bare --store uses ./.sweep-store")
    experiment.add_argument("--jobs", type=int, default=None, metavar="N",
                            help="fan measurements/predictions across N "
                                 "processes (experiments that support it)")
    experiment.add_argument("--force", action="store_true",
                            help="recompute cached measurements, "
                                 "overwriting store entries")
    experiment.add_argument("--models", default=None, metavar="A,B",
                            help="comma-separated model subset "
                                 "(experiments that take a model list)")
    experiment.add_argument("--remote", default=None, metavar="URL",
                            help="read-through remote tier for the sweep "
                                 "store: cached ground truth is served "
                                 "from the shared server when present "
                                 "(needs --store)")

    store = sub.add_parser(
        "store", help="manage a persistent sweep-result store")
    store_sub = store.add_subparsers(dest="action", required=True)
    stats = store_sub.add_parser(
        "stats", help="entry counts, byte totals and the active salt")
    stats.add_argument("--remote", default=None, metavar="URL",
                       help="also probe a store server's GET /stats "
                            "(entries, bytes, live leases, uptime)")
    gc = store_sub.add_parser(
        "gc", help="delete corrupt/stale entries, then evict "
                   "least-recently-served entries to a byte budget")
    gc.add_argument("--max-bytes", type=int, default=None, metavar="N",
                    help="evict LRU entries until the store fits in N "
                         "bytes (default: only remove dead entries)")
    prune = store_sub.add_parser(
        "prune", help="drop every entry outside one salt generation")
    prune.add_argument("--salt", default=None, metavar="SALT",
                       help="generation to keep (default: the current "
                            "registry salt)")
    verify = store_sub.add_parser(
        "verify", help="audit every entry without mutating anything "
                       "(exit 1 if any entry is stale or corrupt)")
    serve = store_sub.add_parser(
        "serve", help="publish this store over HTTP so other hosts can "
                      "read through it (--remote) and push/pull")
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default 127.0.0.1; use "
                            "0.0.0.0 to serve other hosts)")
    serve.add_argument("--port", type=int, default=8231, metavar="N",
                       help="bind port (default 8231; 0 picks a free one, "
                            "printed on stderr)")
    serve.add_argument("--duration", type=float, default=None, metavar="S",
                       help="serve for S seconds then exit 0 (default: "
                            "serve until interrupted)")
    serve.add_argument("--auth-token", default=None, metavar="TOKEN",
                       help="admin mode: require this Bearer token "
                            "(constant-time compared) on PUT/DELETE; "
                            "reads and lease claims stay open")
    serve.add_argument("--read-only", action="store_true",
                       help="refuse PUT/DELETE (clients can read through "
                            "and pull, but not push)")
    push = store_sub.add_parser(
        "push", help="publish every live local entry to a remote store "
                     "server (only entries that verify under the current "
                     "salt travel)")
    push.add_argument("--force", action="store_true",
                      help="re-upload entries the server already lists "
                           "(repairs a corrupt remote copy left by an "
                           "interrupted transfer)")
    pull = store_sub.add_parser(
        "pull", help="replicate every trustworthy remote entry into this "
                     "store (corrupt or version-skewed entries are "
                     "rejected, never written)")
    for action in (push, pull):
        action.add_argument("--remote", required=True, metavar="URL",
                            help="base URL of a 'repro store serve' server")
        action.add_argument("--retries", type=int, default=2, metavar="N",
                            help="extra attempts per transfer operation "
                                 "after the first fails transiently "
                                 "(default 2); exhausting them fails "
                                 "loudly with the partial progress so far")
        action.add_argument("--since", type=float, default=None,
                            metavar="CLOCK",
                            help="override the journaled delta-sync clock "
                                 "(seconds since the epoch, as reported "
                                 "by the previous sync); 0 relists the "
                                 "remote in full — the repair path when "
                                 "hub state changed behind the journal's "
                                 "back")
    serve_predict = sub.add_parser(
        "serve-predict",
        help="run the persistent prediction daemon: warm what-if sessions "
             "answering scenario-JSON queries over HTTP, memoized on a "
             "sweep store")
    serve_predict.add_argument("--host", default="127.0.0.1",
                               help="bind address (default 127.0.0.1; use "
                                    "0.0.0.0 to serve other hosts)")
    serve_predict.add_argument("--port", type=int, default=8232, metavar="N",
                               help="bind port (default 8232; 0 picks a "
                                    "free one, printed on stderr)")
    serve_predict.add_argument("--workers", type=int,
                               default=DEFAULT_WORKERS, metavar="N",
                               help="concurrent simulations served at once "
                                    f"(default {DEFAULT_WORKERS}); extra "
                                    "requests queue")
    serve_predict.add_argument("--max-sessions", type=int,
                               default=DEFAULT_MAX_SESSIONS, metavar="N",
                               help="warm per-workload sessions kept in "
                                    "the LRU pool (default "
                                    f"{DEFAULT_MAX_SESSIONS})")
    serve_predict.add_argument("--auth-token", default=None, metavar="TOKEN",
                               help="require this Bearer token "
                                    "(constant-time compared) on POST "
                                    "/predict and /predict/batch; the GET "
                                    "/healthz and /stats probes stay open")
    serve_predict.add_argument("--store", default=None, metavar="DIR",
                               help="memoize answers in this sweep store "
                                    "(same canonical keys and salt as "
                                    "'repro sweep'); repeat queries cost "
                                    "one store read")
    serve_predict.add_argument("--remote", default=None, metavar="URL",
                               help="read-through remote store tier (a "
                                    "'repro store serve' URL) behind the "
                                    "local memo.  Needs --store")
    serve_predict.add_argument("--duration", type=float, default=None,
                               metavar="S",
                               help="serve for S seconds then exit 0 "
                                    "(default: serve until interrupted)")
    # every surface that opens an HTTP remote tier exposes its transport
    # knobs; the defaults match HTTPBackend's
    for surface in (sweep, experiment, push, pull, serve_predict):
        surface.add_argument("--remote-timeout", type=float, default=5.0,
                             metavar="S",
                             help="per-request timeout for the remote "
                                  "store tier, in seconds (default 5)")
        surface.add_argument("--remote-backoff", type=float, default=30.0,
                             metavar="S",
                             help="base down-window after the remote tier "
                                  "fails at the transport level; repeated "
                                  "failures escalate it exponentially and "
                                  "a success resets it (default 30)")
    # serve-predict's --auth-token (above) gates its own POST endpoints,
    # so only these surfaces take the remote-admin meaning of the flag
    for surface in (sweep, experiment, push, pull):
        surface.add_argument("--auth-token", default=None, metavar="TOKEN",
                             help="Bearer token for an admin-mode remote "
                                  "(required there for PUT/DELETE; "
                                  "reads work without it)")
    for action in (stats, gc, prune, verify, serve, push, pull):
        action.add_argument("dir", help="sweep-store directory")
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "models": cmd_models,
        "optimizations": cmd_optimizations,
        "profile": cmd_profile,
        "whatif": cmd_whatif,
        "run": cmd_run,
        "sweep": cmd_sweep,
        "experiment": cmd_experiment,
        "store": cmd_store,
        "serve-predict": cmd_serve_predict,
    }
    try:
        return handlers[args.command](args)
    except DaydreamError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
