"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``profile MODEL``      — profile one iteration, print summary (optionally
                           save the trace or a Chrome-trace JSON);
* ``whatif MODEL``       — run the standard what-if report for a model;
* ``experiment NAME``    — regenerate one paper table/figure
                           (fig1, table1, fig5, fig6, fig7, fig8, fig9,
                           fig9b, fig10-resnet50, fig10-vgg19, sec52,
                           sec64, sec75);
* ``models``             — list available models.
"""

import argparse
import sys

from repro.analysis.report import quick_report
from repro.analysis.session import WhatIfSession
from repro.models.registry import available_models
from repro.optimizations import (
    AutomaticMixedPrecision,
    FusedAdam,
    Gist,
    VirtualizedDNN,
)
from repro.tracing.export import trace_to_chrome
from repro.tracing.trace import render_timeline


def cmd_models(_args) -> int:
    for name in available_models():
        print(name)
    return 0


def cmd_profile(args) -> int:
    session = WhatIfSession.profile(args.model, batch_size=args.batch_size)
    trace = session.trace
    print(f"{args.model}: {trace.duration_us / 1000:.2f} ms/iteration, "
          f"{len(trace)} events on {len(trace.threads())} threads")
    breakdown = session.breakdown()
    print(f"  cpu-only {breakdown.cpu_only_us / 1000:.1f} ms | "
          f"gpu-only {breakdown.gpu_only_us / 1000:.1f} ms | "
          f"parallel {breakdown.parallel_us / 1000:.1f} ms")
    print(render_timeline(trace, width=90))
    if args.save:
        trace.save(args.save)
        print(f"trace saved to {args.save}")
    if args.chrome:
        with open(args.chrome, "w") as f:
            f.write(trace_to_chrome(trace))
        print(f"chrome trace saved to {args.chrome} "
              "(load in chrome://tracing)")
    return 0


def cmd_whatif(args) -> int:
    session = WhatIfSession.profile(args.model, batch_size=args.batch_size)
    optimizations = [AutomaticMixedPrecision(), VirtualizedDNN(), Gist()]
    if session.trace.metadata.get("optimizer") == "adam":
        optimizations.append(FusedAdam())
    report = quick_report(session, optimizations)
    print(report.render())
    return 0


def cmd_experiment(args) -> int:
    from repro.experiments import (
        fig1_timeline, fig5_amp, fig6_breakdown, fig7_fusedadam,
        fig8_distributed, fig9_nccl, fig10_p3, sec52_modeling,
        sec64_batchnorm, sec75_concurrency, table1_catalog,
    )
    runners = {
        "fig1": fig1_timeline.run,
        "table1": table1_catalog.run,
        "fig5": fig5_amp.run,
        "fig6": fig6_breakdown.run,
        "fig7": fig7_fusedadam.run,
        "fig8": fig8_distributed.run,
        "fig9": fig9_nccl.run,
        "fig9b": fig9_nccl.run_sync_impact,
        "fig10-resnet50": lambda: fig10_p3.run("resnet50"),
        "fig10-vgg19": lambda: fig10_p3.run("vgg19"),
        "sec52": sec52_modeling.run,
        "sec64": sec64_batchnorm.run,
        "sec75": sec75_concurrency.run,
    }
    if args.name not in runners:
        print(f"unknown experiment {args.name!r}; "
              f"choose from {sorted(runners)}", file=sys.stderr)
        return 2
    print(runners[args.name]().render())
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Daydream reproduction: what-if analysis for DNN training",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("models", help="list available models")

    profile = sub.add_parser("profile", help="profile one training iteration")
    profile.add_argument("model")
    profile.add_argument("--batch-size", type=int, default=None)
    profile.add_argument("--save", help="write the trace JSON here")
    profile.add_argument("--chrome", help="write a chrome://tracing JSON here")

    whatif = sub.add_parser("whatif", help="standard what-if report")
    whatif.add_argument("model")
    whatif.add_argument("--batch-size", type=int, default=None)

    experiment = sub.add_parser("experiment",
                                help="regenerate a paper table/figure")
    experiment.add_argument("name")
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "models": cmd_models,
        "profile": cmd_profile,
        "whatif": cmd_whatif,
        "experiment": cmd_experiment,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
