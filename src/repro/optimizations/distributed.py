"""Distributed-training prediction from a single-GPU profile — Algorithm 6.

PyTorch DDP groups gradients into buckets and all-reduces each bucket as
soon as its last gradient is ready (wait-free backpropagation).  Daydream
predicts multi-worker iteration time from a *single-GPU* trace by:

1. reading the layer->bucket mapping recorded by the framework
   instrumentation (trace metadata);
2. inserting one all-reduce task per bucket on a communication channel,
   sized with the theoretical ring formula for the target cluster;
3. adding dependencies: the trigger layer's last backward GPU task ->
   all-reduce -> the earliest weight-update task (DDP's optimizer step
   waits for every bucket).

This is the paper's headline capability: exploring worker counts and
network bandwidths (Figure 8) without owning the cluster.
"""

from typing import Dict, Optional

from repro.common.errors import ConfigError
from repro.core import transform
from repro.core.graph import DependencyGraph
from repro.core.task import Task
from repro.framework.bucketing import Bucket
from repro.hw.network import ring_allreduce_time_us
from repro.optimizations.base import OptimizationModel, WhatIfContext, WhatIfOutcome
from repro.tracing.records import comm_channel


class DistributedTraining(OptimizationModel):
    """What if this model trained data-parallel on a given cluster?"""

    name = "distributed_training"

    def apply(self, graph: DependencyGraph, context: WhatIfContext) -> WhatIfOutcome:
        cluster = context.cluster
        if cluster is None:
            raise ConfigError("DistributedTraining needs context.cluster")
        if not cluster.is_distributed:
            return WhatIfOutcome(graph=graph)  # 1x1: nothing to insert

        buckets = [Bucket.from_dict(b)
                   for b in context.trace_metadata.get("buckets", [])]
        if not buckets:
            raise ConfigError(
                "trace metadata has no gradient buckets; was the profile "
                "collected with framework instrumentation enabled?"
            )

        link = cluster.ring_link_bytes_per_us()
        latency = cluster.ring_latency_us()
        trigger_task = _last_backward_gpu_task_by_layer(graph)
        wu_gate = _earliest_weight_update_task(graph)
        channel = comm_channel(0)

        previous: Optional[Task] = None
        for bucket in buckets:
            duration = ring_allreduce_time_us(
                bucket.size_bytes, cluster.n_workers, link, latency)
            depends = []
            trigger = trigger_task.get(bucket.trigger_layer)
            if trigger is not None:
                depends.append(trigger)
            task = transform.insert_comm_task(
                graph, channel, "ncclAllReduceRingLLKernel_sum_f32",
                duration_us=duration,
                after=previous,
                depends_on=depends,
                successors=[wu_gate] if wu_gate is not None else [],
                size_bytes=bucket.size_bytes,
            )
            task.metadata["bucket"] = bucket.index
            previous = task
        return WhatIfOutcome(graph=graph)


def _last_backward_gpu_task_by_layer(graph: DependencyGraph) -> Dict[str, Task]:
    """For each layer: its last backward GPU task in stream order."""
    out: Dict[str, Task] = {}
    for thread in graph.threads():
        if not thread.is_gpu:
            continue
        for task in graph.iter_tasks_on(thread):
            if task.layer is not None and task.phase == "backward":
                out[task.layer] = task
    return out


def _earliest_weight_update_task(graph: DependencyGraph) -> Optional[Task]:
    """The first weight-update task in CPU program order (paper's ``WU``)."""
    for thread in graph.threads():
        if not thread.is_cpu:
            continue
        for task in graph.iter_tasks_on(thread):
            if task.phase == "weight_update":
                return task
    return None
