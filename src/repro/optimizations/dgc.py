"""Deep Gradient Compression — paper Algorithm 12 (Appendix A.10).

DGC (Lin et al.) sends only the largest gradients (0.1-1% of the payload)
plus momentum correction, slashing communication at the cost of extra
compression/decompression GPU kernels.

Model, applied after :class:`~repro.optimizations.distributed.DistributedTraining`:

* scale each all-reduce duration by the compression ratio;
* insert a compression GPU kernel before, and a decompression kernel after,
  each all-reduce; their durations are estimated from the gradient size at
  element-wise-kernel throughput (top-k selection + sparse encode).
"""

from repro.common.errors import ConfigError
from repro.core.graph import DependencyGraph
from repro.core.task import Task, TaskKind
from repro.optimizations.base import OptimizationModel, WhatIfContext, WhatIfOutcome
from repro.tracing.records import gpu_stream

#: stream for the compression kernels (they run on the compute device)
COMPRESS_STREAM = gpu_stream(15)


class DeepGradientCompression(OptimizationModel):
    """What if gradients were compressed before transfer (DGC)?

    Args:
        compression_ratio: transferred fraction of the payload (0.01 = the
            paper's ~100x regime once headers are counted).
        kernel_passes: how many element-wise passes over the gradient the
            compression costs (top-k sampling + masking).
    """

    name = "dgc"

    def __init__(self, compression_ratio: float = 0.01,
                 kernel_passes: float = 3.0) -> None:
        if not 0 < compression_ratio <= 1:
            raise ConfigError("compression_ratio must be in (0, 1]")
        self.compression_ratio = compression_ratio
        self.kernel_passes = kernel_passes

    def apply(self, graph: DependencyGraph, context: WhatIfContext) -> WhatIfOutcome:
        allreduce_tasks = [t for t in graph.tasks()
                           if t.is_comm and "AllReduce" in t.name]
        if not allreduce_tasks:
            raise ConfigError("no all-reduce tasks; apply DistributedTraining first")
        elementwise_rate = context.gpu.achieved_bytes_per_us()

        for reduce_task in allreduce_tasks:
            size = reduce_task.size_bytes
            kernel_us = (size * self.kernel_passes / elementwise_rate
                         + context.gpu.kernel_overhead_us)

            compress = Task(
                name="dgc_compress_topk_kernel", kind=TaskKind.GPU_KERNEL,
                thread=COMPRESS_STREAM, duration=kernel_us,
                size_bytes=size, metadata={"inserted": True},
            )
            graph.append(compress)
            for pred in graph.predecessors(reduce_task):
                graph.add_dependency(pred, compress)
            graph.add_dependency(compress, reduce_task)

            decompress = Task(
                name="dgc_decompress_kernel", kind=TaskKind.GPU_KERNEL,
                thread=COMPRESS_STREAM, duration=kernel_us,
                size_bytes=size * self.compression_ratio,
                metadata={"inserted": True},
            )
            graph.append(decompress)
            graph.add_dependency(reduce_task, decompress)
            for succ in graph.successors(reduce_task):
                if succ is not decompress:
                    graph.add_dependency(decompress, succ)

            reduce_task.scale_duration(self.compression_ratio)
            reduce_task.size_bytes *= self.compression_ratio
        return WhatIfOutcome(graph=graph)
