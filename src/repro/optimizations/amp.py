"""Automatic Mixed Precision — paper Algorithm 3 (Appendix A.1).

The published heuristic, verbatim: select all GPU tasks; kernels whose name
contains ``sgemm`` or ``scudnn`` (compute-bound GEMM/convolution, which gain
tensor cores) shrink 3x; every other GPU kernel (memory-bound) shrinks 2x,
because fp16 halves the bytes moved.  CPU tasks are untouched — the key
reason AMP speedups saturate on CPU-bound models (Section 6.2).
"""

from repro.core import transform
from repro.core.graph import DependencyGraph
from repro.optimizations.base import OptimizationModel, WhatIfContext, WhatIfOutcome

#: name substrings marking tensor-core-eligible compute-bound kernels
COMPUTE_BOUND_MARKERS = ("sgemm", "scudnn")
#: the paper's assumed tensor-core speedup for compute-bound kernels
COMPUTE_SHRINK = 3.0
#: the paper's assumed fp16 speedup for memory-bound kernels
MEMORY_SHRINK = 2.0


class AutomaticMixedPrecision(OptimizationModel):
    """What if the model trained with NVIDIA Apex AMP (O1/O2)?"""

    name = "amp"

    def __init__(self, compute_shrink: float = COMPUTE_SHRINK,
                 memory_shrink: float = MEMORY_SHRINK) -> None:
        self.compute_shrink = compute_shrink
        self.memory_shrink = memory_shrink

    def apply(self, graph: DependencyGraph, context: WhatIfContext) -> WhatIfOutcome:
        tensor_cores = context.gpu.has_tensor_cores
        for task in transform.select_gpu_tasks(graph):
            if task.phase == "weight_update":
                # Apex keeps fp32 master weights: optimizer kernels stay fp32
                continue
            if any(marker in task.name for marker in COMPUTE_BOUND_MARKERS):
                shrink = self.compute_shrink if tensor_cores else 1.15
            else:
                shrink = self.memory_shrink
            task.scale_duration(1.0 / shrink)
        return WhatIfOutcome(graph=graph)
