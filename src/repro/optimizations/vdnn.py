"""Virtualized DNN (vDNN) — paper Algorithm 10 (Appendix A.8).

vDNN (Rhu et al.) frees GPU memory by offloading convolution feature maps
to host memory after the forward pass and prefetching them back before the
corresponding backward pass.  The *runtime* question Daydream answers: how
much slowdown do the extra PCIe copies cause (late prefetches stall the
backward pass)?

Model (vDNN_conv policy):

* after each convolution layer's forward GPU task, insert a device-to-host
  copy (plus its ``cudaMemcpyAsync`` launch) on a dedicated copy stream;
* before the layer's backward GPU task, insert the host-to-device prefetch
  on the copy stream, gating the backward task;
* the prefetch of layer ``l`` is issued when the backward pass of its
  successor offloaded layer begins — ``findPrefetchLayer`` in the original
  paper — modeled as a dependency from that layer's first backward task.
"""

from typing import Dict

from repro.core.graph import DependencyGraph
from repro.core.task import Task, TaskKind
from repro.optimizations.base import OptimizationModel, WhatIfContext, WhatIfOutcome
from repro.tracing.records import gpu_stream

#: a second CUDA stream dedicated to offload/prefetch copies
COPY_STREAM = gpu_stream(14)


class VirtualizedDNN(OptimizationModel):
    """What if conv feature maps were offloaded/prefetched (vDNN_conv)?"""

    name = "vdnn"

    def apply(self, graph: DependencyGraph, context: WhatIfContext) -> WhatIfOutcome:
        kinds: Dict[str, str] = dict(context.trace_metadata.get("layer_kinds", {}))
        conv_layers = [name for name, kind in kinds.items() if kind == "conv"]
        if not conv_layers:
            return WhatIfOutcome(graph=graph)
        pcie = context.gpu.pcie_bytes_per_us()

        fwd_last = _phase_gpu_tasks(graph, "forward", last=True)
        bwd_first = _phase_gpu_tasks(graph, "backward", last=False)
        # backward visit order of the offloaded layers (reverse forward order)
        layer_order = [l for l in context.trace_metadata.get("layer_order", [])
                       if l in set(conv_layers)]
        backward_visit = list(reversed(layer_order))

        for i, layer in enumerate(backward_visit):
            fwd_task = fwd_last.get(layer)
            bwd_task = bwd_first.get(layer)
            if fwd_task is None or bwd_task is None:
                continue
            size = _activation_bytes(fwd_task)
            copy_us = size / pcie + 8.0
            offload = Task(
                name="CUDA memcpy DtoH (vdnn offload)", kind=TaskKind.MEMCPY,
                thread=COPY_STREAM, duration=copy_us, layer=layer,
                size_bytes=size, metadata={"inserted": True},
            )
            graph.append(offload)
            graph.add_dependency(fwd_task, offload)

            prefetch = Task(
                name="CUDA memcpy HtoD (vdnn prefetch)", kind=TaskKind.MEMCPY,
                thread=COPY_STREAM, duration=copy_us, layer=layer,
                size_bytes=size, metadata={"inserted": True},
            )
            graph.append(prefetch)
            graph.add_dependency(offload, prefetch)
            graph.add_dependency(prefetch, bwd_task)
            # findPrefetchLayer: issue when the previous offloaded layer's
            # backward begins (one-layer lookahead)
            if i > 0:
                gate = bwd_first.get(backward_visit[i - 1])
                if gate is not None:
                    graph.add_dependency(gate, prefetch)
        return WhatIfOutcome(graph=graph)


def _phase_gpu_tasks(graph: DependencyGraph, phase: str,
                     last: bool) -> Dict[str, Task]:
    """First or last GPU task per layer for a phase, in stream order."""
    out: Dict[str, Task] = {}
    for thread in graph.threads():
        if not thread.is_gpu:
            continue
        for task in graph.iter_tasks_on(thread):
            if task.layer is None or task.phase != phase:
                continue
            if last or task.layer not in out:
                out[task.layer] = task
    return out


def _activation_bytes(task: Task) -> float:
    """Feature-map size estimate from the conv kernel's metadata.

    Falls back to a duration-proportional estimate when the kernel carries
    no shape metadata (e.g. a trace from a foreign profiler).
    """
    out_bytes = float(task.metadata.get("output_bytes", 0.0))
    if out_bytes > 0:
        return out_bytes
    return task.duration * 400.0
