"""BlueConnect — paper Algorithm 8 (Appendix A.6).

BlueConnect (Cho et al.) decomposes each all-reduce into a pipeline of
reduce-scatter and all-gather stages that exploit the bandwidth hierarchy:
fast intra-machine links handle one factor of the decomposition, the NIC
handles the other, and the stages run on parallel channels.

Model: replace every all-reduce task with ``k`` reduce-scatter tasks
followed by ``k`` all-gather tasks (for a worker-count factorization
``p_1 x ... x p_k``), chained by dependencies, each stage placed on its own
channel so stages of *different buckets* pipeline.  Durations come from the
standard formulas (NVIDIA nccl-tests [56]).
"""

from typing import List, Optional

from repro.common.errors import ConfigError
from repro.core.graph import DependencyGraph
from repro.core.task import Task, TaskKind
from repro.hw.network import allgather_time_us, reduce_scatter_time_us
from repro.optimizations.base import OptimizationModel, WhatIfContext, WhatIfOutcome
from repro.tracing.records import comm_channel

#: channel index base for the decomposed stages
STAGE_CHANNEL_BASE = 10


class BlueConnect(OptimizationModel):
    """What if all-reduce used BlueConnect's hierarchical decomposition?

    Apply *after* :class:`~repro.optimizations.distributed.DistributedTraining`
    (it rewrites the all-reduce tasks that transform inserted).
    """

    name = "blueconnect"

    def __init__(self, factorization: Optional[List[int]] = None) -> None:
        self.factorization = factorization

    def apply(self, graph: DependencyGraph, context: WhatIfContext) -> WhatIfOutcome:
        cluster = context.cluster
        if cluster is None:
            raise ConfigError("BlueConnect needs context.cluster")
        factors = self.factorization or self._default_factorization(cluster)
        if _product(factors) != cluster.n_workers:
            raise ConfigError(
                f"factorization {factors} does not cover {cluster.n_workers} workers"
            )

        allreduce_tasks = [t for t in graph.tasks()
                           if t.is_comm and "AllReduce" in t.name]
        if not allreduce_tasks:
            raise ConfigError("no all-reduce tasks; apply DistributedTraining first")

        for reduce_task in allreduce_tasks:
            preds = graph.predecessors(reduce_task)
            succs = graph.successors(reduce_task)
            size = reduce_task.size_bytes
            graph.remove(reduce_task, rewire=False)

            chain: List[Task] = []
            # reduce-scatter up the hierarchy, all-gather back down
            for stage, p in enumerate(factors):
                link, latency = self._stage_link(cluster, stage)
                dur = reduce_scatter_time_us(size, p, link, latency)
                chain.append(self._stage_task(
                    graph, f"ncclReduceScatter_p{p}", dur, stage, size))
            for stage, p in reversed(list(enumerate(factors))):
                link, latency = self._stage_link(cluster, stage)
                dur = allgather_time_us(size, p, link, latency)
                chain.append(self._stage_task(
                    graph, f"ncclAllGather_p{p}", dur, stage, size))

            for a, b in zip(chain, chain[1:]):
                graph.add_dependency(a, b)
            for pred in preds:
                graph.add_dependency(pred, chain[0])
            for succ in succs:
                graph.add_dependency(chain[-1], succ)
        return WhatIfOutcome(graph=graph)

    # -- helpers -----------------------------------------------------------------

    @staticmethod
    def _default_factorization(cluster) -> List[int]:
        """Factor the worker count along the hardware hierarchy."""
        factors = []
        if cluster.gpus_per_machine > 1:
            factors.append(cluster.gpus_per_machine)
        if cluster.machines > 1:
            factors.append(cluster.machines)
        return factors or [cluster.n_workers]

    @staticmethod
    def _stage_link(cluster, stage: int):
        """(bytes/us, latency) of the link a decomposition stage uses."""
        if stage == 0 and cluster.gpus_per_machine > 1:
            return cluster.gpu.pcie_bytes_per_us(), 4.0
        return cluster.network.bytes_per_us(), cluster.network.latency_us

    @staticmethod
    def _stage_task(graph: DependencyGraph, name: str, duration: float,
                    stage: int, size: float) -> Task:
        channel = comm_channel(STAGE_CHANNEL_BASE + stage)
        graph.mark_unordered(channel)
        task = Task(name=name, kind=TaskKind.COMM, thread=channel,
                    duration=duration, size_bytes=size,
                    metadata={"inserted": True, "stage": stage})
        graph.append(task)
        return task


def _product(values: List[int]) -> int:
    out = 1
    for v in values:
        out *= v
    return out
