"""MetaFlow relaxed graph substitutions — paper Algorithm 9 (Appendix A.7).

MetaFlow (Jia et al.) rewrites the layer-level topology (fusing layers,
enlarging kernels).  Daydream does not search for substitutions — that is
MetaFlow's job — but given a substitution *policy* it estimates the policy's
runtime by removing the substituted layers' tasks and scaling the layers
whose dimensions changed.  The paper notes Daydream can serve as a precise
cost model inside MetaFlow's backtracking search.
"""

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Union

from repro.common.errors import ConfigError
from repro.core import transform
from repro.core.graph import DependencyGraph
from repro.optimizations.base import OptimizationModel, WhatIfContext, WhatIfOutcome


@dataclass
class SubstitutionPolicy:
    """A MetaFlow transformation policy.

    Attributes:
        remove_layers: layers whose kernels disappear (fused away).
        scale_layers: layer -> duration factor for dimension changes (e.g.
            an enlarged convolution running 1.3x longer but replacing two).
    """

    remove_layers: List[str] = field(default_factory=list)
    scale_layers: Dict[str, float] = field(default_factory=dict)


class MetaFlowSubstitution(OptimizationModel):
    """What if MetaFlow applied the given substitution policy?

    ``policy`` is either an explicit :class:`SubstitutionPolicy` or the name
    of a registered one (see :data:`NAMED_POLICIES`); named policies are
    resolved lazily from the what-if context, which makes this model
    declarable in scenario files.
    """

    name = "metaflow"

    def __init__(self, policy: Union[str, SubstitutionPolicy]) -> None:
        self.policy = policy

    def _resolve(self, context: WhatIfContext) -> SubstitutionPolicy:
        if isinstance(self.policy, SubstitutionPolicy):
            return self.policy
        try:
            builder = NAMED_POLICIES[self.policy]
        except KeyError:
            raise ConfigError(
                f"unknown MetaFlow policy {self.policy!r}; "
                f"named policies: {sorted(NAMED_POLICIES)}"
            ) from None
        return builder(context)

    def apply(self, graph: DependencyGraph, context: WhatIfContext) -> WhatIfOutcome:
        policy = self._resolve(context)
        removed = set(policy.remove_layers)
        for task in [t for t in transform.select_gpu_tasks(graph)
                     if t.layer in removed]:
            transform.remove_gpu_task(graph, task, remove_launch=True)
        for layer, factor in policy.scale_layers.items():
            tasks = transform.select_by_layer(graph, lambda l: l == layer)
            transform.scale_durations([t for t in tasks if t.is_gpu], factor)
        return WhatIfOutcome(graph=graph)


def fuse_conv_bn_relu_policy(context: WhatIfContext) -> SubstitutionPolicy:
    """A canonical CNN policy: fuse every batchnorm + ReLU into its conv.

    The fused convolution runs slightly longer (epilogue math) while the
    normalization/activation kernels disappear.
    """
    kinds: Dict[str, str] = dict(context.trace_metadata.get("layer_kinds", {}))
    remove = [name for name, kind in kinds.items() if kind in ("batchnorm", "relu")]
    scale = {name: 1.08 for name, kind in kinds.items() if kind == "conv"}
    return SubstitutionPolicy(remove_layers=remove, scale_layers=scale)


#: policies addressable by name from scenario files
NAMED_POLICIES: Dict[str, Callable[[WhatIfContext], SubstitutionPolicy]] = {
    "fuse_conv_bn_relu": fuse_conv_bn_relu_policy,
}
