"""What-if models of DNN training optimizations (paper Section 5).

Five models are quantitatively evaluated against ground truth (AMP,
FusedAdam, reconstructing batchnorm, distributed training, P3); five more
are modeled to demonstrate the expressiveness of the primitives
(BlueConnect, MetaFlow, vDNN, Gist, DGC) — matching Table 1's bold/italic
split.
"""

from repro.optimizations.base import OptimizationModel, WhatIfContext, WhatIfOutcome
from repro.optimizations.amp import AutomaticMixedPrecision
from repro.optimizations.fusedadam import FusedAdam
from repro.optimizations.batchnorm_reconstruct import ReconstructBatchnorm
from repro.optimizations.distributed import DistributedTraining
from repro.optimizations.p3 import PriorityParameterPropagation
from repro.optimizations.blueconnect import BlueConnect
from repro.optimizations.metaflow import MetaFlowSubstitution
from repro.optimizations.vdnn import VirtualizedDNN
from repro.optimizations.gist import Gist
from repro.optimizations.dgc import DeepGradientCompression

__all__ = [
    "OptimizationModel",
    "WhatIfContext",
    "WhatIfOutcome",
    "AutomaticMixedPrecision",
    "FusedAdam",
    "ReconstructBatchnorm",
    "DistributedTraining",
    "PriorityParameterPropagation",
    "BlueConnect",
    "MetaFlowSubstitution",
    "VirtualizedDNN",
    "Gist",
    "DeepGradientCompression",
]
