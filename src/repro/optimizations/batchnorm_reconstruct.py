"""Reconstructing batch normalization — paper Algorithm 5 (Appendix A.3).

Jung et al. split each batchnorm layer in two and fuse the halves with the
neighboring convolution/activation layers.  The Daydream model:

* activation (ReLU) kernels disappear — they are memory-bound and now fused
  into the compute-bound convolutions;
* batchnorm kernels shrink 2x — the restructured layers load half the
  input data from GPU memory.

The model needs the task-to-layer mapping plus the layer *kinds* recorded
by the framework instrumentation to find ReLU/batchnorm tasks.
"""

from typing import Dict

from repro.core import transform
from repro.core.graph import DependencyGraph
from repro.optimizations.base import OptimizationModel, WhatIfContext, WhatIfOutcome

#: the paper's estimate: restructured BN loads half the data -> 2x faster
BATCHNORM_SHRINK = 2.0


class ReconstructBatchnorm(OptimizationModel):
    """What if batchnorm layers were restructured per Jung et al.?"""

    name = "reconstruct_batchnorm"

    def apply(self, graph: DependencyGraph, context: WhatIfContext) -> WhatIfOutcome:
        kinds: Dict[str, str] = dict(
            context.trace_metadata.get("layer_kinds", {}))
        relu_tasks = [
            t for t in transform.select_gpu_tasks(graph)
            if t.layer is not None and kinds.get(t.layer) == "relu"
        ]
        bn_tasks = [
            t for t in transform.select_gpu_tasks(graph)
            if t.layer is not None and kinds.get(t.layer) == "batchnorm"
        ]
        for task in relu_tasks:
            transform.remove_gpu_task(graph, task, remove_launch=True)
        transform.shrink_durations(bn_tasks, BATCHNORM_SHRINK)
        return WhatIfOutcome(graph=graph)
