"""Hardware what-ifs: the COZ-style questions from the paper's introduction.

Section 1 motivates Daydream with user questions that are about *hardware*,
not software: "Would upgrading to a faster network improve training
throughput?", "How does runtime change if a task T is N times faster?".
Prior what-if systems [18, 59] answer exactly these by shrinking task
durations; Daydream's primitives subsume them, so we expose them as models:

* :class:`GpuUpgrade` — every GPU kernel runs ``factor``x faster (a faster
  accelerator of the same architecture);
* :class:`CpuUpgrade` — CPU tasks and gaps shrink (faster host / leaner
  framework dispatch);
* :class:`InfinitelyFastKernels` — the classic COZ limit study: what if a
  selected kernel class cost nothing?
"""

from typing import Callable, Optional

from repro.common.errors import ConfigError
from repro.core import transform
from repro.core.graph import DependencyGraph
from repro.core.task import Task
from repro.optimizations.base import OptimizationModel, WhatIfContext, WhatIfOutcome


class GpuUpgrade(OptimizationModel):
    """What if the GPU were ``factor``x faster (compute and bandwidth)?"""

    name = "gpu_upgrade"

    def __init__(self, factor: float = 1.5) -> None:
        if factor <= 0:
            raise ConfigError("upgrade factor must be positive")
        self.factor = factor

    def apply(self, graph: DependencyGraph, context: WhatIfContext) -> WhatIfOutcome:
        for task in transform.select_gpu_tasks(graph):
            task.scale_duration(1.0 / self.factor)
        return WhatIfOutcome(graph=graph)


class CpuUpgrade(OptimizationModel):
    """What if the host CPU / framework dispatch were ``factor``x faster?

    Scales both CPU task durations and the inter-task gaps — the gaps *are*
    CPU work (Python front-end) and dominate launch-bound phases.
    """

    name = "cpu_upgrade"

    def __init__(self, factor: float = 1.5) -> None:
        if factor <= 0:
            raise ConfigError("upgrade factor must be positive")
        self.factor = factor

    def apply(self, graph: DependencyGraph, context: WhatIfContext) -> WhatIfOutcome:
        for task in graph.tasks():
            if task.is_cpu:
                task.scale_duration(1.0 / self.factor)
                task.gap /= self.factor
        return WhatIfOutcome(graph=graph)


class InfinitelyFastKernels(OptimizationModel):
    """COZ-style limit study: zero out a class of tasks.

    Answers "is X the bottleneck?" — if making X free barely moves the
    iteration time, optimizing X is pointless (Amdahl).  The predicate
    selects the task class (e.g. everything whose name contains ``sgemm``,
    or every task of one layer).
    """

    name = "infinitely_fast"

    def __init__(self, predicate: Callable[[Task], bool],
                 label: Optional[str] = None) -> None:
        self.predicate = predicate
        if label:
            self.name = f"infinitely_fast[{label}]"

    def apply(self, graph: DependencyGraph, context: WhatIfContext) -> WhatIfOutcome:
        for task in graph.select(self.predicate):
            task.duration = 0.0
        return WhatIfOutcome(graph=graph)
