"""Gist — paper Algorithm 11 (Appendix A.9).

Gist (Jain et al.) shrinks the memory footprint of stashed feature maps by
encoding them after the forward pass and decoding before the backward pass.
The runtime question: what overhead do the encode/decode kernels add?

Model: after each ReLU layer's forward GPU task insert an encode kernel
(plus launch API); before the layer's backward GPU task insert the decode
kernel.  Inserted durations are estimated from the *existing* element-wise
kernels of the same layer — the paper's guidance for sizing new kernels
from kernels already in the profile (Section 7.4).
"""

from typing import Dict

from repro.core import transform
from repro.core.graph import DependencyGraph
from repro.core.task import Task
from repro.optimizations.base import OptimizationModel, WhatIfContext, WhatIfOutcome


class Gist(OptimizationModel):
    """What is the runtime overhead of Gist's encode/decode kernels?

    Args:
        lossy: include the Delayed Precision Reduction (DPR) kernels of
            Gist's lossy mode on non-ReLU activations.
        cost_factor: encode/decode duration relative to the layer's existing
            element-wise kernel (1.0 = same traffic).
    """

    name = "gist"

    def __init__(self, lossy: bool = False, cost_factor: float = 1.0) -> None:
        self.lossy = lossy
        self.cost_factor = cost_factor

    def apply(self, graph: DependencyGraph, context: WhatIfContext) -> WhatIfOutcome:
        kinds: Dict[str, str] = dict(context.trace_metadata.get("layer_kinds", {}))
        launch_us = context.cpu.launch_api_us

        for thread in graph.threads():
            if not thread.is_gpu:
                continue
            for task in graph.tasks_on(thread):
                if task.layer is None or kinds.get(task.layer) != "relu":
                    continue
                launch = task.metadata.get("launched_by")
                if not isinstance(launch, Task) or launch not in graph:
                    continue
                duration = task.duration * self.cost_factor
                if task.phase == "forward":
                    transform.insert_gpu_task(
                        graph, cpu_anchor=launch, gpu_anchor=task,
                        kernel_name="gist_sdc_encode_kernel",
                        duration_us=duration, launch_duration_us=launch_us,
                        layer=task.layer, phase="forward",
                    )
                elif task.phase == "backward":
                    before = graph.thread_predecessor(task)
                    if before is not None:
                        transform.insert_gpu_task(
                            graph, cpu_anchor=launch, gpu_anchor=before,
                            kernel_name="gist_sdc_decode_kernel",
                            duration_us=duration, launch_duration_us=launch_us,
                            layer=task.layer, phase="backward",
                        )

        if self.lossy:
            self._insert_dpr(graph, kinds, launch_us)
        return WhatIfOutcome(graph=graph)

    def _insert_dpr(self, graph: DependencyGraph, kinds: Dict[str, str],
                    launch_us: float) -> None:
        """Lossy mode: precision-reduction kernels on conv outputs."""
        for thread in graph.threads():
            if not thread.is_gpu:
                continue
            for task in graph.tasks_on(thread):
                if (task.layer is None or task.phase != "forward"
                        or kinds.get(task.layer) != "conv"):
                    continue
                launch = task.metadata.get("launched_by")
                if not isinstance(launch, Task) or launch not in graph:
                    continue
                transform.insert_gpu_task(
                    graph, cpu_anchor=launch, gpu_anchor=task,
                    kernel_name="gist_dpr_kernel",
                    duration_us=task.duration * 0.05 * self.cost_factor,
                    launch_duration_us=launch_us,
                    layer=task.layer, phase="forward",
                )
