"""Base classes for optimization what-if models."""

import abc
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.core.graph import DependencyGraph
from repro.core.simulate import Scheduler
from repro.hw.device import CPU_EPYC_7601, GPU_2080TI, CPUSpec, GPUSpec
from repro.hw.topology import ClusterSpec
from repro.tracing.trace import Trace


@dataclass
class WhatIfContext:
    """Everything an optimization model may consult besides the graph.

    Attributes:
        trace_metadata: the instrumentation metadata of the baseline trace
            (bucket map, gradient sizes, layer kinds, ...).
        gpu: the profiled GPU (for estimating inserted-kernel durations).
        cpu: host cost parameters (for inserted launch APIs).
        cluster: target deployment for communication what-ifs.
    """

    trace_metadata: Dict[str, object] = field(default_factory=dict)
    gpu: GPUSpec = field(default_factory=lambda: GPU_2080TI)
    cpu: CPUSpec = field(default_factory=lambda: CPU_EPYC_7601)
    cluster: Optional[ClusterSpec] = None

    @classmethod
    def from_trace(cls, trace: Trace, gpu: Optional[GPUSpec] = None,
                   cpu: Optional[CPUSpec] = None,
                   cluster: Optional[ClusterSpec] = None) -> "WhatIfContext":
        """Build a context from a baseline trace's metadata."""
        return cls(
            trace_metadata=dict(trace.metadata),
            gpu=gpu or GPU_2080TI,
            cpu=cpu or CPU_EPYC_7601,
            cluster=cluster,
        )


@dataclass
class WhatIfOutcome:
    """Result of applying an optimization model to a graph.

    Attributes:
        graph: the transformed graph (same object the model mutated).
        scheduler: a custom scheduling policy, when the optimization
            reschedules tasks (paper's Schedule primitive); ``None`` keeps
            the default earliest-start policy.
    """

    graph: DependencyGraph
    scheduler: Optional[Scheduler] = None


class OptimizationModel(abc.ABC):
    """A what-if model: a named graph transformation.

    Subclasses implement :meth:`apply`, mutating the given graph with the
    primitives from :mod:`repro.core.transform` and optionally supplying a
    custom scheduler.  ``apply`` must not require the optimization to be
    implemented — only its *effect* on the dependency graph is described.
    """

    #: human-readable optimization name
    name: str = "optimization"

    @abc.abstractmethod
    def apply(self, graph: DependencyGraph, context: WhatIfContext) -> WhatIfOutcome:
        """Transform ``graph`` in place and return the outcome."""

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"
