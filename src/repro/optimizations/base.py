"""Base classes for optimization what-if models."""

import abc
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.common.errors import ConfigError
from repro.core.graph import DependencyGraph
from repro.core.simulate import Scheduler
from repro.hw.device import (
    CPU_EPYC_7601,
    GPU_2080TI,
    CPUSpec,
    GPUSpec,
    get_cpu,
    get_gpu,
)
from repro.hw.topology import ClusterSpec
from repro.tracing.trace import Trace


def device_specs_from_trace(trace: Trace):
    """The (GPU, CPU) specs a trace's metadata records, ``None`` when absent.

    Used by :meth:`WhatIfContext.from_trace` and by
    :meth:`~repro.analysis.session.WhatIfSession.from_trace` so a saved
    trace replays against the hardware it was actually collected on.
    """
    metadata = dict(trace.metadata)
    gpu = _spec_from_metadata(metadata, "gpu_spec", "gpu", GPUSpec, get_gpu)
    cpu = _spec_from_metadata(metadata, "cpu_spec", "cpu", CPUSpec, get_cpu)
    return gpu, cpu


def _spec_from_metadata(metadata: Dict[str, object], spec_key: str,
                        name_key: str, spec_cls, preset_lookup):
    """Recover a device spec recorded in trace metadata, if any.

    Prefers the full ``*_spec`` field dict (exact, survives calibration
    overrides like Section 6.4's Caffe efficiency); falls back to a preset
    lookup of the recorded device name; returns ``None`` when the trace
    predates the instrumentation or names an unknown device.
    """
    fields = metadata.get(spec_key)
    if isinstance(fields, dict):
        try:
            return spec_cls(**fields)
        except TypeError:
            pass  # metadata written by a different spec version
    name = metadata.get(name_key)
    if isinstance(name, str):
        try:
            return preset_lookup(name)
        except ConfigError:
            pass
    return None


@dataclass
class WhatIfContext:
    """Everything an optimization model may consult besides the graph.

    Attributes:
        trace_metadata: the instrumentation metadata of the baseline trace
            (bucket map, gradient sizes, layer kinds, ...).
        gpu: the profiled GPU (for estimating inserted-kernel durations).
        cpu: host cost parameters (for inserted launch APIs).
        cluster: target deployment for communication what-ifs.
    """

    trace_metadata: Dict[str, object] = field(default_factory=dict)
    gpu: GPUSpec = field(default_factory=lambda: GPU_2080TI)
    cpu: CPUSpec = field(default_factory=lambda: CPU_EPYC_7601)
    cluster: Optional[ClusterSpec] = None

    @classmethod
    def from_trace(cls, trace: Trace, gpu: Optional[GPUSpec] = None,
                   cpu: Optional[CPUSpec] = None,
                   cluster: Optional[ClusterSpec] = None) -> "WhatIfContext":
        """Build a context from a baseline trace's metadata.

        Explicit ``gpu``/``cpu`` arguments win; otherwise the specs the
        profiling engine recorded in the trace metadata (``gpu_spec`` /
        ``cpu_spec`` dicts, or preset names under ``gpu`` / ``cpu``) are
        used, so a trace collected on a Quadro P4000 is not silently
        analyzed as an RTX 2080Ti.  The paper's defaults remain the last
        resort for pre-instrumentation traces.
        """
        metadata = dict(trace.metadata)
        if gpu is None:
            gpu = _spec_from_metadata(metadata, "gpu_spec", "gpu",
                                      GPUSpec, get_gpu)
        if cpu is None:
            cpu = _spec_from_metadata(metadata, "cpu_spec", "cpu",
                                      CPUSpec, get_cpu)
        return cls(
            trace_metadata=metadata,
            gpu=gpu or GPU_2080TI,
            cpu=cpu or CPU_EPYC_7601,
            cluster=cluster,
        )


@dataclass
class WhatIfOutcome:
    """Result of applying an optimization model to a graph.

    Attributes:
        graph: the transformed graph (same object the model mutated).
        scheduler: a custom scheduling policy, when the optimization
            reschedules tasks (paper's Schedule primitive); ``None`` keeps
            the default earliest-start policy.
    """

    graph: DependencyGraph
    scheduler: Optional[Scheduler] = None


class OptimizationModel(abc.ABC):
    """A what-if model: a named graph transformation.

    Subclasses implement :meth:`apply`, mutating the given graph with the
    primitives from :mod:`repro.core.transform` and optionally supplying a
    custom scheduler.  ``apply`` must not require the optimization to be
    implemented — only its *effect* on the dependency graph is described.
    """

    #: human-readable optimization name
    name: str = "optimization"

    @abc.abstractmethod
    def apply(self, graph: DependencyGraph, context: WhatIfContext) -> WhatIfOutcome:
        """Transform ``graph`` in place and return the outcome."""

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"
