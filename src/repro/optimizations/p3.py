"""Priority-Based Parameter Propagation (P3) — paper Algorithm 7.

P3 (Jayarajan et al.) targets MXNet's parameter-server architecture: it
*slices* each gradient tensor into small pieces and *prioritizes* the
push/pull transfers of layers closest to the input, so that the next
iteration's forward pass can begin before the large back-layer gradients
finish transferring.

The Daydream model, applied to a single-GPU MXNet profile:

* for each parameterized layer, insert push tasks on the send channel and
  pull tasks on the receive channel, one per slice, with durations from the
  bandwidth formula;
* dependencies: last backward GPU task of the layer -> push; pull -> the
  layer's first forward GPU task (the steady-state wrap: this iteration's
  forward consumes the pulls fed by the previous iteration, so pulls are
  ready at iteration start and serialize on the channel);
* override the schedule function with a priority queue (front layers first).

The same machinery with ``slice_bytes=None`` and arrival-order priorities
models the *baseline* parameter-server execution, and an optional
:class:`ServerCostModel` adds the server-side processing the ground truth
exhibits (and Daydream's idealized prediction omits — the source of the
over-estimated P3 speedups at high bandwidth, Section 6.6).
"""

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.common.errors import ConfigError
from repro.core import transform
from repro.core.graph import DependencyGraph
from repro.core.simulate import make_priority_scheduler
from repro.core.task import Task
from repro.optimizations.base import OptimizationModel, WhatIfContext, WhatIfOutcome
from repro.tracing.records import comm_channel

#: channel indices for the parameter-server transfer directions
SEND_CHANNEL = comm_channel(1)
RECEIVE_CHANNEL = comm_channel(2)

#: P3's default gradient slice size (bytes); coarser than the original
#: paper's 50 KB to keep graphs tractable, same scheduling behaviour
DEFAULT_SLICE_BYTES = 4 * 1024 * 1024


@dataclass(frozen=True)
class ServerCostModel:
    """Server-side processing cost per push/pull operation.

    The ground truth pays this (aggregation, copies, request handling on the
    server process); Daydream's prediction does not — matching the paper's
    observation that at 15-20 Gbps communication tasks become bottlenecked
    by non-network resources.
    """

    bytes_per_us: float = 3_000.0     # ~3 GB/s aggregation throughput
    per_op_us: float = 80.0           # request handling overhead

    def cost_us(self, size_bytes: float) -> float:
        return size_bytes / self.bytes_per_us + self.per_op_us


class ParameterServerTransfer(OptimizationModel):
    """Insert parameter-server push/pull traffic into a single-GPU profile.

    Args:
        slice_bytes: gradient slice size; ``None`` transfers whole per-layer
            tensors (baseline MXNet behaviour).
        prioritize: give front layers scheduling priority (P3) instead of
            arrival order (baseline).
        server: optional server-side cost model (ground-truth fidelity).
    """

    name = "parameter_server"

    def __init__(self, slice_bytes: Optional[int] = None,
                 prioritize: bool = False,
                 server: Optional[ServerCostModel] = None) -> None:
        if slice_bytes is not None and slice_bytes <= 0:
            raise ConfigError("slice_bytes must be positive")
        self.slice_bytes = slice_bytes
        self.prioritize = prioritize
        self.server = server

    def apply(self, graph: DependencyGraph, context: WhatIfContext) -> WhatIfOutcome:
        cluster = context.cluster
        if cluster is None:
            raise ConfigError("ParameterServerTransfer needs context.cluster")
        grad_bytes: Dict[str, float] = {
            name: float(size) for name, size in
            context.trace_metadata.get("layer_grad_bytes", {}).items()
        }
        layer_order: List[str] = list(
            context.trace_metadata.get("layer_order", []))
        if not grad_bytes or not layer_order:
            raise ConfigError("trace metadata lacks gradient/layer information")

        link = cluster.network.bytes_per_us()
        latency = cluster.network.latency_us
        first_fwd = _first_forward_gpu_task_by_layer(graph)
        last_bwd = _last_backward_gpu_task_by_layer(graph)

        graph.mark_unordered(SEND_CHANNEL)
        graph.mark_unordered(RECEIVE_CHANNEL)

        n_layers = len(layer_order)
        for index, layer in enumerate(layer_order):
            size = grad_bytes.get(layer, 0.0)
            if size <= 0:
                continue
            # front layers get the highest priority under P3; under the
            # baseline, back layers arrive first (their gradients are
            # computed first) and the ordinal tie-break keeps them first
            priority = (n_layers - index) if self.prioritize else index
            remaining = size
            slice_no = 0
            while remaining > 0:
                chunk = (min(remaining, self.slice_bytes)
                         if self.slice_bytes else remaining)
                remaining -= chunk
                transfer = chunk / link + latency
                if self.server is not None:
                    transfer += self.server.cost_us(chunk)
                push = transform.insert_comm_task(
                    graph, SEND_CHANNEL,
                    f"push {layer}[{slice_no}]",
                    duration_us=transfer,
                    depends_on=[last_bwd[layer]] if layer in last_bwd else [],
                    size_bytes=chunk, priority=priority,
                )
                push.layer = layer
                pull = transform.insert_comm_task(
                    graph, RECEIVE_CHANNEL,
                    f"pull {layer}[{slice_no}]",
                    duration_us=transfer,
                    successors=([first_fwd[layer]]
                                if layer in first_fwd else []),
                    size_bytes=chunk, priority=priority,
                )
                pull.layer = layer
                slice_no += 1

        scheduler = make_priority_scheduler(lambda t: t.is_comm)
        return WhatIfOutcome(graph=graph, scheduler=scheduler)


class PriorityParameterPropagation(ParameterServerTransfer):
    """What if training used P3 (sliced, prioritized push/pull)?

    This is Daydream's idealized prediction: bandwidth-only transfer costs.
    """

    name = "p3"

    def __init__(self, slice_bytes: int = DEFAULT_SLICE_BYTES) -> None:
        super().__init__(slice_bytes=slice_bytes, prioritize=True, server=None)


def _first_forward_gpu_task_by_layer(graph: DependencyGraph) -> Dict[str, Task]:
    """For each layer: its first forward GPU task in stream order."""
    out: Dict[str, Task] = {}
    for thread in graph.threads():
        if not thread.is_gpu:
            continue
        for task in graph.iter_tasks_on(thread):
            if (task.layer is not None and task.phase == "forward"
                    and task.layer not in out):
                out[task.layer] = task
    return out


def _last_backward_gpu_task_by_layer(graph: DependencyGraph) -> Dict[str, Task]:
    """For each layer: its last backward GPU task in stream order."""
    out: Dict[str, Task] = {}
    for thread in graph.threads():
        if not thread.is_gpu:
            continue
        for task in graph.iter_tasks_on(thread):
            if task.layer is not None and task.phase == "backward":
                out[task.layer] = task
    return out
