"""FusedAdam — paper Algorithm 4 (Appendix A.2).

Apex's FusedAdam replaces the thousands of small pointwise kernels of an
unfused Adam step with one multi-tensor kernel.  The Daydream model:

1. select the GPU tasks of the weight-update phase (via the task-to-layer
   mapping);
2. keep the first one, setting its duration to the estimated fused-kernel
   duration; remove all the others *together with their CPU launch APIs* —
   eliminating the launch overhead that dominates BERT's update phase
   (Section 6.3);
3. the fused duration is estimated as the sum of the removed
   *compute-intensive core* update kernels (the multiply-accumulate ones),
   per the paper: "a new GPU task whose duration is roughly estimated by
   the sum of all removed compute-intensive kernels".
"""

from repro.common.errors import GraphConsistencyError
from repro.core import transform
from repro.core.graph import DependencyGraph
from repro.optimizations.base import OptimizationModel, WhatIfContext, WhatIfOutcome

#: kernel-name substrings of the Adam step's compute core (the actual
#: moment/update math, as opposed to bookkeeping like zero_grad or bias
#: correction scalars)
CORE_UPDATE_MARKERS = ("addcmul", "addcdiv", "mul_exp_avg")


class FusedAdam(OptimizationModel):
    """What if the optimizer step used Apex FusedAdam?"""

    name = "fused_adam"

    def apply(self, graph: DependencyGraph, context: WhatIfContext) -> WhatIfOutcome:
        wu_gpu = [t for t in transform.select_by_phase(graph, "weight_update")
                  if t.is_gpu]
        if not wu_gpu:
            raise GraphConsistencyError(
                "no weight-update GPU tasks found; is the model trained with "
                "Adam and the task-to-layer mapping applied?"
            )
        fused_estimate = sum(
            t.duration for t in wu_gpu
            if any(marker in t.name for marker in CORE_UPDATE_MARKERS)
        )
        if fused_estimate == 0.0:
            # non-Adam optimizer traces: fall back to the full sum
            fused_estimate = transform.total_duration(wu_gpu)

        # Keep the last update task (in stream order): it carries the
        # synchronization edge that gates the end of the iteration, so the
        # fused kernel still drains before the iteration boundary.
        keep, rest = wu_gpu[-1], wu_gpu[:-1]
        keep.name = "multi_tensor_apply_kernel_fused_adam"
        keep.duration = fused_estimate
        keep.layer = "fused_adam"
        for task in rest:
            transform.remove_gpu_task(graph, task, remove_launch=True)
        return WhatIfOutcome(graph=graph)
