"""Ground-truth MXNet parameter-server execution (for the P3 evaluation).

The paper reproduces P3 on a 4-machine cluster with one P4000 per machine,
MXNet's parameter-server architecture, one worker and one server process
per machine (Section 6.6).  Our ground truth executes the full-detail model:

* the worker's compute timeline comes from the single-GPU engine trace;
* gradients travel as push (worker -> server) and pull (server -> worker)
  transfers on full-duplex channels;
* the *server* charges per-operation processing cost (aggregation, request
  handling) on top of the wire time — the non-network bottleneck Daydream's
  idealized prediction omits, which is why the paper over-estimates P3
  speedups at 15-20 Gbps.

Both the baseline (whole-tensor FIFO transfers) and P3 (sliced, prioritized)
variants are produced by re-simulating the dependency graph with the
full-fidelity :class:`~repro.optimizations.p3.ParameterServerTransfer`
transform — the same machinery Daydream uses, but with the server cost
model switched on.  Ground truth and prediction therefore share *structure*
but differ in *detail*, exactly like a real testbed versus a formula.
"""

from dataclasses import dataclass
from typing import Optional

from repro.core.construction import build_graph
from repro.core.simulate import simulate
from repro.framework.config import TrainingConfig
from repro.framework.engine import Engine
from repro.hw.topology import ClusterSpec
from repro.models.base import ModelSpec
from repro.optimizations.base import WhatIfContext
from repro.optimizations.p3 import (
    DEFAULT_SLICE_BYTES,
    ParameterServerTransfer,
    ServerCostModel,
)
from repro.tracing.trace import Trace


@dataclass(frozen=True)
class PSGroundTruth:
    """Measured iteration time of a parameter-server execution."""

    iteration_us: float
    variant: str


def _worker_trace(model: ModelSpec, config: Optional[TrainingConfig]) -> Trace:
    config = config or TrainingConfig(framework="mxnet")
    return Engine(model=model, config=config).run_iteration()


def run_ps_baseline(
    model: ModelSpec,
    cluster: ClusterSpec,
    config: Optional[TrainingConfig] = None,
    server: Optional[ServerCostModel] = None,
    trace: Optional[Trace] = None,
) -> PSGroundTruth:
    """Ground-truth MXNet baseline: whole-tensor push/pull, arrival order."""
    trace = trace or _worker_trace(model, config)
    graph = build_graph(trace)
    context = WhatIfContext.from_trace(trace, gpu=cluster.gpu, cluster=cluster)
    outcome = ParameterServerTransfer(
        slice_bytes=None, prioritize=False,
        server=server or ServerCostModel(),
    ).apply(graph, context)
    result = simulate(outcome.graph, outcome.scheduler)
    return PSGroundTruth(iteration_us=result.makespan_us, variant="baseline")


def run_ps_p3(
    model: ModelSpec,
    cluster: ClusterSpec,
    config: Optional[TrainingConfig] = None,
    slice_bytes: int = DEFAULT_SLICE_BYTES,
    server: Optional[ServerCostModel] = None,
    trace: Optional[Trace] = None,
) -> PSGroundTruth:
    """Ground-truth P3: sliced, prioritized transfers, with server costs."""
    trace = trace or _worker_trace(model, config)
    graph = build_graph(trace)
    context = WhatIfContext.from_trace(trace, gpu=cluster.gpu, cluster=cluster)
    outcome = ParameterServerTransfer(
        slice_bytes=slice_bytes, prioritize=True,
        server=server or ServerCostModel(),
    ).apply(graph, context)
    result = simulate(outcome.graph, outcome.scheduler)
    return PSGroundTruth(iteration_us=result.makespan_us, variant="p3")
