"""The framework execution engine — the substrate 'real system'.

Executes one training iteration of a :class:`~repro.models.base.ModelSpec`
the way PyTorch/MXNet/Caffe would on a single GPU, and emits a CUPTI-style
:class:`~repro.tracing.trace.Trace`:

* one CPU thread walks the layers in program order, paying framework
  dispatch gaps and ``cudaLaunchKernel`` API costs;
* GPU kernels execute FIFO on one CUDA stream (the paper's key observation:
  DNN training uses one control CPU thread and one stream, so low-level
  tasks are highly serialized);
* synchronization points (loss readback, end-of-iteration) block the CPU on
  the stream;
* in distributed mode, gradient buckets trigger NCCL all-reduce primitives
  on a communication channel as soon as they fill (wait-free backprop), and
  the optimizer step waits for all of them.

Kernel durations come from the roofline cost model, so this engine plays the
role of 'the hardware'.  Daydream never reuses these internals: it only sees
the emitted trace.
"""

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.common.errors import ConfigError
from repro.common.prng import biased_factor
from repro.framework.bucketing import Bucket, compute_buckets
from repro.framework.config import TrainingConfig
from repro.hw.network import ring_allreduce_time_us
from repro.hw.topology import ClusterSpec
from repro.kernels import library as K
from repro.kernels.costmodel import KernelCostModel
from repro.kernels.kernel import KernelSpec
from repro.models.base import ModelSpec, Phase
from repro.tracing.records import (
    EventCategory,
    TraceEvent,
    comm_channel,
    cpu_thread,
    gpu_stream,
)
from repro.tracing.trace import Trace

#: the CUDA stream id PyTorch's default stream shows up as in CUPTI traces
DEFAULT_STREAM = 7
#: secondary stream used when concurrent_streams is enabled (Section 7.5)
SECOND_STREAM = 8

# NCCL kernels contend with compute kernels for GPU memory bandwidth /
# SMs.  The paper measures ground-truth all-reduces ~34% above the
# theoretical formula when overlapped with backward compute, dropping to a
# few percent when a CUDA synchronization precedes the launch (Section 6.5).
_NCCL_CONTENTION_LOW = 1.28
_NCCL_CONTENTION_HIGH = 1.55
_NCCL_SYNCED_LOW = 1.04
_NCCL_SYNCED_HIGH = 1.16


@dataclass
class _PendingAllReduce:
    """An all-reduce launched during backward, scheduled after it."""

    bucket: Bucket
    ready_us: float       # when the bucket's gradients are complete on GPU
    launch_end_us: float  # when the CPU-side NCCL launch call returned


@dataclass
class Engine:
    """Executes training iterations and records traces.

    Attributes:
        model: the workload.
        config: execution configuration (framework, device, precision...).
        cluster: if given (and >1 worker), run data-parallel with NCCL
            all-reduce over gradient buckets.
        sync_before_allreduce: insert a CUDA synchronization before each
            NCCL launch (the mitigation evaluated in Section 6.5).
    """

    model: ModelSpec
    config: TrainingConfig
    cluster: Optional[ClusterSpec] = None
    sync_before_allreduce: bool = False
    #: execute the LSTM gate pointwise kernels on a second CUDA stream,
    #: overlapping the recurrent GEMMs of the next chunk — the limited real
    #: concurrency cuDNN's RNN path exhibits (paper Section 7.5).  CUPTI
    #: *serializes* kernels while profiling, so Daydream's profile-based
    #: estimate of such workloads is conservative by construction.
    concurrent_streams: bool = False

    # internal state, rebuilt per iteration
    _events: List[TraceEvent] = field(default_factory=list, repr=False)
    _cpu_us: float = 0.0
    _stream_us: float = 0.0
    _stream2_us: float = 0.0
    _comm_us: float = 0.0
    _next_corr: int = 1
    _instance_counts: Dict[str, int] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        self.cost = KernelCostModel(self.config.gpu)
        self.cpu = self.config.cpu
        self.optimizer = self.config.resolve_optimizer(self.model.default_optimizer)
        self.buckets = compute_buckets(self.model, self.config.bucket_cap_mb)
        if self.cluster is not None and self.cluster.gpu.name != self.config.gpu.name:
            raise ConfigError("cluster GPU model differs from config GPU model")

    # ------------------------------------------------------------------ public

    def run_iteration(self) -> Trace:
        """Execute one training iteration and return its trace."""
        self._reset()
        self._data_loading()
        self._input_upload()
        self._forward()
        self._loss_readback()
        pending = self._backward()
        self._schedule_allreduces(pending)
        self._weight_update()
        self._final_sync()
        trace = Trace(events=list(self._events), metadata=self._metadata())
        trace.validate()
        return trace

    # ------------------------------------------------------------- phase steps

    def _reset(self) -> None:
        self._events = []
        self._cpu_us = 0.0
        self._stream_us = 0.0
        self._stream2_us = 0.0
        self._comm_us = 0.0
        self._next_corr = 1
        self._instance_counts = {}

    def _data_loading(self) -> None:
        # The data loader runs on its own worker thread (the second CPU
        # thread visible in the paper's Figure 1).  The control thread may
        # not upload the batch before the worker hands it over; that
        # cross-thread dependency is recorded via the produces/consumes
        # metadata the framework instrumentation provides.
        self._emit(EventCategory.DATALOAD, "dataloader_next_batch",
                   0.0, self.config.data_loading_us, cpu_thread(1),
                   metadata={"produces_batch": 0})
        self._batch_ready_us = self.config.data_loading_us

    def _input_upload(self) -> None:
        self._cpu_us = max(self._cpu_us, self._batch_ready_us)
        kernel = K.memcpy_h2d(self.model.input_batch_bytes).with_metadata(
            consumes_batch=0)
        self._launch(kernel, layer=None, phase=None,
                     api_name="cudaMemcpyAsync", api_us=self.cpu.memcpy_api_us)

    def _forward(self) -> None:
        for layer in self.model.layers:
            self._layer_window(layer, Phase.FORWARD, layer.forward_kernels)

    def _loss_readback(self) -> None:
        # A blocking DtoH copy: the CPU waits for the stream to drain, then
        # for the copy itself (paper Section 4.2.2 notes cudaMemcpyAsyncDtoH
        # blocks until prior kernels on the stream complete).
        kernel = K.memcpy_d2h(4096)
        api_start = self._cpu_us
        wait = max(0.0, max(self._stream_us, self._stream2_us) - api_start)
        corr = self._correlation()
        copy_start = max(self._stream_us, api_start)
        copy_dur = self._kernel_duration(kernel, Phase.FORWARD)
        self._emit(EventCategory.MEMCPY, kernel.name, copy_start, copy_dur,
                   gpu_stream(DEFAULT_STREAM), correlation_id=corr,
                   size_bytes=kernel.bytes)
        self._stream_us = copy_start + copy_dur
        api_dur = wait + copy_dur + self.cpu.memcpy_api_us
        self._emit(EventCategory.RUNTIME, "cudaMemcpyAsync_DtoH", api_start,
                   api_dur, cpu_thread(0), correlation_id=corr)
        self._cpu_us = api_start + api_dur

    def _backward(self) -> List[_PendingAllReduce]:
        pending: List[_PendingAllReduce] = []
        trigger_to_bucket = {b.trigger_layer: b for b in self.buckets}
        distributed = self.cluster is not None and self.cluster.is_distributed
        for layer in self.model.backward_order():
            self._layer_window(layer, Phase.BACKWARD, layer.backward_kernels)
            bucket = trigger_to_bucket.get(layer.name)
            if distributed and bucket is not None:
                ready = self._stream_us
                if self.sync_before_allreduce:
                    self._sync("cudaStreamSynchronize")
                self._advance_cpu(self.cpu.dispatch_gap_us)
                self._cpu_api("ncclAllReduce", self.cpu.launch_api_us)
                pending.append(_PendingAllReduce(
                    bucket=bucket, ready_us=ready, launch_end_us=self._cpu_us))
        return pending

    def _schedule_allreduces(self, pending: List[_PendingAllReduce]) -> None:
        """Place the NCCL primitives on the comm channel, with contention.

        Runs after backward so overlap with compute (which determines the
        contention penalty) is known.  NCCL serializes its primitives on one
        channel.
        """
        if not pending:
            return
        assert self.cluster is not None
        backward_end = self._stream_us
        link = self.cluster.ring_link_bytes_per_us()
        latency = self.cluster.ring_latency_us()
        overhead = (self.cluster.network.per_primitive_overhead_us
                    if self.cluster.crosses_network else 20.0)
        channel = comm_channel(0)
        for item in pending:
            theoretical = ring_allreduce_time_us(
                item.bucket.size_bytes, self.cluster.n_workers, link, latency)
            start = max(self._comm_us, item.ready_us, item.launch_end_us)
            key = (f"nccl/{self.model.name}/{self.cluster.label()}/"
                   f"{self.cluster.network.bandwidth_gbps:g}/{item.bucket.index}")
            if self.sync_before_allreduce:
                factor = biased_factor(key, _NCCL_SYNCED_LOW, _NCCL_SYNCED_HIGH)
            elif start < backward_end:
                factor = biased_factor(key, _NCCL_CONTENTION_LOW, _NCCL_CONTENTION_HIGH)
            else:
                # Past this iteration's backward the GPU is still never idle
                # in steady state (weight update, the next iteration's
                # forward), so unsynced NCCL kernels keep paying most of the
                # interference penalty (Section 6.5).
                factor = biased_factor(key, _NCCL_CONTENTION_LOW - 0.04,
                                       _NCCL_CONTENTION_HIGH - 0.08)
            duration = theoretical * factor + overhead
            self._emit(EventCategory.COMM, "ncclAllReduceRingLLKernel_sum_f32",
                       start, duration, channel,
                       size_bytes=item.bucket.size_bytes,
                       metadata={"bucket": item.bucket.index,
                                 "theoretical_us": theoretical})
            self._comm_us = start + duration

    def _weight_update(self) -> None:
        if self.cluster is not None and self.cluster.is_distributed:
            # DDP: loss.backward() returns only after all all-reduces finish.
            wait_target = max(self._comm_us, self._stream_us)
            start = self._cpu_us
            dur = max(0.0, wait_target - start) + self.cpu.sync_api_us
            self._emit(EventCategory.RUNTIME, "cudaStreamSynchronize_nccl",
                       start, dur, cpu_thread(0))
            self._cpu_us = start + dur
        if self.optimizer == "fused_adam":
            self._fused_adam_update()
            return
        make_kernels = (K.adam_step_kernels if self.optimizer == "adam"
                        else K.sgd_step_kernels)
        for layer in self.model.backward_order():
            if not layer.params:
                continue
            start = self._cpu_us
            for tensor in layer.params:
                for kernel in make_kernels(tensor.numel):
                    self._advance_cpu(self.cpu.optimizer_gap_us)
                    self._launch(kernel, layer=layer.name,
                                 phase=Phase.WEIGHT_UPDATE.value)
            self._marker(layer.name, Phase.WEIGHT_UPDATE.value, start, self._cpu_us)

    def _fused_adam_update(self) -> None:
        start = self._cpu_us
        self._advance_cpu(self.cpu.optimizer_gap_us * 3)  # multi-tensor setup
        kernel = K.fused_adam_kernel(self.model.param_numel)
        self._launch(kernel, layer="fused_adam", phase=Phase.WEIGHT_UPDATE.value)
        self._marker("fused_adam", Phase.WEIGHT_UPDATE.value, start, self._cpu_us)

    def _final_sync(self) -> None:
        self._sync("cudaDeviceSynchronize")

    # ------------------------------------------------------------- primitives

    def _layer_window(self, layer, phase: Phase, kernels: List[KernelSpec]) -> None:
        """Run one layer phase: marker window around gap+launch per kernel."""
        start = self._cpu_us
        self._advance_cpu(self.cpu.layer_gap_us * self.model.cpu_gap_scale)
        for kernel in kernels:
            self._advance_cpu(self.cpu.dispatch_gap_us * self.model.cpu_gap_scale)
            self._launch(kernel, layer=layer.name, phase=phase.value)
        self._marker(layer.name, phase.value, start, self._cpu_us)

    def _launch(self, kernel: KernelSpec, layer: Optional[str],
                phase: Optional[str], api_name: str = "cudaLaunchKernel",
                api_us: Optional[float] = None) -> None:
        """CPU launch API followed by the GPU-side task on the stream."""
        corr = self._correlation()
        api_dur = self.cpu.launch_api_us if api_us is None else api_us
        api_start = self._cpu_us
        self._emit(EventCategory.RUNTIME, api_name, api_start, api_dur,
                   cpu_thread(0), correlation_id=corr)
        self._cpu_us = api_start + api_dur
        use_second = (self.concurrent_streams and "lstm_gates" in kernel.name)
        stream_id = SECOND_STREAM if use_second else DEFAULT_STREAM
        cursor = self._stream2_us if use_second else self._stream_us
        gpu_start = max(cursor, self._cpu_us)
        duration = self._kernel_duration(kernel, Phase(phase) if phase else None)
        category = (EventCategory.MEMCPY if kernel.kind.is_memcpy
                    else EventCategory.KERNEL)
        # layer/phase here are *oracle* annotations for validating the
        # sync-free mapping — real CUPTI kernels carry no such field, and
        # graph construction only stashes them as metadata, never uses them
        self._emit(category, kernel.name, gpu_start, duration,
                   gpu_stream(stream_id), correlation_id=corr,
                   layer=layer, phase=phase,
                   size_bytes=kernel.bytes if kernel.kind.is_memcpy else 0.0,
                   metadata=dict(kernel.metadata))
        if use_second:
            self._stream2_us = gpu_start + duration
        else:
            self._stream_us = gpu_start + duration

    def _kernel_duration(self, kernel: KernelSpec, phase: Optional[Phase]) -> float:
        """Duration under the configured precision.

        AMP keeps fp32 master weights, so weight-update kernels stay fp32
        even when the forward/backward passes run in fp16.
        """
        precision = self.config.precision
        if phase is Phase.WEIGHT_UPDATE:
            precision = "fp32"
        salt = self._instance_salt(kernel.name)
        return self.cost.duration_us(kernel, precision=precision, key_salt=salt)

    def _sync(self, name: str) -> None:
        start = self._cpu_us
        busy_until = max(self._stream_us, self._stream2_us)
        dur = max(0.0, busy_until - start) + self.cpu.sync_api_us
        self._emit(EventCategory.RUNTIME, name, start, dur, cpu_thread(0))
        self._cpu_us = start + dur

    def _cpu_api(self, name: str, duration: float) -> None:
        self._emit(EventCategory.RUNTIME, name, self._cpu_us, duration,
                   cpu_thread(0))
        self._cpu_us += duration

    def _advance_cpu(self, gap_us: float) -> None:
        """Silent CPU time (Python front-end / dispatch): no trace record —
        Daydream recovers these as inter-task gaps (paper Section 4.2.1)."""
        self._cpu_us += gap_us

    def _marker(self, layer: str, phase: str, start: float, end: float) -> None:
        self._emit(EventCategory.MARKER, f"{layer}#{phase}", start,
                   max(0.0, end - start), cpu_thread(0), layer=layer, phase=phase)

    def _emit(self, category: EventCategory, name: str, start: float,
              duration: float, thread, correlation_id: Optional[int] = None,
              layer: Optional[str] = None, phase: Optional[str] = None,
              size_bytes: float = 0.0, metadata: Optional[dict] = None) -> None:
        self._events.append(TraceEvent(
            category=category, name=name, start_us=start, duration_us=duration,
            thread=thread, correlation_id=correlation_id, layer=layer,
            phase=phase, size_bytes=size_bytes, metadata=metadata or {}))

    def _correlation(self) -> int:
        corr = self._next_corr
        self._next_corr += 1
        return corr

    def _instance_salt(self, name: str) -> str:
        count = self._instance_counts.get(name, 0)
        self._instance_counts[name] = count + 1
        return str(count)

    # ------------------------------------------------------------- metadata

    def _metadata(self) -> Dict[str, object]:
        meta: Dict[str, object] = {
            "model": self.model.name,
            "batch_size": self.model.batch_size,
            "gpu": self.config.gpu.name,
            "cpu": self.config.cpu.name,
            "gpu_spec": dataclasses.asdict(self.config.gpu),
            "cpu_spec": dataclasses.asdict(self.config.cpu),
            "framework": self.config.framework,
            "optimizer": self.optimizer,
            "precision": self.config.precision,
            "cpu_gap_scale": self.model.cpu_gap_scale,
            "buckets": [b.to_dict() for b in self.buckets],
            "layer_order": [l.name for l in self.model.layers],
            "layer_kinds": {l.name: l.kind for l in self.model.layers},
            "layer_grad_bytes": {l.name: l.grad_bytes for l in self.model.layers
                                 if l.grad_bytes},
            "param_tensors": [
                {"layer": l.name, "name": p.name, "numel": p.numel}
                for l in self.model.layers for p in l.params
            ],
        }
        if self.cluster is not None:
            meta["cluster"] = {
                "machines": self.cluster.machines,
                "gpus_per_machine": self.cluster.gpus_per_machine,
                "bandwidth_gbps": self.cluster.network.bandwidth_gbps,
            }
        return meta


def profile_iteration(
    model: ModelSpec,
    config: Optional[TrainingConfig] = None,
    cluster: Optional[ClusterSpec] = None,
    sync_before_allreduce: bool = False,
) -> Trace:
    """Convenience wrapper: run one iteration and return its trace."""
    engine = Engine(model=model, config=config or TrainingConfig(),
                    cluster=cluster, sync_before_allreduce=sync_before_allreduce)
    return engine.run_iteration()
