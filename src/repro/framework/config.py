"""Training configuration: framework, device, precision, optimizer."""

from dataclasses import dataclass, field, replace
from typing import Optional

from repro.common.errors import ConfigError
from repro.hw.device import CPU_EPYC_7601, GPU_2080TI, CPUSpec, GPUSpec

SUPPORTED_FRAMEWORKS = ("pytorch", "mxnet", "caffe")


@dataclass(frozen=True)
class TrainingConfig:
    """How an iteration is executed.

    Attributes:
        framework: execution semantics to emulate. PyTorch uses NCCL
            all-reduce with gradient bucketing; MXNet uses a parameter
            server (push/pull); Caffe is single-GPU in the paper.
        gpu: the GPU model.
        cpu: host-side cost parameters.
        precision: ``"fp32"`` baseline or ``"fp16"`` (AMP ground truth).
        optimizer: ``"sgd"`` / ``"adam"`` / ``"fused_adam"``; ``None`` uses
            the model's default.
        bucket_cap_mb: PyTorch DDP gradient-bucket capacity.
        data_loading_us: duration of the mini-batch load CPU task.
    """

    framework: str = "pytorch"
    gpu: GPUSpec = field(default_factory=lambda: GPU_2080TI)
    cpu: CPUSpec = field(default_factory=lambda: CPU_EPYC_7601)
    precision: str = "fp32"
    optimizer: Optional[str] = None
    bucket_cap_mb: float = 25.0
    data_loading_us: float = 1_500.0

    def __post_init__(self) -> None:
        if self.framework not in SUPPORTED_FRAMEWORKS:
            raise ConfigError(
                f"unknown framework {self.framework!r}; "
                f"supported: {SUPPORTED_FRAMEWORKS}"
            )
        if self.precision not in ("fp32", "fp16"):
            raise ConfigError(f"unknown precision {self.precision!r}")
        if self.optimizer not in (None, "sgd", "adam", "fused_adam"):
            raise ConfigError(f"unknown optimizer {self.optimizer!r}")
        if self.bucket_cap_mb <= 0:
            raise ConfigError("bucket_cap_mb must be positive")
        if self.data_loading_us < 0:
            raise ConfigError("data_loading_us must be non-negative")

    def with_(self, **kwargs: object) -> "TrainingConfig":
        """Return a modified copy (frozen-dataclass convenience)."""
        return replace(self, **kwargs)

    def resolve_optimizer(self, model_default: str) -> str:
        """The optimizer actually used for a given model."""
        return self.optimizer if self.optimizer is not None else model_default
