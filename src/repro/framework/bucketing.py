"""PyTorch-DDP-style gradient bucketing.

PyTorch groups gradients from multiple layers into fixed-capacity buckets
(default 25 MB) and launches one NCCL all-reduce per bucket as soon as every
gradient in the bucket is ready (wait-free backpropagation).  Buckets are
filled in *backward* order: the last layers' gradients are computed first
and go into bucket 0.

Daydream needs this layer-to-bucket mapping — the paper calls it out as the
one piece of extra PyTorch instrumentation required (Section 4.1) — so the
engine records it into trace metadata.
"""

from dataclasses import dataclass
from typing import Dict, List

from repro.common.errors import ConfigError
from repro.common.units import MB
from repro.models.base import ModelSpec


@dataclass(frozen=True)
class Bucket:
    """One gradient bucket.

    Attributes:
        index: bucket id, in all-reduce launch order (backward order).
        size_bytes: total gradient payload.
        layers: names of layers whose gradients the bucket holds.
        trigger_layer: the layer whose backward pass completes the bucket —
            the *last* (in backward order) contributing layer.
    """

    index: int
    size_bytes: int
    layers: tuple
    trigger_layer: str

    def to_dict(self) -> Dict[str, object]:
        """JSON-friendly form for trace metadata."""
        return {
            "index": self.index,
            "size_bytes": self.size_bytes,
            "layers": list(self.layers),
            "trigger_layer": self.trigger_layer,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "Bucket":
        """Inverse of :meth:`to_dict`."""
        return cls(
            index=int(data["index"]),
            size_bytes=int(data["size_bytes"]),
            layers=tuple(data["layers"]),
            trigger_layer=str(data["trigger_layer"]),
        )


def compute_buckets(model: ModelSpec, bucket_cap_mb: float = 25.0) -> List[Bucket]:
    """Assign the model's parameterized layers to DDP gradient buckets.

    Layers are visited in backward order; a bucket closes once it reaches
    capacity.  Layers without parameters contribute nothing.
    """
    if bucket_cap_mb <= 0:
        raise ConfigError("bucket_cap_mb must be positive")
    cap_bytes = bucket_cap_mb * MB
    buckets: List[Bucket] = []
    current_layers: List[str] = []
    current_bytes = 0

    def close_bucket() -> None:
        nonlocal current_layers, current_bytes
        if not current_layers:
            return
        buckets.append(
            Bucket(
                index=len(buckets),
                size_bytes=current_bytes,
                layers=tuple(current_layers),
                trigger_layer=current_layers[-1],
            )
        )
        current_layers = []
        current_bytes = 0

    for layer in model.backward_order():
        if layer.grad_bytes == 0:
            continue
        current_layers.append(layer.name)
        current_bytes += layer.grad_bytes
        if current_bytes >= cap_bytes:
            close_bucket()
    close_bucket()
    return buckets


def layer_to_bucket(buckets: List[Bucket]) -> Dict[str, int]:
    """Invert a bucket list into a layer-name -> bucket-index map."""
    mapping: Dict[str, int] = {}
    for bucket in buckets:
        for layer in bucket.layers:
            if layer in mapping:
                raise ConfigError(f"layer {layer!r} appears in two buckets")
            mapping[layer] = bucket.index
    return mapping
