"""Framework execution substrate: the 'real system' side of the reproduction.

This package stands in for PyTorch/MXNet/Caffe running on a GPU: it executes
a training iteration against the analytical cost model, emitting CUPTI-style
traces, and provides ground-truth implementations of the paper's evaluated
optimizations so Daydream's predictions can be scored against 'reality'.
"""

from repro.framework.config import TrainingConfig
from repro.framework.bucketing import Bucket, compute_buckets
from repro.framework.engine import Engine, profile_iteration

__all__ = [
    "TrainingConfig",
    "Bucket",
    "compute_buckets",
    "Engine",
    "profile_iteration",
]
