"""Ground-truth executions of the paper's evaluated optimizations.

Each function here runs the engine with the optimization *actually applied*
— recomputed kernel durations, new kernel implementations, real contention —
rather than Daydream's heuristic graph edits.  The difference between these
results and Daydream's predictions is the reproduced prediction error of
Figures 5, 7, 8, 10 and Section 6.4.

Ground-truth specifics that Daydream's models do not see:

* **AMP**: per-kernel achieved fp16 speedups from the roofline model
  (2.4-3.2x for tensor-core GEMM/conv, 1.7-2.0x for memory-bound), not the
  flat 3x/2x heuristic;
* **FusedAdam**: the fused multi-tensor kernel is priced by the roofline of
  the *fused* working set (intermediate round-trips eliminated), not a sum
  of removed kernels;
* **Reconstructing batchnorm**: the new BN kernels achieve only ~1.8x (new,
  less-tuned implementation) and introduce extra memory copies and
  allocations (Section 6.4's explanation for the 7% vs 12.7% gap);
* **Distributed**: NCCL primitives pay contention/overhead on top of the
  bandwidth formula (Section 6.5 / Figure 9).
"""

import dataclasses
from dataclasses import dataclass
from typing import List, Optional

from repro.common.errors import ConfigError
from repro.framework.config import TrainingConfig
from repro.framework.engine import Engine
from repro.hw.topology import ClusterSpec
from repro.kernels.kernel import KernelKind, KernelSpec
from repro.models.base import LayerSpec, ModelSpec
from repro.tracing.trace import Trace

#: achieved speedup of the hand-written restructured batchnorm kernels —
#: lower than the idealized 2x because the new implementation is less tuned
RESTRUCTURED_BN_SPEEDUP = 1.55
#: extra data movement the restructured implementation introduces (new CUDA
#: memory copies and allocations, per Section 6.4)
RESTRUCTURED_BN_COPY_FRACTION = 0.45


@dataclass(frozen=True)
class GroundTruthResult:
    """Measured behaviour of a real (simulated-substrate) execution."""

    trace: Trace
    iteration_us: float

    @classmethod
    def from_trace(cls, trace: Trace) -> "GroundTruthResult":
        return cls(trace=trace, iteration_us=trace.duration_us)


def run_baseline(model: ModelSpec,
                 config: Optional[TrainingConfig] = None) -> GroundTruthResult:
    """Plain fp32 single-GPU training."""
    config = config or TrainingConfig()
    trace = Engine(model=model, config=config).run_iteration()
    return GroundTruthResult.from_trace(trace)


def run_amp(model: ModelSpec,
            config: Optional[TrainingConfig] = None) -> GroundTruthResult:
    """Mixed-precision training (Apex AMP): real per-kernel fp16 costs."""
    config = (config or TrainingConfig()).with_(precision="fp16")
    trace = Engine(model=model, config=config).run_iteration()
    return GroundTruthResult.from_trace(trace)


def run_fused_adam(model: ModelSpec,
                   config: Optional[TrainingConfig] = None) -> GroundTruthResult:
    """Training with Apex FusedAdam (single multi-tensor update kernel)."""
    config = (config or TrainingConfig()).with_(optimizer="fused_adam")
    if model.default_optimizer != "adam" and config.optimizer != "fused_adam":
        raise ConfigError("FusedAdam applies to Adam-trained models")
    trace = Engine(model=model, config=config).run_iteration()
    return GroundTruthResult.from_trace(trace)


def run_reconstructed_batchnorm(
    model: ModelSpec,
    config: Optional[TrainingConfig] = None,
) -> GroundTruthResult:
    """Training with Jung et al.'s restructured batchnorm implementation."""
    surgered = apply_batchnorm_restructuring(model)
    config = config or TrainingConfig(framework="caffe")
    trace = Engine(model=surgered, config=config).run_iteration()
    return GroundTruthResult.from_trace(trace)


def run_distributed(
    model: ModelSpec,
    cluster: ClusterSpec,
    config: Optional[TrainingConfig] = None,
    sync_before_allreduce: bool = True,
) -> GroundTruthResult:
    """Data-parallel training on a cluster (NCCL all-reduce).

    ``sync_before_allreduce=True`` matches the paper's Figure-8 baseline
    ("with synchronization before each allReduce").
    """
    config = config or TrainingConfig()
    engine = Engine(model=model, config=config, cluster=cluster,
                    sync_before_allreduce=sync_before_allreduce)
    return GroundTruthResult.from_trace(engine.run_iteration())


# ------------------------------------------------------------- model surgery

def apply_batchnorm_restructuring(model: ModelSpec) -> ModelSpec:
    """Build the restructured-batchnorm variant of a CNN.

    * ReLU layers that directly follow a batchnorm (or sit between BN and
      conv, as in DenseNet's BN-ReLU-Conv units) are fused away;
    * batchnorm kernels get the *achieved* speedup of the new
      implementation;
    * each restructured BN adds a device-to-device copy standing in for the
      extra CUDA memory copies/allocations of the real implementation.
    """
    new_layers: List[LayerSpec] = []
    prev_kind: Optional[str] = None
    for layer in model.layers:
        if layer.kind == "relu" and prev_kind == "batchnorm":
            prev_kind = layer.kind
            continue  # fused into the neighboring conv
        if layer.kind == "batchnorm":
            new_layers.append(_restructure_bn(layer))
        else:
            new_layers.append(layer)
        prev_kind = layer.kind
    return dataclasses.replace(
        model,
        name=f"{model.name}+restructured_bn",
        layers=new_layers,
    )


def _restructure_bn(layer: LayerSpec) -> LayerSpec:
    def rebuild(kernels: List[KernelSpec]) -> List[KernelSpec]:
        out: List[KernelSpec] = []
        for k in kernels:
            if k.kind is KernelKind.BATCHNORM:
                faster = dataclasses.replace(
                    k,
                    name=k.name.replace("batch_norm", "restructured_bn"),
                    flops=k.flops / RESTRUCTURED_BN_SPEEDUP,
                    bytes=k.bytes / RESTRUCTURED_BN_SPEEDUP,
                )
                out.append(faster)
                out.append(KernelSpec(
                    name="CUDA memcpy DtoD (restructured_bn staging)",
                    kind=KernelKind.MEMCPY_D2D,
                    bytes=k.bytes * RESTRUCTURED_BN_COPY_FRACTION,
                ))
            else:
                out.append(k)
        return out

    return LayerSpec(
        name=layer.name,
        kind=layer.kind,
        forward_kernels=rebuild(layer.forward_kernels),
        backward_kernels=rebuild(layer.backward_kernels),
        params=list(layer.params),
    )
