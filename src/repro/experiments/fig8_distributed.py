"""Figure 8: distributed-training runtime predictions across deployments.

For each model, Daydream predicts multi-machine iteration time from a
*single-GPU* profile, across machines x GPUs configurations and network
bandwidths.  Ground truth is the engine running data-parallel with a CUDA
synchronization before each all-reduce (the paper's measurement baseline).

Paper result: at most ~10% error in most configurations, with a few
exceptions at 20/40 Gbps.
"""

from typing import List, Optional, Sequence, Tuple

from repro.analysis.metrics import prediction_error
from repro.analysis.parallel import fork_map
from repro.experiments.common import ExperimentResult
from repro.framework import groundtruth
from repro.scenarios import Scenario, ScenarioRunner

MODELS = ("resnet50", "gnmt", "bert_base", "bert_large")
CONFIGS: Sequence[Tuple[int, int]] = ((1, 1), (2, 1), (3, 1), (4, 1),
                                      (2, 2), (3, 2), (4, 2))
BANDWIDTHS_GBPS = (10, 20, 40)


def run(models: Optional[List[str]] = None,
        bandwidths: Optional[Sequence[float]] = None,
        configs: Optional[Sequence[Tuple[int, int]]] = None,
        processes: Optional[int] = None) -> ExperimentResult:
    """Reproduce Figure 8 (all four sub-figures).

    Every (bandwidth, machines, gpus) cell of a model is one scenario over
    the same single-GPU profile; the grid's predictions fan out across
    cores through the runner (fork-based ``sweep``), and the ground-truth
    engine runs fan out the same way (deterministic: the parallel rows are
    identical to a serial run).
    """
    result = ExperimentResult(
        experiment="fig8",
        title="Distributed training: Daydream prediction vs ground truth",
        headers=["model", "config", "bandwidth_gbps", "ground_truth_ms",
                 "predicted_ms", "prediction_error_%"],
        notes="Paper: at most ~10% error in most configurations.",
    )
    runner = ScenarioRunner()
    for name in models or MODELS:
        base = Scenario(model=name)
        scenarios = [
            base.with_cluster(machines, gpus, bandwidth_gbps=bw).with_(
                optimizations=(["distributed_training"]
                               if machines * gpus > 1 else []))
            for bw in (bandwidths or BANDWIDTHS_GBPS)
            for machines, gpus in (configs or CONFIGS)
        ]
        outcomes = runner.run_grid(scenarios, processes=processes)

        def measure(outcome) -> Optional[float]:
            if not outcome.cluster.is_distributed:
                return None
            truth = groundtruth.run_distributed(
                outcome.model, outcome.cluster, outcome.config,
                sync_before_allreduce=True)
            return truth.iteration_us

        truths = fork_map(measure, outcomes, processes=processes)
        for outcome, truth_us in zip(outcomes, truths):
            bw = outcome.scenario.cluster.bandwidth_gbps
            if truth_us is None:  # single-worker cell: nothing to predict
                result.add_row(name, outcome.cluster.label(), bw,
                               outcome.baseline_us / 1000.0,
                               outcome.baseline_us / 1000.0, 0.0)
            else:
                result.add_row(name, outcome.cluster.label(), bw,
                               truth_us / 1000.0,
                               outcome.predicted_us / 1000.0,
                               prediction_error(outcome.predicted_us,
                                                truth_us) * 100.0)
    return result
