"""Figure 8: distributed-training runtime predictions across deployments.

For each model, Daydream predicts multi-machine iteration time from a
*single-GPU* profile, across machines x GPUs configurations and network
bandwidths.  Ground truth is the engine running data-parallel with a CUDA
synchronization before each all-reduce (the paper's measurement baseline).

Paper result: at most ~10% error in most configurations, with a few
exceptions at 20/40 Gbps.
"""

from typing import List, Optional, Sequence, Tuple

from repro.analysis.metrics import prediction_error
from repro.analysis.parallel import fork_map
from repro.analysis.session import WhatIfSession
from repro.experiments.common import ExperimentResult
from repro.framework import groundtruth
from repro.framework.config import TrainingConfig
from repro.hw.device import GPU_2080TI
from repro.hw.network import NetworkSpec
from repro.hw.topology import ClusterSpec
from repro.models.registry import build_model
from repro.optimizations import DistributedTraining

MODELS = ("resnet50", "gnmt", "bert_base", "bert_large")
CONFIGS: Sequence[Tuple[int, int]] = ((1, 1), (2, 1), (3, 1), (4, 1),
                                      (2, 2), (3, 2), (4, 2))
BANDWIDTHS_GBPS = (10, 20, 40)


def run(models: Optional[List[str]] = None,
        bandwidths: Optional[Sequence[float]] = None,
        configs: Optional[Sequence[Tuple[int, int]]] = None,
        processes: Optional[int] = None) -> ExperimentResult:
    """Reproduce Figure 8 (all four sub-figures).

    The (bandwidth, machines, gpus) cells of each model are independent —
    one ground-truth engine run plus one copy-on-write prediction each — so
    they fan out across cores via :func:`fork_map` (deterministic: the
    parallel rows are identical to a serial run).
    """
    result = ExperimentResult(
        experiment="fig8",
        title="Distributed training: Daydream prediction vs ground truth",
        headers=["model", "config", "bandwidth_gbps", "ground_truth_ms",
                 "predicted_ms", "prediction_error_%"],
        notes="Paper: at most ~10% error in most configurations.",
    )
    config = TrainingConfig()
    for name in models or MODELS:
        model = build_model(name)
        session = WhatIfSession.from_model(model, config=config)
        session.baseline_result  # materialize before the workers fork
        cells = [(bw, machines, gpus)
                 for bw in (bandwidths or BANDWIDTHS_GBPS)
                 for machines, gpus in (configs or CONFIGS)]

        def evaluate(cell: Tuple[float, int, int]) -> Tuple:
            bw, machines, gpus = cell
            network = NetworkSpec(bandwidth_gbps=bw)
            cluster = ClusterSpec(machines, gpus, GPU_2080TI, network)
            if not cluster.is_distributed:
                return (name, cluster.label(), bw,
                        session.baseline_us / 1000.0,
                        session.baseline_us / 1000.0, 0.0)
            truth = groundtruth.run_distributed(
                model, cluster, config, sync_before_allreduce=True)
            pred = session.predict(DistributedTraining(), cluster=cluster)
            return (name, cluster.label(), bw,
                    truth.iteration_us / 1000.0,
                    pred.predicted_us / 1000.0,
                    prediction_error(pred.predicted_us,
                                     truth.iteration_us) * 100.0)

        for row in fork_map(evaluate, cells, processes=processes):
            result.add_row(*row)
    return result
