"""Figure 8: distributed-training runtime predictions across deployments.

For each model, Daydream predicts multi-machine iteration time from a
*single-GPU* profile, across machines x GPUs configurations and network
bandwidths.  Ground truth is the engine running data-parallel with a CUDA
synchronization before each all-reduce (the paper's measurement baseline).

Paper result: at most ~10% error in most configurations, with a few
exceptions at 20/40 Gbps.

With ``jobs=``/``store=`` the grid runs on the scenario batch substrate:
predictions fan out over the process-pool executor and both the prediction
and ground-truth rows persist in a :class:`~repro.scenarios.store.SweepStore`
(ground truth under the ``groundtruth:ddp-sync`` kind), so a re-run — after
a crash, or with more bandwidth points — only simulates the new cells.
"""

from typing import List, Optional, Sequence, Tuple

from repro.analysis.metrics import prediction_error
from repro.analysis.parallel import default_processes
from repro.experiments.common import (
    ExperimentResult,
    cached_measurements,
    experiment_store,
)
from repro.framework import groundtruth
from repro.scenarios import Scenario, ScenarioRunner

MODELS = ("resnet50", "gnmt", "bert_base", "bert_large")
CONFIGS: Sequence[Tuple[int, int]] = ((1, 1), (2, 1), (3, 1), (4, 1),
                                      (2, 2), (3, 2), (4, 2))
BANDWIDTHS_GBPS = (10, 20, 40)

#: store kind for the measured (engine) side of each cell — the
#: measurement depends only on (model, cluster, config), so it is keyed
#: on the stack-stripped scenario and every experiment sharing a
#: deployment (e.g. fig9b's sync cells) shares one entry
GROUNDTRUTH_KIND = "groundtruth:ddp-sync"


def run(models: Optional[List[str]] = None,
        bandwidths: Optional[Sequence[float]] = None,
        configs: Optional[Sequence[Tuple[int, int]]] = None,
        processes: Optional[int] = None,
        jobs: Optional[int] = None,
        store=None, force: bool = False) -> ExperimentResult:
    """Reproduce Figure 8 (all four sub-figures).

    Every (bandwidth, machines, gpus) cell of a model is one scenario over
    the same single-GPU profile.  By default the grid's predictions fan out
    across cores through the runner (fork-based ``sweep``) and the
    ground-truth engine runs fan out the same way; with ``jobs=`` or
    ``store=`` the predictions run on the process-pool batch executor and
    results persist/resume through the store.  All paths are deterministic:
    parallel rows are identical to a serial run.
    """
    result = ExperimentResult(
        experiment="fig8",
        title="Distributed training: Daydream prediction vs ground truth",
        headers=["model", "config", "bandwidth_gbps", "ground_truth_ms",
                 "predicted_ms", "prediction_error_%"],
        notes="Paper: at most ~10% error in most configurations.",
    )
    store = experiment_store(store)
    runner = ScenarioRunner()
    for name in models or MODELS:
        base = Scenario(model=name)
        scenarios = [
            base.with_cluster(machines, gpus, bandwidth_gbps=bw).with_(
                optimizations=(["distributed_training"]
                               if machines * gpus > 1 else []))
            for bw in (bandwidths or BANDWIDTHS_GBPS)
            for machines, gpus in (configs or CONFIGS)
        ]
        outcomes = runner.run_grid(scenarios, processes=processes,
                                   parallel=jobs, store=store, force=force)

        # store reads/writes happen here in the parent; only the missing
        # engine runs fan out (single-worker cells have nothing to
        # measure), across one worker per CPU unless told otherwise
        measure_jobs = jobs if jobs is not None else processes
        if measure_jobs is None:
            measure_jobs = default_processes()
        distributed = [o for o in outcomes if o.cluster.is_distributed]
        measured = iter(cached_measurements(
            [(o.scenario, GROUNDTRUTH_KIND,
              lambda o=o: groundtruth.run_distributed(
                  o.model, o.cluster, o.config,
                  sync_before_allreduce=True).iteration_us)
             for o in distributed],
            store=store, force=force, jobs=measure_jobs))
        truths = [next(measured) if o.cluster.is_distributed else None
                  for o in outcomes]
        for outcome, truth_us in zip(outcomes, truths):
            bw = outcome.scenario.cluster.bandwidth_gbps
            if truth_us is None:  # single-worker cell: nothing to predict
                result.add_row(name, outcome.cluster.label(), bw,
                               outcome.baseline_us / 1000.0,
                               outcome.baseline_us / 1000.0, 0.0)
            else:
                result.add_row(name, outcome.cluster.label(), bw,
                               truth_us / 1000.0,
                               outcome.predicted_us / 1000.0,
                               prediction_error(outcome.predicted_us,
                                                truth_us) * 100.0)
    return result
