"""Figure 7: FusedAdam — baseline, ground truth, and Daydream's prediction.

Paper result: predictions within 13% of ground truth on BERT_base,
BERT_large and GNMT; BERT models improve dramatically (weight update is
30-45% of their iteration and launch-bound), GNMT only ~9% (its update
phase is under 10% of the iteration).
"""

from typing import List, Optional

from repro.analysis.metrics import improvement_percent, prediction_error
from repro.analysis.session import WhatIfSession
from repro.experiments.common import ExperimentResult
from repro.framework import groundtruth
from repro.framework.config import TrainingConfig
from repro.models.registry import build_model
from repro.optimizations import FusedAdam

MODELS = ("bert_base", "bert_large", "gnmt")


def run(models: Optional[List[str]] = None) -> ExperimentResult:
    """Reproduce Figure 7."""
    result = ExperimentResult(
        experiment="fig7",
        title="FusedAdam: baseline vs ground truth vs Daydream prediction",
        headers=["model", "baseline_ms", "ground_truth_ms", "predicted_ms",
                 "gt_improvement_%", "prediction_error_%", "wu_kernels"],
        notes=("Paper: BERT_large improves 38.7% with <7% error; the unfused "
               "update launches 2,633 (base) / 5,164 (large) kernels."),
    )
    config = TrainingConfig()
    for name in models or MODELS:
        model = build_model(name)
        session = WhatIfSession.from_model(model, config=config)
        wu_kernels = sum(
            1 for t in session.graph.tasks()
            if t.is_gpu and t.phase == "weight_update"
        )
        prediction = session.predict(FusedAdam())
        truth = groundtruth.run_fused_adam(model, config)
        result.add_row(
            name,
            session.baseline_us / 1000.0,
            truth.iteration_us / 1000.0,
            prediction.predicted_us / 1000.0,
            improvement_percent(session.baseline_us, truth.iteration_us),
            prediction_error(prediction.predicted_us, truth.iteration_us) * 100.0,
            wu_kernels,
        )
    return result
