"""Figure 7: FusedAdam — baseline, ground truth, and Daydream's prediction.

Paper result: predictions within 13% of ground truth on BERT_base,
BERT_large and GNMT; BERT models improve dramatically (weight update is
30-45% of their iteration and launch-bound), GNMT only ~9% (its update
phase is under 10% of the iteration).

Predictions run locally (the ``wu_kernels`` column counts weight-update
kernels on the profiled session's graph), but the engine ground truth of
each model persists in a :class:`~repro.scenarios.store.SweepStore` under
``kind="groundtruth:fused-adam"`` when ``store=`` is given — a second run
skips every engine measurement.
"""

from typing import List, Optional

from repro.analysis.metrics import improvement_percent, prediction_error
from repro.experiments.common import (
    ExperimentResult,
    cached_measurements,
    experiment_store,
)
from repro.framework import groundtruth
from repro.scenarios import Scenario, ScenarioRunner

MODELS = ("bert_base", "bert_large", "gnmt")

#: store kind for the measured (engine) FusedAdam iteration of each model
GROUNDTRUTH_KIND = "groundtruth:fused-adam"


def run(models: Optional[List[str]] = None,
        jobs: Optional[int] = None,
        store=None, force: bool = False) -> ExperimentResult:
    """Reproduce Figure 7.

    Args:
        models: subset of :data:`MODELS` to evaluate.
        jobs: fan the per-model engine measurements across fork workers.
        store: a :class:`~repro.scenarios.store.SweepStore` (or its
            directory path) caching the ground-truth measurements.
        force: recompute measurements even on store hits.
    """
    result = ExperimentResult(
        experiment="fig7",
        title="FusedAdam: baseline vs ground truth vs Daydream prediction",
        headers=["model", "baseline_ms", "ground_truth_ms", "predicted_ms",
                 "gt_improvement_%", "prediction_error_%", "wu_kernels"],
        notes=("Paper: BERT_large improves 38.7% with <7% error; the unfused "
               "update launches 2,633 (base) / 5,164 (large) kernels."),
    )
    store = experiment_store(store)
    runner = ScenarioRunner()
    outcomes = [runner.run(Scenario(model=name,
                                    optimizations=["fused_adam"]))
                for name in models or MODELS]

    truths = cached_measurements(
        [(o.scenario, GROUNDTRUTH_KIND,
          lambda o=o: groundtruth.run_fused_adam(o.model,
                                                 o.config).iteration_us)
         for o in outcomes],
        store=store, force=force, jobs=jobs)
    for outcome, truth_us in zip(outcomes, truths):
        wu_kernels = sum(
            1 for t in outcome.session.graph.tasks()
            if t.is_gpu and t.phase == "weight_update"
        )
        result.add_row(
            outcome.scenario.model,
            outcome.baseline_us / 1000.0,
            truth_us / 1000.0,
            outcome.predicted_us / 1000.0,
            improvement_percent(outcome.baseline_us, truth_us),
            prediction_error(outcome.predicted_us, truth_us) * 100.0,
            wu_kernels,
        )
    return result
