"""Figure 7: FusedAdam — baseline, ground truth, and Daydream's prediction.

Paper result: predictions within 13% of ground truth on BERT_base,
BERT_large and GNMT; BERT models improve dramatically (weight update is
30-45% of their iteration and launch-bound), GNMT only ~9% (its update
phase is under 10% of the iteration).
"""

from typing import List, Optional

from repro.analysis.metrics import improvement_percent, prediction_error
from repro.experiments.common import ExperimentResult
from repro.framework import groundtruth
from repro.scenarios import Scenario, ScenarioRunner

MODELS = ("bert_base", "bert_large", "gnmt")


def run(models: Optional[List[str]] = None) -> ExperimentResult:
    """Reproduce Figure 7."""
    result = ExperimentResult(
        experiment="fig7",
        title="FusedAdam: baseline vs ground truth vs Daydream prediction",
        headers=["model", "baseline_ms", "ground_truth_ms", "predicted_ms",
                 "gt_improvement_%", "prediction_error_%", "wu_kernels"],
        notes=("Paper: BERT_large improves 38.7% with <7% error; the unfused "
               "update launches 2,633 (base) / 5,164 (large) kernels."),
    )
    runner = ScenarioRunner()
    for name in models or MODELS:
        outcome = runner.run(Scenario(model=name,
                                      optimizations=["fused_adam"]))
        wu_kernels = sum(
            1 for t in outcome.session.graph.tasks()
            if t.is_gpu and t.phase == "weight_update"
        )
        truth = groundtruth.run_fused_adam(outcome.model, outcome.config)
        result.add_row(
            name,
            outcome.baseline_us / 1000.0,
            truth.iteration_us / 1000.0,
            outcome.predicted_us / 1000.0,
            improvement_percent(outcome.baseline_us, truth.iteration_us),
            prediction_error(outcome.predicted_us, truth.iteration_us) * 100.0,
            wu_kernels,
        )
    return result
