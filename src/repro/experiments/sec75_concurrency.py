"""Section 7.5: concurrent kernels and Daydream's conservative estimates.

CUPTI serializes GPU kernels while profiling, so Daydream's dependency
graph — built from a serialized profile — cannot express the limited
kernel concurrency some models exhibit (e.g. GNMT's recurrent cell kernels
overlapping other work).  The paper argues this makes Daydream's estimates
*conservative* but still accurate for GNMT, because the bulk of its compute
sits in fully-connected/embedding GEMMs with no concurrent peers.

This experiment reproduces the argument: the ground truth executes
recurrent kernels on a second stream (real concurrency); the prediction
simulates the serialized profile; the gap is the conservatism, and it is
small.
"""

from repro.analysis.metrics import prediction_error
from repro.analysis.session import WhatIfSession
from repro.experiments.common import ExperimentResult
from repro.framework.config import TrainingConfig
from repro.framework.engine import Engine
from repro.models.registry import build_model


def run(model_name: str = "gnmt") -> ExperimentResult:
    """Compare serialized-profile prediction against concurrent execution."""
    result = ExperimentResult(
        experiment="sec75",
        title="Concurrent kernels: serialized profile vs concurrent truth",
        headers=["quantity", "value"],
        notes=("Paper Section 7.5: profilers serialize kernels, making the "
               "estimate conservative; GNMT stays accurate because its "
               "dominant GEMMs have no concurrent peers."),
    )
    model = build_model(model_name)
    config = TrainingConfig()

    serialized = Engine(model=model, config=config).run_iteration()
    session = WhatIfSession.from_trace(serialized, config)
    predicted = session.baseline_us

    concurrent = Engine(model=model, config=config,
                        concurrent_streams=True).run_iteration()
    truth = concurrent.duration_us

    result.add_row("serialized_profile_ms", serialized.duration_us / 1000.0)
    result.add_row("predicted_ms", predicted / 1000.0)
    result.add_row("concurrent_ground_truth_ms", truth / 1000.0)
    result.add_row("conservatism_%", (predicted - truth) / truth * 100.0)
    result.add_row("prediction_error_%",
                   prediction_error(predicted, truth) * 100.0)
    result.add_row("gpu_streams_in_concurrent_trace",
                   sum(1 for t in concurrent.threads() if t.is_gpu))
    return result
