"""Section 6.4: reconstructing batchnorm on DenseNet-121 (Caffe).

Paper result: Daydream predicts a 12.7% improvement — less promising than
the 17.5% the optimization's own paper claims — and the measured ground
truth is even lower (~7%), because the restructured implementation's new
kernels are slower than the idealized 2x estimate and it introduces extra
CUDA memory copies/allocations.
"""

from repro.analysis.metrics import improvement_percent, prediction_error
from repro.experiments.common import (
    ExperimentResult,
    cached_measurement,
    experiment_store,
)
from repro.framework import groundtruth
from repro.framework.config import TrainingConfig
from repro.scenarios import Scenario, ScenarioRunner

#: store kind for the measured (engine) restructured-batchnorm iteration
GROUNDTRUTH_KIND = "groundtruth:reconstruct-batchnorm"

#: Caffe's convolution path on DenseNet's many narrow layers achieves far
#: lower arithmetic efficiency than tuned cuDNN kernels; this calibration
#: reproduces the paper's Caffe runtime composition.
CAFFE_CONV_EFFICIENCY = 0.22


def caffe_scenario(model_name: str = "densenet121") -> Scenario:
    """The Caffe/DenseNet what-if of Section 6.4, as a declared scenario."""
    return Scenario(
        model=model_name,
        framework="caffe",
        gpu={"preset": "2080ti", "compute_efficiency": CAFFE_CONV_EFFICIENCY},
        optimizations=["reconstruct_batchnorm"],
    )


def caffe_config() -> TrainingConfig:
    """The Caffe/DenseNet training configuration of Section 6.4."""
    return caffe_scenario().build_config()


def run(model_name: str = "densenet121",
        store=None, force: bool = False) -> ExperimentResult:
    """Reproduce the Section 6.4 comparison.

    With ``store=`` the single engine measurement persists in a
    :class:`~repro.scenarios.store.SweepStore` under
    ``kind="groundtruth:reconstruct-batchnorm"``.
    """
    result = ExperimentResult(
        experiment="sec64",
        title="Reconstructing batchnorm on DenseNet-121 (Caffe)",
        headers=["quantity", "value"],
        notes=("Paper: predicted 12.7% vs claimed 17.5%; ground truth ~7%. "
               "Prediction correctly flags the optimization as less "
               "promising than claimed."),
    )
    store = experiment_store(store)
    outcome = ScenarioRunner().run(caffe_scenario(model_name))
    truth_us = cached_measurement(
        outcome.scenario, GROUNDTRUTH_KIND,
        lambda: groundtruth.run_reconstructed_batchnorm(
            outcome.model, outcome.config).iteration_us,
        store=store, force=force)

    gt_improvement = improvement_percent(outcome.baseline_us, truth_us)
    result.add_row("baseline_ms", outcome.baseline_us / 1000.0)
    result.add_row("predicted_ms", outcome.predicted_us / 1000.0)
    result.add_row("ground_truth_ms", truth_us / 1000.0)
    result.add_row("predicted_improvement_%", outcome.improvement_percent)
    result.add_row("ground_truth_improvement_%", gt_improvement)
    result.add_row("prediction_error_%", prediction_error(
        outcome.predicted_us, truth_us) * 100.0)
    result.add_row("paper_predicted_improvement_%", 12.7)
    result.add_row("paper_ground_truth_improvement_%", 7.0)
    return result
