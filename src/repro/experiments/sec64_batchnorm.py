"""Section 6.4: reconstructing batchnorm on DenseNet-121 (Caffe).

Paper result: Daydream predicts a 12.7% improvement — less promising than
the 17.5% the optimization's own paper claims — and the measured ground
truth is even lower (~7%), because the restructured implementation's new
kernels are slower than the idealized 2x estimate and it introduces extra
CUDA memory copies/allocations.
"""

import dataclasses

from repro.analysis.metrics import improvement_percent, prediction_error
from repro.analysis.session import WhatIfSession
from repro.experiments.common import ExperimentResult
from repro.framework import groundtruth
from repro.framework.config import TrainingConfig
from repro.hw.device import GPU_2080TI
from repro.models.registry import build_model
from repro.optimizations import ReconstructBatchnorm

#: Caffe's convolution path on DenseNet's many narrow layers achieves far
#: lower arithmetic efficiency than tuned cuDNN kernels; this calibration
#: reproduces the paper's Caffe runtime composition.
CAFFE_CONV_EFFICIENCY = 0.22


def caffe_config() -> TrainingConfig:
    """The Caffe/DenseNet configuration of Section 6.4."""
    gpu = dataclasses.replace(GPU_2080TI,
                              compute_efficiency=CAFFE_CONV_EFFICIENCY)
    return TrainingConfig(framework="caffe", gpu=gpu)


def run(model_name: str = "densenet121") -> ExperimentResult:
    """Reproduce the Section 6.4 comparison."""
    result = ExperimentResult(
        experiment="sec64",
        title="Reconstructing batchnorm on DenseNet-121 (Caffe)",
        headers=["quantity", "value"],
        notes=("Paper: predicted 12.7% vs claimed 17.5%; ground truth ~7%. "
               "Prediction correctly flags the optimization as less "
               "promising than claimed."),
    )
    config = caffe_config()
    model = build_model(model_name)
    session = WhatIfSession.from_model(model, config=config)
    prediction = session.predict(ReconstructBatchnorm())
    truth = groundtruth.run_reconstructed_batchnorm(model, config)

    gt_improvement = improvement_percent(session.baseline_us, truth.iteration_us)
    result.add_row("baseline_ms", session.baseline_us / 1000.0)
    result.add_row("predicted_ms", prediction.predicted_us / 1000.0)
    result.add_row("ground_truth_ms", truth.iteration_us / 1000.0)
    result.add_row("predicted_improvement_%", prediction.improvement_percent)
    result.add_row("ground_truth_improvement_%", gt_improvement)
    result.add_row("prediction_error_%", prediction_error(
        prediction.predicted_us, truth.iteration_us) * 100.0)
    result.add_row("paper_predicted_improvement_%", 12.7)
    result.add_row("paper_ground_truth_improvement_%", 7.0)
    return result
