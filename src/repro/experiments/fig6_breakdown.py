"""Figure 6: runtime breakdown of baseline (FP32) and mixed precision (FP16).

Paper result: AMP mostly shrinks the GPU-only component; CPU runtime barely
changes, and on BERT models the CPU becomes the new bottleneck —
demonstrating why kernel-level (not layer-level) modeling is necessary.
"""

from typing import List, Optional

from repro.core.breakdown import compute_breakdown
from repro.core.construction import build_graph
from repro.core.simulate import simulate
from repro.experiments.common import ExperimentResult
from repro.framework.config import TrainingConfig
from repro.framework.engine import Engine
from repro.models.registry import build_model

MODELS = ("resnet50", "gnmt", "bert_base", "bert_large")


def run(models: Optional[List[str]] = None) -> ExperimentResult:
    """Reproduce Figure 6."""
    result = ExperimentResult(
        experiment="fig6",
        title="Runtime breakdown: CPU-only / GPU-only / CPU+GPU, FP32 vs FP16",
        headers=["model", "precision", "total_ms", "cpu_only_ms",
                 "gpu_only_ms", "parallel_ms"],
        notes=("Paper: FP16 shifts CPU+GPU parallel time into CPU-only time; "
               "the GPU-only component shrinks while CPU time is unchanged."),
    )
    for name in models or MODELS:
        model = build_model(name)
        for precision in ("fp32", "fp16"):
            config = TrainingConfig(precision=precision)
            trace = Engine(model=model, config=config).run_iteration()
            graph = build_graph(trace)
            breakdown = compute_breakdown(graph, simulate(graph))
            result.add_row(name, precision, *breakdown.as_row())
    return result
