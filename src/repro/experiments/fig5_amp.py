"""Figure 5: AMP — baseline, ground truth, and Daydream's prediction.

Paper result: predictions within 13% of ground truth for BERT_base,
BERT_large, Seq2Seq (GNMT) and ResNet-50; AMP speedups generally below 2x,
far below the 3x per-kernel ideal, because CPU time is untouched.
"""

from typing import List, Optional

from repro.analysis.metrics import improvement_percent, prediction_error
from repro.experiments.common import ExperimentResult
from repro.framework import groundtruth
from repro.scenarios import Scenario, ScenarioRunner

MODELS = ("bert_base", "bert_large", "gnmt", "resnet50")


def run(models: Optional[List[str]] = None) -> ExperimentResult:
    """Reproduce Figure 5."""
    result = ExperimentResult(
        experiment="fig5",
        title="AMP: baseline vs ground truth vs Daydream prediction",
        headers=["model", "baseline_ms", "ground_truth_ms", "predicted_ms",
                 "gt_improvement_%", "prediction_error_%"],
        notes=("Paper: <13% error on all four models; e.g. BERT_large "
               "improves 17.2% with <3% error."),
    )
    runner = ScenarioRunner()
    for name in models or MODELS:
        outcome = runner.run(Scenario(model=name, optimizations=["amp"]))
        truth = groundtruth.run_amp(outcome.model, outcome.config)
        result.add_row(
            name,
            outcome.baseline_us / 1000.0,
            truth.iteration_us / 1000.0,
            outcome.predicted_us / 1000.0,
            improvement_percent(outcome.baseline_us, truth.iteration_us),
            prediction_error(outcome.predicted_us, truth.iteration_us) * 100.0,
        )
    return result
