"""Figure 5: AMP — baseline, ground truth, and Daydream's prediction.

Paper result: predictions within 13% of ground truth for BERT_base,
BERT_large, Seq2Seq (GNMT) and ResNet-50; AMP speedups generally below 2x,
far below the 3x per-kernel ideal, because CPU time is untouched.

With ``jobs=``/``store=`` the per-model predictions run on the scenario
batch substrate and both the prediction rows (``kind="predict"``) and the
measured AMP iterations (``kind="groundtruth:amp"``) persist in a
:class:`~repro.scenarios.store.SweepStore`, so a re-run skips the engine
and simulator entirely.
"""

from typing import List, Optional

from repro.analysis.metrics import improvement_percent, prediction_error
from repro.experiments.common import (
    ExperimentResult,
    cached_measurements,
    experiment_store,
)
from repro.framework import groundtruth
from repro.scenarios import Scenario, ScenarioRunner

MODELS = ("bert_base", "bert_large", "gnmt", "resnet50")

#: store kind for the measured (engine) AMP iteration of each model
GROUNDTRUTH_KIND = "groundtruth:amp"


def run(models: Optional[List[str]] = None,
        jobs: Optional[int] = None,
        store=None, force: bool = False) -> ExperimentResult:
    """Reproduce Figure 5.

    Args:
        models: subset of :data:`MODELS` to evaluate.
        jobs: fan predictions and engine measurements across processes.
        store: a :class:`~repro.scenarios.store.SweepStore` (or its
            directory path) caching predictions and ground truth.
        force: recompute cells even on store hits.
    """
    result = ExperimentResult(
        experiment="fig5",
        title="AMP: baseline vs ground truth vs Daydream prediction",
        headers=["model", "baseline_ms", "ground_truth_ms", "predicted_ms",
                 "gt_improvement_%", "prediction_error_%"],
        notes=("Paper: <13% error on all four models; e.g. BERT_large "
               "improves 17.2% with <3% error."),
    )
    store = experiment_store(store)
    runner = ScenarioRunner()
    scenarios = [Scenario(model=name, optimizations=["amp"])
                 for name in models or MODELS]
    if jobs is not None or store is not None:
        outcomes = runner.run_grid(scenarios, parallel=jobs, store=store,
                                   force=force)
    else:
        outcomes = [runner.run(s) for s in scenarios]

    truths = cached_measurements(
        [(o.scenario, GROUNDTRUTH_KIND,
          lambda o=o: groundtruth.run_amp(o.model, o.config).iteration_us)
         for o in outcomes],
        store=store, force=force, jobs=jobs)
    for outcome, truth_us in zip(outcomes, truths):
        result.add_row(
            outcome.scenario.model,
            outcome.baseline_us / 1000.0,
            truth_us / 1000.0,
            outcome.predicted_us / 1000.0,
            improvement_percent(outcome.baseline_us, truth_us),
            prediction_error(outcome.predicted_us, truth_us) * 100.0,
        )
    return result
