"""Figure 1: NVProf-style timeline of one ResNet-50 training iteration.

The paper's Figure 1 shows the raw profiler view that motivates Daydream:
CPU threads, the default GPU stream, and CUDA memory copies, with highly
serialized low-level tasks.  We render the equivalent ASCII timeline from
our CUPTI-like trace.
"""

from repro.experiments.common import ExperimentResult
from repro.framework.config import TrainingConfig
from repro.framework.engine import Engine
from repro.models.registry import build_model
from repro.tracing.records import EventCategory
from repro.tracing.trace import render_timeline


def run(model_name: str = "resnet50", width: int = 100) -> ExperimentResult:
    """Reproduce Figure 1 (as statistics plus an ASCII timeline)."""
    model = build_model(model_name)
    trace = Engine(model=model, config=TrainingConfig()).run_iteration()
    result = ExperimentResult(
        experiment="fig1",
        title=f"Profiler timeline of one {model_name} iteration",
        headers=["quantity", "value"],
        notes=render_timeline(trace, width=width),
    )
    kernels = trace.by_category(EventCategory.KERNEL)
    runtime = trace.by_category(EventCategory.RUNTIME)
    memcpy = trace.by_category(EventCategory.MEMCPY)
    result.add_row("iteration_ms", trace.duration_us / 1000.0)
    result.add_row("gpu_kernels", len(kernels))
    result.add_row("runtime_apis", len(runtime))
    result.add_row("memcpys", len(memcpy))
    result.add_row("threads", len(trace.threads()))
    return result
