"""Shared experiment plumbing: the result container and ground-truth caching.

Every experiment module renders its figure/table through
:class:`ExperimentResult`, and every experiment that compares against an
*engine measurement* (the paper's ground truth) caches that measurement
through :func:`cached_measurement` — one namespaced ``groundtruth:*`` kind
per measurement family in the shared
:class:`~repro.scenarios.store.SweepStore`, so re-runs (and other
experiments sharing a deployment) skip the engine entirely.
"""

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

from repro.common.texttable import render_table


def cached_measurements(requests: Sequence[tuple], store=None,
                        force: bool = False, jobs: Optional[int] = None,
                        field_name: str = "iteration_us") -> List[float]:
    """A batch of engine ground-truth numbers, served from the sweep store.

    Each request is a ``(scenario, kind, compute)`` triple.  Entries are
    keyed on the *stack-stripped* scenario (optimizations and schedule
    policy removed) plus ``kind``: an engine measurement depends on the
    workload and deployment, not on what Daydream predicts on top, so
    every experiment sharing a deployment shares one entry — the ``kind``
    namespace (``"groundtruth:amp"``, ``"groundtruth:ddp-sync"``, ...)
    must therefore encode everything the measurement depends on beyond
    the stripped scenario.

    All store reads and writes happen in the *parent* process; only the
    cache-missing ``compute`` callables fan out across fork workers
    (``jobs``).  That keeps ``store.stats`` honest, lets a ``max_bytes``
    cap see every write, and still persists each measurement.  Because
    every read goes through :meth:`SweepStore.get`, a store constructed
    with a ``remote`` tier serves ground truth read-through from the
    shared server *transparently* — experiments need no remote-specific
    code, and a corrupt or unreachable remote is simply a miss that
    re-measures locally.

    Args:
        requests: ``(scenario, kind, compute)`` triples; ``compute`` is a
            zero-argument callable producing the measurement in
            microseconds, only called on a miss (or with ``force``).
        store: a :class:`~repro.scenarios.store.SweepStore`, or ``None``
            to always compute.
        force: recompute and overwrite even on hits.
        jobs: fork workers for the missing computes (``None``/1 = serial).
        field_name: the key each number is stored under.

    Returns:
        The measured (or cache-served) values, in request order.
    """
    def keyed(scenario):
        return scenario.with_(optimizations=[], schedule_policy=None)

    results: List[Optional[float]] = [None] * len(requests)
    pending: List[int] = []
    for index, (scenario, kind, _compute) in enumerate(requests):
        if store is not None and not force:
            values = store.get(keyed(scenario), kind=kind)
            if values is not None \
                    and isinstance(values.get(field_name), float):
                results[index] = values[field_name]
                continue
        pending.append(index)

    if pending:
        from repro.analysis.parallel import fork_map
        computed = fork_map(lambda i: float(requests[i][2]()), pending,
                            processes=jobs or 1)
        for index, value in zip(pending, computed):
            scenario, kind, _compute = requests[index]
            if store is not None:
                store.put(keyed(scenario), {field_name: value}, kind=kind)
            results[index] = value
    return results


def cached_measurement(scenario, kind: str, compute: Callable[[], float],
                       store=None, force: bool = False,
                       field_name: str = "iteration_us") -> float:
    """One engine ground-truth number, served from the sweep store.

    The single-request form of :func:`cached_measurements` (same keying
    and caching contract).
    """
    return cached_measurements([(scenario, kind, compute)], store=store,
                               force=force, field_name=field_name)[0]


def experiment_store(store) -> Optional[object]:
    """Normalize an experiment's ``store=`` argument.

    Experiments accept either an opened
    :class:`~repro.scenarios.store.SweepStore` or a directory path (the
    CLI hands through ``--store``); ``None`` stays ``None``.
    """
    import os
    if store is None or not isinstance(store, (str, bytes, os.PathLike)):
        return store
    from repro.scenarios.store import SweepStore
    return SweepStore(os.fspath(store))


@dataclass
class ExperimentResult:
    """Rows of one reproduced table/figure.

    Attributes:
        experiment: identifier (``fig5``, ``sec64``, ...).
        title: human-readable description.
        headers: column names.
        rows: one list per data point, matching ``headers``.
        notes: free-form commentary (calibration assumptions, caveats).
    """

    experiment: str
    title: str
    headers: Sequence[str]
    rows: List[List[object]] = field(default_factory=list)
    notes: str = ""

    def add_row(self, *cells: object) -> None:
        """Append one data point."""
        if len(cells) != len(self.headers):
            raise ValueError(
                f"{self.experiment}: row has {len(cells)} cells, "
                f"expected {len(self.headers)}"
            )
        self.rows.append(list(cells))

    def render(self) -> str:
        """Render as a fixed-width text table."""
        body = render_table(self.headers, self.rows,
                            title=f"[{self.experiment}] {self.title}")
        if self.notes:
            body += f"\n\n{self.notes}"
        return body

    def column(self, name: str) -> List[object]:
        """All values of one column."""
        idx = list(self.headers).index(name)
        return [row[idx] for row in self.rows]
