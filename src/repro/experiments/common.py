"""Shared experiment-result container."""

from dataclasses import dataclass, field
from typing import List, Sequence

from repro.common.texttable import render_table


@dataclass
class ExperimentResult:
    """Rows of one reproduced table/figure.

    Attributes:
        experiment: identifier (``fig5``, ``sec64``, ...).
        title: human-readable description.
        headers: column names.
        rows: one list per data point, matching ``headers``.
        notes: free-form commentary (calibration assumptions, caveats).
    """

    experiment: str
    title: str
    headers: Sequence[str]
    rows: List[List[object]] = field(default_factory=list)
    notes: str = ""

    def add_row(self, *cells: object) -> None:
        """Append one data point."""
        if len(cells) != len(self.headers):
            raise ValueError(
                f"{self.experiment}: row has {len(cells)} cells, "
                f"expected {len(self.headers)}"
            )
        self.rows.append(list(cells))

    def render(self) -> str:
        """Render as a fixed-width text table."""
        body = render_table(self.headers, self.rows,
                            title=f"[{self.experiment}] {self.title}")
        if self.notes:
            body += f"\n\n{self.notes}"
        return body

    def column(self, name: str) -> List[object]:
        """All values of one column."""
        idx = list(self.headers).index(name)
        return [row[idx] for row in self.rows]
