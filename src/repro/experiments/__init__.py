"""Experiment runners: one module per paper table/figure.

Every runner returns an :class:`ExperimentResult` with the same rows/series
the paper reports, plus a text rendering.  The benchmark harness under
``benchmarks/`` wraps these runners with pytest-benchmark.
"""

from repro.experiments.common import ExperimentResult

__all__ = ["ExperimentResult"]
