"""Section 5.2: modeling the additional optimizations.

The paper demonstrates (without ground-truth comparison) that BlueConnect,
MetaFlow, vDNN, Gist and DGC are expressible with the transformation
primitives.  This runner declares each model as a scenario stack and
reports the predicted effect — verifying the transformations compose and
produce sane graphs.
"""

from repro.experiments.common import ExperimentResult
from repro.scenarios import Scenario, ScenarioRunner


def run(bandwidth_gbps: float = 5.0) -> ExperimentResult:
    """Model each Section-5.2 optimization and report predicted impact."""
    result = ExperimentResult(
        experiment="sec52",
        title="Modeling-only optimizations (Section 5.2)",
        headers=["optimization", "workload", "baseline_ms", "predicted_ms",
                 "delta_%"],
        notes=("No ground truth exists for these in the paper either; the "
               "point is that each is expressible with the primitives."),
    )
    runner = ScenarioRunner()
    base = Scenario(model="resnet50")
    distributed = base.with_cluster(4, 2, bandwidth_gbps=bandwidth_gbps)

    # BlueConnect and DGC stack on top of the distributed transform; their
    # baseline is the plain-NCCL-ring distributed prediction
    dist = runner.run(distributed.with_(
        optimizations=["distributed_training"]))
    for name in ("blueconnect", "dgc"):
        outcome = runner.run(distributed.with_(
            optimizations=["distributed_training", name]))
        result.add_row(name, "resnet50 4x2",
                       dist.predicted_us / 1000.0,
                       outcome.predicted_us / 1000.0,
                       (outcome.predicted_us - dist.predicted_us)
                       / dist.predicted_us * 100.0)

    # MetaFlow, vDNN and Gist are single-GPU transformations
    for name in ("metaflow", "vdnn", "gist"):
        outcome = runner.run(base.with_(optimizations=[name]))
        result.add_row(name, "resnet50 1x1",
                       outcome.baseline_us / 1000.0,
                       outcome.predicted_us / 1000.0,
                       -outcome.improvement_percent)
    return result
