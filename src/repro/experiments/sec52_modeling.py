"""Section 5.2: modeling the additional optimizations.

The paper demonstrates (without ground-truth comparison) that BlueConnect,
MetaFlow, vDNN, Gist and DGC are expressible with the transformation
primitives.  This runner declares each model as a scenario stack and
reports the predicted effect — verifying the transformations compose and
produce sane graphs.

There is no engine measurement here, but the predictions themselves ride
the scenario batch substrate: with ``jobs=``/``store=`` the six cells fan
out over the process-pool executor and persist under ``kind="predict"``,
so a re-run is served from the store.
"""

from typing import Optional

from repro.experiments.common import ExperimentResult, experiment_store
from repro.scenarios import Scenario, ScenarioRunner


def run(bandwidth_gbps: float = 5.0,
        jobs: Optional[int] = None,
        store=None, force: bool = False) -> ExperimentResult:
    """Model each Section-5.2 optimization and report predicted impact.

    Args:
        bandwidth_gbps: network bandwidth of the 4x2 deployment the
            communication optimizations target.
        jobs: fan the cells across the process-pool batch executor.
        store: a :class:`~repro.scenarios.store.SweepStore` (or its
            directory path) caching the prediction cells.
        force: recompute cells even on store hits.
    """
    result = ExperimentResult(
        experiment="sec52",
        title="Modeling-only optimizations (Section 5.2)",
        headers=["optimization", "workload", "baseline_ms", "predicted_ms",
                 "delta_%"],
        notes=("No ground truth exists for these in the paper either; the "
               "point is that each is expressible with the primitives."),
    )
    store = experiment_store(store)
    runner = ScenarioRunner()
    base = Scenario(model="resnet50")
    distributed = base.with_cluster(4, 2, bandwidth_gbps=bandwidth_gbps)

    # cell order: the plain-NCCL-ring distributed prediction first (it is
    # the baseline the stacked transforms are compared against), then the
    # two comm_rewrite stacks, then the three single-GPU transformations
    stacked = ("blueconnect", "dgc")
    single = ("metaflow", "vdnn", "gist")
    scenarios = [distributed.with_(optimizations=["distributed_training"])]
    scenarios += [distributed.with_(
        optimizations=["distributed_training", name]) for name in stacked]
    scenarios += [base.with_(optimizations=[name]) for name in single]

    if jobs is not None or store is not None:
        outcomes = runner.run_grid(scenarios, parallel=jobs, store=store,
                                   force=force)
    else:
        outcomes = [runner.run(s) for s in scenarios]

    # BlueConnect and DGC stack on top of the distributed transform; their
    # baseline is the plain-NCCL-ring distributed prediction
    dist = outcomes[0]
    for name, outcome in zip(stacked, outcomes[1:1 + len(stacked)]):
        result.add_row(name, "resnet50 4x2",
                       dist.predicted_us / 1000.0,
                       outcome.predicted_us / 1000.0,
                       (outcome.predicted_us - dist.predicted_us)
                       / dist.predicted_us * 100.0)

    # MetaFlow, vDNN and Gist are single-GPU transformations
    for name, outcome in zip(single, outcomes[1 + len(stacked):]):
        result.add_row(name, "resnet50 1x1",
                       outcome.baseline_us / 1000.0,
                       outcome.predicted_us / 1000.0,
                       -outcome.improvement_percent)
    return result
