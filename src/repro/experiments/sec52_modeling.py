"""Section 5.2: modeling the additional optimizations.

The paper demonstrates (without ground-truth comparison) that BlueConnect,
MetaFlow, vDNN, Gist and DGC are expressible with the transformation
primitives.  This runner applies each model to an appropriate workload and
reports the predicted effect — verifying the transformations compose and
produce sane graphs.
"""

from repro.analysis.session import WhatIfSession
from repro.core.simulate import simulate
from repro.experiments.common import ExperimentResult
from repro.hw.device import GPU_2080TI
from repro.hw.network import NetworkSpec
from repro.hw.topology import ClusterSpec
from repro.optimizations import (
    BlueConnect,
    DeepGradientCompression,
    DistributedTraining,
    Gist,
    MetaFlowSubstitution,
    VirtualizedDNN,
)
from repro.optimizations.metaflow import fuse_conv_bn_relu_policy


def run(bandwidth_gbps: float = 5.0) -> ExperimentResult:
    """Model each Section-5.2 optimization and report predicted impact."""
    result = ExperimentResult(
        experiment="sec52",
        title="Modeling-only optimizations (Section 5.2)",
        headers=["optimization", "workload", "baseline_ms", "predicted_ms",
                 "delta_%"],
        notes=("No ground truth exists for these in the paper either; the "
               "point is that each is expressible with the primitives."),
    )
    cluster = ClusterSpec(4, 2, GPU_2080TI, NetworkSpec(bandwidth_gbps))

    # BlueConnect and DGC stack on top of the distributed transform
    session = WhatIfSession.profile("resnet50")
    dist_pred = session.predict(DistributedTraining(), cluster=cluster)
    for name, opt in (("blueconnect", BlueConnect()),
                      ("dgc", DeepGradientCompression())):
        graph = session.graph.copy()
        DistributedTraining().apply(graph, session.context(cluster))
        outcome = opt.apply(graph, session.context(cluster))
        predicted = simulate(outcome.graph, outcome.scheduler).makespan_us
        result.add_row(name, "resnet50 4x2",
                       dist_pred.predicted_us / 1000.0,
                       predicted / 1000.0,
                       (predicted - dist_pred.predicted_us)
                       / dist_pred.predicted_us * 100.0)

    # MetaFlow, vDNN and Gist are single-GPU transformations
    metaflow_policy = fuse_conv_bn_relu_policy(session.context())
    for name, opt in (("metaflow", MetaFlowSubstitution(metaflow_policy)),
                      ("vdnn", VirtualizedDNN()),
                      ("gist", Gist())):
        pred = session.predict(opt)
        result.add_row(name, "resnet50 1x1",
                       session.baseline_us / 1000.0,
                       pred.predicted_us / 1000.0,
                       -pred.improvement_percent)
    return result
