"""Figure 9: individual all-reduce runtimes in one GNMT iteration.

Four series per reduction call:

* **baseline** — measured in regular training (NCCL contends with backward
  compute for GPU resources);
* **sync** — measured with a CUDA synchronization before each reduction;
* **optimal** — measured when executing exclusively;
* **theoretical** — the ring-allreduce bandwidth formula.

Paper result: baseline averages ~34% above theoretical; adding
synchronizations improves the primitives by ~22.8% on average, and never
degrades end-to-end iteration time (it can improve it by up to 22%).
"""

from typing import Optional, Sequence, Tuple

from repro.common.prng import biased_factor
from repro.experiments.common import (
    ExperimentResult,
    cached_measurements,
    experiment_store,
)
from repro.framework import groundtruth
from repro.scenarios import Scenario
from repro.tracing.records import EventCategory

DEFAULT_CLUSTER = (4, 1)
DEFAULT_BANDWIDTH_GBPS = 10.0

#: store kinds for the two measured sides of each Section-6.5 cell
SYNC_KIND = "groundtruth:ddp-sync"
NOSYNC_KIND = "groundtruth:ddp-nosync"


def run(model_name: str = "gnmt",
        cluster_shape: Tuple[int, int] = DEFAULT_CLUSTER,
        bandwidth_gbps: float = DEFAULT_BANDWIDTH_GBPS) -> ExperimentResult:
    """Reproduce Figure 9 (per-reduction comparison)."""
    result = ExperimentResult(
        experiment="fig9",
        title="Per-allreduce runtime: baseline vs sync vs optimal vs theoretical",
        headers=["bucket", "baseline_ms", "sync_ms", "optimal_ms",
                 "theoretical_ms", "baseline_over_theoretical"],
        notes=("Paper: ground truths average ~34% above theoretical; "
               "synchronization improves primitives by ~22.8% on average."),
    )
    scenario = Scenario(model=model_name).with_cluster(
        cluster_shape[0], cluster_shape[1], bandwidth_gbps=bandwidth_gbps)
    model = scenario.build_model()
    config = scenario.build_config()
    cluster = scenario.build_cluster()

    plain = groundtruth.run_distributed(model, cluster, config,
                                        sync_before_allreduce=False)
    synced = groundtruth.run_distributed(model, cluster, config,
                                         sync_before_allreduce=True)
    plain_comm = plain.trace.by_category(EventCategory.COMM)
    synced_comm = synced.trace.by_category(EventCategory.COMM)

    for base_ev, sync_ev in zip(plain_comm, synced_comm):
        bucket = base_ev.metadata.get("bucket", "?")
        theoretical = float(base_ev.metadata.get("theoretical_us", 0.0))
        # exclusive execution: no compute to contend with, small fixed cost
        optimal = theoretical * biased_factor(
            f"nccl_optimal/{model_name}/{bucket}", 1.02, 1.08)
        result.add_row(
            bucket,
            base_ev.duration_us / 1000.0,
            sync_ev.duration_us / 1000.0,
            optimal / 1000.0,
            theoretical / 1000.0,
            base_ev.duration_us / theoretical if theoretical else 0.0,
        )
    return result


def run_sync_impact(
    model_name: str = "gnmt",
    bandwidths: Sequence[float] = (10.0, 20.0, 40.0),
    configs: Sequence[Tuple[int, int]] = ((2, 1), (4, 1), (2, 2), (4, 2)),
    jobs: Optional[int] = None,
    store=None, force: bool = False,
) -> ExperimentResult:
    """Section 6.5's follow-up: adding syncs never hurts end-to-end time.

    Each (bandwidth, machines, gpus) cell is a declarative scenario; with
    ``store=`` the two engine measurements per cell persist in a
    :class:`~repro.scenarios.store.SweepStore` (``groundtruth:ddp-sync`` /
    ``-nosync`` kinds) and re-runs skip straight to the missing cells,
    while ``jobs=`` fans the cells across fork workers — rows stay
    bit-identical to a serial, uncached run.
    """
    result = ExperimentResult(
        experiment="fig9b",
        title="End-to-end impact of synchronizing before NCCL primitives",
        headers=["config", "bandwidth_gbps", "baseline_ms", "synced_ms",
                 "improvement_%"],
        notes="Paper: no configuration degrades; improvements reach ~22%.",
    )
    store = experiment_store(store)
    base = Scenario(model=model_name)
    model = base.build_model()
    config = base.build_config()
    cells = []
    requests = []
    for bw in bandwidths:
        for machines, gpus in configs:
            scenario = base.with_cluster(machines, gpus, bandwidth_gbps=bw)
            cluster = scenario.build_cluster()
            cells.append((bw, cluster))
            for sync, kind in ((False, NOSYNC_KIND), (True, SYNC_KIND)):
                requests.append((scenario, kind,
                                 lambda c=cluster, s=sync:
                                 groundtruth.run_distributed(
                                     model, c, config,
                                     sync_before_allreduce=s).iteration_us))

    measured = cached_measurements(requests, store=store, force=force,
                                   jobs=jobs)
    for (bw, cluster), plain_us, synced_us in zip(cells, measured[0::2],
                                                  measured[1::2]):
        improvement = (plain_us - synced_us) / plain_us * 100.0
        result.add_row(cluster.label(), bw,
                       plain_us / 1000.0, synced_us / 1000.0, improvement)
    return result
