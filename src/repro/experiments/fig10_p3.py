"""Figure 10: P3 under different network bandwidths (ResNet-50, VGG-19).

Setup mirrors the paper's Section 6.6: four machines with one P4000 each,
MXNet parameter server.  Three series per bandwidth:

* **baseline** — ground-truth MXNet PS (whole-tensor transfers, arrival
  order, with server-side processing);
* **ground truth** — P3 actually applied (sliced + prioritized, still with
  server-side processing);
* **prediction** — Daydream's P3 model (sliced + prioritized, idealized
  bandwidth-only transfer costs).

Paper result: prediction faithfully tracks the trend; error at most 16.2%,
over-estimating P3's speedup at higher bandwidths because communication
becomes bottlenecked by non-network resources.

Both measured series persist in a
:class:`~repro.scenarios.store.SweepStore` when ``store=`` is given
(``kind="groundtruth:ps-baseline"`` / ``"groundtruth:ps-p3"``), one entry
per (model, cluster, bandwidth) cell; a re-run with more bandwidth points
only measures the new cells.
"""

from typing import Optional, Sequence

from repro.analysis.metrics import prediction_error
from repro.experiments.common import (
    ExperimentResult,
    cached_measurements,
    experiment_store,
)
from repro.framework.paramserver import run_ps_baseline, run_ps_p3
from repro.scenarios import Scenario, ScenarioRunner

RESNET_BANDWIDTHS = (1.0, 2.0, 4.0, 6.0, 8.0)
VGG_BANDWIDTHS = (5.0, 10.0, 15.0, 20.0, 25.0)
MACHINES = 4

#: store kinds for the two measured parameter-server series
BASELINE_KIND = "groundtruth:ps-baseline"
P3_KIND = "groundtruth:ps-p3"


def run(model_name: str = "resnet50",
        bandwidths: Optional[Sequence[float]] = None,
        batch_size: Optional[int] = 32,
        jobs: Optional[int] = None,
        store=None, force: bool = False) -> ExperimentResult:
    """Reproduce one sub-figure of Figure 10.

    Args:
        model_name: ``"resnet50"`` or ``"vgg19"`` (the paper's two).
        bandwidths: network bandwidth points in Gbps.
        batch_size: per-GPU mini-batch size.
        jobs: fan the per-bandwidth engine measurements across workers.
        store: a :class:`~repro.scenarios.store.SweepStore` (or its
            directory path) caching both measured series.
        force: recompute measurements even on store hits.
    """
    if bandwidths is None:
        bandwidths = (RESNET_BANDWIDTHS if model_name == "resnet50"
                      else VGG_BANDWIDTHS)
    result = ExperimentResult(
        experiment="fig10",
        title=f"P3 on {model_name}: baseline vs ground truth vs prediction",
        headers=["bandwidth_gbps", "baseline_ms", "p3_ground_truth_ms",
                 "p3_predicted_ms", "prediction_error_%"],
        notes=("Paper: error at most 16.2%; speedup over-estimated at high "
               "bandwidth (server CPU becomes the bottleneck)."),
    )
    store = experiment_store(store)
    runner = ScenarioRunner()
    base = Scenario(model=model_name, batch_size=batch_size,
                    framework="mxnet", gpu="p4000", optimizations=["p3"])
    outcomes = [runner.run(base.with_cluster(MACHINES, 1, bandwidth_gbps=bw))
                for bw in bandwidths]

    requests = []
    for outcome in outcomes:
        requests.append((outcome.scenario, BASELINE_KIND,
                         lambda o=outcome: run_ps_baseline(
                             o.model, o.cluster, o.config,
                             trace=o.session.trace).iteration_us))
        requests.append((outcome.scenario, P3_KIND,
                         lambda o=outcome: run_ps_p3(
                             o.model, o.cluster, o.config,
                             trace=o.session.trace).iteration_us))
    measured = cached_measurements(requests, store=store, force=force,
                                   jobs=jobs)
    for bw, outcome, baseline_us, truth_us in zip(bandwidths, outcomes,
                                                  measured[0::2],
                                                  measured[1::2]):
        result.add_row(
            bw,
            baseline_us / 1000.0,
            truth_us / 1000.0,
            outcome.predicted_us / 1000.0,
            prediction_error(outcome.predicted_us, truth_us) * 100.0,
        )
    return result
