"""Figure 10: P3 under different network bandwidths (ResNet-50, VGG-19).

Setup mirrors the paper's Section 6.6: four machines with one P4000 each,
MXNet parameter server.  Three series per bandwidth:

* **baseline** — ground-truth MXNet PS (whole-tensor transfers, arrival
  order, with server-side processing);
* **ground truth** — P3 actually applied (sliced + prioritized, still with
  server-side processing);
* **prediction** — Daydream's P3 model (sliced + prioritized, idealized
  bandwidth-only transfer costs).

Paper result: prediction faithfully tracks the trend; error at most 16.2%,
over-estimating P3's speedup at higher bandwidths because communication
becomes bottlenecked by non-network resources.
"""

from typing import Optional, Sequence

from repro.analysis.metrics import prediction_error
from repro.experiments.common import ExperimentResult
from repro.framework.paramserver import run_ps_baseline, run_ps_p3
from repro.scenarios import Scenario, ScenarioRunner

RESNET_BANDWIDTHS = (1.0, 2.0, 4.0, 6.0, 8.0)
VGG_BANDWIDTHS = (5.0, 10.0, 15.0, 20.0, 25.0)
MACHINES = 4


def run(model_name: str = "resnet50",
        bandwidths: Optional[Sequence[float]] = None,
        batch_size: Optional[int] = 32) -> ExperimentResult:
    """Reproduce one sub-figure of Figure 10."""
    if bandwidths is None:
        bandwidths = (RESNET_BANDWIDTHS if model_name == "resnet50"
                      else VGG_BANDWIDTHS)
    result = ExperimentResult(
        experiment="fig10",
        title=f"P3 on {model_name}: baseline vs ground truth vs prediction",
        headers=["bandwidth_gbps", "baseline_ms", "p3_ground_truth_ms",
                 "p3_predicted_ms", "prediction_error_%"],
        notes=("Paper: error at most 16.2%; speedup over-estimated at high "
               "bandwidth (server CPU becomes the bottleneck)."),
    )
    runner = ScenarioRunner()
    base = Scenario(model=model_name, batch_size=batch_size,
                    framework="mxnet", gpu="p4000", optimizations=["p3"])
    for bw in bandwidths:
        outcome = runner.run(
            base.with_cluster(MACHINES, 1, bandwidth_gbps=bw))
        baseline = run_ps_baseline(outcome.model, outcome.cluster,
                                   outcome.config, trace=outcome.session.trace)
        truth = run_ps_p3(outcome.model, outcome.cluster, outcome.config,
                          trace=outcome.session.trace)
        result.add_row(
            bw,
            baseline.iteration_us / 1000.0,
            truth.iteration_us / 1000.0,
            outcome.predicted_us / 1000.0,
            prediction_error(outcome.predicted_us, truth.iteration_us) * 100.0,
        )
    return result
