"""Table 1: the optimization catalog, cross-checked against implementations.

The paper's Table 1 lists representative DNN-training optimizations: the
five *italicized* ones are quantitatively evaluated (Section 6), the five
*bold* ones are modeled to show the primitives' expressiveness (Section 5.2).
This runner verifies every catalog entry has a working what-if model in
:mod:`repro.optimizations` and reports the mapping.
"""

from repro.experiments.common import ExperimentResult
from repro.optimizations import (
    AutomaticMixedPrecision,
    BlueConnect,
    DeepGradientCompression,
    DistributedTraining,
    FusedAdam,
    Gist,
    MetaFlowSubstitution,
    PriorityParameterPropagation,
    ReconstructBatchnorm,
    VirtualizedDNN,
)
from repro.optimizations.metaflow import SubstitutionPolicy

#: (optimization, goal, strategy, evaluated-quantitatively, model class)
CATALOG = (
    ("AMP (Micikevicius et al.)", "hardware utilization",
     "reducing precision", True, AutomaticMixedPrecision),
    ("FusedAdam (Apex)", "hardware utilization",
     "fusing kernels/layers", True, FusedAdam),
    ("Restructured batchnorm (Jung et al.)", "hardware utilization",
     "improving low-level kernels", True, ReconstructBatchnorm),
    ("Distributed training (data parallelism)", "scalability",
     "communication insertion", True, DistributedTraining),
    ("P3 (Jayarajan et al.)", "communication overhead",
     "communication efficiency/overlap", True, PriorityParameterPropagation),
    ("BlueConnect (Cho et al.)", "communication overhead",
     "communication efficiency/overlap", False, BlueConnect),
    ("MetaFlow (Jia et al.)", "hardware utilization",
     "fusing kernels/layers", False, MetaFlowSubstitution),
    ("vDNN (Rhu et al.)", "memory footprint",
     "offload/prefetch", False, VirtualizedDNN),
    ("Gist (Jain et al.)", "memory footprint",
     "encode/decode", False, Gist),
    ("DGC (Lin et al.)", "communication overhead",
     "reducing communication workload", False, DeepGradientCompression),
)


def run() -> ExperimentResult:
    """Reproduce Table 1 (implementation inventory)."""
    result = ExperimentResult(
        experiment="table1",
        title="Optimization catalog and what-if model inventory",
        headers=["optimization", "goal", "strategy", "evaluated", "model"],
        notes=("Evaluated=yes entries are scored against ground truth in "
               "Section 6 (Figures 5-10, Section 6.4); the rest are modeled "
               "in Section 5.2."),
    )
    for name, goal, strategy, evaluated, model_cls in CATALOG:
        instance = _instantiate(model_cls)
        result.add_row(name, goal, strategy,
                       "yes" if evaluated else "modeled",
                       type(instance).__name__)
    return result


def _instantiate(model_cls):
    """Build a model instance with defaults (MetaFlow needs a policy)."""
    if model_cls is MetaFlowSubstitution:
        return model_cls(SubstitutionPolicy())
    return model_cls()
