"""Composable optimization pipelines with ordering and conflict rules.

A pipeline turns a declared optimization stack into a single
:class:`~repro.optimizations.base.OptimizationModel` that applies every
member through one graph-transformation pass, so the whole stack flows
through the existing :meth:`WhatIfSession.predict` / :meth:`sweep` path
(including the fork-based grid machinery) unchanged.

Composition is validated up front:

* **ordering** — categories apply in :data:`~repro.scenarios.registry.CATEGORY_ORDER`
  (compute, then memory, then communication-inserting, then
  communication-rewriting transforms); the stack is stably normalized, so
  declaring ``["blueconnect", "distributed_training"]`` still all-reduces
  before decomposing;
* **slot conflicts** — two members of one exclusive slot (e.g. two
  gradient-sync strategies) are an error;
* **scheduler conflicts** — at most one member may supply a custom
  scheduler (the paper's Schedule primitive is global to a simulation);
* **prerequisites** — a ``comm_rewrite`` member without an earlier
  ``comm_insert`` member has no communication tasks to rewrite.
"""

from typing import Dict, List, Optional, Sequence, Tuple

from repro.common.errors import DaydreamError
from repro.core.graph import DependencyGraph
from repro.optimizations.base import (
    OptimizationModel,
    WhatIfContext,
    WhatIfOutcome,
)
from repro.scenarios.registry import (
    DEFAULT_REGISTRY,
    OptimizationRegistry,
    OptimizationSpec,
)


class PipelineError(DaydreamError):
    """A declared optimization stack cannot compose."""


class OptimizationPipeline(OptimizationModel):
    """An ordered, validated stack of optimization models.

    Args:
        stack: declared entries (registry keys / keyed dicts) and/or
            pre-built :class:`OptimizationModel` instances (instances of
            registered classes inherit their spec's composition metadata).
        registry: the registry resolving declared entries.

    The pipeline is itself an :class:`OptimizationModel`: ``apply`` runs
    every member in normalized order on the same working graph and returns
    one combined outcome.
    """

    def __init__(self, stack: Sequence[object],
                 registry: Optional[OptimizationRegistry] = None) -> None:
        self.registry = registry or DEFAULT_REGISTRY
        members: List[Tuple[Optional[OptimizationSpec], OptimizationModel]] = []
        for entry in stack:
            if isinstance(entry, OptimizationModel):
                members.append((self._spec_of(entry), entry))
            else:
                spec, params = self.registry.parse_entry(entry)
                members.append((spec, spec.create(params)))
        self._members = self._normalize(members)
        self._validate()
        self.name = "+".join(m.name for _, m in self._members) or "baseline"

    # ------------------------------------------------------------ composition

    def _spec_of(self, model: OptimizationModel) -> Optional[OptimizationSpec]:
        """Best-effort spec lookup for a pre-built instance."""
        for spec in self.registry.specs():
            factory = spec.factory
            if isinstance(factory, type) and type(model) is factory:
                return spec
        return None

    @staticmethod
    def _normalize(
        members: Sequence[Tuple[Optional[OptimizationSpec], OptimizationModel]]
    ) -> List[Tuple[Optional[OptimizationSpec], OptimizationModel]]:
        """Stable-sort members into category application order.

        Unregistered instances keep their declared position relative to the
        compute stage (rank 0) — they have no composition metadata.
        """
        return sorted(members, key=lambda m: m[0].rank if m[0] else 0)

    def _validate(self) -> None:
        slots: Dict[str, str] = {}
        scheduler_owner: Optional[str] = None
        seen_categories: List[str] = []
        for spec, model in self._members:
            if spec is None:
                # unregistered member: only its scheduler claim is knowable
                # (e.g. a scenario-level schedule_policy rider)
                if getattr(model, "provides_scheduler", False):
                    if scheduler_owner is not None:
                        raise PipelineError(
                            f"{scheduler_owner!r} and {model.name!r} both "
                            "supply a schedule override; a simulation has "
                            "one scheduler"
                        )
                    scheduler_owner = model.name
                continue
            if spec.slot is not None:
                if spec.slot in slots:
                    raise PipelineError(
                        f"{slots[spec.slot]!r} and {spec.key!r} both occupy "
                        f"the exclusive {spec.slot!r} slot"
                    )
                slots[spec.slot] = spec.key
            if spec.provides_scheduler:
                if scheduler_owner is not None:
                    raise PipelineError(
                        f"{scheduler_owner!r} and {spec.key!r} both supply a "
                        "schedule override; a simulation has one scheduler"
                    )
                scheduler_owner = spec.key
            if (spec.requires_category is not None
                    and spec.requires_category not in seen_categories):
                raise PipelineError(
                    f"{spec.key!r} rewrites communication tasks and needs a "
                    f"{spec.requires_category!r} optimization (e.g. "
                    "'distributed_training') earlier in the stack"
                )
            seen_categories.append(spec.category)

    # ---------------------------------------------------------------- queries

    @property
    def models(self) -> List[OptimizationModel]:
        """The member models, in application order."""
        return [model for _, model in self._members]

    @property
    def requires_cluster(self) -> bool:
        """Whether any member needs a distributed target cluster."""
        return any(spec.requires_cluster for spec, _ in self._members if spec)

    def __len__(self) -> int:
        return len(self._members)

    def describe(self) -> List[str]:
        """Registry keys (or instance names) in application order."""
        return [spec.key if spec else model.name
                for spec, model in self._members]

    # -------------------------------------------------------------- execution

    def apply(self, graph: DependencyGraph, context: WhatIfContext) -> WhatIfOutcome:
        """Apply every member to ``graph`` and merge the outcomes."""
        scheduler = None
        for spec, model in self._members:
            outcome = model.apply(graph, context)
            graph = outcome.graph
            if outcome.scheduler is not None:
                if scheduler is not None:
                    raise PipelineError(
                        "two stack members supplied schedule overrides at "
                        "apply time; a simulation has one scheduler"
                    )
                scheduler = outcome.scheduler
        return WhatIfOutcome(graph=graph, scheduler=scheduler)
