"""Declarative scenario layer: workloads and what-if stacks as data.

This package is the single front door for running what-if analyses:

* :mod:`repro.scenarios.registry` — string-keyed registry of every shipped
  optimization model with declared parameter schemas;
* :mod:`repro.scenarios.pipeline` — validated, ordered optimization stacks
  that run as one graph transformation;
* :mod:`repro.scenarios.scenario` — the :class:`Scenario` /
  :class:`ScenarioGrid` dataclasses with dict/JSON round-tripping;
* :mod:`repro.scenarios.runner` — the :class:`ScenarioRunner` executing
  single scenarios and fork-parallel grids;
* :mod:`repro.scenarios.store` — the content-addressed on-disk
  :class:`SweepStore` of sweep results (atomic writes, corruption-safe
  reads, version-salted keys, LRU garbage collection and generation
  pruning behind the ``repro store`` CLI);
* :mod:`repro.scenarios.batch` — the multiprocess batch executor fanning
  grids across a process pool (fork or spawn start methods; spawn workers
  rebuild runtime registrations from a :class:`WorkerManifest`) with
  store-backed resume and per-cell lease dedupe across concurrent sweeps;
* :mod:`repro.scenarios.backends` — the pluggable storage tiers behind
  the store: the :class:`StoreBackend` protocol, the on-disk
  :class:`LocalBackend`, the read-through :class:`HTTPBackend` remote
  tier with its :class:`StoreServer` (``repro store serve``), and the
  :class:`FileLease` coordination primitive;
* :mod:`repro.scenarios.retry` — the unified :class:`RetryPolicy`
  (exponential backoff, deterministic seeded jitter, attempt/deadline
  caps) every transient-fault path shares;
* :mod:`repro.scenarios.faults` — the deterministic fault-injection
  harness: JSON-describable :class:`FaultPlan` rules driving a
  :class:`FaultInjectingBackend` wrapper, plus the env-gated
  :class:`KillPlan` worker-crash hook the chaos suite uses
  (``docs/robustness.md`` is the failure-mode contract);
* :mod:`repro.scenarios.service` — the interactive prediction daemon
  (``repro serve-predict``): a :class:`PredictService` holding an LRU
  :class:`SessionPool` of warm sessions, memoized on the sweep store,
  behind the stdlib-HTTP :class:`PredictServer`
  (``docs/service.md`` is the protocol contract).

Quickstart::

    from repro.scenarios import Scenario, ScenarioRunner

    runner = ScenarioRunner()
    outcome = runner.run(Scenario(model="resnet50", optimizations=["amp"]))
    print(outcome.prediction)
"""

from repro.scenarios.backends import (
    LEASE_STEAL_SECONDS,
    NOT_MODIFIED,
    BackendError,
    ComputeLease,
    EntryStat,
    FileLease,
    HTTPBackend,
    LocalBackend,
    RemoteLease,
    StoreBackend,
    StoreServer,
    entry_etag,
)
from repro.scenarios.batch import (
    DEFAULT_MAX_CELL_RETRIES,
    START_METHODS,
    BatchReport,
    CellFailure,
    SweepCell,
    WorkerManifest,
    run_batch,
)
from repro.scenarios.faults import (
    KILL_PLAN_ENV,
    FaultInjectingBackend,
    FaultPlan,
    FaultRule,
    InjectedFault,
    KillPlan,
    maybe_kill_worker,
)
from repro.scenarios.pipeline import OptimizationPipeline, PipelineError
from repro.scenarios.registry import (
    DEFAULT_REGISTRY,
    OptimizationRegistry,
    OptimizationSpec,
    ParamSpec,
    default_registry,
    stack_label,
)
from repro.scenarios.retry import (
    DEFAULT_MAX_ATTEMPTS,
    BackoffState,
    RetryPolicy,
    no_retry,
    sync_retry_policy,
)
from repro.scenarios.runner import (
    SCENARIO_RESULT_HEADERS,
    ScenarioOutcome,
    ScenarioRunner,
)
from repro.scenarios.scenario import (
    NAMED_SCHEDULE_POLICIES,
    ClusterShape,
    Scenario,
    ScenarioGrid,
    load_scenario_file,
    register_schedule_policy,
    runtime_schedule_policies,
)
from repro.scenarios.service import (
    DEFAULT_MAX_SESSIONS,
    DEFAULT_WORKERS,
    MAX_REQUEST_BYTES,
    PredictServer,
    PredictService,
    ServiceError,
    SessionPool,
    parse_scenario_payload,
)
from repro.scenarios.store import (
    RESULT_SCHEMA_VERSION,
    GCReport,
    StoreStats,
    SweepStore,
    SyncReport,
    VerifyReport,
    canonical_scenario_json,
    scenario_key,
    store_salt,
)

__all__ = [
    "BackendError",
    "ComputeLease",
    "EntryStat",
    "FileLease",
    "HTTPBackend",
    "LocalBackend",
    "NOT_MODIFIED",
    "RemoteLease",
    "StoreBackend",
    "StoreServer",
    "entry_etag",
    "LEASE_STEAL_SECONDS",
    "BatchReport",
    "CellFailure",
    "SweepCell",
    "WorkerManifest",
    "START_METHODS",
    "DEFAULT_MAX_CELL_RETRIES",
    "run_batch",
    "RetryPolicy",
    "BackoffState",
    "DEFAULT_MAX_ATTEMPTS",
    "no_retry",
    "sync_retry_policy",
    "FaultPlan",
    "FaultRule",
    "FaultInjectingBackend",
    "InjectedFault",
    "KillPlan",
    "KILL_PLAN_ENV",
    "maybe_kill_worker",
    "GCReport",
    "StoreStats",
    "SyncReport",
    "VerifyReport",
    "store_salt",
    "RESULT_SCHEMA_VERSION",
    "SweepStore",
    "canonical_scenario_json",
    "scenario_key",
    "NAMED_SCHEDULE_POLICIES",
    "register_schedule_policy",
    "runtime_schedule_policies",
    "OptimizationPipeline",
    "PipelineError",
    "DEFAULT_REGISTRY",
    "OptimizationRegistry",
    "OptimizationSpec",
    "ParamSpec",
    "default_registry",
    "stack_label",
    "SCENARIO_RESULT_HEADERS",
    "ScenarioOutcome",
    "ScenarioRunner",
    "PredictServer",
    "PredictService",
    "ServiceError",
    "SessionPool",
    "parse_scenario_payload",
    "DEFAULT_MAX_SESSIONS",
    "DEFAULT_WORKERS",
    "MAX_REQUEST_BYTES",
    "ClusterShape",
    "Scenario",
    "ScenarioGrid",
    "load_scenario_file",
]
