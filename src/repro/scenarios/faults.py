"""Deterministic fault injection for the sweep fabric.

A robustness contract that is never exercised is a wish, not a contract.
This module is the tooling that *produces* the faults hosts actually see,
on demand and reproducibly, so the chaos suite can pin the recovery paths
the way the determinism suite pins the rows:

* :class:`FaultPlan` — a seeded, JSON-describable script of faults: each
  :class:`FaultRule` targets the *nth* invocation of one backend
  operation (``get``/``put``/``delete``/``stat``/``iter_keys``/``fetch``)
  and applies one action — ``error`` (raise :class:`InjectedFault`),
  ``drop`` (pretend the entry is absent / swallow the write), ``corrupt``
  (flip bytes at seed-determined offsets), ``truncate`` (cut the payload
  short, a mid-transfer death), or ``delay`` (sleep ``delay_s`` first);
* :class:`FaultInjectingBackend` — a wrapper around any
  :class:`~repro.scenarios.backends.StoreBackend` that executes the plan
  while journalling every injected fault, so a test can assert both that
  the sweep survived *and* that the faults actually fired;
* :func:`maybe_kill_worker` — the env-gated worker hook
  (:data:`KILL_PLAN_ENV`): a batch worker about to run a planned cell
  hard-kills itself with ``SIGKILL``, at most ``times`` times across the
  whole sweep (a shared claim directory makes the budget exact across
  processes and pool rebuilds).  The parent's quarantine path never
  triggers it — only pool workers consult the hook.

Every fault is a pure function of the plan: the same plan against the
same operation sequence injects the same faults, which is what lets
``tests/test_sweep_determinism.py`` assert that a sweep under injected
worker kills and backend faults still produces rows bit-identical to a
serial run.
"""

import json
import os
import signal
import time
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from repro.common.errors import ConfigError
from repro.common.prng import stable_hash
from repro.scenarios.backends import BackendError, EntryStat, StoreBackend

#: environment variable carrying a JSON worker-kill plan (see
#: :func:`maybe_kill_worker`); unset means the hook is inert
KILL_PLAN_ENV = "REPRO_CHAOS_KILL_PLAN"

#: the operations a FaultRule may target (``fetch`` is the loud
#: pull-path read of :class:`~repro.scenarios.backends.HTTPBackend`)
FAULT_OPS = ("get", "put", "delete", "stat", "iter_keys", "fetch")

#: the actions a FaultRule may apply
FAULT_ACTIONS = ("error", "drop", "corrupt", "truncate", "delay")


class InjectedFault(BackendError):
    """The error a planned ``error`` fault raises.

    A :class:`~repro.scenarios.backends.BackendError` subclass, so an
    injected transport failure travels the same except-paths a real one
    would: read-through treats it as a miss, push/pull retry it under
    their :class:`~repro.scenarios.retry.RetryPolicy` and then fail
    loudly.
    """


@dataclass(frozen=True)
class FaultRule:
    """One scripted fault: *what* happens to *which* invocation.

    Attributes:
        op: the backend operation to target (one of :data:`FAULT_OPS`).
        nth: 1-based index among that operation's invocations at which
            the fault starts firing.
        action: one of :data:`FAULT_ACTIONS`.
        count: how many consecutive matching invocations the fault
            covers (default 1); ``0`` means "from ``nth`` onwards,
            forever" — how a test scripts a server that dies mid-transfer
            and stays dead.
        delay_s: sleep length for the ``delay`` action.
    """

    op: str
    nth: int
    action: str
    count: int = 1
    delay_s: float = 0.0

    def __post_init__(self) -> None:
        """Reject rules the injector could not execute."""
        if self.op not in FAULT_OPS:
            raise ConfigError(f"unknown fault op {self.op!r}; "
                              f"choose from {list(FAULT_OPS)}")
        if self.action not in FAULT_ACTIONS:
            raise ConfigError(f"unknown fault action {self.action!r}; "
                              f"choose from {list(FAULT_ACTIONS)}")
        if self.nth < 1:
            raise ConfigError("fault rules are 1-based: nth must be >= 1")
        if self.count < 0:
            raise ConfigError("count must be >= 0 (0 = forever)")
        if self.delay_s < 0:
            raise ConfigError("delay_s cannot be negative")

    def covers(self, invocation: int) -> bool:
        """Whether this rule fires on the given 1-based invocation."""
        if invocation < self.nth:
            return False
        return self.count == 0 or invocation < self.nth + self.count

    def to_dict(self) -> Dict[str, object]:
        """Plain-dict form (defaults omitted), the JSON wire shape."""
        data: Dict[str, object] = {"op": self.op, "nth": self.nth,
                                   "action": self.action}
        if self.count != 1:
            data["count"] = self.count
        if self.delay_s:
            data["delay_s"] = self.delay_s
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "FaultRule":
        """Rebuild one rule, rejecting unknown fields loudly."""
        known = {"op", "nth", "action", "count", "delay_s"}
        unknown = set(data) - known
        if unknown:
            raise ConfigError(f"unknown FaultRule field(s) "
                              f"{sorted(unknown)}")
        return cls(**data)


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, JSON-round-tripping script of backend faults.

    The ``seed`` determines *how* a ``corrupt`` action mangles bytes
    (which offsets flip), so two runs of one plan corrupt identically —
    determinism all the way down into the failure modes.
    """

    rules: Tuple[FaultRule, ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        """Normalize the rules into a tuple (JSON hands us lists)."""
        object.__setattr__(self, "rules", tuple(self.rules))

    def action_for(self, op: str, invocation: int) -> Optional[FaultRule]:
        """The first rule covering this (op, 1-based invocation), if any."""
        for rule in self.rules:
            if rule.op == op and rule.covers(invocation):
                return rule
        return None

    def corrupt(self, data: bytes, op: str, invocation: int) -> bytes:
        """Deterministically mangle ``data`` for one corrupt fault.

        Flips one byte per 64 (at least one), at offsets derived from the
        plan seed and the invocation — a pure function, so the chaos
        suite replays the identical corruption every run.
        """
        if not data:
            return b"\x00"
        out = bytearray(data)
        flips = max(1, len(out) // 64)
        for i in range(flips):
            h = stable_hash(f"fault:{self.seed}:{op}:{invocation}:{i}")
            out[h % len(out)] ^= 0x80 | (h >> 8) % 0x7F | 0x01
        return bytes(out)

    def to_dict(self) -> Dict[str, object]:
        """Plain-dict form: ``{"seed": ..., "rules": [...]}``."""
        return {"seed": self.seed,
                "rules": [rule.to_dict() for rule in self.rules]}

    def to_json(self) -> str:
        """The JSON text a CLI flag or env var would carry."""
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "FaultPlan":
        """Rebuild a plan from :meth:`to_dict` output, loudly."""
        unknown = set(data) - {"rules", "seed"}
        if unknown:
            raise ConfigError(f"unknown FaultPlan field(s) "
                              f"{sorted(unknown)}")
        rules = tuple(FaultRule.from_dict(r)
                      for r in data.get("rules", ()))
        return cls(rules=rules, seed=int(data.get("seed", 0)))

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        """Parse the JSON form (the inverse of :meth:`to_json`)."""
        try:
            data = json.loads(text)
        except ValueError as exc:
            raise ConfigError(f"fault plan is not valid JSON: {exc}") \
                from None
        if not isinstance(data, dict):
            raise ConfigError("fault plan JSON must be an object")
        return cls.from_dict(data)


class FaultInjectingBackend:
    """Wrap any :class:`StoreBackend`, executing a :class:`FaultPlan`.

    Each operation is counted per name; when the count matches a rule,
    the scripted action fires *instead of* (``error``/``drop``) or *on
    the way through* (``corrupt``/``truncate``/``delay``) the wrapped
    backend's real operation.  Every injected fault is appended to
    :attr:`injected` as ``"op#n:action"``, so tests assert the plan
    actually executed and did not silently pass clean.

    The wrapper satisfies the five-op :class:`StoreBackend` protocol and
    additionally proxies ``fetch`` (the loud pull-path read), so it can
    stand in for a local tier, a remote tier, or a pull source alike.
    """

    def __init__(self, inner: StoreBackend, plan: FaultPlan) -> None:
        self.inner = inner
        self.plan = plan
        self.counts: Dict[str, int] = {}
        self.injected: List[str] = []

    def _next(self, op: str) -> Optional[FaultRule]:
        """Advance the op counter; the rule to apply now, if any."""
        n = self.counts.get(op, 0) + 1
        self.counts[op] = n
        rule = self.plan.action_for(op, n)
        if rule is not None:
            self.injected.append(f"{op}#{n}:{rule.action}")
        return rule

    def _mangle(self, data: Optional[bytes], op: str,
                rule: FaultRule) -> Optional[bytes]:
        """Apply a pass-through action to read bytes."""
        if data is None:
            return None
        if rule.action == "corrupt":
            return self.plan.corrupt(data, op, self.counts[op])
        if rule.action == "truncate":
            return data[:len(data) // 2]
        return data

    def _gate(self, op: str) -> Optional[FaultRule]:
        """Shared entry: raise/delay now, hand back pass-through rules."""
        rule = self._next(op)
        if rule is None:
            return None
        if rule.action == "error":
            raise InjectedFault(
                f"injected fault: {op} invocation {self.counts[op]}")
        if rule.action == "delay":
            time.sleep(rule.delay_s)
            return None
        return rule

    # ------------------------------------------------------------- protocol

    def get(self, key: str) -> Optional[bytes]:
        """Read one entry, subject to the plan's ``get`` rules."""
        rule = self._gate("get")
        if rule is not None and rule.action == "drop":
            return None
        return self._mangle(self.inner.get(key), "get", rule) \
            if rule is not None else self.inner.get(key)

    def fetch(self, key: str) -> Optional[bytes]:
        """Loud pull-path read, subject to the plan's ``fetch`` rules."""
        rule = self._gate("fetch")
        if rule is not None and rule.action == "drop":
            return None
        fetch = getattr(self.inner, "fetch", self.inner.get)
        data = fetch(key)
        return self._mangle(data, "fetch", rule) if rule is not None \
            else data

    def put(self, key: str, data: bytes) -> None:
        """Write one entry, subject to the plan's ``put`` rules."""
        rule = self._gate("put")
        if rule is not None:
            if rule.action == "drop":
                return  # the write is silently lost, like a dying disk
            data = self._mangle(data, "put", rule)
        self.inner.put(key, data)

    def delete(self, key: str) -> None:
        """Delete one entry, subject to the plan's ``delete`` rules."""
        rule = self._gate("delete")
        if rule is not None and rule.action == "drop":
            return
        self.inner.delete(key)

    def iter_keys(self) -> Iterator[str]:
        """List keys, subject to the plan's ``iter_keys`` rules."""
        rule = self._gate("iter_keys")
        if rule is not None and rule.action == "drop":
            return iter(())
        return self.inner.iter_keys()

    def stat(self, key: str) -> Optional[EntryStat]:
        """Stat one entry, subject to the plan's ``stat`` rules."""
        rule = self._gate("stat")
        if rule is not None and rule.action in ("drop", "corrupt",
                                                "truncate"):
            return None
        return self.inner.stat(key)


# ------------------------------------------------------------- worker kills


@dataclass(frozen=True)
class KillPlan:
    """An env-carried plan to hard-kill a batch worker at one cell.

    Attributes:
        cell: the input-order index of the grid cell at which a worker
            kills itself.
        times: how many kills the plan budgets in total (across every
            worker process and pool rebuild); once spent, the cell runs
            normally — which is what lets a bounded retry budget finish
            the sweep.
        claim_dir: a directory where each kill claims one ``kill-N``
            file with ``O_EXCL`` before firing, making the budget exact
            even when several workers race to the same cell.
    """

    cell: int
    times: int
    claim_dir: str

    def to_json(self) -> str:
        """The JSON text to place in :data:`KILL_PLAN_ENV`."""
        return json.dumps({"cell": self.cell, "times": self.times,
                           "claim_dir": self.claim_dir})

    @classmethod
    def from_env(cls) -> Optional["KillPlan"]:
        """The active plan from :data:`KILL_PLAN_ENV`, or ``None``.

        A malformed plan raises :class:`~repro.common.errors.ConfigError`
        — chaos tooling must not silently do nothing.
        """
        text = os.environ.get(KILL_PLAN_ENV)
        if not text:
            return None
        try:
            data = json.loads(text)
            return cls(cell=int(data["cell"]), times=int(data["times"]),
                       claim_dir=str(data["claim_dir"]))
        except (ValueError, KeyError, TypeError) as exc:
            raise ConfigError(
                f"malformed {KILL_PLAN_ENV} plan: {exc}") from None


def maybe_kill_worker(cell_index: int) -> None:
    """Hard-kill this process if the env kill plan targets this cell.

    The batch executor's *workers* call this immediately before running
    each cell.  When :data:`KILL_PLAN_ENV` names this cell and the kill
    budget is not yet spent, the worker claims one kill slot (an
    ``O_EXCL`` file in the plan's claim directory — exact across racing
    processes) and sends itself ``SIGKILL``: no cleanup, no Python
    teardown, exactly the way the OOM killer takes a real worker.  The
    parent's serial/quarantine paths never call this hook, so a
    quarantined cell always completes.
    """
    plan = KillPlan.from_env()
    if plan is None or plan.cell != cell_index:
        return
    os.makedirs(plan.claim_dir, exist_ok=True)
    for slot in range(plan.times):
        path = os.path.join(plan.claim_dir, f"kill-{slot}")
        try:
            fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            continue  # this slot already spent; try the next
        except OSError:
            return  # unwritable claim dir: the hook degrades to inert
        os.close(fd)
        os.kill(os.getpid(), signal.SIGKILL)
    return  # budget exhausted: the cell runs normally this time
