"""The interactive what-if prediction service: warm sessions as a daemon.

The scenario layer answers "what if I applied this optimization?" in
milliseconds once a session is warm — but until now only via one-shot CLI
invocations that pay the profiling cost every time.  This module is the
deployment shape the ROADMAP names: a persistent daemon (``repro
serve-predict``) that keeps sessions warm between queries and shares
answers fleet-wide through the sweep store.

* :class:`SessionPool` — an LRU pool of warm
  :class:`~repro.scenarios.runner.ScenarioRunner` sessions keyed by
  workload ``(model, batch size, training config)``, bounded by
  ``max_sessions``.  Entries are *generation-checked*: a pool built under
  one store salt flushes wholesale when the registry fingerprint rotates,
  and a session whose runtime model builder was re-registered is evicted
  rather than trusted — a stale session must never answer for a workload
  that no longer means the same thing;
* :class:`PredictService` — the transport-independent core: parse and
  validate a scenario payload, consult the
  :class:`~repro.scenarios.store.SweepStore` memo (the *same* canonical
  keys and salt as ``repro sweep`` — there is no second keying scheme),
  compute misses on a pooled warm session, write the result back, and
  answer with the row bit-identical to the serial CLI path.  Errors
  degrade per request: a bad scenario is a 400 with the validation
  message, an engine failure is a 500 for that request only — the
  failing session is evicted and the pool keeps serving;
* :class:`PredictServer` — the stdlib-HTTP front end (mirroring
  :class:`~repro.scenarios.backends.StoreServer`): ``POST /predict`` for
  one scenario, ``POST /predict/batch`` for scenario lists, grids, and
  :class:`~repro.core.compiled.CellDelta`-style task-override grids
  routed through :meth:`~repro.analysis.session.WhatIfSession.
  simulate_many` on one shared lowering, plus ``GET /healthz`` and ``GET
  /stats`` (session / memo-hit / latency counters).  Auth and framing
  ride the shared helpers in :mod:`repro.scenarios.backends`
  (:func:`~repro.scenarios.backends.bearer_authorized`,
  :func:`~repro.scenarios.backends.read_framed_body`); ``--auth-token``
  gates the POST endpoints while the GET probes stay open.

The wire protocol, session-pool lifecycle, memoization contract and
failure modes are written down in ``docs/service.md`` and drift-checked
by tests; ``benchmarks/bench_service.py`` records p50/p99 latency and
sustained QPS under concurrent clients in ``BENCH_service.json``.
"""

import collections
import json
import math
import threading
import time
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, List, Optional

from repro.common.errors import ConfigError, DaydreamError
from repro.core.compiled import CellDelta
from repro.models.registry import runtime_registered_models
from repro.scenarios.backends import (
    BackendError,
    bearer_authorized,
    read_framed_body,
)
from repro.scenarios.pipeline import PipelineError
from repro.scenarios.registry import DEFAULT_REGISTRY, OptimizationRegistry
from repro.scenarios.runner import (
    SCENARIO_RESULT_HEADERS,
    ScenarioOutcome,
    ScenarioRunner,
)
from repro.scenarios.scenario import Scenario, ScenarioGrid
from repro.scenarios.store import SweepStore, scenario_key, store_salt

#: a scenario is a few hundred bytes of JSON; a request body anywhere
#: near this cap (1 MiB) is a broken or hostile client, not a question
MAX_REQUEST_BYTES = 1 << 20

#: how many warm per-workload sessions the pool keeps by default
DEFAULT_MAX_SESSIONS = 8

#: how many predictions may simulate concurrently by default
DEFAULT_WORKERS = 4

#: the rolling window of per-request latencies behind ``GET /stats``
LATENCY_WINDOW = 2048


class ServiceError(DaydreamError):
    """A per-request service failure, carrying its HTTP status.

    400s are the client's problem (malformed scenario, unknown
    optimization, missing cluster); 500s are the engine's — and by
    contract cost only the request that hit them: the failing session is
    evicted and the pool keeps serving.
    """

    def __init__(self, message: str, status: int = 400) -> None:
        super().__init__(message)
        self.status = status


def parse_scenario_payload(payload: object) -> Scenario:
    """Parse one wire-format scenario dict, mapping failures to 400s.

    The wire format *is* :meth:`~repro.scenarios.scenario.Scenario.
    to_dict` — the same canonical dict the store hashes — so a scenario
    that round-trips through the service is byte-identical to one read
    from a scenario file.  Unknown fields, missing ``model``, bad types
    and unknown schedule policies all surface as
    :class:`ServiceError` 400s carrying the validation message.
    """
    if not isinstance(payload, dict):
        raise ServiceError("scenario must be a JSON object, got "
                           f"{type(payload).__name__}")
    try:
        return Scenario.from_dict(payload)
    except ConfigError as exc:
        raise ServiceError(str(exc)) from None


def _percentile(samples: List[float], q: float) -> Optional[float]:
    """Nearest-rank percentile of a sample list (``None`` when empty)."""
    if not samples:
        return None
    ordered = sorted(samples)
    rank = max(0, min(len(ordered) - 1,
                      int(math.ceil(q * len(ordered))) - 1))
    return ordered[rank]


def _workload_token(model: str):
    """Identity of the runtime builder registered for one model name.

    ``None`` for shipped zoo models (immutable within a process); the
    builder callable itself for runtime registrations — re-registering a
    model with ``overwrite=True`` changes the identity, which is how the
    pool detects that a cached session answers for a workload that no
    longer means the same thing.
    """
    return runtime_registered_models().get(model.lower())


@dataclass
class _SessionEntry:
    """One pooled workload: its runner, lock and generation stamps."""

    workload: object
    runner: ScenarioRunner
    model_token: object
    lock: threading.Lock = field(default_factory=threading.Lock)
    served: int = 0


class SessionPool:
    """An LRU pool of warm per-workload scenario-runner sessions.

    Keyed exactly like :meth:`ScenarioRunner._session_key` — ``(model,
    batch size, training config)`` — so every scenario of one workload
    shares one profiled session and one compiled baseline lowering, no
    matter what optimization stack it asks about.  The pool holds at most
    ``max_sessions`` entries, evicting least-recently-used beyond that.

    Two invalidation rules keep warm state honest:

    * the whole pool records the :func:`~repro.scenarios.store.
      store_salt` it was built under and **flushes** when the registry
      fingerprint rotates (a new generation of content keys deserves a
      fresh generation of sessions);
    * each entry records the identity of its model's *runtime builder*
      and is **evicted** when the builder was re-registered — the cached
      session profiled the old model and serving it would be a stale,
      silently-wrong answer.
    """

    def __init__(self, registry: Optional[OptimizationRegistry] = None,
                 max_sessions: int = DEFAULT_MAX_SESSIONS) -> None:
        if max_sessions < 1:
            raise ConfigError("max_sessions must be at least 1")
        self.registry = registry or DEFAULT_REGISTRY
        self.max_sessions = max_sessions
        self._lock = threading.Lock()
        self._entries: "collections.OrderedDict[object, _SessionEntry]" = \
            collections.OrderedDict()
        self._salt = store_salt(self.registry)
        self.built = 0
        self.evicted_lru = 0
        self.evicted_error = 0
        self.evicted_stale_model = 0
        self.flushed_salt = 0

    @property
    def salt(self) -> str:
        """The store salt this pool's current generation was built under."""
        with self._lock:
            return self._salt

    def checkout(self, scenario: Scenario) -> _SessionEntry:
        """The (possibly fresh) pool entry serving one scenario's workload.

        Moves the entry to the MRU end, builds it if missing (evicting
        LRU entries beyond capacity), and applies both invalidation
        rules first — a salt rotation flushes the pool, a re-registered
        model builder evicts the stale entry.  The caller serializes
        actual simulation on ``entry.lock``.
        """
        config = scenario.build_config()
        workload = (scenario.model, scenario.batch_size, config)
        token = _workload_token(scenario.model)
        with self._lock:
            salt = store_salt(self.registry)
            if salt != self._salt:
                self._entries.clear()
                self._salt = salt
                self.flushed_salt += 1
            entry = self._entries.get(workload)
            if entry is not None and entry.model_token is not token:
                del self._entries[workload]
                self.evicted_stale_model += 1
                entry = None
            if entry is None:
                entry = _SessionEntry(workload=workload,
                                      runner=ScenarioRunner(self.registry),
                                      model_token=token)
                self._entries[workload] = entry
                self.built += 1
                while len(self._entries) > self.max_sessions:
                    self._entries.popitem(last=False)
                    self.evicted_lru += 1
            else:
                self._entries.move_to_end(workload)
            entry.served += 1
            return entry

    def evict(self, entry: _SessionEntry) -> None:
        """Drop one entry after an engine failure (idempotent).

        Only the exact entry is dropped: a fresh entry that already
        replaced it under the same workload key is left alone.
        """
        with self._lock:
            if self._entries.get(entry.workload) is entry:
                del self._entries[entry.workload]
                self.evicted_error += 1

    def flush(self) -> int:
        """Drop every pooled session; returns how many were live."""
        with self._lock:
            dropped = len(self._entries)
            self._entries.clear()
            return dropped

    def __len__(self) -> int:
        """How many warm sessions are currently pooled."""
        with self._lock:
            return len(self._entries)

    def stats(self) -> Dict[str, object]:
        """Counter snapshot for ``GET /stats``."""
        with self._lock:
            return {
                "live": len(self._entries),
                "capacity": self.max_sessions,
                "built": self.built,
                "evicted_lru": self.evicted_lru,
                "evicted_error": self.evicted_error,
                "evicted_stale_model": self.evicted_stale_model,
                "flushed_salt": self.flushed_salt,
            }


def _timings_ok(values: object) -> bool:
    """Whether a memoized entry carries both float timings.

    The same shape :mod:`repro.scenarios.batch` validates before trusting
    a store hit — the service and the sweep executor share one
    memoization contract, not two.
    """
    return (isinstance(values, dict)
            and isinstance(values.get("baseline_us"), float)
            and isinstance(values.get("predicted_us"), float))


class PredictService:
    """The transport-independent prediction core behind the daemon.

    Owns the :class:`SessionPool`, the optional
    :class:`~repro.scenarios.store.SweepStore` memo tier, the concurrency
    gate (``workers`` simulations at a time) and the request/latency
    counters.  :class:`PredictServer` is a thin HTTP shell over the four
    public entry points (:meth:`predict`, :meth:`predict_batch`,
    :meth:`healthz`, :meth:`stats`); tests and benchmarks may also call
    them directly.

    The memoization contract: responses are keyed by
    :func:`~repro.scenarios.store.scenario_key` under the service's own
    registry — the *same* key a ``repro sweep`` over the same store would
    use — and memoized values are the same ``{"baseline_us",
    "predicted_us"}`` float pair the batch executor writes, so a cell
    computed by a sweep is a warm hit here and vice versa.  A store built
    against a different registry object is refused outright: one keying
    scheme, enforced.
    """

    def __init__(self, registry: Optional[OptimizationRegistry] = None,
                 store: Optional[SweepStore] = None,
                 max_sessions: int = DEFAULT_MAX_SESSIONS,
                 workers: int = DEFAULT_WORKERS) -> None:
        self.registry = registry or DEFAULT_REGISTRY
        if store is not None and store.registry is not self.registry:
            raise ConfigError(
                "the service and its store must share one registry "
                "object — two registries would mean two keying schemes "
                "for the same entries")
        if workers < 1:
            raise ConfigError("workers must be at least 1")
        self.store = store
        self.pool = SessionPool(self.registry, max_sessions=max_sessions)
        self.workers = workers
        self._gate = threading.BoundedSemaphore(workers)
        #: sessionless runner building rows for store-served answers
        self._detached = ScenarioRunner(self.registry, cache_sessions=False)
        self._lock = threading.Lock()
        self._requests: "collections.Counter[str]" = collections.Counter()
        self._errors: "collections.Counter[int]" = collections.Counter()
        self._latencies: "collections.deque[float]" = \
            collections.deque(maxlen=LATENCY_WINDOW)
        self.started_at = time.time()

    # ------------------------------------------------------------- keying

    def key_for(self, scenario: Scenario) -> str:
        """The content key a scenario's answer is memoized under.

        Exactly :func:`~repro.scenarios.store.scenario_key` under this
        service's registry — the property tests pin that responses never
        grow a second keying scheme.
        """
        return scenario_key(scenario, self.registry)

    # ---------------------------------------------------------- accounting

    def note_request(self, endpoint: str) -> None:
        """Count one request against an endpoint bucket."""
        with self._lock:
            self._requests[endpoint] += 1

    def note_error(self, status: int) -> None:
        """Count one error response by HTTP status."""
        with self._lock:
            self._errors[int(status)] += 1

    def observe_latency(self, seconds: float) -> None:
        """Record one request's wall-clock latency (rolling window)."""
        with self._lock:
            self._latencies.append(seconds)

    # ---------------------------------------------------------- validation

    def _validate(self, scenario: Scenario) -> None:
        """Reject everything a 400 should catch before any warm state.

        Unknown models, unknown optimizations, malformed stacks, bad
        device declarations and cluster-requiring stacks without a
        cluster all fail here — cheap spec construction only, no
        profiling, no pool slot consumed.
        """
        try:
            scenario.build_model()
            scenario.build_config()
            pipeline = scenario.build_pipeline(self.registry)
            if pipeline.requires_cluster and scenario.build_cluster() is None:
                raise ConfigError(
                    f"stack {scenario.stack_label()!r} needs a cluster; "
                    "declare scenario.cluster")
        except (ConfigError, PipelineError) as exc:
            raise ServiceError(str(exc)) from None

    # ----------------------------------------------------------- responses

    def _response(self, scenario: Scenario, key: str,
                  outcome: ScenarioOutcome) -> Dict[str, object]:
        """The wire answer for one scenario (single and batch share it)."""
        return {
            "key": key,
            "kind": "predict",
            "cached": outcome.cached,
            "scenario": scenario.to_dict(),
            "values": {"baseline_us": outcome.baseline_us,
                       "predicted_us": outcome.predicted_us},
            "improvement_percent": outcome.improvement_percent,
            "headers": list(SCENARIO_RESULT_HEADERS),
            "row": outcome.as_row(),
        }

    # ------------------------------------------------------------ predict

    def _predict_one(self, payload: object) -> Dict[str, object]:
        """Answer one scenario: memo read → warm simulate → memo write."""
        scenario = parse_scenario_payload(payload)
        self._validate(scenario)
        key = self.key_for(scenario)
        if self.store is not None:
            values = self.store.get(scenario)
            if _timings_ok(values):
                outcome = self._detached.detached_outcome(
                    scenario, values["baseline_us"], values["predicted_us"],
                    cached=True)
                return self._response(scenario, key, outcome)
        entry = self.pool.checkout(scenario)
        with entry.lock:
            # double-checked memoization: a concurrent twin may have
            # landed this entry while we waited on the session lock
            if self.store is not None:
                values = self.store.get(scenario)
                if _timings_ok(values):
                    outcome = self._detached.detached_outcome(
                        scenario, values["baseline_us"],
                        values["predicted_us"], cached=True)
                    return self._response(scenario, key, outcome)
            with self._gate:
                try:
                    outcome = entry.runner.run(scenario)
                except (ConfigError, PipelineError) as exc:
                    raise ServiceError(str(exc)) from None
                except Exception as exc:
                    self.pool.evict(entry)
                    raise ServiceError(
                        f"engine failure answering "
                        f"{scenario.label()!r}: {exc}",
                        status=500) from None
            if self.store is not None:
                self.store.put(scenario,
                               {"baseline_us": outcome.baseline_us,
                                "predicted_us": outcome.predicted_us})
        return self._response(scenario, key, outcome)

    def predict(self, payload: object) -> Dict[str, object]:
        """``POST /predict``: answer one scenario-JSON question.

        Raises :class:`ServiceError` 400 on anything invalid about the
        request and 500 on an engine failure (evicting the failing
        session; the pool keeps serving).  Counted and timed.
        """
        self.note_request("predict")
        t0 = time.perf_counter()
        try:
            result = self._predict_one(payload)
        except ServiceError as exc:
            self.note_error(exc.status)
            raise
        finally:
            self.observe_latency(time.perf_counter() - t0)
        return result

    # -------------------------------------------------------------- batch

    def _batch_scenarios(self, payload: Dict[str, object]) -> List[Scenario]:
        """The scenario list a batch body describes (list or grid form)."""
        if "scenarios" in payload:
            unknown = sorted(set(payload) - {"scenarios"})
            if unknown:
                raise ServiceError(f"unknown batch field(s) {unknown}")
            raw = payload["scenarios"]
            if not isinstance(raw, list) or not raw:
                raise ServiceError(
                    "'scenarios' must be a non-empty JSON array")
            return [parse_scenario_payload(item) for item in raw]
        unknown = sorted(set(payload) - {"base", "axes"})
        if unknown:
            raise ServiceError(f"unknown batch field(s) {unknown}")
        try:
            return ScenarioGrid.from_dict(payload).expand()
        except ConfigError as exc:
            raise ServiceError(str(exc)) from None

    def predict_batch(self, payload: object) -> Dict[str, object]:
        """``POST /predict/batch``: answer many questions in one request.

        Three body forms:

        * ``{"scenarios": [...]}`` — an explicit scenario list;
        * ``{"base": {...}, "axes": {...}}`` — a scenario grid, expanded
          server-side exactly like ``repro run``/``repro sweep`` expand
          grid files;
        * ``{"scenario": {...}, "cells": [...]}`` — sparse task-override
          cells (see :meth:`_predict_cells`), routed through
          ``simulate_many`` on one shared lowering.

        Scenario batches run each member through *exactly* the single
        :meth:`predict` path against the shared session pool — scenarios
        of one workload share one warm session and one compiled baseline
        lowering — so a batch answer is bit-identical to N single
        requests, memo hits included.
        """
        self.note_request("batch")
        t0 = time.perf_counter()
        try:
            if not isinstance(payload, dict):
                raise ServiceError("batch body must be a JSON object, got "
                                   f"{type(payload).__name__}")
            if "cells" in payload:
                return self._predict_cells(payload)
            scenarios = self._batch_scenarios(payload)
            results = [self._predict_one(s.to_dict()) for s in scenarios]
            return {
                "count": len(results),
                "headers": list(SCENARIO_RESULT_HEADERS),
                "results": results,
            }
        except ServiceError as exc:
            self.note_error(exc.status)
            raise
        finally:
            self.observe_latency(time.perf_counter() - t0)

    # -------------------------------------------------------------- cells

    @staticmethod
    def _override_map(cell: Dict[str, object], which: str,
                      by_name: Dict[str, object],
                      ambiguous: "set[str]") -> Dict[object, float]:
        """Resolve one cell's named task overrides onto baseline tasks."""
        raw = cell.get(which, {})
        if not isinstance(raw, dict):
            raise ServiceError(f"cell {which!r} must be an object mapping "
                               "task names to microseconds")
        resolved: Dict[object, float] = {}
        for name, value in raw.items():
            if name in ambiguous:
                raise ServiceError(
                    f"task name {name!r} is ambiguous in this workload's "
                    "baseline graph")
            task = by_name.get(name)
            if task is None:
                raise ServiceError(
                    f"unknown task {name!r} in this workload's baseline "
                    "graph")
            if (isinstance(value, bool) or
                    not isinstance(value, (int, float))
                    or not math.isfinite(value) or value < 0):
                raise ServiceError(
                    f"override for task {name!r} must be a finite "
                    f"non-negative number of microseconds, got {value!r}")
            resolved[task] = float(value)
        return resolved

    def _predict_cells(self, payload: Dict[str, object]) -> Dict[str, object]:
        """Answer a ``cells`` grid on one shared baseline lowering.

        Each cell names sparse ``durations``/``gaps`` overrides (task
        name → microseconds) onto the scenario workload's *baseline*
        graph; the whole grid runs through
        :meth:`~repro.analysis.session.WhatIfSession.simulate_many`, so
        the baseline is lowered once and every cell re-runs only the
        array engine.  Cells are engine answers, not memoized store
        entries — they have no scenario-shaped identity to key by.
        """
        unknown = sorted(set(payload) - {"scenario", "cells"})
        if unknown:
            raise ServiceError(f"unknown batch field(s) {unknown}")
        scenario = parse_scenario_payload(payload.get("scenario"))
        self._validate(scenario)
        raw_cells = payload.get("cells")
        if not isinstance(raw_cells, list) or not raw_cells:
            raise ServiceError("'cells' must be a non-empty JSON array")
        entry = self.pool.checkout(scenario)
        with entry.lock:
            try:
                session = entry.runner.session(scenario)
            except ConfigError as exc:
                raise ServiceError(str(exc)) from None
            except Exception as exc:
                self.pool.evict(entry)
                raise ServiceError(
                    f"engine failure profiling {scenario.label()!r}: {exc}",
                    status=500) from None
            by_name: Dict[str, object] = {}
            ambiguous: "set[str]" = set()
            for task in session.graph.tasks():
                if task.name in by_name:
                    ambiguous.add(task.name)
                else:
                    by_name[task.name] = task
            deltas = []
            for index, cell in enumerate(raw_cells):
                if not isinstance(cell, dict):
                    raise ServiceError(f"cell {index} must be a JSON object")
                extra = sorted(set(cell) - {"label", "durations", "gaps"})
                if extra:
                    raise ServiceError(
                        f"cell {index} has unknown field(s) {extra}")
                label = cell.get("label", f"cell-{index}")
                if not isinstance(label, str):
                    raise ServiceError(f"cell {index} label must be a string")
                deltas.append(CellDelta(
                    label=label,
                    durations=self._override_map(cell, "durations",
                                                 by_name, ambiguous),
                    gaps=self._override_map(cell, "gaps",
                                            by_name, ambiguous)))
            with self._gate:
                try:
                    predictions = entry.runner.run_cells(
                        scenario, deltas,
                        scheduler=scenario.build_schedule_policy())
                except (ConfigError, PipelineError) as exc:
                    raise ServiceError(str(exc)) from None
                except Exception as exc:
                    self.pool.evict(entry)
                    raise ServiceError(
                        f"engine failure answering cell grid on "
                        f"{scenario.label()!r}: {exc}",
                        status=500) from None
        return {
            "count": len(predictions),
            "scenario": scenario.to_dict(),
            "baseline_us": session.baseline_us,
            "results": [{"label": p.optimization,
                         "baseline_us": p.baseline_us,
                         "predicted_us": p.predicted_us,
                         "improvement_percent": p.improvement_percent}
                        for p in predictions],
        }

    # -------------------------------------------------------------- probes

    def healthz(self) -> Dict[str, object]:
        """``GET /healthz``: a cheap liveness probe."""
        return {"ok": True,
                "uptime_s": max(0.0, time.time() - self.started_at),
                "sessions_live": len(self.pool)}

    def stats(self) -> Dict[str, object]:
        """``GET /stats``: session, memo-hit and latency counters."""
        with self._lock:
            requests = dict(self._requests)
            errors = {str(status): count
                      for status, count in sorted(self._errors.items())}
            samples = list(self._latencies)
        p50 = _percentile(samples, 0.50)
        p99 = _percentile(samples, 0.99)
        return {
            "uptime_s": max(0.0, time.time() - self.started_at),
            "salt": self.pool.salt,
            "workers": self.workers,
            "requests": requests,
            "errors": errors,
            "sessions": self.pool.stats(),
            "memo": (self.store.stats.as_dict()
                     if self.store is not None else None),
            "latency": {
                "window": len(samples),
                "p50_ms": None if p50 is None else p50 * 1000.0,
                "p99_ms": None if p99 is None else p99 * 1000.0,
            },
        }


class _PredictHTTPHandler(BaseHTTPRequestHandler):
    """Request handler bridging the HTTP surface onto a PredictService."""

    # set by PredictServer on the subclass it builds per server instance
    service: PredictService
    auth_token: Optional[str] = None
    server_version = "repro-predict/1"

    #: POST routes, by exact path
    _ROUTES = ("/predict", "/predict/batch")

    def log_message(self, format: str, *args: object) -> None:  # noqa: A002
        """Silence per-request stderr logging (the CLI prints a summary)."""

    def _send(self, code: int, body: bytes = b"",
              content_type: str = "application/json") -> None:
        """One framed response (shared shape with the store handler)."""
        self.send_response(code)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        if self.command != "HEAD":
            self.wfile.write(body)

    def _send_json(self, code: int, payload: Dict[str, object]) -> None:
        """One JSON response."""
        self._send(code, json.dumps(payload).encode("utf-8"))

    def do_GET(self) -> None:
        """Serve the open probes: ``/healthz`` and ``/stats``."""
        if self.path == "/healthz":
            self._send_json(200, self.service.healthz())
            return
        if self.path == "/stats":
            payload = self.service.stats()
            payload["auth_required"] = bool(self.auth_token)
            self._send_json(200, payload)
            return
        self.service.note_error(404)
        self._send(404, b'{"error": "no such endpoint"}')

    def do_POST(self) -> None:
        """Serve one prediction request (auth-gated when a token is set)."""
        if self.path not in self._ROUTES:
            self.service.note_error(404)
            self._send(404, b'{"error": "no such endpoint"}')
            return
        if not bearer_authorized(self.headers, self.auth_token):
            self.service.note_error(401)
            self._send(401, b'{"error": "missing or wrong auth token"}')
            return
        data, framing_error = read_framed_body(self, cap=MAX_REQUEST_BYTES)
        if data is None:
            self.service.note_error(framing_error or 400)
            return
        try:
            payload = json.loads(data.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            self.service.note_error(400)
            self._send_json(400, {"error": f"request body is not valid "
                                           f"JSON: {exc}"})
            return
        try:
            if self.path == "/predict":
                result = self.service.predict(payload)
            else:
                result = self.service.predict_batch(payload)
        except ServiceError as exc:
            self._send_json(exc.status, {"error": str(exc)})
            return
        self._send_json(200, result)


class PredictServer:
    """Serve a :class:`PredictService` over HTTP (``repro serve-predict``).

    A thin wrapper around :class:`http.server.ThreadingHTTPServer`,
    mirroring :class:`~repro.scenarios.backends.StoreServer`: bind a host
    and port (``0`` picks a free one), then either :meth:`serve` in the
    foreground — optionally for a bounded ``duration`` — or :meth:`start`
    a daemon thread and :meth:`shutdown` later (what the tests do).

    ``auth_token`` gates the POST endpoints (predictions cost engine
    time); the GET probes stay open, like the store server's reads, so a
    load balancer can health-check an authenticated daemon.
    """

    def __init__(self, service: PredictService, host: str = "127.0.0.1",
                 port: int = 0, auth_token: Optional[str] = None) -> None:
        self.service = service
        handler = type("_BoundPredictHTTPHandler", (_PredictHTTPHandler,),
                       {"service": service, "auth_token": auth_token})
        try:
            self._server = ThreadingHTTPServer((host, port), handler)
        except OSError as exc:
            raise BackendError(
                f"cannot bind prediction server to {host}:{port}: {exc}"
            ) from None
        self._thread: Optional[threading.Thread] = None

    @property
    def host(self) -> str:
        """The bound host address."""
        return self._server.server_address[0]

    @property
    def port(self) -> int:
        """The bound port (useful with ``port=0``)."""
        return self._server.server_address[1]

    @property
    def url(self) -> str:
        """The base URL clients POST scenario questions to."""
        return f"http://{self.host}:{self.port}"

    def serve(self, duration_s: Optional[float] = None) -> None:
        """Serve in the foreground, forever or for ``duration_s`` seconds."""
        if duration_s is not None:
            timer = threading.Timer(duration_s, self._server.shutdown)
            timer.daemon = True
            timer.start()
        try:
            self._server.serve_forever(poll_interval=0.05)
        finally:
            self._server.server_close()

    def start(self) -> "PredictServer":
        """Serve on a daemon thread; returns self for chaining."""
        self._thread = threading.Thread(target=self._server.serve_forever,
                                        kwargs={"poll_interval": 0.05},
                                        daemon=True)
        self._thread.start()
        return self

    def shutdown(self) -> None:
        """Stop a :meth:`start`-ed server and release its socket."""
        self._server.shutdown()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        self._server.server_close()

    def __enter__(self) -> "PredictServer":
        """Start serving on entry to a ``with`` block."""
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        """Shut the server down on exit."""
        self.shutdown()
