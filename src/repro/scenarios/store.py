"""Content-addressed, on-disk store of scenario sweep results.

The paper's pitch only compounds when predictions are *reusable*: a
thousand-cell scenario catalog should pay for each cell once, ever, and a
re-run after a crash (or next week, or on a colleague's checkout) should
skip straight to the unexplored cells.  :class:`SweepStore` makes that
durable:

* **content-addressed** — an entry is keyed by a stable hash of the
  *canonical* scenario JSON (sorted keys, default fields omitted, numeric
  widening), so two declarations that mean the same thing share one entry
  no matter how they were formatted, and any semantic change misses;
* **salted** — the key folds in :data:`RESULT_SCHEMA_VERSION` and the
  :meth:`~repro.scenarios.registry.OptimizationRegistry.fingerprint`, so
  registry or result-format evolution invalidates stale rows instead of
  silently serving them;
* **atomic** — entries are written to a temp file and ``os.replace``-d
  into place; a crashed writer can never leave a half-entry where a
  reader would trust it;
* **corruption-safe** — reads verify the JSON parses, the embedded key
  and salt match, and a payload checksum holds; anything off is treated
  as a miss (re-simulated) *and the dead file is deleted* so it never
  needs a later GC scan to find;
* **lifecycle-managed** — every served entry touches a ``last_served``
  sidecar, :meth:`gc` evicts least-recently-served entries down to a byte
  budget (and removes corrupt entries, stale salt generations, and
  abandoned temp files), :meth:`prune` drops rotated-out generations
  wholesale, :meth:`verify` audits without mutating, and a ``max_bytes``
  cap makes the store self-bounding under large catalogs.  The
  ``repro store`` CLI fronts all four.

Entries carry a free-form ``values`` dict rather than a fixed row shape,
so prediction results (``kind="predict"``) and ground-truth engine
measurements (e.g. ``kind="groundtruth:ddp-sync"``) share one substrate.
The full key/salt/eviction contract is documented in ``docs/sweeps.md``.
"""

import hashlib
import json
import os
import tempfile
import time
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from repro.common.errors import ConfigError
from repro.scenarios.registry import DEFAULT_REGISTRY, OptimizationRegistry
from repro.scenarios.scenario import Scenario

#: bump when the meaning of stored values changes (simulator semantics,
#: row derivation, entry layout) — every older entry then misses
RESULT_SCHEMA_VERSION = 1

#: abandoned ``.tmp`` files younger than this survive :meth:`SweepStore.gc`
#: (a concurrent writer may still be about to ``os.replace`` them)
TMP_GRACE_SECONDS = 3600.0


def _canonicalize(obj: object) -> object:
    """Normalize a scenario dict for hashing.

    Dict keys sort at dump time; here we widen non-bool ints to floats so
    ``"bandwidth_gbps": 10`` and ``10.0`` — equal in Python, different in
    JSON text — hash identically.
    """
    if isinstance(obj, dict):
        return {str(k): _canonicalize(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_canonicalize(v) for v in obj]
    if isinstance(obj, bool):
        return obj
    if isinstance(obj, int):
        return float(obj)
    return obj


def canonical_scenario_json(scenario: Scenario) -> str:
    """The canonical JSON text of a scenario (the content that is hashed).

    ``Scenario.to_dict`` already omits fields left at their defaults, so
    declaring a default explicitly does not change the canonical form.
    """
    return json.dumps(_canonicalize(scenario.to_dict()), sort_keys=True,
                      separators=(",", ":"))


def store_salt(registry: Optional[OptimizationRegistry] = None) -> str:
    """The version salt folded into every content key."""
    registry = registry or DEFAULT_REGISTRY
    return f"v{RESULT_SCHEMA_VERSION}:{registry.fingerprint()}"


def scenario_key(scenario: Scenario,
                 registry: Optional[OptimizationRegistry] = None,
                 kind: str = "predict") -> str:
    """Content address of one (scenario, result kind) pair: 32 hex chars."""
    material = "\n".join([store_salt(registry), kind,
                          canonical_scenario_json(scenario)])
    return hashlib.blake2b(material.encode("utf-8"),
                           digest_size=16).hexdigest()


def _entry_checksum(payload: Dict[str, object]) -> str:
    """Checksum over the trusted portion of an entry."""
    material = json.dumps(
        {k: payload.get(k) for k in ("key", "kind", "salt", "scenario",
                                     "values")},
        sort_keys=True, separators=(",", ":"))
    return hashlib.blake2b(material.encode("utf-8"),
                           digest_size=8).hexdigest()


@dataclass
class StoreStats:
    """Running hit/miss/write counters of one :class:`SweepStore`."""

    hits: int = 0
    misses: int = 0
    writes: int = 0
    rejected: int = 0  # present on disk but unreadable/corrupt/stale
    evicted: int = 0   # removed by gc/prune (lifecycle, not correctness)

    def as_dict(self) -> Dict[str, int]:
        """Plain-dict form for JSON reporting."""
        return {"hits": self.hits, "misses": self.misses,
                "writes": self.writes, "rejected": self.rejected,
                "evicted": self.evicted}


@dataclass
class GCReport:
    """What one :meth:`SweepStore.gc` (or :meth:`prune`) pass did."""

    examined: int = 0         # entries scanned
    corrupt_removed: int = 0  # unreadable / checksum-failed entries deleted
    stale_removed: int = 0    # entries from rotated-out salt generations
    evicted: int = 0          # live entries dropped to meet the byte budget
    tmp_removed: int = 0      # abandoned writer temp files deleted
    bytes_before: int = 0
    bytes_after: int = 0

    @property
    def removed(self) -> int:
        """Total entries deleted by this pass."""
        return self.corrupt_removed + self.stale_removed + self.evicted

    def as_dict(self) -> Dict[str, int]:
        """Plain-dict form for JSON reporting."""
        return {"examined": self.examined, "removed": self.removed,
                "corrupt_removed": self.corrupt_removed,
                "stale_removed": self.stale_removed,
                "evicted": self.evicted, "tmp_removed": self.tmp_removed,
                "bytes_before": self.bytes_before,
                "bytes_after": self.bytes_after}


@dataclass
class VerifyReport:
    """Audit of every entry currently on disk (read-only by default)."""

    live: List[str] = field(default_factory=list)     # trustworthy keys
    stale: List[str] = field(default_factory=list)    # other salt generation
    corrupt: List[str] = field(default_factory=list)  # unreadable/tampered

    @property
    def ok(self) -> bool:
        """Whether every entry on disk is live under the current salt."""
        return not self.stale and not self.corrupt

    def as_dict(self) -> Dict[str, object]:
        """Plain-dict form for JSON reporting (counts plus bad keys)."""
        return {"live": len(self.live), "stale": len(self.stale),
                "corrupt": len(self.corrupt),
                "stale_keys": list(self.stale),
                "corrupt_keys": list(self.corrupt)}


@dataclass
class SweepStore:
    """A directory of content-addressed scenario results.

    Layout: ``<root>/objects/<key[:2]>/<key>.json``, one entry per file,
    plus a zero-byte ``<key>.last`` sidecar whose mtime records when the
    entry was last served (the LRU clock for :meth:`gc`).  Safe for
    concurrent readers plus any number of writers producing the same
    deterministic content (writes are atomic replaces).

    With ``max_bytes`` set the store is self-bounding: :meth:`put` tracks
    an approximate on-disk total and triggers :meth:`gc` down to the cap
    whenever a write pushes past it.
    """

    root: str
    registry: OptimizationRegistry = field(default_factory=lambda: DEFAULT_REGISTRY)
    stats: StoreStats = field(default_factory=StoreStats)
    max_bytes: Optional[int] = None

    def __post_init__(self) -> None:
        self.root = os.fspath(self.root)
        if os.path.exists(self.root) and not os.path.isdir(self.root):
            raise ConfigError(f"sweep store path {self.root!r} is not a "
                              "directory")
        if self.max_bytes is not None and self.max_bytes <= 0:
            raise ConfigError("max_bytes must be positive (or None for "
                              "an unbounded store)")
        #: lazily initialized running estimate of the on-disk total, kept
        #: fresh by put/gc so the cap check does not rescan per write
        self._approx_bytes: Optional[int] = None

    # ----------------------------------------------------------------- paths

    @property
    def _objects_dir(self) -> str:
        return os.path.join(self.root, "objects")

    def path_for(self, key: str) -> str:
        """The entry file backing one content key."""
        return os.path.join(self._objects_dir, key[:2], f"{key}.json")

    def served_path_for(self, key: str) -> str:
        """The ``last_served`` sidecar of one content key.

        A zero-byte file whose mtime is the LRU clock: touched on every
        :meth:`get` hit and every :meth:`put`, never read for content.
        """
        return os.path.join(self._objects_dir, key[:2], f"{key}.last")

    def key(self, scenario: Scenario, kind: str = "predict") -> str:
        """Content address of one (scenario, kind) under this registry."""
        return scenario_key(scenario, self.registry, kind=kind)

    # ----------------------------------------------------------------- reads

    def get(self, scenario: Scenario,
            kind: str = "predict") -> Optional[Dict[str, object]]:
        """The stored ``values`` dict, or ``None`` on any doubt.

        A present-but-unreadable entry (truncated write, bit rot, stale
        salt smuggled in by hand) counts as a miss — and is deleted on
        the spot, so the dead bytes never wait for a GC scan: the caller
        re-simulates and :meth:`put` writes a fresh entry.
        """
        key = self.key(scenario, kind=kind)
        path = self.path_for(key)
        payload = self._load(path, count=True)
        if payload is not None and self._trustworthy(payload, key, kind,
                                                     count=True):
            self.stats.hits += 1
            self._touch_served(key)
            return dict(payload["values"])
        if os.path.exists(path):
            # failed verification: remove the corrupt/stale entry now
            self._delete_entry(key)
        self.stats.misses += 1
        return None

    def contains(self, scenario: Scenario, kind: str = "predict") -> bool:
        """Whether a *trustworthy* entry exists (a pure probe).

        Mere file existence is not membership: an entry with a stale
        salt, a failed checksum, or unparseable bytes would miss on
        :meth:`get`, so it must not count here either.  Unlike
        :meth:`get`, this touches nothing — no counters, no sidecar, no
        corrupt-entry deletion.
        """
        key = self.key(scenario, kind=kind)
        payload = self._load(self.path_for(key), count=False)
        return payload is not None and self._trustworthy(payload, key, kind,
                                                         count=False)

    def _load(self, path: str, count: bool) -> Optional[Dict[str, object]]:
        try:
            with open(path, encoding="utf-8") as f:
                payload = json.load(f)
        except FileNotFoundError:
            return None
        except (OSError, ValueError, UnicodeDecodeError):
            if count:
                self.stats.rejected += 1  # exists, but cannot be parsed
            return None
        if not isinstance(payload, dict):
            if count:
                self.stats.rejected += 1
            return None
        return payload

    def _trustworthy(self, payload: Dict[str, object], key: str,
                     kind: str, count: bool) -> bool:
        ok = (
            payload.get("format") == RESULT_SCHEMA_VERSION
            and payload.get("key") == key
            and payload.get("kind") == kind
            and payload.get("salt") == store_salt(self.registry)
            and isinstance(payload.get("values"), dict)
            and payload.get("checksum") == _entry_checksum(payload)
        )
        if not ok and count:
            self.stats.rejected += 1
        return ok

    # ---------------------------------------------------------------- writes

    def put(self, scenario: Scenario, values: Dict[str, object],
            kind: str = "predict") -> str:
        """Persist one result atomically; returns its content key.

        With ``max_bytes`` set, a write that pushes the (approximate)
        on-disk total past the cap triggers :meth:`gc` down to it.
        """
        key = self.key(scenario, kind=kind)
        payload: Dict[str, object] = {
            "format": RESULT_SCHEMA_VERSION,
            "key": key,
            "kind": kind,
            "salt": store_salt(self.registry),
            "scenario": scenario.to_dict(),
            "values": dict(values),
        }
        payload["checksum"] = _entry_checksum(payload)
        path = self.path_for(key)
        # overwrites replace bytes rather than add them: snapshot the old
        # size so the running estimate tracks the true on-disk delta
        old_bytes = self._entry_bytes(key) if self.max_bytes is not None \
            else 0
        os.makedirs(os.path.dirname(path), exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=os.path.dirname(path),
                                   prefix=f".{key[:8]}-", suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as f:
                json.dump(payload, f, indent=1, sort_keys=True)
                f.write("\n")
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.stats.writes += 1
        self._touch_served(key)
        if self.max_bytes is not None:
            if self._approx_bytes is None:
                self._approx_bytes = self.total_bytes()
            else:
                self._approx_bytes += self._entry_bytes(key) - old_bytes
            if self._approx_bytes > self.max_bytes:
                self.gc(max_bytes=self.max_bytes)
        return key

    def _touch_served(self, key: str) -> None:
        """Refresh the LRU clock of one entry (best-effort)."""
        sidecar = self.served_path_for(key)
        try:
            with open(sidecar, "a", encoding="utf-8"):
                pass
            os.utime(sidecar, None)
        except OSError:
            pass  # a read-only or racing store never fails a serve

    def _delete_entry(self, key: str) -> int:
        """Remove one entry and its sidecar; returns the bytes freed."""
        freed = 0
        for path in (self.path_for(key), self.served_path_for(key)):
            try:
                freed += os.stat(path).st_size
                os.unlink(path)
            except OSError:
                pass
        if self._approx_bytes is not None:
            self._approx_bytes = max(0, self._approx_bytes - freed)
        return freed

    # --------------------------------------------------------------- queries

    def keys(self) -> Iterator[str]:
        """Every content key currently on disk (unvalidated)."""
        objects = self._objects_dir
        if not os.path.isdir(objects):
            return
        for shard in sorted(os.listdir(objects)):
            shard_dir = os.path.join(objects, shard)
            if not os.path.isdir(shard_dir):
                continue
            for name in sorted(os.listdir(shard_dir)):
                if name.endswith(".json"):
                    yield name[:-len(".json")]

    def __len__(self) -> int:
        return sum(1 for _ in self.keys())

    def __contains__(self, scenario: Scenario) -> bool:
        return self.contains(scenario)

    def total_bytes(self) -> int:
        """Bytes on disk under ``objects/`` (entries, sidecars, temp files)."""
        total = 0
        for dirpath, _dirnames, filenames in os.walk(self._objects_dir):
            for name in filenames:
                try:
                    total += os.stat(os.path.join(dirpath, name)).st_size
                except OSError:
                    pass
        return total

    def _entry_bytes(self, key: str) -> int:
        """On-disk size of one entry plus its sidecar."""
        size = 0
        for path in (self.path_for(key), self.served_path_for(key)):
            try:
                size += os.stat(path).st_size
            except OSError:
                pass
        return size

    def last_served(self, key: str) -> Optional[float]:
        """When the entry was last served (sidecar mtime, else entry
        mtime, else ``None`` for a missing entry)."""
        for path in (self.served_path_for(key), self.path_for(key)):
            try:
                return os.stat(path).st_mtime
            except OSError:
                continue
        return None

    def _classify(self, key: str, keep_salt: Optional[str] = None) -> str:
        """Lifecycle class of one on-disk entry.

        ``"live"`` — trustworthy under the kept salt generation
        (``keep_salt``, defaulting to the store's current salt, in which
        case the schema version must match too); ``"stale"`` — internally
        consistent but from another generation; ``"corrupt"`` —
        unreadable, tampered, or mislabeled.
        """
        payload = self._load(self.path_for(key), count=False)
        if payload is None:
            return "corrupt"
        if (payload.get("key") != key
                or not isinstance(payload.get("values"), dict)
                or payload.get("checksum") != _entry_checksum(payload)):
            return "corrupt"
        if payload.get("salt") != (keep_salt or store_salt(self.registry)):
            return "stale"
        if (keep_salt is None
                and payload.get("format") != RESULT_SCHEMA_VERSION):
            return "stale"
        return "live"

    # -------------------------------------------------------------- lifecycle

    def verify(self) -> VerifyReport:
        """Audit every entry without mutating anything.

        Classifies each on-disk entry as live (trustworthy under the
        current salt), stale (another salt generation / schema version),
        or corrupt (unreadable or tampered).  ``repro store verify``
        renders this; :meth:`gc` acts on it.
        """
        report = VerifyReport()
        for key in self.keys():
            getattr(report, self._classify(key)).append(key)
        return report

    def gc(self, max_bytes: Optional[int] = None) -> GCReport:
        """Delete dead weight, then evict LRU entries to a byte budget.

        Three passes, in order:

        1. **corrupt** entries and **stale** salt generations are removed
           unconditionally (they can never be served again);
        2. abandoned writer temp files older than
           :data:`TMP_GRACE_SECONDS` are removed;
        3. if ``max_bytes`` is given (or the store has a ``max_bytes``
           cap) and the surviving entries still exceed it, live entries
           are evicted least-recently-served first — the ``last_served``
           sidecar is the clock — until the total fits.

        Returns a :class:`GCReport`; ``repro store gc`` renders it.
        """
        if max_bytes is None:
            max_bytes = self.max_bytes
        report = GCReport(bytes_before=self.total_bytes())

        survivors: List[Tuple[float, str, int]] = []  # (served, key, size)
        live_bytes = 0
        for key in list(self.keys()):
            report.examined += 1
            status = self._classify(key)
            if status == "corrupt":
                self._delete_entry(key)
                report.corrupt_removed += 1
            elif status == "stale":
                self._delete_entry(key)
                report.stale_removed += 1
            else:
                size = self._entry_bytes(key)
                served = self.last_served(key) or 0.0
                survivors.append((served, key, size))
                live_bytes += size

        report.tmp_removed = self._remove_abandoned_tmp()

        if max_bytes is not None and live_bytes > max_bytes:
            survivors.sort()  # oldest served first; key breaks ties stably
            for served, key, size in survivors:
                if live_bytes <= max_bytes:
                    break
                self._delete_entry(key)
                live_bytes -= size
                report.evicted += 1

        self.stats.evicted += report.removed
        report.bytes_after = self.total_bytes()
        self._approx_bytes = report.bytes_after
        return report

    def prune(self, keep_salt: Optional[str] = None) -> GCReport:
        """Drop every entry outside one salt generation.

        After a registry change or a :data:`RESULT_SCHEMA_VERSION` bump
        rotates the salt, old-generation entries are unreachable dead
        bytes; this removes them (corrupt entries go too — their
        generation cannot even be determined).  ``keep_salt`` defaults to
        the store's current salt; pass an explicit value to keep a
        different generation instead (``repro store prune --salt``).
        """
        report = GCReport(bytes_before=self.total_bytes())
        for key in list(self.keys()):
            report.examined += 1
            status = self._classify(key, keep_salt=keep_salt)
            if status == "corrupt":
                self._delete_entry(key)
                report.corrupt_removed += 1
            elif status == "stale":
                self._delete_entry(key)
                report.stale_removed += 1
        report.tmp_removed = self._remove_abandoned_tmp()
        self.stats.evicted += report.removed
        report.bytes_after = self.total_bytes()
        self._approx_bytes = report.bytes_after
        return report

    def _remove_abandoned_tmp(self, grace_s: float = TMP_GRACE_SECONDS) -> int:
        """Delete writer temp files older than ``grace_s`` seconds.

        Young temp files are left alone: a concurrent writer may be about
        to ``os.replace`` one into place.
        """
        removed = 0
        cutoff = time.time() - grace_s
        for dirpath, _dirnames, filenames in os.walk(self._objects_dir):
            for name in filenames:
                if not name.endswith(".tmp"):
                    continue
                path = os.path.join(dirpath, name)
                try:
                    if os.stat(path).st_mtime < cutoff:
                        os.unlink(path)
                        removed += 1
                except OSError:
                    pass
        return removed
