"""Content-addressed store of scenario sweep results, over pluggable tiers.

The paper's pitch only compounds when predictions are *reusable*: a
thousand-cell scenario catalog should pay for each cell once, ever, and a
re-run after a crash (or next week, or on a colleague's checkout) should
skip straight to the unexplored cells.  :class:`SweepStore` makes that
durable:

* **content-addressed** — an entry is keyed by a stable hash of the
  *canonical* scenario JSON (sorted keys, default fields omitted, numeric
  widening), so two declarations that mean the same thing share one entry
  no matter how they were formatted, and any semantic change misses;
* **salted** — the key folds in :data:`RESULT_SCHEMA_VERSION` and the
  :meth:`~repro.scenarios.registry.OptimizationRegistry.fingerprint`, so
  registry or result-format evolution invalidates stale rows instead of
  silently serving them;
* **atomic** — entries are written to a temp file and ``os.replace``-d
  into place; a crashed writer can never leave a half-entry where a
  reader would trust it;
* **corruption-safe** — reads verify the JSON parses, the embedded key
  and salt match, and a payload checksum holds; anything off is treated
  as a miss (re-simulated) *and the dead file is deleted* so it never
  needs a later GC scan to find;
* **tiered** — the byte I/O runs over pluggable
  :class:`~repro.scenarios.backends.StoreBackend` tiers: the local
  :class:`~repro.scenarios.backends.LocalBackend` directory is always the
  cache of record, and an optional ``remote``
  :class:`~repro.scenarios.backends.HTTPBackend` is consulted
  read-through on local misses (verified entries are written back
  locally; a corrupt, skewed or unreachable remote is a miss, never a
  crash).  :meth:`push` / :meth:`pull` move whole generations explicitly;
* **lease-coordinated** — per-key lease files serialize writers against
  GC, a store-wide GC lease serializes collection passes, and
  :meth:`gc` re-scans under that lease until the byte budget *holds*, so
  ``gc --max-bytes`` is exact even with a racing writer;
* **lifecycle-managed** — every served entry touches a ``last_served``
  sidecar, :meth:`gc` evicts least-recently-served entries down to a byte
  budget (and removes corrupt entries, stale salt generations, and
  abandoned temp files), :meth:`prune` drops rotated-out generations
  wholesale, :meth:`verify` audits without mutating, and a ``max_bytes``
  cap makes the store self-bounding under large catalogs.  The
  ``repro store`` CLI fronts all of it.

Entries carry a free-form ``values`` dict rather than a fixed row shape,
so prediction results (``kind="predict"``) and ground-truth engine
measurements (e.g. ``kind="groundtruth:ddp-sync"``) share one substrate.
The key/salt/eviction contract is documented in ``docs/sweeps.md``; the
backend and lease contracts in ``docs/store-backends.md``.
"""

import hashlib
import json
import os
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple, Union

from repro.common.errors import ConfigError
from repro.scenarios.backends import (
    LEASE_STEAL_SECONDS,
    NOT_MODIFIED,
    BackendError,
    ComputeLease,
    FileLease,
    HTTPBackend,
    LocalBackend,
    entry_etag,
)
from repro.scenarios.registry import DEFAULT_REGISTRY, OptimizationRegistry
from repro.scenarios.retry import RetryPolicy, sync_retry_policy
from repro.scenarios.scenario import Scenario

#: bump when the meaning of stored values changes (simulator semantics,
#: row derivation, entry layout) — every older entry then misses.
#: v2: simulate breaks feasible-start ties on stable task ordinals
#: (allocation-independent) instead of FIFO frontier-entry order
RESULT_SCHEMA_VERSION = 2

#: abandoned ``.tmp`` files younger than this survive :meth:`SweepStore.gc`
#: (a concurrent writer may still be about to ``os.replace`` them)
TMP_GRACE_SECONDS = 3600.0

#: how long a write waits for the per-key lease before writing anyway
#: (two writers of one key produce identical content-addressed bytes, so
#: proceeding is safe; the lease exists to coordinate with GC accounting)
PUT_LEASE_WAIT_SECONDS = 0.5

#: how long gc/prune wait for the store-wide GC lease before proceeding
#: without exclusivity (two budget passes over-evict at worst, and every
#: eviction victim is recomputable)
GC_LEASE_WAIT_SECONDS = 30.0

#: a capped store re-reads the true on-disk total every this many writes,
#: so another process's writes cannot drift the cap estimate forever
CAP_RESYNC_PUTS = 16

#: liveness backstop for the eviction rescan loop: a sustained writer
#: outpacing eviction for this many consecutive rounds ends the pass
#: (the writers' own capped puts then finish enforcing the budget)
MAX_EVICT_ROUNDS = 200


def _canonicalize(obj: object) -> object:
    """Normalize a scenario dict for hashing.

    Dict keys sort at dump time; here we widen non-bool ints to floats so
    ``"bandwidth_gbps": 10`` and ``10.0`` — equal in Python, different in
    JSON text — hash identically.
    """
    if isinstance(obj, dict):
        return {str(k): _canonicalize(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_canonicalize(v) for v in obj]
    if isinstance(obj, bool):
        return obj
    if isinstance(obj, int):
        return float(obj)
    return obj


def canonical_scenario_json(scenario: Scenario) -> str:
    """The canonical JSON text of a scenario (the content that is hashed).

    ``Scenario.to_dict`` already omits fields left at their defaults, so
    declaring a default explicitly does not change the canonical form.
    """
    return json.dumps(_canonicalize(scenario.to_dict()), sort_keys=True,
                      separators=(",", ":"))


def store_salt(registry: Optional[OptimizationRegistry] = None) -> str:
    """The version salt folded into every content key."""
    registry = registry or DEFAULT_REGISTRY
    return f"v{RESULT_SCHEMA_VERSION}:{registry.fingerprint()}"


def scenario_key(scenario: Scenario,
                 registry: Optional[OptimizationRegistry] = None,
                 kind: str = "predict") -> str:
    """Content address of one (scenario, result kind) pair: 32 hex chars."""
    material = "\n".join([store_salt(registry), kind,
                          canonical_scenario_json(scenario)])
    return hashlib.blake2b(material.encode("utf-8"),
                           digest_size=16).hexdigest()


def _entry_checksum(payload: Dict[str, object]) -> str:
    """Checksum over the trusted portion of an entry."""
    material = json.dumps(
        {k: payload.get(k) for k in ("key", "kind", "salt", "scenario",
                                     "values")},
        sort_keys=True, separators=(",", ":"))
    return hashlib.blake2b(material.encode("utf-8"),
                           digest_size=8).hexdigest()


@dataclass
class StoreStats:
    """Running hit/miss/write counters of one :class:`SweepStore`."""

    hits: int = 0
    misses: int = 0
    writes: int = 0
    rejected: int = 0  # present on disk but unreadable/corrupt/stale
    evicted: int = 0   # removed by gc/prune (lifecycle, not correctness)
    remote_hits: int = 0      # served read-through from the remote tier
    remote_rejected: int = 0  # remote bytes that failed verification
    remote_faults: int = 0    # remote reads that raised (treated as misses)
    published: int = 0        # entries pushed to the hub at record time
    publish_failures: int = 0  # record-time publishes that failed (kept local)

    def as_dict(self) -> Dict[str, int]:
        """Plain-dict form for JSON reporting."""
        return {"hits": self.hits, "misses": self.misses,
                "writes": self.writes, "rejected": self.rejected,
                "evicted": self.evicted, "remote_hits": self.remote_hits,
                "remote_rejected": self.remote_rejected,
                "remote_faults": self.remote_faults,
                "published": self.published,
                "publish_failures": self.publish_failures}


@dataclass
class GCReport:
    """What one :meth:`SweepStore.gc` (or :meth:`prune`) pass did."""

    examined: int = 0         # entries scanned
    corrupt_removed: int = 0  # unreadable / checksum-failed entries deleted
    stale_removed: int = 0    # entries from rotated-out salt generations
    evicted: int = 0          # live entries dropped to meet the byte budget
    tmp_removed: int = 0      # abandoned writer temp files deleted
    bytes_before: int = 0
    bytes_after: int = 0

    @property
    def removed(self) -> int:
        """Total entries deleted by this pass."""
        return self.corrupt_removed + self.stale_removed + self.evicted

    def as_dict(self) -> Dict[str, int]:
        """Plain-dict form for JSON reporting."""
        return {"examined": self.examined, "removed": self.removed,
                "corrupt_removed": self.corrupt_removed,
                "stale_removed": self.stale_removed,
                "evicted": self.evicted, "tmp_removed": self.tmp_removed,
                "bytes_before": self.bytes_before,
                "bytes_after": self.bytes_after}


@dataclass
class VerifyReport:
    """Audit of every entry currently on disk (read-only by default)."""

    live: List[str] = field(default_factory=list)     # trustworthy keys
    stale: List[str] = field(default_factory=list)    # other salt generation
    corrupt: List[str] = field(default_factory=list)  # unreadable/tampered

    @property
    def ok(self) -> bool:
        """Whether every entry on disk is live under the current salt."""
        return not self.stale and not self.corrupt

    def as_dict(self) -> Dict[str, object]:
        """Plain-dict form for JSON reporting (counts plus bad keys)."""
        return {"live": len(self.live), "stale": len(self.stale),
                "corrupt": len(self.corrupt),
                "stale_keys": list(self.stale),
                "corrupt_keys": list(self.corrupt)}


@dataclass
class SyncReport:
    """What one :meth:`SweepStore.push` or :meth:`SweepStore.pull` did."""

    examined: int = 0     # keys considered on the source tier
    transferred: int = 0  # entries actually moved
    skipped: int = 0      # push: key already listed by the target (its
                          # copy is NOT re-verified — push --force
                          # re-uploads); pull: local copy already live,
                          # or the remote entry vanished mid-transfer
    rejected: int = 0     # failed verification; never transferred

    def as_dict(self) -> Dict[str, int]:
        """Plain-dict form for JSON reporting."""
        return {"examined": self.examined,
                "transferred": self.transferred,
                "skipped": self.skipped, "rejected": self.rejected}


@dataclass
class SweepStore:
    """A directory of content-addressed scenario results.

    Layout: ``<root>/objects/<key[:2]>/<key>.json``, one entry per file,
    plus a zero-byte ``<key>.last`` sidecar whose mtime records when the
    entry was last served (the LRU clock for :meth:`gc`) — the
    :class:`~repro.scenarios.backends.LocalBackend` layout.  Safe for
    concurrent readers plus any number of writers producing the same
    deterministic content (writes are atomic replaces, coordinated with
    GC through per-key lease files).

    With ``max_bytes`` set the store is self-bounding: :meth:`put` tracks
    an approximate on-disk total (re-read from disk every
    :data:`CAP_RESYNC_PUTS` writes, so other processes' writes cannot
    drift it forever) and triggers :meth:`gc` down to the cap whenever a
    write pushes past it.

    With ``remote`` set (an
    :class:`~repro.scenarios.backends.HTTPBackend` or its base URL) the
    store reads through to that tier on local misses: a remote entry is
    verified exactly like a local one — key, salt, checksum — and, when
    trustworthy, written back into the local cache; anything else
    (unreachable host, truncated body, version skew, tampering) is a
    plain miss.  Writes stay local (write-back); :meth:`push` publishes
    them explicitly.
    """

    root: str
    registry: OptimizationRegistry = field(default_factory=lambda: DEFAULT_REGISTRY)
    stats: StoreStats = field(default_factory=StoreStats)
    max_bytes: Optional[int] = None
    remote: Optional[Union[str, HTTPBackend]] = None

    def __post_init__(self) -> None:
        self.root = os.fspath(self.root)
        if os.path.exists(self.root) and not os.path.isdir(self.root):
            raise ConfigError(f"sweep store path {self.root!r} is not a "
                              "directory")
        if self.max_bytes is not None and self.max_bytes <= 0:
            raise ConfigError("max_bytes must be positive (or None for "
                              "an unbounded store)")
        if isinstance(self.remote, str):
            self.remote = HTTPBackend(self.remote)
        self._local = LocalBackend(self.root)
        #: lazily initialized running estimate of the on-disk total, kept
        #: fresh by put/gc so the cap check does not rescan per write
        self._approx_bytes: Optional[int] = None
        self._puts_since_resync = 0

    # ----------------------------------------------------------------- paths

    @property
    def local(self) -> LocalBackend:
        """The local (cache-of-record) backend tier."""
        return self._local

    def path_for(self, key: str) -> str:
        """The entry file backing one content key."""
        return self._local.path_for(key)

    def served_path_for(self, key: str) -> str:
        """The ``last_served`` sidecar of one content key.

        A zero-byte file whose mtime is the LRU clock: touched on every
        :meth:`get` hit and every :meth:`put`, never read for content.
        """
        return self._local.served_path_for(key)

    def key(self, scenario: Scenario, kind: str = "predict") -> str:
        """Content address of one (scenario, kind) under this registry."""
        return scenario_key(scenario, self.registry, kind=kind)

    def lease(self, key: str,
              steal_after: float = LEASE_STEAL_SECONDS) -> FileLease:
        """The per-key lease of one content key (not yet acquired).

        Writers hold it across a :meth:`put`, the batch executor holds it
        while *computing* a cell (so two concurrent sweeps dedupe
        identical cells), and :meth:`gc` skips evicting entries whose
        lease is freshly held.  See ``docs/store-backends.md`` for the
        acquire / steal-after-stale / release lifecycle.
        """
        return self._local.lease(key, steal_after=steal_after)

    def compute_lease(self, key: str,
                      steal_after: float = LEASE_STEAL_SECONDS):
        """The cross-tier compute claim of one key (not yet acquired).

        With a lease-capable ``remote`` tier configured this is a
        :class:`~repro.scenarios.backends.ComputeLease` — the local
        :class:`~repro.scenarios.backends.FileLease` escalated to the
        hub's lease plane, so sweeps on *different hosts* sharing one hub
        dedupe identical cells too.  Without a remote (or with a tier
        that has no lease plane, e.g. a fault-injection wrapper) it is
        the plain local lease, byte-for-byte the PR-5 behaviour.
        """
        local = self._local.lease(key, steal_after=steal_after)
        remote_lease = getattr(self.remote, "lease", None)
        if remote_lease is None:
            return local
        return ComputeLease(local, remote_lease(key))

    # ----------------------------------------------------------------- reads

    def get(self, scenario: Scenario, kind: str = "predict", *,
            lease: Optional[FileLease] = None) -> Optional[Dict[str, object]]:
        """The stored ``values`` dict, or ``None`` on any doubt.

        A present-but-unreadable local entry (truncated write, bit rot,
        stale salt smuggled in by hand) counts as a miss — and is deleted
        on the spot, so the dead bytes never wait for a GC scan.  On a
        local miss with a ``remote`` tier configured, the remote is
        consulted read-through: its bytes face the same verification, a
        trustworthy entry is written back into the local cache, and
        anything else — unreachable server, truncated body, salt skew —
        stays a miss (the caller re-simulates; this path never raises).
        A caller already holding this entry's per-key lease passes it as
        ``lease`` so the write-back does not wait on its own lock (see
        :meth:`put`).
        """
        key = self.key(scenario, kind=kind)
        payload = self._parse(self._local.get(key), count=True)
        if payload is not None and self._trustworthy(payload, key, kind,
                                                     count=True):
            self.stats.hits += 1
            self._local.touch_served(key)
            return dict(payload["values"])
        if self._local.stat(key) is not None:
            # failed verification: remove the corrupt/stale entry now
            self._delete_entry(key)
        if self.remote is not None:
            values = self._read_through(key, kind, held=lease)
            if values is not None:
                return values
        self.stats.misses += 1
        return None

    def _read_through(self, key: str, kind: str,
                      held: Optional[FileLease] = None
                      ) -> Optional[Dict[str, object]]:
        """Fetch, verify and locally cache one remote entry (or miss).

        The stock :class:`~repro.scenarios.backends.HTTPBackend` already
        degrades transport trouble to ``None``, but the tier seam admits
        *any* backend — including fault-injected or third-party ones that
        raise — so a raising ``get`` is absorbed here too: read-through
        is a cache probe, and no tier misbehavior may crash a sweep.
        """
        try:
            data = self.remote.get(key)
        except Exception:
            self.stats.remote_faults += 1
            return None  # a raising tier is a miss, never a crash
        if data is None:
            return None  # absent or unreachable: both are a plain miss
        payload = self._parse(data, count=False)
        if payload is None or not self._trustworthy(payload, key, kind,
                                                    count=False):
            self.stats.remote_rejected += 1
            return None
        self._write_entry(key, data, held=held)  # write-back locally
        self.stats.remote_hits += 1
        self.stats.hits += 1
        return dict(payload["values"])

    def contains(self, scenario: Scenario, kind: str = "predict") -> bool:
        """Whether a *trustworthy* local entry exists (a pure probe).

        Mere file existence is not membership: an entry with a stale
        salt, a failed checksum, or unparseable bytes would miss on
        :meth:`get`, so it must not count here either.  Unlike
        :meth:`get`, this touches nothing — no counters, no sidecar, no
        corrupt-entry deletion, no remote traffic.
        """
        key = self.key(scenario, kind=kind)
        payload = self._parse(self._local.get(key), count=False)
        return payload is not None and self._trustworthy(payload, key, kind,
                                                         count=False)

    def _parse(self, data: Optional[bytes],
               count: bool) -> Optional[Dict[str, object]]:
        if data is None:
            return None
        try:
            payload = json.loads(data.decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            if count:
                self.stats.rejected += 1  # exists, but cannot be parsed
            return None
        if not isinstance(payload, dict):
            if count:
                self.stats.rejected += 1
            return None
        return payload

    def _trustworthy(self, payload: Dict[str, object], key: str,
                     kind: Optional[str], count: bool) -> bool:
        """Full verification of one parsed entry.

        ``kind=None`` accepts whatever kind the payload itself declares
        (the :meth:`pull` path, which replicates entries of every kind);
        the checksum still covers the declared kind, so it cannot be
        tampered with either way.
        """
        ok = (
            payload.get("format") == RESULT_SCHEMA_VERSION
            and payload.get("key") == key
            and (payload.get("kind") == kind if kind is not None
                 else isinstance(payload.get("kind"), str))
            and payload.get("salt") == store_salt(self.registry)
            and isinstance(payload.get("values"), dict)
            and payload.get("checksum") == _entry_checksum(payload)
        )
        if not ok and count:
            self.stats.rejected += 1
        return ok

    # ---------------------------------------------------------------- writes

    def put(self, scenario: Scenario, values: Dict[str, object],
            kind: str = "predict", *,
            lease: Optional[FileLease] = None) -> str:
        """Persist one result atomically; returns its content key.

        The write happens under the entry's per-key lease (best-effort:
        after :data:`PUT_LEASE_WAIT_SECONDS` it proceeds anyway, since
        two writers of one content key produce identical bytes).  A
        caller that *already holds* this entry's lease — the batch
        executor holds a compute lease from claim to publish — passes it
        as ``lease`` so the write neither waits on its own lock nor
        releases it (the caller still owns the release).  Writes always
        land on the *local* tier — the remote is published only by an
        explicit :meth:`push`.  With ``max_bytes`` set, a write that
        pushes the (approximate) on-disk total past the cap triggers
        :meth:`gc` down to it.
        """
        key = self.key(scenario, kind=kind)
        payload: Dict[str, object] = {
            "format": RESULT_SCHEMA_VERSION,
            "key": key,
            "kind": kind,
            "salt": store_salt(self.registry),
            "scenario": scenario.to_dict(),
            "values": dict(values),
        }
        payload["checksum"] = _entry_checksum(payload)
        data = (json.dumps(payload, indent=1, sort_keys=True) + "\n")
        self._write_entry(key, data.encode("utf-8"), held=lease)
        return key

    def _write_entry(self, key: str, data: bytes,
                     held: Optional[FileLease] = None) -> None:
        """Locked local write + LRU touch + cap bookkeeping.

        ``held`` is a lease the caller already owns for this key: the
        write then skips acquisition entirely (waiting on one's own lock
        would stall every write by the full acquire timeout) and leaves
        the release to the caller.
        """
        owned = False
        if held is None or not held.owned:
            held = self._local.lease(key)
            owned = held.acquire(timeout=PUT_LEASE_WAIT_SECONDS,
                                 poll_s=0.005)
        try:
            # overwrites replace bytes rather than add them: snapshot the
            # old size so the running estimate tracks the true disk delta
            old_bytes = self._local.entry_bytes(key) \
                if self.max_bytes is not None else 0
            self._local.put(key, data)
            self.stats.writes += 1
            self._local.touch_served(key)
        finally:
            if owned:
                held.release()
        if self.max_bytes is not None:
            self._puts_since_resync += 1
            if (self._approx_bytes is None
                    or self._puts_since_resync >= CAP_RESYNC_PUTS):
                self._approx_bytes = self.total_bytes()
                self._puts_since_resync = 0
            else:
                self._approx_bytes += self._local.entry_bytes(key) - old_bytes
            if self._approx_bytes > self.max_bytes:
                self.gc(max_bytes=self.max_bytes)

    def _delete_entry(self, key: str) -> int:
        """Remove one entry and its sidecar; returns the bytes freed."""
        freed = self._local.delete(key)
        if self._approx_bytes is not None:
            self._approx_bytes = max(0, self._approx_bytes - freed)
        return freed

    def publish(self, key: str) -> bool:
        """Best-effort upload of one local entry to the ``remote`` tier.

        The record-time half of the cross-host exactly-once handshake:
        a batch worker that computed a cell under a *granted* remote
        claim publishes the entry before releasing the claim, so peers
        deferring on that claim find the bytes the moment it frees.
        Failure is counted (``stats.publish_failures``) but never raised
        — the entry is safely local and a later ``push`` replays it; the
        deferred peer's steal-after-stale path recomputes at worst.
        """
        if self.remote is None:
            return False
        data = self._local.get(key)
        if data is None:
            return False
        try:
            self.remote.put(key, data)
        except Exception:
            self.stats.publish_failures += 1
            return False
        self.stats.published += 1
        return True

    # --------------------------------------------------------------- queries

    def keys(self) -> Iterator[str]:
        """Every content key currently on disk (unvalidated)."""
        return self._local.iter_keys()

    def __len__(self) -> int:
        return sum(1 for _ in self.keys())

    def __contains__(self, scenario: Scenario) -> bool:
        return self.contains(scenario)

    def total_bytes(self) -> int:
        """Bytes on disk under ``objects/`` (entries, sidecars, temp
        files; lease files are coordination state and never counted)."""
        return self._local.total_bytes()

    def _entry_bytes(self, key: str) -> int:
        """On-disk size of one entry plus its sidecar."""
        return self._local.entry_bytes(key)

    def last_served(self, key: str) -> Optional[float]:
        """When the entry was last served (sidecar mtime, else entry
        mtime, else ``None`` for a missing entry)."""
        return self._local.last_served(key)

    def _classify(self, key: str, keep_salt: Optional[str] = None) -> str:
        """Lifecycle class of one on-disk entry.

        ``"live"`` — trustworthy under the kept salt generation
        (``keep_salt``, defaulting to the store's current salt, in which
        case the schema version must match too); ``"stale"`` — internally
        consistent but from another generation; ``"corrupt"`` —
        unreadable, tampered, or mislabeled.
        """
        payload = self._parse(self._local.get(key), count=False)
        if payload is None:
            return "corrupt"
        if (payload.get("key") != key
                or not isinstance(payload.get("values"), dict)
                or payload.get("checksum") != _entry_checksum(payload)):
            return "corrupt"
        if payload.get("salt") != (keep_salt or store_salt(self.registry)):
            return "stale"
        if (keep_salt is None
                and payload.get("format") != RESULT_SCHEMA_VERSION):
            return "stale"
        return "live"

    # -------------------------------------------------------------- lifecycle

    def verify(self) -> VerifyReport:
        """Audit every entry without mutating anything.

        Classifies each on-disk entry as live (trustworthy under the
        current salt), stale (another salt generation / schema version),
        or corrupt (unreadable or tampered).  ``repro store verify``
        renders this; :meth:`gc` acts on it.
        """
        report = VerifyReport()
        for key in self.keys():
            getattr(report, self._classify(key)).append(key)
        return report

    def gc(self, max_bytes: Optional[int] = None) -> GCReport:
        """Delete dead weight, then evict LRU entries to a byte budget.

        The whole pass runs under the store-wide GC lease (acquired with
        steal-after-stale; after :data:`GC_LEASE_WAIT_SECONDS` it
        proceeds without exclusivity — two budget passes over-evict at
        worst, and every victim is recomputable).  Three phases:

        1. **corrupt** entries and **stale** salt generations are removed
           unconditionally (they can never be served again);
        2. abandoned writer temp files (and dead lease files) older than
           :data:`TMP_GRACE_SECONDS` are removed;
        3. if ``max_bytes`` is given (or the store has a ``max_bytes``
           cap), live entries are evicted least-recently-served first —
           the ``last_served`` sidecar is the clock — and the pass
           **re-scans until the budget holds**: entries landed by a
           racing writer mid-pass are seen by the next scan, so the
           reported ``bytes_after`` is a true ≤-budget total, not a
           snapshot a concurrent write already invalidated.  Entries
           whose per-key lease is freshly held (a writer mid-flight) are
           skipped for one round rather than evicted under the writer.

        Returns a :class:`GCReport`; ``repro store gc`` renders it.
        """
        if max_bytes is None:
            max_bytes = self.max_bytes
        lease = self._local.gc_lease()
        lease.acquire(timeout=GC_LEASE_WAIT_SECONDS)
        try:
            report = GCReport(bytes_before=self.total_bytes())
            for key in list(self.keys()):
                report.examined += 1
                status = self._classify(key)
                if status == "corrupt":
                    self._delete_entry(key)
                    report.corrupt_removed += 1
                elif status == "stale":
                    self._delete_entry(key)
                    report.stale_removed += 1
            report.tmp_removed = \
                self._local.remove_abandoned(TMP_GRACE_SECONDS)
            if max_bytes is not None:
                report.bytes_after = self._evict_to_budget(max_bytes,
                                                           report, lease)
            else:
                report.bytes_after = self.total_bytes()
        finally:
            lease.release()
        self.stats.evicted += report.removed
        self._approx_bytes = report.bytes_after
        self._puts_since_resync = 0
        return report

    def _evict_to_budget(self, max_bytes: int, report: GCReport,
                         lease: FileLease) -> int:
        """Evict LRU entries, re-scanning until the budget truly holds.

        Each round re-lists the store — catching entries a racing writer
        landed after the previous scan — and evicts oldest-served first
        until the scanned total fits.  A round that can evict nothing
        (everything left is lease-held or the store is empty) ends the
        loop, as does the :data:`MAX_EVICT_ROUNDS` liveness backstop;
        the returned total is the last full scan's, measured while the
        GC lease was still held.
        """
        for _round in range(MAX_EVICT_ROUNDS):
            lease.refresh()
            # the budget is defined over total_bytes() — entries,
            # sidecars *and* abandoned temp files — so the rescan must
            # measure the same thing, not just the entries it can evict
            total = self.total_bytes()
            if total <= max_bytes:
                return total
            survivors: List[Tuple[float, str]] = []
            for key in list(self._local.iter_keys()):
                survivors.append((self._local.last_served(key) or 0.0,
                                  key))
            survivors.sort()  # oldest served first; key breaks ties stably
            evicted_this_round = 0
            for _served, key in survivors:
                if total <= max_bytes:
                    break
                if self._local.lease_held(key):
                    continue  # a live writer owns it; next round decides
                total -= self._delete_entry(key)
                evicted_this_round += 1
                report.evicted += 1
            if evicted_this_round == 0:
                return total
        return total  # backstop hit: a sustained writer outpaced eviction

    def prune(self, keep_salt: Optional[str] = None) -> GCReport:
        """Drop every entry outside one salt generation.

        After a registry change or a :data:`RESULT_SCHEMA_VERSION` bump
        rotates the salt, old-generation entries are unreachable dead
        bytes; this removes them (corrupt entries go too — their
        generation cannot even be determined).  ``keep_salt`` defaults to
        the store's current salt; pass an explicit value to keep a
        different generation instead (``repro store prune --salt``).
        Runs under the store-wide GC lease, like :meth:`gc`.
        """
        lease = self._local.gc_lease()
        lease.acquire(timeout=GC_LEASE_WAIT_SECONDS)
        try:
            report = GCReport(bytes_before=self.total_bytes())
            for key in list(self.keys()):
                report.examined += 1
                status = self._classify(key, keep_salt=keep_salt)
                if status == "corrupt":
                    self._delete_entry(key)
                    report.corrupt_removed += 1
                elif status == "stale":
                    self._delete_entry(key)
                    report.stale_removed += 1
            report.tmp_removed = \
                self._local.remove_abandoned(TMP_GRACE_SECONDS)
            report.bytes_after = self.total_bytes()
        finally:
            lease.release()
        self.stats.evicted += report.removed
        self._approx_bytes = report.bytes_after
        self._puts_since_resync = 0
        return report

    # ------------------------------------------------------------ replication

    def _sync_state_path(self, base_url: str) -> str:
        """The per-remote sync journal file (keyed by hashed base URL)."""
        digest = hashlib.blake2b(base_url.encode("utf-8"),
                                 digest_size=8).hexdigest()
        return os.path.join(self.root, "sync", f"{digest}.json")

    def _load_sync_state(self, base_url: str) -> Dict[str, object]:
        """The saved delta-sync journal of one remote (empty = cold)."""
        try:
            with open(self._sync_state_path(base_url),
                      encoding="utf-8") as f:
                state = json.load(f)
        except (OSError, ValueError):
            return {"clock": 0.0, "keys": []}
        if (not isinstance(state, dict)
                or not isinstance(state.get("clock"), (int, float))
                or not isinstance(state.get("keys"), list)):
            return {"clock": 0.0, "keys": []}
        return state

    def _save_sync_state(self, base_url: str, clock: float,
                         keys: "set[str]") -> None:
        """Atomically journal one remote's sync clock + known key set.

        Saved only after a transfer fully succeeded — a sync that died
        mid-flight must never advance the clock past entries it did not
        actually move.
        """
        path = self._sync_state_path(base_url)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        body = json.dumps({"url": base_url, "clock": clock,
                           "keys": sorted(keys)})
        tmp = f"{path}.tmp"
        try:
            with open(tmp, "w", encoding="utf-8") as f:
                f.write(body)
            os.replace(tmp, path)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass

    def _remote_or_error(self,
                         remote: Optional[Union[str, HTTPBackend]]
                         ) -> HTTPBackend:
        if isinstance(remote, str):
            remote = HTTPBackend(remote)
        remote = remote or self.remote
        if remote is None:
            raise BackendError("no remote tier configured; pass a URL "
                               "(repro store push/pull DIR --remote URL)")
        return remote

    @staticmethod
    def _sync_op(policy: RetryPolicy, describe: str, report: SyncReport,
                 fn):
        """One retried transfer op, failing loudly with partial progress.

        Transient :class:`~repro.scenarios.backends.BackendError` raises
        are retried under ``policy``; once the caps trip, the final error
        carries the :class:`SyncReport` accumulated *so far* — counters
        only ever advanced after an op fully succeeded, so nothing is
        misreported as landed.
        """
        try:
            return policy.call(fn, retry_on=(BackendError,))
        except BackendError as exc:
            raise BackendError(
                f"{describe} failed after {policy.max_attempts} "
                f"attempt(s): {exc}.  Partial progress before the "
                f"failure: {report.as_dict()}",
                partial=report,
            ) from None

    def push(self, remote: Optional[Union[str, HTTPBackend]] = None,
             force: bool = False,
             retry: Optional[RetryPolicy] = None,
             since: Optional[float] = None) -> SyncReport:
        """Publish every live local entry to the remote tier.

        Only entries that verify under the *current* salt travel — a
        stale generation or corrupt file is counted ``rejected`` and left
        for :meth:`gc`.  Keys the remote already *lists* are skipped —
        by presence, not by verifying the remote copy; if a previously
        interrupted transfer left a corrupt copy on the server (clients
        reject it on every read-through), ``force=True`` (``repro store
        push --force``) re-uploads everything and overwrites it.

        Against a delta-capable remote (``GET /keys?since=``) the
        "already listed" check scales: only keys changed since the
        journaled sync clock are listed, merged with the journal's known
        set (``<root>/sync/``, per remote URL), so re-pushing against a
        million-entry hub lists a handful of keys and moves zero bodies.
        ``since`` (``--since``) overrides the journaled clock — ``0``
        relists the hub in full and drops the journal's stale memory,
        the repair path when hub state was lost behind the journal's
        back.  The journal is saved only after the transfer fully
        succeeded.  Older servers without delta listings fall back to
        the full listing transparently.

        Unlike read-through, this is an explicit transfer: each
        listing/upload op is retried under ``retry`` (the unified
        :class:`~repro.scenarios.retry.RetryPolicy`; ``repro store push
        --retries``), and once the policy's caps trip it raises
        :class:`~repro.scenarios.backends.BackendError` whose
        ``partial`` attribute reports exactly what landed first.
        """
        remote = self._remote_or_error(remote)
        policy = retry or sync_retry_policy()
        report = SyncReport()
        lister = getattr(remote, "iter_keys_since", None)
        base_url = getattr(remote, "base_url", None)
        delta_capable = lister is not None and isinstance(base_url, str)
        state = self._load_sync_state(base_url) if delta_capable else None
        # the clock the trailing listing resumes from (force rebuilds the
        # journal from scratch; --since trusts the caller over the journal)
        resync_from = 0.0 if force else (
            float(since) if since is not None
            else float(state["clock"]) if state is not None else 0.0)
        known: "set[str]" = set()
        clock = resync_from
        if not force:
            if delta_capable:
                if since is None:
                    known.update(k for k in state["keys"]
                                 if isinstance(k, str))
                listing = self._sync_op(
                    policy, "listing the remote key delta for push", report,
                    lambda: lister(resync_from))
                if listing is None:  # a pre-delta server: list in full
                    delta_capable = False
                    known = set(self._sync_op(
                        policy, "listing remote keys for push", report,
                        lambda: list(remote.iter_keys())))
                else:
                    delta, clock = listing
                    known.update(delta)
            else:
                known = set(self._sync_op(
                    policy, "listing remote keys for push", report,
                    lambda: list(remote.iter_keys())))
        pushed: "set[str]" = set()
        for key in self.keys():
            report.examined += 1
            # one read serves both verification and upload (no re-read,
            # no vanished-between-check-and-read window)
            data = self._local.get(key)
            payload = self._parse(data, count=False)
            if payload is None or not self._trustworthy(payload, key,
                                                        kind=None,
                                                        count=False):
                report.rejected += 1
                continue
            if key in known:
                report.skipped += 1
                continue
            self._sync_op(policy, f"pushing entry {key}", report,
                          lambda key=key, data=data: remote.put(key, data))
            report.transferred += 1
            pushed.add(key)
        if delta_capable:
            # advance the journal clock past our own uploads (keys only;
            # best-effort — a failure here just re-lists them next time)
            try:
                trailing = lister(resync_from)
            except BackendError:
                trailing = None
            if trailing is not None:
                extra, clock = trailing
                known.update(extra)
            self._save_sync_state(base_url, clock, known | pushed)
        return report

    def pull(self,
             remote: Optional[Union[str, HTTPBackend]] = None,
             retry: Optional[RetryPolicy] = None,
             since: Optional[float] = None) -> SyncReport:
        """Replicate every trustworthy remote entry into the local tier.

        Each remote entry faces full verification — embedded key, current
        salt, checksum — before landing locally; failures count
        ``rejected`` and are never written.  Keys already trustworthy
        locally are skipped.

        Against a delta-capable remote only keys changed since the
        journaled sync clock are even listed (``GET /keys?since=``; the
        journal lives in ``<root>/sync/``, per remote URL, shared with
        :meth:`push`), and fetches of keys whose local copy exists but is
        not live go out conditionally (``If-None-Match`` with the
        content-checksum ETag) — so re-syncing an already-synced hub
        transfers *zero entry bodies*.  ``since`` (``--since``) overrides
        the journaled clock (``0`` = full relist); the journal is saved
        only after the transfer fully succeeded, so a mid-flight death
        never advances the clock past entries that did not land.  Older
        servers without delta listings fall back to the full listing.

        Listing or fetching ops are retried under ``retry`` (the unified
        :class:`~repro.scenarios.retry.RetryPolicy`; ``repro store pull
        --retries``); a server that stays dead mid-transfer then raises
        :class:`~repro.scenarios.backends.BackendError` whose ``partial``
        attribute accounts for every entry that actually landed before
        the death — an explicit transfer must neither silently replicate
        nothing nor misreport a dead server as a pile of rejections.
        """
        remote = self._remote_or_error(remote)
        policy = retry or sync_retry_policy()
        report = SyncReport()
        fetch = getattr(remote, "fetch", remote.get)
        lister = getattr(remote, "iter_keys_since", None)
        base_url = getattr(remote, "base_url", None)
        delta_capable = lister is not None and isinstance(base_url, str)
        state = self._load_sync_state(base_url) if delta_capable else None
        keys: Optional[List[str]] = None
        clock = 0.0
        known: "set[str]" = set()
        if delta_capable:
            start = float(since) if since is not None \
                else float(state["clock"])
            if since is None:
                known.update(k for k in state["keys"] if isinstance(k, str))
            listing = self._sync_op(
                policy, "listing the remote key delta for pull", report,
                lambda: lister(start))
            if listing is None:  # a pre-delta server: list in full
                delta_capable = False
            else:
                keys, clock = listing
        if keys is None:
            keys = self._sync_op(policy, "listing remote keys for pull",
                                 report,
                                 lambda: list(remote.iter_keys()))
        for key in keys:
            report.examined += 1
            if self._classify(key) == "live":
                report.skipped += 1
                continue
            # a non-live local copy still short-circuits identical bytes:
            # the conditional fetch costs headers, not a body (the remote
            # copy would fail the same verification that demoted ours)
            stale_local = self._local.get(key) if delta_capable else None
            if stale_local is not None:
                data = self._sync_op(
                    policy, f"fetching entry {key}", report,
                    lambda key=key, etag=entry_etag(stale_local):
                        fetch(key, etag=etag))
            else:
                data = self._sync_op(policy, f"fetching entry {key}",
                                     report, lambda key=key: fetch(key))
            if data is NOT_MODIFIED:
                self.stats.remote_rejected += 1
                report.rejected += 1  # same bytes we already reject locally
                continue
            if data is None:
                report.skipped += 1  # vanished between listing and fetch
                continue
            payload = self._parse(data, count=False)
            if payload is None or not self._trustworthy(payload, key,
                                                        kind=None,
                                                        count=False):
                self.stats.remote_rejected += 1
                report.rejected += 1
                continue
            self._write_entry(key, data)
            report.transferred += 1
        if delta_capable:
            self._save_sync_state(base_url, clock, known | set(keys))
        return report
