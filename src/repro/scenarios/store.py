"""Content-addressed, on-disk store of scenario sweep results.

The paper's pitch only compounds when predictions are *reusable*: a
thousand-cell scenario catalog should pay for each cell once, ever, and a
re-run after a crash (or next week, or on a colleague's checkout) should
skip straight to the unexplored cells.  :class:`SweepStore` makes that
durable:

* **content-addressed** — an entry is keyed by a stable hash of the
  *canonical* scenario JSON (sorted keys, default fields omitted, numeric
  widening), so two declarations that mean the same thing share one entry
  no matter how they were formatted, and any semantic change misses;
* **salted** — the key folds in :data:`RESULT_SCHEMA_VERSION` and the
  :meth:`~repro.scenarios.registry.OptimizationRegistry.fingerprint`, so
  registry or result-format evolution invalidates stale rows instead of
  silently serving them;
* **atomic** — entries are written to a temp file and ``os.replace``-d
  into place; a crashed writer can never leave a half-entry where a
  reader would trust it;
* **corruption-safe** — reads verify the JSON parses, the embedded key
  and salt match, and a payload checksum holds; anything off is treated
  as a miss (and re-simulated), never trusted.

Entries carry a free-form ``values`` dict rather than a fixed row shape,
so prediction results (``kind="predict"``) and ground-truth engine
measurements (e.g. ``kind="groundtruth:sync"``) share one substrate.
"""

import hashlib
import json
import os
import tempfile
from dataclasses import dataclass, field
from typing import Dict, Iterator, Optional

from repro.common.errors import ConfigError
from repro.scenarios.registry import DEFAULT_REGISTRY, OptimizationRegistry
from repro.scenarios.scenario import Scenario

#: bump when the meaning of stored values changes (simulator semantics,
#: row derivation, entry layout) — every older entry then misses
RESULT_SCHEMA_VERSION = 1


def _canonicalize(obj: object) -> object:
    """Normalize a scenario dict for hashing.

    Dict keys sort at dump time; here we widen non-bool ints to floats so
    ``"bandwidth_gbps": 10`` and ``10.0`` — equal in Python, different in
    JSON text — hash identically.
    """
    if isinstance(obj, dict):
        return {str(k): _canonicalize(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_canonicalize(v) for v in obj]
    if isinstance(obj, bool):
        return obj
    if isinstance(obj, int):
        return float(obj)
    return obj


def canonical_scenario_json(scenario: Scenario) -> str:
    """The canonical JSON text of a scenario (the content that is hashed).

    ``Scenario.to_dict`` already omits fields left at their defaults, so
    declaring a default explicitly does not change the canonical form.
    """
    return json.dumps(_canonicalize(scenario.to_dict()), sort_keys=True,
                      separators=(",", ":"))


def store_salt(registry: Optional[OptimizationRegistry] = None) -> str:
    """The version salt folded into every content key."""
    registry = registry or DEFAULT_REGISTRY
    return f"v{RESULT_SCHEMA_VERSION}:{registry.fingerprint()}"


def scenario_key(scenario: Scenario,
                 registry: Optional[OptimizationRegistry] = None,
                 kind: str = "predict") -> str:
    """Content address of one (scenario, result kind) pair: 32 hex chars."""
    material = "\n".join([store_salt(registry), kind,
                          canonical_scenario_json(scenario)])
    return hashlib.blake2b(material.encode("utf-8"),
                           digest_size=16).hexdigest()


def _entry_checksum(payload: Dict[str, object]) -> str:
    """Checksum over the trusted portion of an entry."""
    material = json.dumps(
        {k: payload.get(k) for k in ("key", "kind", "salt", "scenario",
                                     "values")},
        sort_keys=True, separators=(",", ":"))
    return hashlib.blake2b(material.encode("utf-8"),
                           digest_size=8).hexdigest()


@dataclass
class StoreStats:
    """Running hit/miss/write counters of one :class:`SweepStore`."""

    hits: int = 0
    misses: int = 0
    writes: int = 0
    rejected: int = 0  # present on disk but unreadable/corrupt/stale

    def as_dict(self) -> Dict[str, int]:
        return {"hits": self.hits, "misses": self.misses,
                "writes": self.writes, "rejected": self.rejected}


@dataclass
class SweepStore:
    """A directory of content-addressed scenario results.

    Layout: ``<root>/objects/<key[:2]>/<key>.json``, one entry per file.
    Safe for concurrent readers plus any number of writers producing the
    same deterministic content (writes are atomic replaces).
    """

    root: str
    registry: OptimizationRegistry = field(default_factory=lambda: DEFAULT_REGISTRY)
    stats: StoreStats = field(default_factory=StoreStats)

    def __post_init__(self) -> None:
        self.root = os.fspath(self.root)
        if os.path.exists(self.root) and not os.path.isdir(self.root):
            raise ConfigError(f"sweep store path {self.root!r} is not a "
                              "directory")

    # ----------------------------------------------------------------- paths

    @property
    def _objects_dir(self) -> str:
        return os.path.join(self.root, "objects")

    def path_for(self, key: str) -> str:
        """The entry file backing one content key."""
        return os.path.join(self._objects_dir, key[:2], f"{key}.json")

    def key(self, scenario: Scenario, kind: str = "predict") -> str:
        return scenario_key(scenario, self.registry, kind=kind)

    # ----------------------------------------------------------------- reads

    def get(self, scenario: Scenario,
            kind: str = "predict") -> Optional[Dict[str, object]]:
        """The stored ``values`` dict, or ``None`` on any doubt.

        A present-but-unreadable entry (truncated write, bit rot, stale
        salt smuggled in by hand) counts as a miss: the caller re-simulates
        and :meth:`put` atomically replaces the bad file.
        """
        key = self.key(scenario, kind=kind)
        payload = self._load(self.path_for(key), count=True)
        if payload is not None and self._trustworthy(payload, key, kind,
                                                     count=True):
            self.stats.hits += 1
            return dict(payload["values"])
        self.stats.misses += 1
        return None

    def contains(self, scenario: Scenario, kind: str = "predict") -> bool:
        """Whether a *trustworthy* entry exists (stats are untouched).

        Mere file existence is not membership: an entry with a stale
        salt, a failed checksum, or unparseable bytes would miss on
        :meth:`get`, so it must not count here either.
        """
        key = self.key(scenario, kind=kind)
        payload = self._load(self.path_for(key), count=False)
        return payload is not None and self._trustworthy(payload, key, kind,
                                                         count=False)

    def _load(self, path: str, count: bool) -> Optional[Dict[str, object]]:
        try:
            with open(path, encoding="utf-8") as f:
                payload = json.load(f)
        except FileNotFoundError:
            return None
        except (OSError, ValueError, UnicodeDecodeError):
            if count:
                self.stats.rejected += 1  # exists, but cannot be parsed
            return None
        if not isinstance(payload, dict):
            if count:
                self.stats.rejected += 1
            return None
        return payload

    def _trustworthy(self, payload: Dict[str, object], key: str,
                     kind: str, count: bool) -> bool:
        ok = (
            payload.get("format") == RESULT_SCHEMA_VERSION
            and payload.get("key") == key
            and payload.get("kind") == kind
            and payload.get("salt") == store_salt(self.registry)
            and isinstance(payload.get("values"), dict)
            and payload.get("checksum") == _entry_checksum(payload)
        )
        if not ok and count:
            self.stats.rejected += 1
        return ok

    # ---------------------------------------------------------------- writes

    def put(self, scenario: Scenario, values: Dict[str, object],
            kind: str = "predict") -> str:
        """Persist one result atomically; returns its content key."""
        key = self.key(scenario, kind=kind)
        payload: Dict[str, object] = {
            "format": RESULT_SCHEMA_VERSION,
            "key": key,
            "kind": kind,
            "salt": store_salt(self.registry),
            "scenario": scenario.to_dict(),
            "values": dict(values),
        }
        payload["checksum"] = _entry_checksum(payload)
        path = self.path_for(key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=os.path.dirname(path),
                                   prefix=f".{key[:8]}-", suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as f:
                json.dump(payload, f, indent=1, sort_keys=True)
                f.write("\n")
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.stats.writes += 1
        return key

    # --------------------------------------------------------------- queries

    def keys(self) -> Iterator[str]:
        """Every content key currently on disk (unvalidated)."""
        objects = self._objects_dir
        if not os.path.isdir(objects):
            return
        for shard in sorted(os.listdir(objects)):
            shard_dir = os.path.join(objects, shard)
            if not os.path.isdir(shard_dir):
                continue
            for name in sorted(os.listdir(shard_dir)):
                if name.endswith(".json"):
                    yield name[:-len(".json")]

    def __len__(self) -> int:
        return sum(1 for _ in self.keys())

    def __contains__(self, scenario: Scenario) -> bool:
        return self.contains(scenario)
