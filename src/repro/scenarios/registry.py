"""String-keyed registry of optimization what-if models.

The paper's premise is that optimizations are *named, parameterized graph
transformations*; this module makes that literal.  Every shipped
:class:`~repro.optimizations.base.OptimizationModel` registers under a
stable key with a declared parameter schema, so an optimization stack can
be written as plain data::

    ["amp", "distributed_training", {"name": "dgc", "params": {"compression_ratio": 0.01}}]

and resolved into model instances without importing any optimization class.
The registry also records the composition metadata the pipeline layer needs:
which *category* a transformation belongs to (compute / memory /
communication), which exclusive *slot* it occupies (two gradient-sync
strategies cannot coexist), whether it supplies a custom scheduler, and what
it requires from the stack or the context.
"""

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.common.errors import ConfigError
from repro.optimizations import (
    AutomaticMixedPrecision,
    BlueConnect,
    DeepGradientCompression,
    DistributedTraining,
    FusedAdam,
    Gist,
    MetaFlowSubstitution,
    PriorityParameterPropagation,
    ReconstructBatchnorm,
    VirtualizedDNN,
)
from repro.optimizations.amp import COMPUTE_SHRINK, MEMORY_SHRINK
from repro.optimizations.base import OptimizationModel
from repro.optimizations.hardware import CpuUpgrade, GpuUpgrade
from repro.optimizations.p3 import DEFAULT_SLICE_BYTES, ParameterServerTransfer

#: a stack entry as written in a scenario: a bare key or a keyed dict
StackEntry = Union[str, Dict[str, object]]

#: transformation categories, in mandatory application order: compute
#: reshaping first, then memory-footprint transforms, then transforms that
#: *insert* communication, then transforms that *rewrite* it
CATEGORY_ORDER = ("compute", "memory", "comm_insert", "comm_rewrite")


@dataclass(frozen=True)
class ParamSpec:
    """One declarable constructor parameter of an optimization model."""

    name: str
    kind: str                      # "float" | "int" | "bool" | "str"
    default: object = None
    doc: str = ""

    _KINDS = {"float": float, "int": int, "bool": bool, "str": str}

    def coerce(self, value: object) -> object:
        """Validate (and numerically widen) a declared parameter value."""
        if value is None:
            return None  # "use the constructor default" is always declarable
        expected = self._KINDS[self.kind]
        if self.kind == "float" and isinstance(value, int) \
                and not isinstance(value, bool):
            value = float(value)
        if not isinstance(value, expected) or (
                expected is not bool and isinstance(value, bool)):
            raise ConfigError(
                f"parameter {self.name!r} expects {self.kind}, "
                f"got {type(value).__name__}: {value!r}"
            )
        return value


@dataclass(frozen=True)
class OptimizationSpec:
    """Registry entry: how to build one optimization and how it composes.

    Attributes:
        key: stable string key (``"amp"``, ``"dgc"``, ...).
        factory: callable building the model from keyword parameters.
        summary: one-line description for ``python -m repro optimizations``.
        params: declarable constructor parameters.
        category: composition category (see :data:`CATEGORY_ORDER`).
        slot: exclusive-slot name; two stack members sharing a slot is a
            conflict (e.g. all-reduce DDP vs parameter-server gradient sync).
        provides_scheduler: the model returns a custom scheduler — at most
            one per stack.
        requires_cluster: needs ``context.cluster`` (a distributed target).
        requires_category: a member of this category must appear earlier in
            the (normalized) stack, e.g. BlueConnect rewrites the all-reduce
            tasks that ``comm_insert`` transforms create.
        whatif_default: include in the CLI's default what-if report when
            :meth:`applicable`.
        applicable: predicate on trace metadata gating the default report.
    """

    key: str
    factory: Callable[..., OptimizationModel]
    summary: str
    params: Tuple[ParamSpec, ...] = ()
    category: str = "compute"
    slot: Optional[str] = None
    provides_scheduler: bool = False
    requires_cluster: bool = False
    requires_category: Optional[str] = None
    whatif_default: bool = False
    applicable: Optional[Callable[[Dict[str, object]], bool]] = None

    def __post_init__(self) -> None:
        if self.category not in CATEGORY_ORDER:
            raise ConfigError(f"unknown category {self.category!r}")

    @property
    def rank(self) -> int:
        """Position of this spec's category in the application order."""
        return CATEGORY_ORDER.index(self.category)

    def create(self, params: Optional[Dict[str, object]] = None) -> OptimizationModel:
        """Instantiate the model from declared parameters."""
        params = dict(params or {})
        known = {p.name: p for p in self.params}
        unknown = sorted(set(params) - set(known))
        if unknown:
            raise ConfigError(
                f"optimization {self.key!r} has no parameter(s) {unknown}; "
                f"declarable: {sorted(known) or 'none'}"
            )
        # only user-declared values reach the factory: constructors own
        # their defaults, ParamSpec.default is documentation (the registry
        # round-trip test pins the two against each other)
        kwargs = {}
        for name, value in params.items():
            coerced = known[name].coerce(value)
            if coerced is not None:  # declared null = keep the default
                kwargs[name] = coerced
        return self.factory(**kwargs)

    def is_applicable(self, trace_metadata: Dict[str, object]) -> bool:
        """Whether the default what-if report should include this model."""
        if self.applicable is None:
            return True
        return bool(self.applicable(trace_metadata))


class OptimizationRegistry:
    """Mutable mapping of optimization keys to :class:`OptimizationSpec`."""

    def __init__(self) -> None:
        self._specs: Dict[str, OptimizationSpec] = {}
        self._fingerprint: Optional[str] = None
        self._builtin_keys: frozenset = frozenset()

    # -------------------------------------------------------------- mutation

    def register(self, spec: OptimizationSpec) -> OptimizationSpec:
        """Add a spec; re-registering an existing key is an error."""
        if spec.key in self._specs:
            raise ConfigError(f"optimization {spec.key!r} already registered")
        self._specs[spec.key] = spec
        self._fingerprint = None
        return spec

    def mark_builtin(self) -> None:
        """Snapshot the current keys as the import-time baseline.

        Called once on :data:`DEFAULT_REGISTRY` after the shipped specs
        register.  Everything added later is *runtime* state a fresh
        interpreter lacks, and must travel in a
        :class:`~repro.scenarios.batch.WorkerManifest` to reach ``spawn``
        pool workers.
        """
        self._builtin_keys = frozenset(self._specs)

    def runtime_specs(self) -> List[OptimizationSpec]:
        """Specs registered after :meth:`mark_builtin` (sorted by key).

        For registries that never marked a baseline — any custom
        :class:`OptimizationRegistry` — this is *every* spec, which is
        exactly what a spawn worker must replay to rebuild the registry
        from scratch.
        """
        return [spec for spec in self.specs()
                if spec.key not in self._builtin_keys]

    # --------------------------------------------------------------- queries

    def keys(self) -> List[str]:
        """All registered keys, sorted."""
        return sorted(self._specs)

    def __contains__(self, key: str) -> bool:
        return key in self._specs

    def get(self, key: str) -> OptimizationSpec:
        """Look up one spec by key."""
        try:
            return self._specs[key]
        except KeyError:
            raise ConfigError(
                f"unknown optimization {key!r}; available: {self.keys()}"
            ) from None

    def specs(self) -> List[OptimizationSpec]:
        """All specs, sorted by key."""
        return [self._specs[k] for k in self.keys()]

    # ------------------------------------------------------------ resolution

    def parse_entry(self, entry: StackEntry) -> Tuple[OptimizationSpec, Dict[str, object]]:
        """Split a stack entry into its spec and declared parameters."""
        if isinstance(entry, str):
            return self.get(entry), {}
        if isinstance(entry, dict):
            extra = sorted(set(entry) - {"name", "params"})
            if "name" not in entry or extra:
                raise ConfigError(
                    f"stack entry {entry!r} must be a name or a "
                    "{'name': ..., 'params': {...}} dict"
                )
            params = entry.get("params") or {}
            if not isinstance(params, dict):
                raise ConfigError(f"params of {entry['name']!r} must be a dict")
            return self.get(str(entry["name"])), dict(params)
        raise ConfigError(f"invalid stack entry: {entry!r}")

    def create(self, entry: StackEntry) -> OptimizationModel:
        """Instantiate one stack entry."""
        spec, params = self.parse_entry(entry)
        return spec.create(params)

    def whatif_defaults(
        self, trace_metadata: Dict[str, object]
    ) -> List[OptimizationModel]:
        """The default what-if report stack for one profiled trace."""
        return [spec.create() for spec in self.specs()
                if spec.whatif_default and spec.is_applicable(trace_metadata)]

    def fingerprint(self) -> str:
        """Stable hex digest of every spec's declared semantics.

        Persistent result stores salt their content keys with this, so
        adding an optimization, renaming a parameter, or changing a
        default invalidates exactly the cached rows whose meaning could
        have shifted.  Factory *implementations* are not hashed — code
        changes that alter predictions must bump
        :data:`repro.scenarios.store.RESULT_SCHEMA_VERSION`.

        Cached (cleared by :meth:`register`): store keying calls this on
        every read and write.
        """
        if self._fingerprint is not None:
            return self._fingerprint
        import hashlib
        import json
        description = [
            {
                "key": spec.key,
                "category": spec.category,
                "slot": spec.slot,
                "provides_scheduler": spec.provides_scheduler,
                "requires_cluster": spec.requires_cluster,
                "requires_category": spec.requires_category,
                "params": [
                    {"name": p.name, "kind": p.kind, "default": repr(p.default)}
                    for p in spec.params
                ],
            }
            for spec in self.specs()
        ]
        canonical = json.dumps(description, sort_keys=True,
                               separators=(",", ":"))
        self._fingerprint = hashlib.blake2b(canonical.encode("utf-8"),
                                            digest_size=16).hexdigest()
        return self._fingerprint


# --------------------------------------------------------------------------
# the default registry: every shipped optimization model
# --------------------------------------------------------------------------

def _has_adam(metadata: Dict[str, object]) -> bool:
    return metadata.get("optimizer") == "adam"


def _has_layer_kind(kind: str) -> Callable[[Dict[str, object]], bool]:
    def check(metadata: Dict[str, object]) -> bool:
        kinds = metadata.get("layer_kinds") or {}
        return kind in set(kinds.values())
    return check


def _metaflow_factory(policy: str = "fuse_conv_bn_relu") -> MetaFlowSubstitution:
    return MetaFlowSubstitution(policy)


DEFAULT_REGISTRY = OptimizationRegistry()

for _spec in (
    OptimizationSpec(
        key="amp", factory=AutomaticMixedPrecision,
        summary="automatic mixed precision (Apex O1/O2 tensor-core what-if)",
        params=(
            ParamSpec("compute_shrink", "float", COMPUTE_SHRINK,
                      "tensor-core speedup of compute-bound kernels"),
            ParamSpec("memory_shrink", "float", MEMORY_SHRINK,
                      "fp16 speedup of memory-bound kernels"),
        ),
        category="compute", whatif_default=True,
    ),
    OptimizationSpec(
        key="fused_adam", factory=FusedAdam,
        summary="fuse the unfused Adam step into one multi-tensor kernel",
        category="compute", whatif_default=True, applicable=_has_adam,
    ),
    OptimizationSpec(
        key="reconstruct_batchnorm", factory=ReconstructBatchnorm,
        summary="restructure batchnorm layers per Jung et al.",
        category="compute", whatif_default=True,
        applicable=_has_layer_kind("batchnorm"),
    ),
    OptimizationSpec(
        key="metaflow", factory=_metaflow_factory,
        summary="MetaFlow relaxed graph substitution (named policy)",
        params=(
            ParamSpec("policy", "str", "fuse_conv_bn_relu",
                      "named substitution policy"),
        ),
        category="compute",
    ),
    OptimizationSpec(
        key="gpu_upgrade", factory=GpuUpgrade,
        summary="scale every GPU kernel by a hardware-upgrade factor",
        params=(ParamSpec("factor", "float", 1.5, "GPU speedup factor"),),
        category="compute",
    ),
    OptimizationSpec(
        key="cpu_upgrade", factory=CpuUpgrade,
        summary="scale every CPU task by a hardware-upgrade factor",
        params=(ParamSpec("factor", "float", 1.5, "CPU speedup factor"),),
        category="compute",
    ),
    OptimizationSpec(
        key="vdnn", factory=VirtualizedDNN,
        summary="vDNN conv feature-map offload/prefetch over PCIe",
        category="memory", whatif_default=True,
        applicable=_has_layer_kind("conv"),
    ),
    OptimizationSpec(
        key="gist", factory=Gist,
        summary="Gist feature-map encode/decode kernels",
        params=(
            ParamSpec("lossy", "bool", False, "include lossy DPR kernels"),
            ParamSpec("cost_factor", "float", 1.0,
                      "encode/decode cost vs existing element-wise kernel"),
        ),
        category="memory", whatif_default=True,
        applicable=_has_layer_kind("relu"),
    ),
    OptimizationSpec(
        key="distributed_training", factory=DistributedTraining,
        summary="DDP-style bucketed ring all-reduce from a 1-GPU profile",
        category="comm_insert", slot="gradient_sync", requires_cluster=True,
    ),
    OptimizationSpec(
        key="parameter_server", factory=ParameterServerTransfer,
        summary="MXNet parameter-server push/pull (whole tensors, FIFO)",
        params=(
            ParamSpec("slice_bytes", "int", None, "gradient slice size"),
            ParamSpec("prioritize", "bool", False, "front-layer priority"),
        ),
        category="comm_insert", slot="gradient_sync", requires_cluster=True,
        provides_scheduler=True,
    ),
    OptimizationSpec(
        key="p3", factory=PriorityParameterPropagation,
        summary="P3 sliced + prioritized parameter-server transfers",
        params=(
            ParamSpec("slice_bytes", "int", DEFAULT_SLICE_BYTES,
                      "gradient slice size"),
        ),
        category="comm_insert", slot="gradient_sync", requires_cluster=True,
        provides_scheduler=True,
    ),
    OptimizationSpec(
        key="blueconnect", factory=BlueConnect,
        summary="hierarchical all-reduce decomposition (reduce-scatter + "
                "all-gather pipeline)",
        category="comm_rewrite", requires_cluster=True,
        requires_category="comm_insert",
    ),
    OptimizationSpec(
        key="dgc", factory=DeepGradientCompression,
        summary="deep gradient compression: top-k sparsified transfers",
        params=(
            ParamSpec("compression_ratio", "float", 0.01,
                      "transferred fraction of the gradient payload"),
            ParamSpec("kernel_passes", "float", 3.0,
                      "element-wise passes the compression kernels cost"),
        ),
        category="comm_rewrite", requires_category="comm_insert",
    ),
):
    DEFAULT_REGISTRY.register(_spec)

DEFAULT_REGISTRY.mark_builtin()


def default_registry() -> OptimizationRegistry:
    """The process-wide registry of shipped optimizations."""
    return DEFAULT_REGISTRY


def stack_label(stack: Sequence[StackEntry]) -> str:
    """Human-readable ``+``-joined label of a declared stack."""
    names = []
    for entry in stack:
        if isinstance(entry, dict):
            names.append(str(entry.get("name", "?")))
        else:
            names.append(str(entry))
    return "+".join(names) if names else "baseline"
