"""Declarative scenarios: a what-if question as plain data.

A :class:`Scenario` names everything one what-if evaluation needs — the
workload (model, batch size), the platform (GPU/CPU specs, framework,
precision, optimizer), the deployment (cluster shape and network), the
optimization stack, and an optional schedule policy — in a form that
round-trips through dicts and JSON.  Experiments, examples, the CLI and
ad-hoc scripts all describe work this way and hand it to the
:class:`~repro.scenarios.runner.ScenarioRunner`; none of them wires the
model → trace → transform → simulate pipeline by hand.

A :class:`ScenarioGrid` is a base scenario plus named axes (dotted paths
into the scenario dict, each with a list of values); expansion takes the
cross product in declaration order — the paper's Figure-8 machines × GPUs ×
bandwidth sweep is nine lines of JSON.
"""

import copy
import dataclasses
import itertools
import json
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Union

from repro.common.errors import ConfigError
from repro.core.simulate import Scheduler, make_priority_scheduler
from repro.framework.config import TrainingConfig
from repro.hw.device import CPUSpec, GPUSpec, get_cpu, get_gpu
from repro.hw.network import NetworkSpec
from repro.hw.topology import ClusterSpec
from repro.models.base import ModelSpec
from repro.models.registry import build_model
from repro.optimizations.base import OptimizationModel, WhatIfOutcome
from repro.scenarios.registry import (
    DEFAULT_REGISTRY,
    OptimizationRegistry,
    StackEntry,
    stack_label,
)

#: a GPU/CPU declaration: a preset name, or ``{"preset": name, **overrides}``
DeviceDecl = Union[str, Dict[str, object]]

#: named schedule policies addressable from scenario files
NAMED_SCHEDULE_POLICIES: Dict[str, Callable[[], Scheduler]] = {
    "comm_priority": lambda: make_priority_scheduler(lambda t: t.is_comm),
}

#: the factories shipped with the package, by name (everything else —
#: including a builtin *overwritten* with a custom factory — is runtime
#: state that spawn workers must rebuild from a WorkerManifest)
_BUILTIN_SCHEDULE_POLICIES = dict(NAMED_SCHEDULE_POLICIES)


def register_schedule_policy(name: str,
                             factory: Callable[[], Scheduler],
                             overwrite: bool = False) -> None:
    """Register a named schedule policy addressable from scenario files.

    ``factory`` is a zero-argument callable returning a fresh
    :class:`~repro.core.simulate.Scheduler`.  Like runtime-registered
    models, registrations are runtime state: fork workers inherit them,
    and spawn workers rebuild them from the pickled
    :class:`~repro.scenarios.batch.WorkerManifest` — which requires the
    factory to be an importable module-level callable, not a closure.
    """
    if not callable(factory):
        raise ConfigError(
            f"schedule policy {name!r} needs a zero-argument factory "
            f"callable, got {factory!r}")
    if name in NAMED_SCHEDULE_POLICIES and not overwrite:
        raise ConfigError(
            f"schedule policy {name!r} is already registered "
            "(pass overwrite=True to replace it)")
    NAMED_SCHEDULE_POLICIES[name] = factory


def runtime_schedule_policies() -> Dict[str, Callable[[], Scheduler]]:
    """Policies added after import — what a spawn worker must rebuild.

    Compared by factory *identity*, not name: a builtin overwritten via
    :func:`register_schedule_policy` counts as runtime state too, else a
    spawn worker would silently run the shipped factory under the same
    name (and cache differing rows under one content key).
    """
    return {name: factory
            for name, factory in NAMED_SCHEDULE_POLICIES.items()
            if _BUILTIN_SCHEDULE_POLICIES.get(name) is not factory}


class _NamedSchedulePolicy(OptimizationModel):
    """No-op stack member carrying a scenario's named schedule override."""

    #: lets pipeline validation catch scheduler conflicts at construction
    provides_scheduler = True

    def __init__(self, key: str, scheduler: Scheduler) -> None:
        self.name = f"schedule[{key}]"
        self.scheduler = scheduler

    def apply(self, graph, context):
        return WhatIfOutcome(graph=graph, scheduler=self.scheduler)


def _build_device(decl: Optional[DeviceDecl], lookup, what: str):
    """Resolve a device declaration into a spec (``None`` -> ``None``)."""
    if decl is None:
        return None
    if isinstance(decl, str):
        return lookup(decl)
    if isinstance(decl, dict):
        overrides = dict(decl)
        preset = overrides.pop("preset", None)
        if preset is None:
            raise ConfigError(f"{what} declaration {decl!r} lacks 'preset'")
        base = lookup(str(preset))
        try:
            return dataclasses.replace(base, **overrides)
        except TypeError as exc:
            raise ConfigError(f"bad {what} override in {decl!r}: {exc}") from None
    raise ConfigError(f"invalid {what} declaration: {decl!r}")


@dataclass(frozen=True)
class ClusterShape:
    """Declarative form of a :class:`~repro.hw.topology.ClusterSpec`.

    ``gpu`` defaults to the owning scenario's GPU declaration, so a scenario
    stays a single source of truth for the device model.
    """

    machines: int
    gpus_per_machine: int = 1
    bandwidth_gbps: float = 10.0
    latency_us: float = 25.0
    per_primitive_overhead_us: float = 60.0
    gpu: Optional[DeviceDecl] = None

    def to_dict(self) -> Dict[str, object]:
        """Dict form; omits unset (``None``) fields."""
        return {k: v for k, v in dataclasses.asdict(self).items()
                if v is not None}

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ClusterShape":
        """Parse the dict form (inverse of :meth:`to_dict`)."""
        unknown = sorted(set(data) - {f.name for f in dataclasses.fields(cls)})
        if unknown:
            raise ConfigError(f"unknown cluster field(s) {unknown}")
        try:
            return cls(**data)
        except TypeError as exc:
            raise ConfigError(f"bad cluster declaration {data!r}: {exc}") \
                from None

    def build(self, default_gpu: GPUSpec) -> ClusterSpec:
        """Materialize the runtime cluster spec."""
        gpu = _build_device(self.gpu, get_gpu, "GPU") or default_gpu
        network = NetworkSpec(
            bandwidth_gbps=self.bandwidth_gbps,
            latency_us=self.latency_us,
            per_primitive_overhead_us=self.per_primitive_overhead_us,
        )
        return ClusterSpec(self.machines, self.gpus_per_machine, gpu, network)


@dataclass
class Scenario:
    """One declarative what-if question.

    Attributes:
        model: model-zoo name (or a name registered via
            :func:`repro.models.registry.register_model`).
        batch_size: mini-batch override; ``None`` keeps the model default.
        framework: execution semantics (``pytorch`` / ``mxnet`` / ``caffe``).
        precision: baseline numeric precision.
        optimizer: optimizer override; ``None`` keeps the model default.
        gpu / cpu: device declarations (preset name or preset + overrides).
        bucket_cap_mb / data_loading_us: optional TrainingConfig overrides.
        cluster: deployment target for communication what-ifs.
        optimizations: the declared optimization stack.
        schedule_policy: named simulator schedule override (at most one per
            scenario, counting schedulers the stack itself supplies).
    """

    model: str
    batch_size: Optional[int] = None
    framework: str = "pytorch"
    precision: str = "fp32"
    optimizer: Optional[str] = None
    gpu: Optional[DeviceDecl] = None
    cpu: Optional[DeviceDecl] = None
    bucket_cap_mb: Optional[float] = None
    data_loading_us: Optional[float] = None
    cluster: Optional[ClusterShape] = None
    optimizations: List[StackEntry] = field(default_factory=list)
    schedule_policy: Optional[str] = None

    def __post_init__(self) -> None:
        if isinstance(self.optimizations, str) \
                or not isinstance(self.optimizations, (list, tuple)):
            raise ConfigError(
                "scenario 'optimizations' must be a list of stack entries, "
                f"got {self.optimizations!r}"
            )
        if (self.schedule_policy is not None
                and self.schedule_policy not in NAMED_SCHEDULE_POLICIES):
            raise ConfigError(
                f"unknown schedule policy {self.schedule_policy!r}; "
                f"named policies: {list(NAMED_SCHEDULE_POLICIES)}"
            )

    # -------------------------------------------------------------- builders

    def build_model(self) -> ModelSpec:
        """The workload's model spec."""
        return build_model(self.model, batch_size=self.batch_size)

    def build_gpu(self) -> Optional[GPUSpec]:
        """The declared GPU spec, or ``None`` for the config default."""
        return _build_device(self.gpu, get_gpu, "GPU")

    def build_cpu(self) -> Optional[CPUSpec]:
        """The declared CPU spec, or ``None`` for the config default."""
        return _build_device(self.cpu, get_cpu, "CPU")

    def build_config(self) -> TrainingConfig:
        """The training configuration this scenario describes."""
        kwargs: Dict[str, object] = {
            "framework": self.framework,
            "precision": self.precision,
            "optimizer": self.optimizer,
        }
        gpu = self.build_gpu()
        if gpu is not None:
            kwargs["gpu"] = gpu
        cpu = self.build_cpu()
        if cpu is not None:
            kwargs["cpu"] = cpu
        if self.bucket_cap_mb is not None:
            kwargs["bucket_cap_mb"] = self.bucket_cap_mb
        if self.data_loading_us is not None:
            kwargs["data_loading_us"] = self.data_loading_us
        return TrainingConfig(**kwargs)

    def build_cluster(self) -> Optional[ClusterSpec]:
        """The deployment target, or ``None`` for single-GPU scenarios."""
        if self.cluster is None:
            return None
        return self.cluster.build(default_gpu=self.build_config().gpu)

    def build_schedule_policy(self) -> Optional[Scheduler]:
        """The named simulator schedule override, if any."""
        if self.schedule_policy is None:
            return None
        return NAMED_SCHEDULE_POLICIES[self.schedule_policy]()

    # ------------------------------------------------------------ convenience

    def with_(self, **changes: object) -> "Scenario":
        """A modified copy (``dataclasses.replace`` convenience)."""
        return dataclasses.replace(self, **changes)

    def with_cluster(self, machines: int, gpus_per_machine: int = 1,
                     bandwidth_gbps: float = 10.0, **kwargs: object) -> "Scenario":
        """A copy targeting a different deployment."""
        return self.with_(cluster=ClusterShape(
            machines=machines, gpus_per_machine=gpus_per_machine,
            bandwidth_gbps=bandwidth_gbps, **kwargs))

    def stack_label(self) -> str:
        """Human-readable label of the optimization stack."""
        return stack_label(self.optimizations)

    def label(self) -> str:
        """One-line identity of this scenario."""
        parts = [self.model]
        if self.batch_size is not None:
            parts.append(f"bs{self.batch_size}")
        if self.cluster is not None:
            parts.append(f"{self.cluster.machines}x{self.cluster.gpus_per_machine}"
                         f"@{self.cluster.bandwidth_gbps:g}Gbps")
        parts.append(self.stack_label())
        return " ".join(parts)

    # ---------------------------------------------------------- serialization

    def to_dict(self) -> Dict[str, object]:
        """Dict form; omits fields left at their defaults.

        Nested values are deep-copied: mutating the returned dict (e.g.
        grid-axis substitution) must never write through to the scenario.
        """
        out: Dict[str, object] = {"model": self.model}
        defaults = Scenario(model=self.model)
        for f in dataclasses.fields(self):
            if f.name in ("model", "cluster"):
                continue
            value = getattr(self, f.name)
            if value != getattr(defaults, f.name):
                out[f.name] = copy.deepcopy(value)
        if self.cluster is not None:
            out["cluster"] = self.cluster.to_dict()
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "Scenario":
        """Parse the dict form (inverse of :meth:`to_dict`)."""
        data = dict(data)
        if "model" not in data:
            raise ConfigError("scenario lacks required field 'model'")
        unknown = sorted(set(data) - {f.name for f in dataclasses.fields(cls)})
        if unknown:
            raise ConfigError(f"unknown scenario field(s) {unknown}")
        cluster = data.get("cluster")
        if isinstance(cluster, dict):
            data["cluster"] = ClusterShape.from_dict(cluster)
        return cls(**data)

    def to_json(self, indent: Optional[int] = 2) -> str:
        """JSON text of :meth:`to_dict` (what scenario files hold)."""
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "Scenario":
        """Parse JSON text (inverse of :meth:`to_json`)."""
        return cls.from_dict(json.loads(text))

    # ----------------------------------------------------------------- stack

    def build_pipeline(self, registry: Optional[OptimizationRegistry] = None):
        """Resolve the optimization stack into a validated pipeline.

        A declared ``schedule_policy`` rides along as a final no-op stack
        member supplying the scheduler, so the pipeline's one-scheduler
        conflict rule covers it too.
        """
        from repro.scenarios.pipeline import OptimizationPipeline
        stack: List[object] = list(self.optimizations)
        if self.schedule_policy is not None:
            stack.append(_NamedSchedulePolicy(self.schedule_policy,
                                              self.build_schedule_policy()))
        return OptimizationPipeline(stack, registry=registry or DEFAULT_REGISTRY)


def _set_path(data: Dict[str, object], path: str, value: object) -> None:
    """Set a dotted path inside nested dicts, creating *missing* levels.

    Crossing an existing non-dict value (e.g. axis ``gpu.compute_efficiency``
    over a string preset declaration ``"gpu": "2080ti"``) is an error —
    silently replacing it would discard part of the base scenario.
    """
    keys = path.split(".")
    node = data
    for depth, key in enumerate(keys[:-1]):
        nxt = node.get(key)
        if nxt is None:
            nxt = {}
            node[key] = nxt
        elif not isinstance(nxt, dict):
            crossed = ".".join(keys[:depth + 1])
            raise ConfigError(
                f"grid axis {path!r} crosses the non-dict value {nxt!r} at "
                f"{crossed!r}; declare the base field in dict form instead"
            )
        node = nxt
    node[keys[-1]] = value


@dataclass
class ScenarioGrid:
    """A base scenario crossed with named axes.

    ``axes`` maps dotted scenario-dict paths to value lists; :meth:`expand`
    yields one scenario per cross-product cell, axes varying slowest-first
    in declaration order (so the first axis is the outermost loop).
    """

    base: Scenario
    axes: Dict[str, List[object]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for path, values in self.axes.items():
            if not isinstance(values, (list, tuple)) or not values:
                raise ConfigError(
                    f"grid axis {path!r} must be a non-empty list"
                )

    def expand(self) -> List[Scenario]:
        """All scenarios of the grid, in cross-product order."""
        if not self.axes:
            return [self.base]
        paths = list(self.axes)
        scenarios = []
        for cell in itertools.product(*(self.axes[p] for p in paths)):
            data = self.base.to_dict()
            for path, value in zip(paths, cell):
                _set_path(data, path, value)
            scenarios.append(Scenario.from_dict(data))
        return scenarios

    def __len__(self) -> int:
        n = 1
        for values in self.axes.values():
            n *= len(values)
        return n

    # ---------------------------------------------------------- serialization

    def to_dict(self) -> Dict[str, object]:
        """Dict form: the base scenario plus the declared axes."""
        out: Dict[str, object] = {"base": self.base.to_dict()}
        if self.axes:
            out["axes"] = {path: list(values)
                           for path, values in self.axes.items()}
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ScenarioGrid":
        """Parse the dict form (inverse of :meth:`to_dict`)."""
        unknown = sorted(set(data) - {"base", "axes"})
        if unknown:
            raise ConfigError(f"unknown grid field(s) {unknown}")
        if "base" not in data:
            raise ConfigError("scenario grid lacks required field 'base'")
        return cls(base=Scenario.from_dict(data["base"]),
                   axes=dict(data.get("axes") or {}))

    def to_json(self, indent: Optional[int] = 2) -> str:
        """JSON text of :meth:`to_dict` (what grid files hold)."""
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "ScenarioGrid":
        """Parse JSON text (inverse of :meth:`to_json`)."""
        return cls.from_dict(json.loads(text))


def load_scenario_file(path: str) -> Union[Scenario, ScenarioGrid]:
    """Load a scenario JSON file: a single scenario or a grid.

    A dict with a ``base`` key parses as a :class:`ScenarioGrid`; anything
    else as a single :class:`Scenario`.
    """
    try:
        with open(path) as f:
            data = json.load(f)
    except OSError as exc:
        raise ConfigError(f"cannot read scenario file: {exc}") from None
    except json.JSONDecodeError as exc:
        raise ConfigError(f"{path}: invalid JSON: {exc}") from None
    if not isinstance(data, dict):
        raise ConfigError(f"{path}: scenario file must hold a JSON object")
    if "base" in data:
        return ScenarioGrid.from_dict(data)
    return Scenario.from_dict(data)
