"""Execute declarative scenarios: one runner behind every consumer.

The :class:`ScenarioRunner` owns the model → trace → transform → simulate
pipeline that experiments, examples and the CLI used to wire by hand:

* sessions are profiled once per (model, batch size, training config) and
  cached, so a bandwidth sweep over one model profiles a single iteration;
* single scenarios run through :meth:`WhatIfSession.predict`;
* grids run through the existing fork-based :meth:`WhatIfSession.sweep`
  (``processes=``), or — for durable, multi-workload sweeps — through the
  :mod:`repro.scenarios.batch` process-pool executor and the
  :mod:`repro.scenarios.store` result store (``parallel=`` / ``store=``),
  which skips cells already on disk and resumes interrupted sweeps;
* all paths produce bit-identical rows.

Outcomes expose the underlying session, model spec, config and cluster so
experiment modules can add ground-truth columns without re-wiring anything.
Cache-served outcomes are *detached*: they carry the stored timings and the
cheap-to-build model/config/cluster specs, but no profiled session.
"""

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.metrics import improvement_percent
from repro.analysis.session import Prediction, WhatIfSession
from repro.common.errors import ConfigError
from repro.experiments.common import ExperimentResult
from repro.framework.config import TrainingConfig
from repro.hw.topology import ClusterSpec
from repro.models.base import ModelSpec
from repro.models.registry import runtime_registered_models
from repro.scenarios.pipeline import OptimizationPipeline
from repro.scenarios.registry import DEFAULT_REGISTRY, OptimizationRegistry
from repro.scenarios.scenario import Scenario, ScenarioGrid


@dataclass
class ScenarioOutcome:
    """The result of running one scenario.

    ``prediction`` is ``None`` for baseline-only scenarios (an empty
    optimization stack asks "how long is one iteration?", nothing more)
    and for cache-served outcomes, whose timings come from the store.
    ``session`` is ``None`` for outcomes that never simulated locally
    (store hits, process-pool cells).
    """

    scenario: Scenario
    baseline_us: float
    predicted_us: float
    model: ModelSpec
    config: TrainingConfig
    cluster: Optional[ClusterSpec]
    session: Optional[WhatIfSession] = None
    prediction: Optional[Prediction] = None
    cached: bool = False

    @property
    def improvement_percent(self) -> float:
        """Predicted improvement over the baseline, in percent."""
        if self.prediction is not None:
            return self.prediction.improvement_percent
        if self.predicted_us == self.baseline_us:
            return 0.0
        return improvement_percent(self.baseline_us, self.predicted_us)

    def as_row(self) -> List[object]:
        """The standard ``ExperimentResult`` row for this outcome."""
        cluster_label = self.cluster.label() if self.cluster else "1x1"
        bandwidth = (self.scenario.cluster.bandwidth_gbps
                     if self.scenario.cluster else None)
        return [
            self.scenario.model,
            cluster_label,
            bandwidth if bandwidth is not None else "-",
            self.scenario.stack_label(),
            self.baseline_us / 1000.0,
            self.predicted_us / 1000.0,
            self.improvement_percent,
        ]


#: headers matching :meth:`ScenarioOutcome.as_row`
SCENARIO_RESULT_HEADERS = (
    "model", "config", "bandwidth_gbps", "optimizations",
    "baseline_ms", "predicted_ms", "improvement_%",
)


class ScenarioRunner:
    """Run scenarios and scenario grids against cached profiled sessions."""

    def __init__(self, registry: Optional[OptimizationRegistry] = None,
                 cache_sessions: bool = True) -> None:
        self.registry = registry or DEFAULT_REGISTRY
        self.cache_sessions = cache_sessions
        self._sessions: Dict[object, Tuple[Tuple[WhatIfSession, ModelSpec,
                                                 TrainingConfig],
                                           object]] = {}

    # -------------------------------------------------------------- sessions

    @staticmethod
    def _session_key(scenario: Scenario, config: TrainingConfig) -> object:
        return (scenario.model, scenario.batch_size, config)

    @staticmethod
    def _builder_token(scenario: Scenario) -> object:
        """Identity of the runtime builder behind a scenario's model name.

        ``None`` for shipped zoo models (immutable within a process).  A
        cached session whose token no longer matches was profiled against
        a model that has since been re-registered (``register_model(...,
        overwrite=True)``) — trusting it would serve the *old* model's
        timings under the new model's name, so it is rebuilt instead.
        """
        return runtime_registered_models().get(scenario.model.lower())

    def session(self, scenario: Scenario) -> WhatIfSession:
        """The profiled session for a scenario's workload (cached)."""
        return self._session_entry(scenario)[0]

    def _session_entry(
        self, scenario: Scenario
    ) -> Tuple[WhatIfSession, ModelSpec, TrainingConfig]:
        config = scenario.build_config()
        key = self._session_key(scenario, config)
        token = self._builder_token(scenario)
        cached = self._sessions.get(key)
        if cached is not None and cached[1] is not token:
            del self._sessions[key]
            cached = None
        if cached is None:
            model = scenario.build_model()
            session = WhatIfSession.from_model(model, config=config)
            cached = ((session, model, config), token)
            if self.cache_sessions:
                self._sessions[key] = cached
        return cached[0]

    # ------------------------------------------------------------- execution

    def _prepare(self, scenario: Scenario) -> Tuple[
            WhatIfSession, ModelSpec, TrainingConfig,
            Optional[ClusterSpec], OptimizationPipeline]:
        """Resolve and validate everything one scenario execution needs."""
        session, model, config = self._session_entry(scenario)
        cluster = scenario.build_cluster()
        pipeline = scenario.build_pipeline(self.registry)
        if pipeline.requires_cluster and cluster is None:
            raise ConfigError(
                f"stack {scenario.stack_label()!r} needs a cluster; "
                "declare scenario.cluster"
            )
        return session, model, config, cluster, pipeline

    def run_cells(self, scenario: Scenario, cells: Sequence,
                  scheduler=None) -> List[Prediction]:
        """Answer a grid of parameter cells against one scenario's workload.

        ``cells`` are :class:`~repro.core.compiled.CellDelta` sparse
        duration/gap overrides onto the scenario workload's *baseline*
        graph (the scenario's optimization stack, if any, is not applied —
        cells ask "what if these tasks were faster/slower", not "what if
        this optimization").  The whole grid runs through the batched
        :meth:`WhatIfSession.simulate_many` path: the session's baseline
        is lowered once and every cell re-runs only the array engine, so
        a 24-cell grid costs one lowering plus 24 engine loops.

        Returns one :class:`~repro.analysis.session.Prediction` per cell,
        in cell order, labeled by ``cell.label``.
        """
        session = self.session(scenario)
        baseline_us = session.baseline_us
        return [
            Prediction(optimization=cell.label, baseline_us=baseline_us,
                       predicted_us=result.makespan_us)
            for cell, result in zip(
                cells, session.simulate_many(cells, scheduler))
        ]

    def run(self, scenario: Scenario) -> ScenarioOutcome:
        """Execute one scenario."""
        session, model, config, cluster, pipeline = self._prepare(scenario)
        prediction = (session.predict(pipeline, cluster=cluster)
                      if len(pipeline) else None)
        predicted_us = (prediction.predicted_us if prediction is not None
                        else session.baseline_us)
        return ScenarioOutcome(scenario=scenario, session=session,
                               model=model, config=config, cluster=cluster,
                               baseline_us=session.baseline_us,
                               predicted_us=predicted_us,
                               prediction=prediction)

    def detached_outcome(self, scenario: Scenario, baseline_us: float,
                         predicted_us: float,
                         cached: bool = False) -> ScenarioOutcome:
        """An outcome carrying externally computed timings.

        Validates the scenario exactly like :meth:`run` (pipeline rules,
        cluster requirements) and builds the cheap model/config/cluster
        specs, but profiles nothing — this is how store hits and
        process-pool cells come back.
        """
        config = scenario.build_config()
        cluster = scenario.build_cluster()
        pipeline = scenario.build_pipeline(self.registry)
        if pipeline.requires_cluster and cluster is None:
            raise ConfigError(
                f"stack {scenario.stack_label()!r} needs a cluster; "
                "declare scenario.cluster"
            )
        return ScenarioOutcome(scenario=scenario, session=None,
                               model=scenario.build_model(), config=config,
                               cluster=cluster, baseline_us=baseline_us,
                               predicted_us=predicted_us, cached=cached)

    def run_grid(self, scenarios: Sequence[Scenario],
                 processes: Optional[int] = None,
                 parallel: Optional[int] = None,
                 store=None, force: bool = False,
                 progress=None,
                 start_method: Optional[str] = None,
                 max_cell_retries: Optional[int] = None
                 ) -> List[ScenarioOutcome]:
        """Execute many scenarios, fanning work across CPU cores.

        Two fan-out substrates share this entry point:

        * default (``processes=``): scenarios sharing a workload (model,
          batch size, config) share one profiled session in *this*
          process; each shared group's predictions go through the
          session's fork-based :meth:`~WhatIfSession.sweep`;
        * batch (``parallel=`` and/or ``store=``): cells run on the
          :func:`repro.scenarios.batch.run_batch` process-pool executor,
          skipping cells the :class:`~repro.scenarios.store.SweepStore`
          already holds (resume; a store with a ``remote`` tier also
          reads through to it, so a warm shared server means zero local
          simulations) and persisting new ones — missing cells are
          claimed under per-key leases so concurrent sweeps sharing a
          store dedupe identical cells; ``force=True`` recomputes hits,
          ``progress(done, total, cell)`` streams completion, and
          ``start_method`` picks the worker start method
          (``"fork"``/``"spawn"``/``"serial"``, default automatic — see
          :class:`~repro.scenarios.batch.WorkerManifest` for how spawn
          workers rebuild runtime registrations).  ``max_cell_retries``
          bounds how often one cell is requeued after its chunk crashed
          a worker before being quarantined to the parent; cells that
          fail even there abort the grid with a :class:`ConfigError`
          naming every failed cell (matching serial semantics, where a
          poisoned cell raises too — callers wanting partial results use
          :func:`~repro.scenarios.batch.run_batch` directly).

        Results come back in input order and are bit-identical across
        both substrates, both start methods, and serial :meth:`run` calls.

        On both substrates the per-workload session cache also shares the
        compiled simulation baseline (`repro.core.compiled`): once a
        workload's graph goes hot its lowering is reused by every scenario
        of that workload (and by every chunk a pool worker runs), with the
        copy-on-write barrier invalidating it on mutation — engine
        selection never changes results.
        """
        if parallel is not None or store is not None:
            from repro.scenarios.batch import run_batch
            kwargs = {}
            if max_cell_retries is not None:
                kwargs["max_cell_retries"] = max_cell_retries
            report = run_batch(scenarios, registry=self.registry,
                               store=store, jobs=parallel, force=force,
                               progress=progress, start_method=start_method,
                               **kwargs)
            if report.failures:
                detail = "; ".join(
                    f"cell {f.index} ({f.label}): {f.error}"
                    for f in report.failures)
                raise ConfigError(
                    f"{report.failed} grid cell(s) failed after retries "
                    f"and quarantine: {detail}")
            return [self.detached_outcome(cell.scenario, cell.baseline_us,
                                          cell.predicted_us,
                                          cached=cell.cached)
                    for cell in report.cells]

        prepared: List[Tuple[Scenario, WhatIfSession, ModelSpec,
                             TrainingConfig, Optional[ClusterSpec],
                             OptimizationPipeline]] = []
        groups: Dict[int, List[int]] = {}
        for index, scenario in enumerate(scenarios):
            session, model, config, cluster, pipeline = \
                self._prepare(scenario)
            prepared.append((scenario, session, model, config, cluster,
                             pipeline))
            groups.setdefault(id(session), []).append(index)

        predictions: Dict[int, Optional[Prediction]] = {}
        for indices in groups.values():
            session = prepared[indices[0]][1]
            question_indices = [i for i in indices if len(prepared[i][5])]
            for i in indices:
                predictions[i] = None
            if not question_indices:
                continue
            answers = session.sweep(
                [(prepared[i][5], prepared[i][4]) for i in question_indices],
                processes=processes,
            )
            for i, answer in zip(question_indices, answers):
                predictions[i] = answer

        outcomes = []
        for index, (scenario, session, model, config, cluster, _pipeline) \
                in enumerate(prepared):
            prediction = predictions[index]
            predicted_us = (prediction.predicted_us if prediction is not None
                            else session.baseline_us)
            outcomes.append(ScenarioOutcome(
                scenario=scenario, session=session, model=model,
                config=config, cluster=cluster,
                baseline_us=session.baseline_us, predicted_us=predicted_us,
                prediction=prediction))
        return outcomes

    def run_file(self, path: str,
                 processes: Optional[int] = None,
                 parallel: Optional[int] = None,
                 store=None, force: bool = False,
                 progress=None,
                 start_method: Optional[str] = None,
                 max_cell_retries: Optional[int] = None
                 ) -> List[ScenarioOutcome]:
        """Execute a scenario JSON file (single scenario or grid)."""
        from repro.scenarios.scenario import load_scenario_file
        loaded = load_scenario_file(path)
        if isinstance(loaded, ScenarioGrid):
            return self.run_grid(loaded.expand(), processes=processes,
                                 parallel=parallel, store=store,
                                 force=force, progress=progress,
                                 start_method=start_method,
                                 max_cell_retries=max_cell_retries)
        if parallel is not None or store is not None:
            return self.run_grid([loaded], parallel=parallel, store=store,
                                 force=force, progress=progress,
                                 start_method=start_method,
                                 max_cell_retries=max_cell_retries)
        return [self.run(loaded)]

    # --------------------------------------------------------------- results

    @staticmethod
    def to_result(outcomes: Sequence[ScenarioOutcome],
                  experiment: str = "scenario",
                  title: str = "Declared scenarios",
                  notes: str = "") -> ExperimentResult:
        """Collect outcomes into a renderable :class:`ExperimentResult`."""
        result = ExperimentResult(experiment=experiment, title=title,
                                  headers=list(SCENARIO_RESULT_HEADERS),
                                  notes=notes)
        for outcome in outcomes:
            result.add_row(*outcome.as_row())
        return result
