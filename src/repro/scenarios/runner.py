"""Execute declarative scenarios: one runner behind every consumer.

The :class:`ScenarioRunner` owns the model → trace → transform → simulate
pipeline that experiments, examples and the CLI used to wire by hand:

* sessions are profiled once per (model, batch size, training config) and
  cached, so a bandwidth sweep over one model profiles a single iteration;
* single scenarios run through :meth:`WhatIfSession.predict`;
* grids run through the existing fork-based :meth:`WhatIfSession.sweep`,
  fanning the per-cell predictions across CPU cores with bit-identical
  results to a serial run.

Outcomes expose the underlying session, model spec, config and cluster so
experiment modules can add ground-truth columns without re-wiring anything.
"""

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.session import Prediction, WhatIfSession
from repro.common.errors import ConfigError
from repro.experiments.common import ExperimentResult
from repro.framework.config import TrainingConfig
from repro.hw.topology import ClusterSpec
from repro.models.base import ModelSpec
from repro.scenarios.pipeline import OptimizationPipeline
from repro.scenarios.registry import DEFAULT_REGISTRY, OptimizationRegistry
from repro.scenarios.scenario import Scenario, ScenarioGrid


@dataclass
class ScenarioOutcome:
    """The result of running one scenario.

    ``prediction`` is ``None`` for baseline-only scenarios (an empty
    optimization stack asks "how long is one iteration?", nothing more).
    """

    scenario: Scenario
    session: WhatIfSession
    model: ModelSpec
    config: TrainingConfig
    cluster: Optional[ClusterSpec]
    prediction: Optional[Prediction]

    @property
    def baseline_us(self) -> float:
        """Simulated baseline iteration time."""
        return self.session.baseline_us

    @property
    def predicted_us(self) -> float:
        """Predicted iteration time (the baseline when nothing is stacked)."""
        if self.prediction is None:
            return self.baseline_us
        return self.prediction.predicted_us

    @property
    def improvement_percent(self) -> float:
        """Predicted improvement over the baseline, in percent."""
        if self.prediction is None:
            return 0.0
        return self.prediction.improvement_percent

    def as_row(self) -> List[object]:
        """The standard ``ExperimentResult`` row for this outcome."""
        cluster_label = self.cluster.label() if self.cluster else "1x1"
        bandwidth = (self.scenario.cluster.bandwidth_gbps
                     if self.scenario.cluster else None)
        return [
            self.scenario.model,
            cluster_label,
            bandwidth if bandwidth is not None else "-",
            self.scenario.stack_label(),
            self.baseline_us / 1000.0,
            self.predicted_us / 1000.0,
            self.improvement_percent,
        ]


#: headers matching :meth:`ScenarioOutcome.as_row`
SCENARIO_RESULT_HEADERS = (
    "model", "config", "bandwidth_gbps", "optimizations",
    "baseline_ms", "predicted_ms", "improvement_%",
)


class ScenarioRunner:
    """Run scenarios and scenario grids against cached profiled sessions."""

    def __init__(self, registry: Optional[OptimizationRegistry] = None,
                 cache_sessions: bool = True) -> None:
        self.registry = registry or DEFAULT_REGISTRY
        self.cache_sessions = cache_sessions
        self._sessions: Dict[object, Tuple[WhatIfSession, ModelSpec,
                                           TrainingConfig]] = {}

    # -------------------------------------------------------------- sessions

    @staticmethod
    def _session_key(scenario: Scenario, config: TrainingConfig) -> object:
        return (scenario.model, scenario.batch_size, config)

    def session(self, scenario: Scenario) -> WhatIfSession:
        """The profiled session for a scenario's workload (cached)."""
        return self._session_entry(scenario)[0]

    def _session_entry(
        self, scenario: Scenario
    ) -> Tuple[WhatIfSession, ModelSpec, TrainingConfig]:
        config = scenario.build_config()
        key = self._session_key(scenario, config)
        entry = self._sessions.get(key)
        if entry is None:
            model = scenario.build_model()
            session = WhatIfSession.from_model(model, config=config)
            entry = (session, model, config)
            if self.cache_sessions:
                self._sessions[key] = entry
        return entry

    # ------------------------------------------------------------- execution

    def _prepare(self, scenario: Scenario) -> Tuple[
            WhatIfSession, ModelSpec, TrainingConfig,
            Optional[ClusterSpec], OptimizationPipeline]:
        """Resolve and validate everything one scenario execution needs."""
        session, model, config = self._session_entry(scenario)
        cluster = scenario.build_cluster()
        pipeline = scenario.build_pipeline(self.registry)
        if pipeline.requires_cluster and cluster is None:
            raise ConfigError(
                f"stack {scenario.stack_label()!r} needs a cluster; "
                "declare scenario.cluster"
            )
        return session, model, config, cluster, pipeline

    def run(self, scenario: Scenario) -> ScenarioOutcome:
        """Execute one scenario."""
        session, model, config, cluster, pipeline = self._prepare(scenario)
        prediction = (session.predict(pipeline, cluster=cluster)
                      if len(pipeline) else None)
        return ScenarioOutcome(scenario=scenario, session=session,
                               model=model, config=config, cluster=cluster,
                               prediction=prediction)

    def run_grid(self, scenarios: Sequence[Scenario],
                 processes: Optional[int] = None) -> List[ScenarioOutcome]:
        """Execute many scenarios, fanning predictions across CPU cores.

        Scenarios sharing a workload (model, batch size, config) share one
        profiled session; each shared group's predictions go through the
        session's fork-based :meth:`~WhatIfSession.sweep`.  Results come
        back in input order and are bit-identical to serial :meth:`run`
        calls.
        """
        prepared: List[Tuple[Scenario, WhatIfSession, ModelSpec,
                             TrainingConfig, Optional[ClusterSpec],
                             OptimizationPipeline]] = []
        groups: Dict[int, List[int]] = {}
        for index, scenario in enumerate(scenarios):
            session, model, config, cluster, pipeline = \
                self._prepare(scenario)
            prepared.append((scenario, session, model, config, cluster,
                             pipeline))
            groups.setdefault(id(session), []).append(index)

        predictions: Dict[int, Optional[Prediction]] = {}
        for indices in groups.values():
            session = prepared[indices[0]][1]
            question_indices = [i for i in indices if len(prepared[i][5])]
            for i in indices:
                predictions[i] = None
            if not question_indices:
                continue
            answers = session.sweep(
                [(prepared[i][5], prepared[i][4]) for i in question_indices],
                processes=processes,
            )
            for i, answer in zip(question_indices, answers):
                predictions[i] = answer

        return [
            ScenarioOutcome(scenario=scenario, session=session, model=model,
                            config=config, cluster=cluster,
                            prediction=predictions[index])
            for index, (scenario, session, model, config, cluster, _pipeline)
            in enumerate(prepared)
        ]

    def run_file(self, path: str,
                 processes: Optional[int] = None) -> List[ScenarioOutcome]:
        """Execute a scenario JSON file (single scenario or grid)."""
        from repro.scenarios.scenario import load_scenario_file
        loaded = load_scenario_file(path)
        if isinstance(loaded, ScenarioGrid):
            return self.run_grid(loaded.expand(), processes=processes)
        return [self.run(loaded)]

    # --------------------------------------------------------------- results

    @staticmethod
    def to_result(outcomes: Sequence[ScenarioOutcome],
                  experiment: str = "scenario",
                  title: str = "Declared scenarios",
                  notes: str = "") -> ExperimentResult:
        """Collect outcomes into a renderable :class:`ExperimentResult`."""
        result = ExperimentResult(experiment=experiment, title=title,
                                  headers=list(SCENARIO_RESULT_HEADERS),
                                  notes=notes)
        for outcome in outcomes:
            result.add_row(*outcome.as_row())
        return result
