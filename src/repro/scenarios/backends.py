"""Pluggable storage tiers behind the sweep store.

:class:`~repro.scenarios.store.SweepStore` addresses entries by content,
verifies everything it reads, and never trusts a byte it did not checksum.
That discipline makes the *medium* interchangeable: any tier that can move
raw entry bytes by key can back a store, because trust is established by
the reader, not the transport.  This module defines that seam:

* :class:`StoreBackend` — the five-operation protocol every tier provides
  (``get`` / ``put`` / ``delete`` / ``iter_keys`` / ``stat``), moving
  opaque entry bytes by content key;
* :class:`LocalBackend` — the on-disk directory layout
  (``objects/<key[:2]>/<key>.json`` plus ``.last`` LRU sidecars), with
  atomic writes and the per-key / store-wide **lease files** that let
  concurrent writers, GC passes and cross-grid sweeps coordinate;
* :class:`HTTPBackend` — a remote tier over stdlib ``urllib``: reads
  degrade to ``None`` on *any* transport trouble (unreachable host,
  timeout, mid-body truncation), so a flaky remote can cost a cache miss
  but never a crash;
* :class:`StoreServer` — the matching stdlib ``http.server`` front end
  (``repro store serve``) publishing a local store to other hosts;
* :class:`FileLease` — an advisory lock file with
  acquire / steal-after-stale / release semantics.  Theft favours
  liveness: because entries are content-addressed and recomputable, the
  worst case of a misjudged steal is duplicated work, never a wrong
  result.

The written contract — which operations each backend must make atomic,
the read-through/write-back order, the lease lifecycle — lives in
``docs/store-backends.md`` and is drift-checked by tests.
"""

import json
import os
import re
import tempfile
import threading
import time
import urllib.error
import urllib.request
from dataclasses import dataclass
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Iterator, Optional, Protocol, runtime_checkable

from repro.common.errors import DaydreamError
from repro.common.prng import stable_hash
from repro.scenarios.retry import BackoffState, RetryPolicy

#: a lease file untouched for this long is presumed dead and may be stolen
LEASE_STEAL_SECONDS = 120.0

#: content keys are 32 lowercase hex chars (blake2b-128); both the server
#: and the backends refuse anything else before touching the filesystem
KEY_RE = re.compile(r"^[0-9a-f]{32}$")


class BackendError(DaydreamError):
    """An explicit backend transfer (push, pull, serve) failed.

    Read-through reads never raise this — a failing read is a miss — but
    commands that *must* move bytes (``repro store push``/``pull``) fail
    loudly instead of silently publishing nothing.  When the failure
    interrupted a multi-entry transfer, ``partial`` carries the
    :class:`~repro.scenarios.store.SyncReport` accumulated *before* the
    failure — an accurate account of what actually landed, so a dead
    server is never misreported as a pile of rejected entries.
    """

    def __init__(self, message: str, partial: object = None) -> None:
        super().__init__(message)
        self.partial = partial


@dataclass(frozen=True)
class EntryStat:
    """What :meth:`StoreBackend.stat` reports about one stored entry."""

    size: int
    mtime: float


@runtime_checkable
class StoreBackend(Protocol):
    """The five operations a sweep-store tier must provide.

    Backends move *opaque bytes* by content key; all verification (key,
    salt, checksum) happens in :class:`~repro.scenarios.store.SweepStore`,
    so an untrusted or corrupt tier can cost a miss but never serve a
    wrong value.  ``docs/store-backends.md`` specifies which of these
    operations each backend must make atomic.
    """

    def get(self, key: str) -> Optional[bytes]:
        """Raw entry bytes for ``key``, or ``None`` if absent/unreadable."""
        ...

    def put(self, key: str, data: bytes) -> None:
        """Store ``data`` under ``key`` (atomically: all bytes or none)."""
        ...

    def delete(self, key: str) -> None:
        """Remove the entry for ``key`` (idempotent; absent is fine)."""
        ...

    def iter_keys(self) -> Iterator[str]:
        """Every content key this tier currently holds."""
        ...

    def stat(self, key: str) -> Optional[EntryStat]:
        """Size/mtime of the entry for ``key``, or ``None`` if absent."""
        ...


# --------------------------------------------------------------------- leases


class FileLease:
    """An advisory lock file with acquire / steal-after-stale / release.

    The lease file holds an owner token; creation with ``O_EXCL`` is the
    acquisition.  A lease whose mtime is older than ``steal_after``
    seconds is presumed abandoned (crashed holder) and may be stolen: the
    stealer atomically replaces the file with its own token and confirms
    ownership by reading it back.  Two simultaneous stealers can, in a
    narrow window, both believe they won — acceptable by design, because
    every lease in this package guards *recomputable, content-addressed*
    work: a misjudged steal duplicates effort, it never corrupts state.

    Live holders doing long work should :meth:`refresh` periodically so
    waiting peers do not steal a lease that is merely slow.
    """

    def __init__(self, path: str,
                 steal_after: float = LEASE_STEAL_SECONDS) -> None:
        self.path = os.fspath(path)
        self.steal_after = steal_after
        self.owned = False
        self._token = f"{os.getpid()}:{time.monotonic_ns()}"

    def try_acquire(self) -> bool:
        """One non-blocking acquisition attempt (stealing if stale)."""
        os.makedirs(os.path.dirname(self.path), exist_ok=True)
        try:
            fd = os.open(self.path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            return self._steal_if_stale()
        except OSError:
            return False
        with os.fdopen(fd, "w", encoding="utf-8") as f:
            f.write(self._token)
        self.owned = True
        return True

    def _steal_if_stale(self) -> bool:
        """Replace a stale lease with our token; confirm by read-back."""
        try:
            age = time.time() - os.stat(self.path).st_mtime
        except OSError:
            return False  # vanished mid-check; next try_acquire gets it
        if age <= self.steal_after:
            return False
        tmp = None
        try:
            fd, tmp = tempfile.mkstemp(dir=os.path.dirname(self.path),
                                       suffix=".steal")
            with os.fdopen(fd, "w", encoding="utf-8") as f:
                f.write(self._token)
            os.replace(tmp, self.path)
            tmp = None  # consumed by the replace
            with open(self.path, encoding="utf-8") as f:
                won = f.read() == self._token
        except OSError:
            return False
        finally:
            if tmp is not None:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
        self.owned = won
        return won

    def acquire(self, timeout: float, poll_s: float = 0.02) -> bool:
        """Poll :meth:`try_acquire` for up to ``timeout`` seconds."""
        deadline = time.monotonic() + timeout
        while True:
            if self.try_acquire():
                return True
            if time.monotonic() >= deadline:
                return False
            time.sleep(poll_s)

    def refresh(self) -> None:
        """Re-stamp the lease mtime so waiting peers do not steal it."""
        if self.owned:
            try:
                os.utime(self.path, None)
            except OSError:
                pass

    def release(self) -> None:
        """Give the lease up — only if we still own it (not stolen)."""
        if not self.owned:
            return
        self.owned = False
        try:
            with open(self.path, encoding="utf-8") as f:
                if f.read() != self._token:
                    return  # stolen from us; the new owner keeps the file
            os.unlink(self.path)
        except OSError:
            pass

    def held_by_other(self) -> bool:
        """Whether someone else currently holds a *fresh* lease here."""
        if self.owned:
            return False
        try:
            age = time.time() - os.stat(self.path).st_mtime
        except OSError:
            return False
        return age <= self.steal_after

    def __enter__(self) -> "FileLease":
        """Context-manager entry (the caller has already acquired)."""
        return self

    def __exit__(self, *exc_info: object) -> None:
        """Release on context exit."""
        self.release()


# ----------------------------------------------------------------- local tier


class LocalBackend:
    """The on-disk tier: one JSON file per entry, sharded by key prefix.

    Layout under ``<root>/objects/``:

    * ``<key[:2]>/<key>.json`` — the entry (atomic ``os.replace`` writes);
    * ``<key[:2]>/<key>.last`` — zero-byte LRU sidecar (mtime = last serve);
    * ``<key[:2]>/<key>.lease`` — per-key write/compute lease;
    * ``<root>/gc.lease`` — the store-wide GC lease.

    ``put`` is atomic (temp file + ``os.replace``); ``delete`` and
    sidecar touches are idempotent and best-effort.  Lease and sidecar
    files are bookkeeping, not content: :meth:`total_bytes` counts
    entries, sidecars and abandoned temp files, but never lease files, so
    byte budgets are about results, not coordination overhead.
    """

    def __init__(self, root: str) -> None:
        self.root = os.fspath(root)

    @property
    def objects_dir(self) -> str:
        """The sharded entry directory under the store root."""
        return os.path.join(self.root, "objects")

    def path_for(self, key: str) -> str:
        """The entry file backing one content key."""
        return os.path.join(self.objects_dir, key[:2], f"{key}.json")

    def served_path_for(self, key: str) -> str:
        """The ``last_served`` LRU sidecar of one content key."""
        return os.path.join(self.objects_dir, key[:2], f"{key}.last")

    def lease_path_for(self, key: str) -> str:
        """The per-key lease file of one content key."""
        return os.path.join(self.objects_dir, key[:2], f"{key}.lease")

    # ------------------------------------------------------------- protocol

    def get(self, key: str) -> Optional[bytes]:
        """Raw entry bytes, or ``None`` if absent or unreadable."""
        try:
            with open(self.path_for(key), "rb") as f:
                return f.read()
        except OSError:
            return None

    def put(self, key: str, data: bytes) -> None:
        """Atomically write one entry (temp file + ``os.replace``)."""
        path = self.path_for(key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=os.path.dirname(path),
                                   prefix=f".{key[:8]}-", suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as f:
                f.write(data)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def delete(self, key: str) -> int:
        """Remove one entry and its sidecar; returns the bytes freed."""
        freed = 0
        for path in (self.path_for(key), self.served_path_for(key)):
            try:
                freed += os.stat(path).st_size
                os.unlink(path)
            except OSError:
                pass
        return freed

    def iter_keys(self) -> Iterator[str]:
        """Every content key currently on disk (unvalidated), sorted."""
        objects = self.objects_dir
        if not os.path.isdir(objects):
            return
        for shard in sorted(os.listdir(objects)):
            shard_dir = os.path.join(objects, shard)
            if not os.path.isdir(shard_dir):
                continue
            for name in sorted(os.listdir(shard_dir)):
                if name.endswith(".json"):
                    yield name[:-len(".json")]

    def stat(self, key: str) -> Optional[EntryStat]:
        """Size and mtime of one entry file, or ``None`` if absent."""
        try:
            st = os.stat(self.path_for(key))
        except OSError:
            return None
        return EntryStat(size=st.st_size, mtime=st.st_mtime)

    # ------------------------------------------------------------ lifecycle

    def touch_served(self, key: str) -> None:
        """Refresh the LRU clock of one entry (best-effort)."""
        sidecar = self.served_path_for(key)
        try:
            with open(sidecar, "a", encoding="utf-8"):
                pass
            os.utime(sidecar, None)
        except OSError:
            pass  # a read-only or racing store never fails a serve

    def last_served(self, key: str) -> Optional[float]:
        """When the entry was last served (sidecar mtime, else entry
        mtime, else ``None`` for a missing entry)."""
        for path in (self.served_path_for(key), self.path_for(key)):
            try:
                return os.stat(path).st_mtime
            except OSError:
                continue
        return None

    def entry_bytes(self, key: str) -> int:
        """On-disk size of one entry plus its sidecar."""
        size = 0
        for path in (self.path_for(key), self.served_path_for(key)):
            try:
                size += os.stat(path).st_size
            except OSError:
                pass
        return size

    def total_bytes(self) -> int:
        """Bytes under ``objects/``: entries, sidecars and temp files.

        Lease files are excluded — they are transient coordination state,
        and byte budgets (``gc --max-bytes``) are contracts about stored
        *results*, not about locks.
        """
        total = 0
        for dirpath, _dirnames, filenames in os.walk(self.objects_dir):
            for name in filenames:
                if name.endswith((".lease", ".steal")):
                    continue
                try:
                    total += os.stat(os.path.join(dirpath, name)).st_size
                except OSError:
                    pass
        return total

    def remove_abandoned(self, grace_s: float) -> int:
        """Delete temp and lease files untouched for ``grace_s`` seconds.

        Young ones are left alone: a concurrent writer may be about to
        ``os.replace`` a temp file into place, and a fresh lease has a
        live holder.
        """
        removed = 0
        cutoff = time.time() - grace_s
        for dirpath, _dirnames, filenames in os.walk(self.objects_dir):
            for name in filenames:
                if not name.endswith((".tmp", ".lease", ".steal")):
                    continue
                path = os.path.join(dirpath, name)
                try:
                    if os.stat(path).st_mtime < cutoff:
                        os.unlink(path)
                        if name.endswith(".tmp"):
                            removed += 1
                except OSError:
                    pass
        return removed

    # --------------------------------------------------------------- leases

    def lease(self, key: str,
              steal_after: float = LEASE_STEAL_SECONDS) -> FileLease:
        """The per-key lease of one content key (not yet acquired)."""
        return FileLease(self.lease_path_for(key), steal_after=steal_after)

    def gc_lease(self,
                 steal_after: float = LEASE_STEAL_SECONDS) -> FileLease:
        """The store-wide lease serializing GC/prune passes."""
        return FileLease(os.path.join(self.root, "gc.lease"),
                         steal_after=steal_after)

    def lease_held(self, key: str,
                   steal_after: float = LEASE_STEAL_SECONDS) -> bool:
        """Whether a fresh per-key lease exists (a live writer/computer)."""
        try:
            age = time.time() - os.stat(self.lease_path_for(key)).st_mtime
        except OSError:
            return False
        return age <= steal_after


# ---------------------------------------------------------------- remote tier


class HTTPBackend:
    """A remote sweep-store tier spoken over plain HTTP (stdlib only).

    Endpoints (served by :class:`StoreServer`):

    * ``GET /objects/<key>.json`` — entry bytes (404 when absent);
    * ``HEAD /objects/<key>.json`` — existence/size probe;
    * ``PUT /objects/<key>.json`` — publish one entry (``repro store
      push``); the server sanity-checks that the body's embedded key
      matches the path;
    * ``DELETE /objects/<key>.json`` — drop one entry;
    * ``GET /keys`` — JSON list of every key the server holds.

    :meth:`get` and :meth:`stat` are *read-through safe*: any transport
    trouble — connection refused, DNS failure, timeout, a response body
    shorter than its ``Content-Length`` — returns ``None``, so the
    calling store records a miss and re-simulates.  A transport-level
    failure also marks the remote *down*: reads within the down window
    return ``None`` immediately, so an unreachable server costs one
    timeout per window, not one per grid cell.  The window is governed by
    the unified :class:`~repro.scenarios.retry.RetryPolicy` (``retry``),
    not a flat constant: consecutive failures escalate it exponentially
    (with deterministic seeded jitter, keyed by the base URL so replicas
    de-synchronize), and any success resets the streak — a briefly-flaky
    remote recovers on the next read while a dead one is probed
    geometrically less often.  ``backoff_s`` seeds the policy's base
    delay for back-compatibility.  (An HTTP error status is a *reachable*
    server answering — 404 is an ordinary miss — and never touches the
    backoff.)  Explicit transfers (:meth:`put`, :meth:`delete`,
    :meth:`iter_keys`) raise :class:`BackendError` instead:
    ``push``/``pull`` must fail loudly, not publish silence.
    """

    def __init__(self, base_url: str, timeout_s: float = 5.0,
                 backoff_s: float = 30.0,
                 retry: Optional[RetryPolicy] = None) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout_s = timeout_s
        self.backoff_s = backoff_s
        if retry is None:
            retry = RetryPolicy(max_attempts=6, base_delay_s=backoff_s,
                                multiplier=2.0, max_delay_s=backoff_s * 16,
                                jitter=0.1,
                                seed=stable_hash(self.base_url))
        self.retry = retry
        self._backoff = BackoffState(policy=retry)
        self._down_until = 0.0

    def _reachable(self) -> bool:
        """Whether the down-backoff window allows a network attempt."""
        return time.time() >= self._down_until

    def _mark_down(self) -> None:
        """Escalate the down window along the retry policy's schedule."""
        self._backoff, window = self._backoff.after_failure()
        self._down_until = time.time() + window

    def _mark_up(self) -> None:
        """Reset the failure streak: the remote answered."""
        self._backoff = self._backoff.after_success()

    def url_for(self, key: str) -> str:
        """The entry URL of one content key."""
        if not KEY_RE.match(key):
            raise BackendError(f"malformed content key {key!r}")
        return f"{self.base_url}/objects/{key}.json"

    def get(self, key: str) -> Optional[bytes]:
        """Entry bytes from the remote, or ``None`` on any trouble."""
        if not self._reachable():
            return None
        try:
            req = urllib.request.Request(self.url_for(key), method="GET")
            with urllib.request.urlopen(req, timeout=self.timeout_s) as resp:
                data = resp.read()
            self._mark_up()  # reachable: the failure streak resets
            return data
        except BackendError:
            raise  # a malformed key is a caller bug, not a remote flake
        except urllib.error.HTTPError:
            self._mark_up()  # a reachable server saying no: ordinary miss
            return None
        except Exception:
            self._mark_down()  # transport trouble: back off for a while
            return None  # unreachable/timeout/truncation: a miss, never a crash

    def fetch(self, key: str) -> Optional[bytes]:
        """Entry bytes for an *explicit* transfer: loud, unlike :meth:`get`.

        Returns ``None`` only when a reachable server answers 404 (the
        entry vanished between listing and fetching); any transport
        trouble raises :class:`BackendError`, so ``repro store pull``
        cannot silently misreport a dead server as a pile of rejected
        entries.
        """
        try:
            req = urllib.request.Request(self.url_for(key), method="GET")
            with urllib.request.urlopen(req, timeout=self.timeout_s) as resp:
                return resp.read()
        except urllib.error.HTTPError as exc:
            if exc.code == 404:
                return None
            raise BackendError(
                f"cannot fetch {key} from {self.base_url}: {exc}"
            ) from None
        except BackendError:
            raise
        except Exception as exc:
            raise BackendError(
                f"cannot fetch {key} from {self.base_url}: {exc}"
            ) from None

    def put(self, key: str, data: bytes) -> None:
        """Publish one entry to the remote (raises on any failure)."""
        req = urllib.request.Request(self.url_for(key), data=data,
                                     method="PUT")
        try:
            with urllib.request.urlopen(req, timeout=self.timeout_s):
                pass
        except Exception as exc:
            raise BackendError(
                f"cannot publish {key} to {self.base_url}: {exc}"
            ) from None

    def delete(self, key: str) -> None:
        """Drop one remote entry (raises on any failure but 404)."""
        req = urllib.request.Request(self.url_for(key), method="DELETE")
        try:
            with urllib.request.urlopen(req, timeout=self.timeout_s):
                pass
        except urllib.error.HTTPError as exc:
            if exc.code != 404:
                raise BackendError(
                    f"cannot delete {key} from {self.base_url}: {exc}"
                ) from None
        except Exception as exc:
            raise BackendError(
                f"cannot delete {key} from {self.base_url}: {exc}"
            ) from None

    def iter_keys(self) -> Iterator[str]:
        """Every key the remote holds (raises if it cannot be listed)."""
        try:
            req = urllib.request.Request(f"{self.base_url}/keys",
                                         method="GET")
            with urllib.request.urlopen(req, timeout=self.timeout_s) as resp:
                keys = json.loads(resp.read().decode("utf-8"))
        except Exception as exc:
            raise BackendError(
                f"cannot list keys of {self.base_url}: {exc}"
            ) from None
        if not isinstance(keys, list):
            raise BackendError(f"{self.base_url}/keys did not return a list")
        return iter([k for k in keys if isinstance(k, str)
                     and KEY_RE.match(k)])

    def stat(self, key: str) -> Optional[EntryStat]:
        """Remote entry size via ``HEAD``, or ``None`` on any trouble."""
        if not self._reachable():
            return None
        try:
            req = urllib.request.Request(self.url_for(key), method="HEAD")
            with urllib.request.urlopen(req, timeout=self.timeout_s) as resp:
                size = int(resp.headers.get("Content-Length") or 0)
        except BackendError:
            raise
        except urllib.error.HTTPError:
            self._mark_up()
            return None
        except Exception:
            self._mark_down()
            return None
        self._mark_up()
        return EntryStat(size=size, mtime=0.0)


class _StoreHTTPHandler(BaseHTTPRequestHandler):
    """Request handler bridging the HTTP surface onto a LocalBackend."""

    # set by StoreServer on the subclass it builds per server instance
    backend: LocalBackend
    read_only: bool = False
    server_version = "repro-store/1"

    def log_message(self, format: str, *args: object) -> None:  # noqa: A002
        """Silence per-request stderr logging (the CLI prints a summary)."""

    def _key_from_path(self) -> Optional[str]:
        match = re.match(r"^/objects/([0-9a-f]{32})\.json$", self.path)
        return match.group(1) if match else None

    def _send(self, code: int, body: bytes = b"",
              content_type: str = "application/json") -> None:
        self.send_response(code)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        if self.command != "HEAD":
            self.wfile.write(body)

    def do_GET(self) -> None:
        """Serve ``/keys`` or one entry; 404 anything else."""
        if self.path == "/keys":
            body = json.dumps(sorted(self.backend.iter_keys())).encode()
            self._send(200, body)
            return
        key = self._key_from_path()
        data = self.backend.get(key) if key else None
        if data is None:
            self._send(404, b'{"error": "no such entry"}')
        else:
            self._send(200, data)

    def do_HEAD(self) -> None:
        """Existence/size probe of one entry."""
        key = self._key_from_path()
        stat = self.backend.stat(key) if key else None
        if stat is None:
            self._send(404)
        else:
            self.send_response(200)
            self.send_header("Content-Length", str(stat.size))
            self.end_headers()

    def do_PUT(self) -> None:
        """Accept one pushed entry after a minimal embedded-key check."""
        if self.read_only:
            self._send(403, b'{"error": "read-only store"}')
            return
        key = self._key_from_path()
        if key is None:
            self._send(404, b'{"error": "bad entry path"}')
            return
        try:
            length = int(self.headers.get("Content-Length") or 0)
            data = self.rfile.read(length)
            payload = json.loads(data.decode("utf-8"))
            embedded = payload.get("key") if isinstance(payload, dict) \
                else None
        except (ValueError, UnicodeDecodeError):
            self._send(400, b'{"error": "entry body is not JSON"}')
            return
        if embedded != key:
            self._send(400, b'{"error": "embedded key does not match path"}')
            return
        self.backend.put(key, data)
        self._send(201, b'{"stored": true}')

    def do_DELETE(self) -> None:
        """Drop one entry (404 when absent)."""
        if self.read_only:
            self._send(403, b'{"error": "read-only store"}')
            return
        key = self._key_from_path()
        if key is None or self.backend.stat(key) is None:
            self._send(404, b'{"error": "no such entry"}')
            return
        self.backend.delete(key)
        self._send(200, b'{"deleted": true}')


class StoreServer:
    """Publish one local sweep store over HTTP (``repro store serve``).

    A thin wrapper around :class:`http.server.ThreadingHTTPServer`: pass
    a store root, a bind address and a port (``0`` picks a free one), and
    either :meth:`serve` in the foreground — optionally for a bounded
    ``duration`` — or :meth:`start` a daemon thread and :meth:`shutdown`
    later (what the tests do).  The server performs only a minimal
    embedded-key sanity check on pushed entries; *clients* re-verify
    key/salt/checksum on every read, so a compromised or skewed server
    can cost misses, never wrong values.
    """

    def __init__(self, root: str, host: str = "127.0.0.1", port: int = 0,
                 read_only: bool = False) -> None:
        backend = LocalBackend(root)
        handler = type("_BoundStoreHTTPHandler", (_StoreHTTPHandler,),
                       {"backend": backend, "read_only": read_only})
        try:
            self._server = ThreadingHTTPServer((host, port), handler)
        except OSError as exc:
            raise BackendError(
                f"cannot bind store server to {host}:{port}: {exc}"
            ) from None
        self._thread: Optional[threading.Thread] = None

    @property
    def host(self) -> str:
        """The bound host address."""
        return self._server.server_address[0]

    @property
    def port(self) -> int:
        """The bound port (useful with ``port=0``)."""
        return self._server.server_address[1]

    @property
    def url(self) -> str:
        """The base URL clients pass as ``--remote``."""
        return f"http://{self.host}:{self.port}"

    def serve(self, duration_s: Optional[float] = None) -> None:
        """Serve in the foreground, forever or for ``duration_s`` seconds."""
        if duration_s is not None:
            timer = threading.Timer(duration_s, self._server.shutdown)
            timer.daemon = True
            timer.start()
        try:
            self._server.serve_forever(poll_interval=0.05)
        finally:
            self._server.server_close()

    def start(self) -> "StoreServer":
        """Serve on a daemon thread; returns self for chaining."""
        self._thread = threading.Thread(target=self._server.serve_forever,
                                        kwargs={"poll_interval": 0.05},
                                        daemon=True)
        self._thread.start()
        return self

    def shutdown(self) -> None:
        """Stop a :meth:`start`-ed server and release its socket."""
        self._server.shutdown()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        self._server.server_close()

    def __enter__(self) -> "StoreServer":
        """Start serving on entry to a ``with`` block."""
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        """Shut the server down on exit."""
        self.shutdown()
