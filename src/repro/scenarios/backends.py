"""Pluggable storage tiers behind the sweep store.

:class:`~repro.scenarios.store.SweepStore` addresses entries by content,
verifies everything it reads, and never trusts a byte it did not checksum.
That discipline makes the *medium* interchangeable: any tier that can move
raw entry bytes by key can back a store, because trust is established by
the reader, not the transport.  This module defines that seam:

* :class:`StoreBackend` — the five-operation protocol every tier provides
  (``get`` / ``put`` / ``delete`` / ``iter_keys`` / ``stat``), moving
  opaque entry bytes by content key;
* :class:`LocalBackend` — the on-disk directory layout
  (``objects/<key[:2]>/<key>.json`` plus ``.last`` LRU sidecars), with
  atomic writes and the per-key / store-wide **lease files** that let
  concurrent writers, GC passes and cross-grid sweeps coordinate;
* :class:`HTTPBackend` — a remote tier over stdlib ``urllib``: reads
  degrade to ``None`` on *any* transport trouble (unreachable host,
  timeout, mid-body truncation), so a flaky remote can cost a cache miss
  but never a crash;
* :class:`StoreServer` — the matching stdlib ``http.server`` front end
  (``repro store serve``) publishing a local store to other hosts, now a
  *coordination plane*: server-held compute leases (``POST
  /leases/<key>``), delta key listings (``GET /keys?since=``),
  checksum-``ETag`` conditional GETs, a ``GET /stats`` operability
  probe, and an optional token-authenticated admin mode gating
  ``PUT``/``DELETE``;
* :class:`FileLease` — an advisory lock file with
  acquire / steal-after-stale / release semantics.  Theft favours
  liveness: because entries are content-addressed and recomputable, the
  worst case of a misjudged steal is duplicated work, never a wrong
  result;
* :class:`RemoteLease` / :class:`ComputeLease` — the cross-host mirror
  of :class:`FileLease`: a server-held per-key claim (token-checked,
  steal-after-stale) layered over the local lease so N hosts sharing one
  hub compute each identical cell exactly once anywhere.  The remote
  layer *fails open*: an unreachable or pre-lease hub degrades to
  local-only coordination, never to a stuck sweep.

The written contract — which operations each backend must make atomic,
the read-through/write-back order, the lease lifecycle — lives in
``docs/store-backends.md`` and is drift-checked by tests.
"""

import collections
import hashlib
import hmac
import json
import os
import re
import secrets
import tempfile
import threading
import time
import urllib.error
import urllib.parse
import urllib.request
from dataclasses import dataclass
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import (Dict, Iterator, List, Optional, Protocol, Tuple,
                    runtime_checkable)

from repro.common.errors import DaydreamError
from repro.common.prng import stable_hash
from repro.scenarios.retry import BackoffState, RetryPolicy

#: a lease file untouched for this long is presumed dead and may be stolen
LEASE_STEAL_SECONDS = 120.0

#: content keys are 32 lowercase hex chars (blake2b-128); both the server
#: and the backends refuse anything else before touching the filesystem
KEY_RE = re.compile(r"^[0-9a-f]{32}$")

#: the server refuses PUT bodies larger than this (64 MiB) outright — a
#: sweep entry is a few KiB of JSON, so anything near the cap is a broken
#: or hostile client, not a result
MAX_BODY_BYTES = 64 << 20


def bearer_authorized(headers, token: Optional[str]) -> bool:
    """Whether a request's ``Authorization`` header satisfies ``token``.

    The shared auth check of every repro HTTP surface (the store server's
    admin mode and the prediction service's request gating): with no
    ``token`` configured every request passes; otherwise the header must
    carry the matching ``Bearer`` token, compared constant-time so a
    wrong token leaks nothing about the right one.
    """
    if not token:
        return True
    header = headers.get("Authorization") or ""
    presented = header[len("Bearer "):] \
        if header.startswith("Bearer ") else ""
    return hmac.compare_digest(presented, token)


def read_framed_body(handler, cap: int = MAX_BODY_BYTES
                     ) -> Tuple[Optional[bytes], Optional[int]]:
    """Read one HTTP request body, validated against its declared length.

    The shared framing helper of every repro HTTP handler.  Returns
    ``(data, None)`` on success.  On a framing problem the error response
    has *already been sent* and ``(None, status)`` reports which: a
    missing/unparseable/negative ``Content-Length`` is a 400, a declared
    length over ``cap`` is a 413 (refused before reading a byte), and a
    client that died mid-upload leaving fewer bytes than declared is a
    400 — a short read must never be processed as a whole body.
    """
    raw = handler.headers.get("Content-Length")
    try:
        length = int(raw) if raw is not None else -1
    except ValueError:
        length = -1
    if length < 0:
        handler.close_connection = True
        handler._send(400, b'{"error": "bad content-length"}')
        return None, 400
    if length > cap:
        handler.close_connection = True
        handler._send(413, b'{"error": "body too large"}')
        return None, 413
    data = handler.rfile.read(length)
    if len(data) != length:
        handler.close_connection = True  # the stream is now unframed
        handler._send(400, b'{"error": "body shorter than declared"}')
        return None, 400
    return data, None


class _NotModified:
    """Singleton sentinel: a conditional fetch matched the caller's ETag."""

    def __repr__(self) -> str:
        return "NOT_MODIFIED"


#: returned by :meth:`HTTPBackend.fetch` when the server answered 304 —
#: the remote copy is byte-identical to the ETag the caller already holds
NOT_MODIFIED = _NotModified()


def entry_etag(data: bytes) -> str:
    """The ETag of one entry body: a short content checksum.

    Free with content addressing — identical bytes always hash identically
    — so conditional GETs (``If-None-Match``) can skip transferring bodies
    both sides already hold.
    """
    return hashlib.blake2b(data, digest_size=8).hexdigest()


class BackendError(DaydreamError):
    """An explicit backend transfer (push, pull, serve) failed.

    Read-through reads never raise this — a failing read is a miss — but
    commands that *must* move bytes (``repro store push``/``pull``) fail
    loudly instead of silently publishing nothing.  When the failure
    interrupted a multi-entry transfer, ``partial`` carries the
    :class:`~repro.scenarios.store.SyncReport` accumulated *before* the
    failure — an accurate account of what actually landed, so a dead
    server is never misreported as a pile of rejected entries.
    """

    def __init__(self, message: str, partial: object = None) -> None:
        super().__init__(message)
        self.partial = partial


@dataclass(frozen=True)
class EntryStat:
    """What :meth:`StoreBackend.stat` reports about one stored entry.

    ``mtime`` is optional: remote tiers know an entry's size (from
    ``Content-Length``) but not its modification time, and fabricating
    ``0.0`` would poison any age-based decision downstream.
    """

    size: int
    mtime: Optional[float] = None


@runtime_checkable
class StoreBackend(Protocol):
    """The five operations a sweep-store tier must provide.

    Backends move *opaque bytes* by content key; all verification (key,
    salt, checksum) happens in :class:`~repro.scenarios.store.SweepStore`,
    so an untrusted or corrupt tier can cost a miss but never serve a
    wrong value.  ``docs/store-backends.md`` specifies which of these
    operations each backend must make atomic.
    """

    def get(self, key: str) -> Optional[bytes]:
        """Raw entry bytes for ``key``, or ``None`` if absent/unreadable."""
        ...

    def put(self, key: str, data: bytes) -> None:
        """Store ``data`` under ``key`` (atomically: all bytes or none)."""
        ...

    def delete(self, key: str) -> None:
        """Remove the entry for ``key`` (idempotent; absent is fine)."""
        ...

    def iter_keys(self) -> Iterator[str]:
        """Every content key this tier currently holds."""
        ...

    def stat(self, key: str) -> Optional[EntryStat]:
        """Size/mtime of the entry for ``key``, or ``None`` if absent."""
        ...


# --------------------------------------------------------------------- leases


class FileLease:
    """An advisory lock file with acquire / steal-after-stale / release.

    The lease file holds an owner token; creation with ``O_EXCL`` is the
    acquisition.  A lease whose mtime is older than ``steal_after``
    seconds is presumed abandoned (crashed holder) and may be stolen: the
    stealer atomically replaces the file with its own token and confirms
    ownership by reading it back.  Two simultaneous stealers can, in a
    narrow window, both believe they won — acceptable by design, because
    every lease in this package guards *recomputable, content-addressed*
    work: a misjudged steal duplicates effort, it never corrupts state.

    Live holders doing long work should :meth:`refresh` periodically so
    waiting peers do not steal a lease that is merely slow.
    """

    def __init__(self, path: str,
                 steal_after: float = LEASE_STEAL_SECONDS) -> None:
        self.path = os.fspath(path)
        self.steal_after = steal_after
        self.owned = False
        self._token = f"{os.getpid()}:{time.monotonic_ns()}"

    def try_acquire(self) -> bool:
        """One non-blocking acquisition attempt (stealing if stale)."""
        os.makedirs(os.path.dirname(self.path), exist_ok=True)
        try:
            fd = os.open(self.path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            return self._steal_if_stale()
        except OSError:
            return False
        with os.fdopen(fd, "w", encoding="utf-8") as f:
            f.write(self._token)
        self.owned = True
        return True

    def _steal_if_stale(self) -> bool:
        """Replace a stale lease with our token; confirm by read-back."""
        try:
            age = time.time() - os.stat(self.path).st_mtime
        except OSError:
            return False  # vanished mid-check; next try_acquire gets it
        if age <= self.steal_after:
            return False
        tmp = None
        try:
            fd, tmp = tempfile.mkstemp(dir=os.path.dirname(self.path),
                                       suffix=".steal")
            with os.fdopen(fd, "w", encoding="utf-8") as f:
                f.write(self._token)
            os.replace(tmp, self.path)
            tmp = None  # consumed by the replace
            with open(self.path, encoding="utf-8") as f:
                won = f.read() == self._token
        except OSError:
            return False
        finally:
            if tmp is not None:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
        self.owned = won
        return won

    def acquire(self, timeout: float, poll_s: float = 0.02) -> bool:
        """Poll :meth:`try_acquire` for up to ``timeout`` seconds."""
        deadline = time.monotonic() + timeout
        while True:
            if self.try_acquire():
                return True
            if time.monotonic() >= deadline:
                return False
            time.sleep(poll_s)

    def refresh(self) -> None:
        """Re-stamp the lease mtime so waiting peers do not steal it."""
        if self.owned:
            try:
                os.utime(self.path, None)
            except OSError:
                pass

    def release(self) -> None:
        """Give the lease up — only if we still own it (not stolen)."""
        if not self.owned:
            return
        self.owned = False
        try:
            with open(self.path, encoding="utf-8") as f:
                if f.read() != self._token:
                    return  # stolen from us; the new owner keeps the file
            os.unlink(self.path)
        except OSError:
            pass

    def held_by_other(self) -> bool:
        """Whether someone else currently holds a *fresh* lease here."""
        if self.owned:
            return False
        try:
            age = time.time() - os.stat(self.path).st_mtime
        except OSError:
            return False
        return age <= self.steal_after

    def __enter__(self) -> "FileLease":
        """Context-manager entry (the caller has already acquired)."""
        return self

    def __exit__(self, *exc_info: object) -> None:
        """Release on context exit."""
        self.release()


# ----------------------------------------------------------------- local tier


class LocalBackend:
    """The on-disk tier: one JSON file per entry, sharded by key prefix.

    Layout under ``<root>/objects/``:

    * ``<key[:2]>/<key>.json`` — the entry (atomic ``os.replace`` writes);
    * ``<key[:2]>/<key>.last`` — zero-byte LRU sidecar (mtime = last serve);
    * ``<key[:2]>/<key>.lease`` — per-key write/compute lease;
    * ``<root>/gc.lease`` — the store-wide GC lease.

    ``put`` is atomic (temp file + ``os.replace``); ``delete`` and
    sidecar touches are idempotent and best-effort.  Lease and sidecar
    files are bookkeeping, not content: :meth:`total_bytes` counts
    entries, sidecars and abandoned temp files, but never lease files, so
    byte budgets are about results, not coordination overhead.
    """

    def __init__(self, root: str) -> None:
        self.root = os.fspath(root)

    @property
    def objects_dir(self) -> str:
        """The sharded entry directory under the store root."""
        return os.path.join(self.root, "objects")

    def path_for(self, key: str) -> str:
        """The entry file backing one content key."""
        return os.path.join(self.objects_dir, key[:2], f"{key}.json")

    def served_path_for(self, key: str) -> str:
        """The ``last_served`` LRU sidecar of one content key."""
        return os.path.join(self.objects_dir, key[:2], f"{key}.last")

    def lease_path_for(self, key: str) -> str:
        """The per-key lease file of one content key."""
        return os.path.join(self.objects_dir, key[:2], f"{key}.lease")

    # ------------------------------------------------------------- protocol

    def get(self, key: str) -> Optional[bytes]:
        """Raw entry bytes, or ``None`` if absent or unreadable."""
        try:
            with open(self.path_for(key), "rb") as f:
                return f.read()
        except OSError:
            return None

    def put(self, key: str, data: bytes) -> None:
        """Atomically write one entry (temp file + ``os.replace``)."""
        path = self.path_for(key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=os.path.dirname(path),
                                   prefix=f".{key[:8]}-", suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as f:
                f.write(data)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def delete(self, key: str) -> int:
        """Remove one entry and its sidecar; returns the bytes freed."""
        freed = 0
        for path in (self.path_for(key), self.served_path_for(key)):
            try:
                freed += os.stat(path).st_size
                os.unlink(path)
            except OSError:
                pass
        return freed

    def delete_entry(self, key: str) -> bool:
        """Atomically remove one entry file; ``True`` iff *we* removed it.

        Unlike :meth:`delete` this reports whether the unlink actually
        happened here, so two racing deleters cannot both claim success
        (the ``do_DELETE`` handler's honesty guarantee).  The sidecar is
        cleaned up best-effort either way.
        """
        removed = False
        try:
            os.unlink(self.path_for(key))
            removed = True
        except OSError:
            pass
        try:
            os.unlink(self.served_path_for(key))
        except OSError:
            pass
        return removed

    def iter_keys(self) -> Iterator[str]:
        """Every content key currently on disk (unvalidated), sorted."""
        objects = self.objects_dir
        if not os.path.isdir(objects):
            return
        for shard in sorted(os.listdir(objects)):
            shard_dir = os.path.join(objects, shard)
            if not os.path.isdir(shard_dir):
                continue
            for name in sorted(os.listdir(shard_dir)):
                if name.endswith(".json"):
                    yield name[:-len(".json")]

    def stat(self, key: str) -> Optional[EntryStat]:
        """Size and mtime of one entry file, or ``None`` if absent."""
        try:
            st = os.stat(self.path_for(key))
        except OSError:
            return None
        return EntryStat(size=st.st_size, mtime=st.st_mtime)

    # ------------------------------------------------------------ lifecycle

    def touch_served(self, key: str) -> None:
        """Refresh the LRU clock of one entry (best-effort)."""
        sidecar = self.served_path_for(key)
        try:
            with open(sidecar, "a", encoding="utf-8"):
                pass
            os.utime(sidecar, None)
        except OSError:
            pass  # a read-only or racing store never fails a serve

    def last_served(self, key: str) -> Optional[float]:
        """When the entry was last served (sidecar mtime, else entry
        mtime, else ``None`` for a missing entry)."""
        for path in (self.served_path_for(key), self.path_for(key)):
            try:
                return os.stat(path).st_mtime
            except OSError:
                continue
        return None

    def entry_bytes(self, key: str) -> int:
        """On-disk size of one entry plus its sidecar."""
        size = 0
        for path in (self.path_for(key), self.served_path_for(key)):
            try:
                size += os.stat(path).st_size
            except OSError:
                pass
        return size

    def total_bytes(self) -> int:
        """Bytes under ``objects/``: entries, sidecars and temp files.

        Lease files are excluded — they are transient coordination state,
        and byte budgets (``gc --max-bytes``) are contracts about stored
        *results*, not about locks.
        """
        total = 0
        for dirpath, _dirnames, filenames in os.walk(self.objects_dir):
            for name in filenames:
                if name.endswith((".lease", ".steal")):
                    continue
                try:
                    total += os.stat(os.path.join(dirpath, name)).st_size
                except OSError:
                    pass
        return total

    def remove_abandoned(self, grace_s: float) -> int:
        """Delete temp and lease files untouched for ``grace_s`` seconds.

        Young ones are left alone: a concurrent writer may be about to
        ``os.replace`` a temp file into place, and a fresh lease has a
        live holder.
        """
        removed = 0
        cutoff = time.time() - grace_s
        for dirpath, _dirnames, filenames in os.walk(self.objects_dir):
            for name in filenames:
                if not name.endswith((".tmp", ".lease", ".steal")):
                    continue
                path = os.path.join(dirpath, name)
                try:
                    if os.stat(path).st_mtime < cutoff:
                        os.unlink(path)
                        if name.endswith(".tmp"):
                            removed += 1
                except OSError:
                    pass
        return removed

    # --------------------------------------------------------------- leases

    def lease(self, key: str,
              steal_after: float = LEASE_STEAL_SECONDS) -> FileLease:
        """The per-key lease of one content key (not yet acquired)."""
        return FileLease(self.lease_path_for(key), steal_after=steal_after)

    def gc_lease(self,
                 steal_after: float = LEASE_STEAL_SECONDS) -> FileLease:
        """The store-wide lease serializing GC/prune passes."""
        return FileLease(os.path.join(self.root, "gc.lease"),
                         steal_after=steal_after)

    def lease_held(self, key: str,
                   steal_after: float = LEASE_STEAL_SECONDS) -> bool:
        """Whether a fresh per-key lease exists (a live writer/computer)."""
        try:
            age = time.time() - os.stat(self.lease_path_for(key)).st_mtime
        except OSError:
            return False
        return age <= steal_after


# ---------------------------------------------------------------- remote tier


class HTTPBackend:
    """A remote sweep-store tier spoken over plain HTTP (stdlib only).

    Endpoints (served by :class:`StoreServer`):

    * ``GET /objects/<key>.json`` — entry bytes (404 when absent);
    * ``HEAD /objects/<key>.json`` — existence/size probe;
    * ``PUT /objects/<key>.json`` — publish one entry (``repro store
      push``); the server sanity-checks that the body's embedded key
      matches the path;
    * ``DELETE /objects/<key>.json`` — drop one entry;
    * ``GET /keys`` — JSON list of every key the server holds.

    :meth:`get` and :meth:`stat` are *read-through safe*: any transport
    trouble — connection refused, DNS failure, timeout, a response body
    shorter than its ``Content-Length`` — returns ``None``, so the
    calling store records a miss and re-simulates.  A transport-level
    failure also marks the remote *down*: reads within the down window
    return ``None`` immediately, so an unreachable server costs one
    timeout per window, not one per grid cell.  The window is governed by
    the unified :class:`~repro.scenarios.retry.RetryPolicy` (``retry``),
    not a flat constant: consecutive failures escalate it exponentially
    (with deterministic seeded jitter, keyed by the base URL so replicas
    de-synchronize), and any success resets the streak — a briefly-flaky
    remote recovers on the next read while a dead one is probed
    geometrically less often.  ``backoff_s`` seeds the policy's base
    delay for back-compatibility.  (An HTTP error status is a *reachable*
    server answering — 404 is an ordinary miss — and never touches the
    backoff.)  **Any** successful exchange — reads *and* explicit
    transfers — resets the streak and clears the down window, so a
    remote that answers a ``push`` is immediately readable again.
    Explicit transfers (:meth:`put`, :meth:`delete`, :meth:`iter_keys`)
    raise :class:`BackendError` instead of degrading: ``push``/``pull``
    must fail loudly, not publish silence.

    ``auth_token`` (``--auth-token``) is sent as a ``Bearer`` token on
    every request; servers run in admin mode require it on
    ``PUT``/``DELETE``.  ``journal`` counts every exchange by verb plus
    ``entry_bodies`` (bodies actually transferred) and
    ``fetch_not_modified`` (304s) — how the delta-sync tests prove an
    already-synced hub moves zero bytes.
    """

    def __init__(self, base_url: str, timeout_s: float = 5.0,
                 backoff_s: float = 30.0,
                 retry: Optional[RetryPolicy] = None,
                 auth_token: Optional[str] = None) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout_s = timeout_s
        self.backoff_s = backoff_s
        self.auth_token = auth_token
        if retry is None:
            retry = RetryPolicy(max_attempts=6, base_delay_s=backoff_s,
                                multiplier=2.0, max_delay_s=backoff_s * 16,
                                jitter=0.1,
                                seed=stable_hash(self.base_url))
        self.retry = retry
        self._backoff = BackoffState(policy=retry)
        self._down_until = 0.0
        #: per-verb exchange counters (see class docstring)
        self.journal: "collections.Counter[str]" = collections.Counter()

    def _reachable(self) -> bool:
        """Whether the down-backoff window allows a network attempt."""
        return time.time() >= self._down_until

    def _mark_down(self) -> None:
        """Escalate the down window along the retry policy's schedule."""
        self._backoff, window = self._backoff.after_failure()
        self._down_until = time.time() + window

    def _mark_up(self) -> None:
        """The remote answered: reset the streak AND clear the window.

        Clearing ``_down_until`` matters as much as resetting the streak —
        a successful explicit transfer (``put``/``delete``/``fetch``/
        ``iter_keys``) inside a down window proves the remote is back, and
        leaving the window armed would keep ``get``/``stat`` blind for its
        remainder.
        """
        self._backoff = self._backoff.after_success()
        self._down_until = 0.0

    def _request(self, url: str, method: str, data: Optional[bytes] = None,
                 headers: Optional[Dict[str, str]] = None
                 ) -> urllib.request.Request:
        """One outbound request, with the auth token attached if set."""
        req = urllib.request.Request(url, data=data, method=method)
        if self.auth_token:
            req.add_header("Authorization", f"Bearer {self.auth_token}")
        for name, value in (headers or {}).items():
            req.add_header(name, value)
        return req

    def url_for(self, key: str) -> str:
        """The entry URL of one content key."""
        if not KEY_RE.match(key):
            raise BackendError(f"malformed content key {key!r}")
        return f"{self.base_url}/objects/{key}.json"

    def get(self, key: str) -> Optional[bytes]:
        """Entry bytes from the remote, or ``None`` on any trouble."""
        if not self._reachable():
            return None
        self.journal["get"] += 1
        try:
            req = self._request(self.url_for(key), "GET")
            with urllib.request.urlopen(req, timeout=self.timeout_s) as resp:
                data = resp.read()
            self._mark_up()  # reachable: the failure streak resets
            self.journal["entry_bodies"] += 1
            return data
        except BackendError:
            raise  # a malformed key is a caller bug, not a remote flake
        except urllib.error.HTTPError:
            self._mark_up()  # a reachable server saying no: ordinary miss
            return None
        except Exception:
            self._mark_down()  # transport trouble: back off for a while
            return None  # unreachable/timeout/truncation: a miss, never a crash

    def fetch(self, key: str, etag: Optional[str] = None):
        """Entry bytes for an *explicit* transfer: loud, unlike :meth:`get`.

        Returns ``None`` only when a reachable server answers 404 (the
        entry vanished between listing and fetching); any transport
        trouble raises :class:`BackendError`, so ``repro store pull``
        cannot silently misreport a dead server as a pile of rejected
        entries.  With ``etag`` (from :func:`entry_etag` over bytes the
        caller already holds) the request is conditional: a 304 answer
        returns the :data:`NOT_MODIFIED` sentinel without moving a body.
        """
        self.journal["fetch"] += 1
        headers = {"If-None-Match": f'"{etag}"'} if etag else None
        try:
            req = self._request(self.url_for(key), "GET", headers=headers)
            with urllib.request.urlopen(req, timeout=self.timeout_s) as resp:
                data = resp.read()
            self._mark_up()
            self.journal["entry_bodies"] += 1
            return data
        except urllib.error.HTTPError as exc:
            if exc.code == 304:
                self._mark_up()
                self.journal["fetch_not_modified"] += 1
                return NOT_MODIFIED
            if exc.code == 404:
                self._mark_up()
                return None
            raise BackendError(
                f"cannot fetch {key} from {self.base_url}: {exc}"
            ) from None
        except BackendError:
            raise
        except Exception as exc:
            raise BackendError(
                f"cannot fetch {key} from {self.base_url}: {exc}"
            ) from None

    def put(self, key: str, data: bytes) -> None:
        """Publish one entry to the remote (raises on any failure)."""
        self.journal["put"] += 1
        req = self._request(self.url_for(key), "PUT", data=data)
        try:
            with urllib.request.urlopen(req, timeout=self.timeout_s):
                pass
        except urllib.error.HTTPError as exc:
            self._mark_up()  # a refusal is still a live remote
            raise BackendError(
                f"cannot publish {key} to {self.base_url}: {exc}"
            ) from None
        except Exception as exc:
            self._mark_down()
            raise BackendError(
                f"cannot publish {key} to {self.base_url}: {exc}"
            ) from None
        self._mark_up()
        self.journal["entry_bodies"] += 1

    def delete(self, key: str) -> None:
        """Drop one remote entry (raises on any failure but 404)."""
        self.journal["delete"] += 1
        req = self._request(self.url_for(key), "DELETE")
        try:
            with urllib.request.urlopen(req, timeout=self.timeout_s):
                pass
        except urllib.error.HTTPError as exc:
            self._mark_up()
            if exc.code != 404:
                raise BackendError(
                    f"cannot delete {key} from {self.base_url}: {exc}"
                ) from None
            return
        except Exception as exc:
            self._mark_down()
            raise BackendError(
                f"cannot delete {key} from {self.base_url}: {exc}"
            ) from None
        self._mark_up()

    def iter_keys(self) -> Iterator[str]:
        """Every key the remote holds (raises if it cannot be listed)."""
        self.journal["iter_keys"] += 1
        try:
            req = self._request(f"{self.base_url}/keys", "GET")
            with urllib.request.urlopen(req, timeout=self.timeout_s) as resp:
                keys = json.loads(resp.read().decode("utf-8"))
        except urllib.error.HTTPError as exc:
            self._mark_up()
            raise BackendError(
                f"cannot list keys of {self.base_url}: {exc}"
            ) from None
        except Exception as exc:
            self._mark_down()
            raise BackendError(
                f"cannot list keys of {self.base_url}: {exc}"
            ) from None
        self._mark_up()
        if not isinstance(keys, list):
            raise BackendError(f"{self.base_url}/keys did not return a list")
        return iter([k for k in keys if isinstance(k, str)
                     and KEY_RE.match(k)])

    def iter_keys_since(self, since: float
                        ) -> Optional[Tuple[List[str], float]]:
        """Delta key listing: keys changed at-or-after ``since``.

        Returns ``(keys, clock)`` where ``clock`` is the server's current
        sync clock (pass it back as the next ``since``), or ``None`` when
        the server predates delta listings (callers fall back to the full
        :meth:`iter_keys`).  Raises :class:`BackendError` on transport
        trouble or a malformed answer, like every explicit transfer.
        The boundary is inclusive — a key stamped exactly at ``since`` is
        re-listed — so the clock can never skip an entry written in the
        same instant the previous scan ended.
        """
        self.journal["iter_keys_since"] += 1
        url = (f"{self.base_url}/keys?"
               + urllib.parse.urlencode({"since": repr(float(since))}))
        try:
            req = self._request(url, "GET")
            with urllib.request.urlopen(req, timeout=self.timeout_s) as resp:
                payload = json.loads(resp.read().decode("utf-8"))
        except urllib.error.HTTPError as exc:
            self._mark_up()
            if exc.code == 404:
                return None  # a pre-delta server: callers list in full
            raise BackendError(
                f"cannot list key delta of {self.base_url}: {exc}"
            ) from None
        except Exception as exc:
            self._mark_down()
            raise BackendError(
                f"cannot list key delta of {self.base_url}: {exc}"
            ) from None
        self._mark_up()
        if (not isinstance(payload, dict)
                or not isinstance(payload.get("keys"), list)
                or not isinstance(payload.get("clock"), (int, float))):
            raise BackendError(
                f"{self.base_url}/keys?since= returned a malformed delta")
        keys = [k for k in payload["keys"]
                if isinstance(k, str) and KEY_RE.match(k)]
        return keys, float(payload["clock"])

    def stat(self, key: str) -> Optional[EntryStat]:
        """Remote entry size via ``HEAD``, or ``None`` on any trouble.

        A reachable server whose answer lacks a parseable non-negative
        ``Content-Length`` is treated as a miss — fabricating
        ``size=0`` would silently corrupt remote byte accounting — and
        ``mtime`` is left unset (HTTP does not report it).
        """
        if not self._reachable():
            return None
        self.journal["stat"] += 1
        try:
            req = self._request(self.url_for(key), "HEAD")
            with urllib.request.urlopen(req, timeout=self.timeout_s) as resp:
                raw = resp.headers.get("Content-Length")
        except BackendError:
            raise
        except urllib.error.HTTPError:
            self._mark_up()
            return None
        except Exception:
            self._mark_down()
            return None
        self._mark_up()
        try:
            size = int(raw) if raw is not None else -1
        except ValueError:
            return None
        if size < 0:
            return None
        return EntryStat(size=size)

    def stats(self) -> Dict[str, object]:
        """The server's ``GET /stats`` operability payload (loud)."""
        self.journal["stats"] += 1
        try:
            req = self._request(f"{self.base_url}/stats", "GET")
            with urllib.request.urlopen(req, timeout=self.timeout_s) as resp:
                payload = json.loads(resp.read().decode("utf-8"))
        except urllib.error.HTTPError as exc:
            self._mark_up()
            raise BackendError(
                f"cannot read stats of {self.base_url}: {exc}"
            ) from None
        except Exception as exc:
            self._mark_down()
            raise BackendError(
                f"cannot read stats of {self.base_url}: {exc}"
            ) from None
        self._mark_up()
        if not isinstance(payload, dict):
            raise BackendError(f"{self.base_url}/stats did not return a dict")
        return payload

    # ------------------------------------------------------ lease plane

    def lease_request(self, key: str, verb: str,
                      token: Optional[str] = None
                      ) -> Tuple[str, Optional[str]]:
        """One lease verb against the coordination plane.

        Returns ``(status, token)`` where status is one of ``"granted"``
        (claim won; token carried), ``"denied"`` (a live holder exists, or
        the token check failed), ``"ok"`` (refresh/release accepted) or
        ``"unavailable"`` (unreachable, read-only, or a server predating
        the lease endpoints).  Never raises: lease coordination is an
        optimization, and its failure mode is duplicated work, not a
        stuck sweep.
        """
        if not KEY_RE.match(key):
            return "unavailable", None
        if not self._reachable():
            return "unavailable", None
        self.journal[f"lease_{verb}"] += 1
        body = json.dumps({"verb": verb, "token": token}).encode("utf-8")
        try:
            req = self._request(f"{self.base_url}/leases/{key}", "POST",
                                data=body,
                                headers={"Content-Type": "application/json"})
            with urllib.request.urlopen(req, timeout=self.timeout_s) as resp:
                payload = json.loads(resp.read().decode("utf-8"))
        except urllib.error.HTTPError as exc:
            self._mark_up()
            if exc.code == 409:
                return "denied", None
            return "unavailable", None  # 404/403/501: no lease plane here
        except Exception:
            self._mark_down()
            return "unavailable", None
        self._mark_up()
        if verb == "claim":
            granted = isinstance(payload, dict) and payload.get("granted")
            token = payload.get("token") if isinstance(payload, dict) else None
            if granted and isinstance(token, str):
                return "granted", token
            return "denied", None
        return "ok", None

    def lease(self, key: str) -> "RemoteLease":
        """The server-held compute lease of one key (not yet claimed)."""
        return RemoteLease(self, key)


class RemoteLease:
    """A server-held per-key compute claim on the coordination plane.

    Mirrors :class:`FileLease` semantics over HTTP: ``claim`` is the
    O_EXCL-equivalent acquisition (the server grants exactly one token
    per key at a time), a claim untouched past the server's steal window
    may be stolen, ``refresh`` re-stamps it, and ``release`` is
    token-checked so a stolen claim cannot be released by its old owner.

    The remote layer **fails open**: when the hub is unreachable,
    read-only, or predates the lease endpoints, :meth:`try_acquire`
    reports failure with ``unavailable=True`` and callers (see
    :class:`ComputeLease`) degrade to local-only coordination — the
    worst case is duplicated work across hosts, never a stuck sweep.
    """

    def __init__(self, backend: HTTPBackend, key: str) -> None:
        self.backend = backend
        self.key = key
        self.owned = False
        #: the last acquisition attempt could not reach a lease plane
        self.unavailable = False
        self._token: Optional[str] = None

    def try_acquire(self) -> bool:
        """One non-blocking claim attempt against the server."""
        status, token = self.backend.lease_request(self.key, "claim")
        if status == "granted":
            self.owned = True
            self.unavailable = False
            self._token = token
            return True
        self.owned = False
        self.unavailable = status != "denied"
        return False

    def refresh(self) -> None:
        """Re-stamp the claim so waiting hosts do not steal it.

        A 409 means the claim was stolen (our token no longer matches);
        we drop ownership and keep computing — both holders will publish
        byte-identical, content-addressed results.  Transport trouble is
        ignored: refresh is best-effort liveness signalling.
        """
        if not self.owned:
            return
        status, _ = self.backend.lease_request(self.key, "refresh",
                                               self._token)
        if status == "denied":
            self.owned = False

    def release(self) -> None:
        """Give the claim up — token-checked, best-effort, idempotent."""
        if not self.owned:
            return
        self.owned = False
        self.backend.lease_request(self.key, "release", self._token)

    def __enter__(self) -> "RemoteLease":
        """Context-manager entry (the caller has already claimed)."""
        return self

    def __exit__(self, *exc_info: object) -> None:
        """Release on context exit."""
        self.release()


class ComputeLease:
    """One cell's compute claim across tiers: local file + remote server.

    Acquisition is local-first: the :class:`FileLease` dedupes sweeps
    sharing a filesystem exactly as before, and only a locally-won claim
    is escalated to the hub's lease plane.  A remote *denial* (another
    host is computing this cell) releases the local lease and reports
    failure, so the cell is deferred and later served from the hub; a
    remote that is merely *unavailable* keeps the locally-won claim —
    cross-host coordination fails open to the PR-5 single-host
    behaviour.  ``remote_owned`` tells :func:`~repro.scenarios.batch`
    whether the computed entry should be published to the hub at record
    time (the exactly-once handshake: publish precedes release).
    """

    def __init__(self, local: FileLease,
                 remote: Optional[RemoteLease] = None) -> None:
        self.local = local
        self.remote = remote

    @property
    def owned(self) -> bool:
        """Whether the local tier's claim is held (gates store writes)."""
        return self.local.owned

    @property
    def remote_owned(self) -> bool:
        """Whether the hub granted this cell's cross-host claim."""
        return self.remote is not None and self.remote.owned

    def try_acquire(self) -> bool:
        """Claim locally, then escalate to the hub; fail open if it's gone."""
        if not self.local.try_acquire():
            return False
        if self.remote is not None:
            if not self.remote.try_acquire() and not self.remote.unavailable:
                self.local.release()  # another host is computing this cell
                return False
        return True

    def refresh(self) -> None:
        """Re-stamp both tiers' claims (best-effort)."""
        self.local.refresh()
        if self.remote is not None:
            self.remote.refresh()

    def release(self) -> None:
        """Release the remote claim first, then the local lease."""
        if self.remote is not None:
            self.remote.release()
        self.local.release()

    def __enter__(self) -> "ComputeLease":
        """Context-manager entry (the caller has already acquired)."""
        return self

    def __exit__(self, *exc_info: object) -> None:
        """Release on context exit."""
        self.release()


class _LeaseTable:
    """Server-held per-key compute leases (the coordination plane).

    The in-memory mirror of :class:`FileLease`: claiming an unheld (or
    stale) key atomically installs a fresh random token under one lock —
    the O_EXCL equivalent — and refresh/release are token-checked with a
    constant-time compare.  State is deliberately ephemeral: a hub
    restart forgets every claim, which merely lets hosts re-claim work
    already in flight — duplicated effort, never a wrong result.
    """

    def __init__(self, steal_after: float = LEASE_STEAL_SECONDS) -> None:
        self.steal_after = steal_after
        self._lock = threading.Lock()
        #: key -> (token, last-refresh timestamp)
        self._held: Dict[str, Tuple[str, float]] = {}
        self.claims = 0
        self.steals = 0

    def _matches(self, current: Tuple[str, float],
                 token: Optional[str]) -> bool:
        return (isinstance(token, str)
                and hmac.compare_digest(current[0], token))

    def claim(self, key: str) -> Optional[str]:
        """Claim ``key``: a fresh token, or ``None`` if a live holder exists."""
        now = time.time()
        with self._lock:
            current = self._held.get(key)
            if current is not None and now - current[1] <= self.steal_after:
                return None
            token = secrets.token_hex(16)
            if current is not None:
                self.steals += 1  # stale holder: stolen, like FileLease
            self._held[key] = (token, now)
            self.claims += 1
            return token

    def refresh(self, key: str, token: Optional[str]) -> bool:
        """Re-stamp a held claim; ``False`` if it was stolen or released."""
        with self._lock:
            current = self._held.get(key)
            if current is None or not self._matches(current, token):
                return False
            self._held[key] = (current[0], time.time())
            return True

    def release(self, key: str, token: Optional[str]) -> bool:
        """Drop a held claim; ``False`` if it was stolen or already gone."""
        with self._lock:
            current = self._held.get(key)
            if current is None or not self._matches(current, token):
                return False
            del self._held[key]
            return True

    def backdate(self, key: str, age_s: float) -> None:
        """Age a claim's refresh stamp (test hook for steal-after-stale)."""
        with self._lock:
            current = self._held.get(key)
            if current is not None:
                self._held[key] = (current[0], time.time() - age_s)

    def __len__(self) -> int:
        """How many *live* (unexpired) claims are currently held."""
        now = time.time()
        with self._lock:
            return sum(1 for _token, stamp in self._held.values()
                       if now - stamp <= self.steal_after)


class _StoreHTTPHandler(BaseHTTPRequestHandler):
    """Request handler bridging the HTTP surface onto a LocalBackend."""

    # set by StoreServer on the subclass it builds per server instance
    backend: LocalBackend
    read_only: bool = False
    auth_token: Optional[str] = None
    leases: _LeaseTable
    started_at: float = 0.0
    server_version = "repro-store/1"

    def log_message(self, format: str, *args: object) -> None:  # noqa: A002
        """Silence per-request stderr logging (the CLI prints a summary)."""

    def _key_from_path(self, path: Optional[str] = None) -> Optional[str]:
        match = re.match(r"^/objects/([0-9a-f]{32})\.json$",
                         self.path if path is None else path)
        return match.group(1) if match else None

    def _send(self, code: int, body: bytes = b"",
              content_type: str = "application/json",
              etag: Optional[str] = None) -> None:
        self.send_response(code)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        if etag is not None:
            self.send_header("ETag", f'"{etag}"')
        self.end_headers()
        if self.command != "HEAD":
            self.wfile.write(body)

    def _authorized(self) -> bool:
        """Whether this request may mutate an admin-mode (token'd) store."""
        return bearer_authorized(self.headers, self.auth_token)

    def _read_body(self, cap: int = MAX_BODY_BYTES) -> Optional[bytes]:
        """The request body via the shared :func:`read_framed_body`.

        Sends the error response itself and returns ``None`` when the
        declared ``Content-Length`` is missing/unparseable/negative
        (400), exceeds ``cap`` (413, refused before reading a byte), or
        the client died mid-upload leaving fewer bytes than declared
        (400) — a short read must never be stored as a whole entry.
        """
        data, _status = read_framed_body(self, cap=cap)
        return data

    def _keys_since(self, since: float) -> Tuple[List[str], float]:
        """Keys stamped at-or-after ``since``, plus the new sync clock.

        The clock is the maximum entry mtime seen (never regressing below
        ``since``); the inclusive boundary over-reports ties rather than
        ever skipping an entry written in the scan's final instant.
        """
        keys: List[str] = []
        clock = since
        for key in self.backend.iter_keys():
            st = self.backend.stat(key)
            if st is None or st.mtime is None:
                continue
            clock = max(clock, st.mtime)
            if st.mtime >= since:
                keys.append(key)
        return keys, clock

    def do_GET(self) -> None:
        """Serve ``/keys[?since=]``, ``/stats`` or one entry; else 404."""
        parsed = urllib.parse.urlsplit(self.path)
        if parsed.path == "/keys":
            query = urllib.parse.parse_qs(parsed.query)
            if "since" in query:
                try:
                    since = float(query["since"][0])
                except ValueError:
                    self._send(400, b'{"error": "bad since clock"}')
                    return
                keys, clock = self._keys_since(since)
                body = json.dumps({"keys": keys, "clock": clock}).encode()
                self._send(200, body)
                return
            body = json.dumps(sorted(self.backend.iter_keys())).encode()
            self._send(200, body)
            return
        if parsed.path == "/stats":
            keys = list(self.backend.iter_keys())
            body = json.dumps({
                "entries": len(keys),
                "bytes": self.backend.total_bytes(),
                "leases": len(self.leases),
                "lease_claims": self.leases.claims,
                "lease_steals": self.leases.steals,
                "uptime_s": max(0.0, time.time() - self.started_at),
                "read_only": self.read_only,
                "auth_required": bool(self.auth_token),
            }).encode()
            self._send(200, body)
            return
        key = self._key_from_path(parsed.path)
        data = self.backend.get(key) if key else None
        if data is None:
            self._send(404, b'{"error": "no such entry"}')
            return
        etag = entry_etag(data)
        wanted = (self.headers.get("If-None-Match") or "").strip().strip('"')
        if wanted and wanted == etag:
            self._send(304, etag=etag)
            return
        self._send(200, data, etag=etag)

    def do_HEAD(self) -> None:
        """Existence/size probe of one entry."""
        key = self._key_from_path()
        stat = self.backend.stat(key) if key else None
        if stat is None:
            self._send(404)
        else:
            self.send_response(200)
            self.send_header("Content-Length", str(stat.size))
            self.end_headers()

    def do_POST(self) -> None:
        """Lease verbs: claim / refresh / release one key's compute claim."""
        match = re.match(r"^/leases/([0-9a-f]{32})$", self.path)
        if not match:
            self._send(404, b'{"error": "no such endpoint"}')
            return
        if self.read_only:
            self._send(403, b'{"error": "read-only store"}')
            return
        data = self._read_body(cap=4096)
        if data is None:
            return
        try:
            payload = json.loads(data.decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            payload = None
        if not isinstance(payload, dict):
            self._send(400, b'{"error": "lease body is not JSON"}')
            return
        key = match.group(1)
        verb = payload.get("verb")
        token = payload.get("token")
        if verb == "claim":
            granted = self.leases.claim(key)
            if granted is None:
                self._send(409, b'{"granted": false}')
            else:
                body = json.dumps({"granted": True,
                                   "token": granted}).encode()
                self._send(200, body)
        elif verb == "refresh":
            if self.leases.refresh(key, token):
                self._send(200, b'{"refreshed": true}')
            else:
                self._send(409, b'{"refreshed": false}')
        elif verb == "release":
            if self.leases.release(key, token):
                self._send(200, b'{"released": true}')
            else:
                self._send(409, b'{"released": false}')
        else:
            self._send(400, b'{"error": "unknown lease verb"}')

    def do_PUT(self) -> None:
        """Accept one pushed entry after a minimal embedded-key check."""
        if self.read_only:
            self._send(403, b'{"error": "read-only store"}')
            return
        if not self._authorized():
            self._send(401, b'{"error": "missing or wrong auth token"}')
            return
        key = self._key_from_path()
        if key is None:
            self._send(404, b'{"error": "bad entry path"}')
            return
        data = self._read_body()
        if data is None:
            return
        try:
            payload = json.loads(data.decode("utf-8"))
            embedded = payload.get("key") if isinstance(payload, dict) \
                else None
        except (ValueError, UnicodeDecodeError):
            self._send(400, b'{"error": "entry body is not JSON"}')
            return
        if embedded != key:
            self._send(400, b'{"error": "embedded key does not match path"}')
            return
        self.backend.put(key, data)
        self._send(201, b'{"stored": true}')

    def do_DELETE(self) -> None:
        """Drop one entry (404 when absent — honestly, under races).

        The unlink itself is the existence check: of two concurrent
        deletes, exactly one sees 200 and the other 404, with no
        stat-then-delete window in which both could claim success.
        """
        if self.read_only:
            self._send(403, b'{"error": "read-only store"}')
            return
        if not self._authorized():
            self._send(401, b'{"error": "missing or wrong auth token"}')
            return
        key = self._key_from_path()
        if key is None or not self.backend.delete_entry(key):
            self._send(404, b'{"error": "no such entry"}')
            return
        self._send(200, b'{"deleted": true}')


class StoreServer:
    """Publish one local sweep store over HTTP (``repro store serve``).

    A thin wrapper around :class:`http.server.ThreadingHTTPServer`: pass
    a store root, a bind address and a port (``0`` picks a free one), and
    either :meth:`serve` in the foreground — optionally for a bounded
    ``duration`` — or :meth:`start` a daemon thread and :meth:`shutdown`
    later (what the tests do).  The server performs only a minimal
    embedded-key sanity check on pushed entries; *clients* re-verify
    key/salt/checksum on every read, so a compromised or skewed server
    can cost misses, never wrong values.

    Beyond the byte surface the server is the cross-host coordination
    plane: :attr:`leases` holds the per-key compute claims behind ``POST
    /leases/<key>`` (steal window ``lease_steal_after``), ``GET /stats``
    reports entries/bytes/leases/uptime, and ``auth_token`` switches on
    admin mode — ``PUT``/``DELETE`` then require the matching ``Bearer``
    token (constant-time compare); reads and leases stay open.
    """

    def __init__(self, root: str, host: str = "127.0.0.1", port: int = 0,
                 read_only: bool = False,
                 auth_token: Optional[str] = None,
                 lease_steal_after: float = LEASE_STEAL_SECONDS) -> None:
        backend = LocalBackend(root)
        self.leases = _LeaseTable(steal_after=lease_steal_after)
        handler = type("_BoundStoreHTTPHandler", (_StoreHTTPHandler,),
                       {"backend": backend, "read_only": read_only,
                        "auth_token": auth_token, "leases": self.leases,
                        "started_at": time.time()})
        try:
            self._server = ThreadingHTTPServer((host, port), handler)
        except OSError as exc:
            raise BackendError(
                f"cannot bind store server to {host}:{port}: {exc}"
            ) from None
        self._thread: Optional[threading.Thread] = None

    @property
    def host(self) -> str:
        """The bound host address."""
        return self._server.server_address[0]

    @property
    def port(self) -> int:
        """The bound port (useful with ``port=0``)."""
        return self._server.server_address[1]

    @property
    def url(self) -> str:
        """The base URL clients pass as ``--remote``."""
        return f"http://{self.host}:{self.port}"

    def serve(self, duration_s: Optional[float] = None) -> None:
        """Serve in the foreground, forever or for ``duration_s`` seconds."""
        if duration_s is not None:
            timer = threading.Timer(duration_s, self._server.shutdown)
            timer.daemon = True
            timer.start()
        try:
            self._server.serve_forever(poll_interval=0.05)
        finally:
            self._server.server_close()

    def start(self) -> "StoreServer":
        """Serve on a daemon thread; returns self for chaining."""
        self._thread = threading.Thread(target=self._server.serve_forever,
                                        kwargs={"poll_interval": 0.05},
                                        daemon=True)
        self._thread.start()
        return self

    def shutdown(self) -> None:
        """Stop a :meth:`start`-ed server and release its socket."""
        self._server.shutdown()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        self._server.server_close()

    def __enter__(self) -> "StoreServer":
        """Start serving on entry to a ``with`` block."""
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        """Shut the server down on exit."""
        self.shutdown()
