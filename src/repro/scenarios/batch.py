"""Multiprocess batch execution of scenario grids over a result store.

The fork-based :meth:`WhatIfSession.sweep` parallelizes *predictions of one
workload*; large scenario catalogs also need the *profiling* fanned out and
finished cells remembered.  :func:`run_batch` is that substrate:

* cells already in the :class:`~repro.scenarios.store.SweepStore` are
  skipped up front (resume is the default behaviour of handing in a store);
* the remaining cells are partitioned **by workload** — scenarios sharing a
  (model, batch size, training config) land in the same chunks, and each
  worker process keeps one :class:`~repro.scenarios.runner.ScenarioRunner`
  alive across chunks, so a workload is profiled at most once per worker;
* chunks run on a ``ProcessPoolExecutor`` under either start method:
  **fork** (runners, custom registries and runtime-registered models are
  inherited, never pickled) or **spawn** (each worker rebuilds its runner
  from a pickled :class:`WorkerManifest` — Windows workers, where fork
  does not exist, and macOS workers, where forking a threaded parent is
  unsafe, run the same sweeps);
* results stream back in completion order — the parent persists each cell
  to the store the moment its chunk finishes (a killed sweep resumes from
  the last completed chunk) and reports progress — while the returned rows
  keep input order.  **All store I/O stays in the parent**: workers only
  ever return plain numbers, so store stats, byte caps and leases see
  every write;
* each missing cell is *claimed* through a per-key
  :class:`~repro.scenarios.backends.FileLease` before it is computed, so
  two concurrent sweeps over one store dedupe identical cells: the sweep
  that loses the claim defers the cell, serves the winner's entry the
  moment it lands, and inherits the computation only if the winner's
  lease goes stale (a crash) without producing one.

Because the simulator and the keyed PRNG are deterministic, pool results
are bit-identical to a serial run under *either* start method;
``tests/test_sweep_determinism.py`` pins serial / fork-sweep / process-pool
/ spawn-pool / cached / remote-warm rows against each other.

"""

import math
import multiprocessing
import pickle
import sys
import threading
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.analysis.parallel import default_processes
from repro.common.errors import ConfigError
from repro.models.base import ModelSpec
from repro.models.registry import register_model, runtime_registered_models
from repro.scenarios.backends import FileLease
from repro.scenarios.registry import (
    DEFAULT_REGISTRY,
    OptimizationRegistry,
    OptimizationSpec,
)
from repro.scenarios.scenario import (
    Scenario,
    register_schedule_policy,
    runtime_schedule_policies,
)
from repro.scenarios.store import SweepStore, scenario_key

#: how often a deferred cell re-checks the store while another sweep's
#: lease holder is computing it
DEDUPE_POLL_SECONDS = 0.05

#: one unit of worker work: (cell index, scenario dict)
_Cell = Tuple[int, Dict[str, object]]

#: start methods run_batch accepts (``None`` = pick automatically)
START_METHODS = ("fork", "spawn", "serial")

#: fork-inherited state (set in the parent immediately before the pool
#: forks, cleared after; never pickled)
_FORK_REGISTRY: Optional[OptimizationRegistry] = None

#: spawn-delivered state (pickled into each worker by the pool initializer)
_WORKER_MANIFEST: Optional["WorkerManifest"] = None

#: per-worker-process runner, built lazily and kept across chunks so every
#: workload is profiled at most once per worker
_WORKER_RUNNER = None


@dataclass(frozen=True)
class WorkerManifest:
    """Everything a fresh interpreter needs to run this parent's scenarios.

    A ``fork`` worker inherits runtime state — models added through
    :func:`~repro.models.registry.register_model`, optimization specs
    registered after import, whole custom registries — for free.  A
    ``spawn`` worker starts from a clean interpreter, so that state must
    be captured here, pickled across, and replayed by :meth:`restore`.

    Attributes:
        fingerprint: the parent registry's
            :meth:`~repro.scenarios.registry.OptimizationRegistry.fingerprint`;
            :meth:`restore` verifies the rebuilt registry matches, so a
            parent/worker version skew fails loudly instead of silently
            keying results differently.
        default_registry: whether the parent used the shared
            :data:`~repro.scenarios.registry.DEFAULT_REGISTRY` (the worker
            then starts from its own import-time copy) or a custom
            registry (the worker rebuilds one from ``specs`` alone).
        specs: optimization specs the worker must register — the runtime
            additions for the default registry, every spec for a custom one.
        models: runtime-registered (name, builder) model entries.
        schedule_policies: runtime-registered (name, factory) entries of
            :data:`~repro.scenarios.scenario.NAMED_SCHEDULE_POLICIES` —
            scenarios declaring a runtime-registered ``schedule_policy``
            would otherwise fail validation in a fresh spawn interpreter.

    Builders and spec factories must be *importable* module-level
    callables: pickling carries only their qualified names, and the worker
    re-imports them.  Closures and lambdas cannot cross a spawn boundary —
    :func:`run_batch` detects that up front and says so.
    """

    fingerprint: str
    default_registry: bool = True
    specs: Tuple[OptimizationSpec, ...] = ()
    models: Tuple[Tuple[str, Callable[..., ModelSpec]], ...] = ()
    schedule_policies: Tuple[Tuple[str, Callable[[], object]], ...] = ()

    @classmethod
    def capture(cls, registry: Optional[OptimizationRegistry] = None,
                model_names: Optional[Sequence[str]] = None,
                policy_names: Optional[Sequence[str]] = None
                ) -> "WorkerManifest":
        """Snapshot the current process's runtime registrations.

        ``model_names`` limits the carried model builders to the ones a
        grid actually references (case-insensitive), and ``policy_names``
        does the same for runtime-registered schedule policies, so an
        unrelated — possibly unpicklable — registration elsewhere in the
        process never blocks a spawn sweep that does not use it.
        """
        registry = registry or DEFAULT_REGISTRY
        models = runtime_registered_models()
        if model_names is not None:
            wanted = {str(name).lower() for name in model_names}
            models = {name: builder for name, builder in models.items()
                      if name in wanted}
        policies = runtime_schedule_policies()
        if policy_names is not None:
            wanted_policies = {str(name) for name in policy_names}
            policies = {name: factory for name, factory in policies.items()
                        if name in wanted_policies}
        return cls(
            fingerprint=registry.fingerprint(),
            default_registry=registry is DEFAULT_REGISTRY,
            specs=tuple(registry.runtime_specs()),
            models=tuple(sorted(models.items())),
            schedule_policies=tuple(sorted(policies.items())),
        )

    def restore(self) -> OptimizationRegistry:
        """Replay the captured state in this interpreter.

        Registers the carried model builders and schedule policies,
        rebuilds the optimization registry (on top of the local default
        registry, or from scratch for a custom one), and verifies its
        fingerprint against the parent's before anything runs under
        mismatched keys.
        """
        for name, builder in self.models:
            register_model(name, builder, overwrite=True)
        for name, factory in self.schedule_policies:
            register_schedule_policy(name, factory, overwrite=True)
        if self.default_registry:
            registry = DEFAULT_REGISTRY
        else:
            registry = OptimizationRegistry()
        for spec in self.specs:
            if spec.key not in registry:
                registry.register(spec)
        if registry.fingerprint() != self.fingerprint:
            raise ConfigError(
                "worker registry fingerprint does not match the parent's; "
                "the worker interpreter resolves optimizations differently "
                "(version skew between parent and worker environments?)"
            )
        return registry

    def dumps(self) -> bytes:
        """Pickle this manifest, diagnosing unpicklable registrations."""
        try:
            return pickle.dumps(self)
        except Exception as exc:
            raise ConfigError(
                "cannot pickle the worker manifest for spawn workers: "
                f"{exc}.  Model builders and optimization factories must "
                "be importable module-level callables (not closures or "
                "lambdas) to cross a spawn boundary; use the fork start "
                "method for unpicklable registrations."
            ) from None


@dataclass(frozen=True)
class SweepCell:
    """One computed (or cache-served) grid cell."""

    scenario: Scenario
    key: str
    baseline_us: float
    predicted_us: float
    cached: bool


@dataclass
class BatchReport:
    """What one :func:`run_batch` call did."""

    cells: List[SweepCell] = field(default_factory=list)  # input order
    hits: int = 0
    computed: int = 0
    workers: int = 1
    start_method: str = "serial"

    def __len__(self) -> int:
        return len(self.cells)


def _values_ok(values: Optional[Dict[str, object]]) -> bool:
    """A stored ``predict`` entry must carry both timings as numbers."""
    if values is None:
        return False
    timings = (values.get("baseline_us"), values.get("predicted_us"))
    return all(isinstance(v, float) for v in timings)


def _run_chunk(runner, chunk: Sequence[_Cell]) -> List[Tuple[int, float, float]]:
    """Execute one chunk of cells on a runner, returning plain numbers."""
    out = []
    for index, data in chunk:
        outcome = runner.run(Scenario.from_dict(data))
        out.append((index, outcome.baseline_us, outcome.predicted_us))
    return out


def _worker_init(manifest_bytes: bytes) -> None:
    """Spawn-pool initializer: deliver the manifest to this worker."""
    global _WORKER_MANIFEST
    _WORKER_MANIFEST = pickle.loads(manifest_bytes)


def _worker_run_chunk(chunk: Sequence[_Cell]) -> List[Tuple[int, float, float]]:
    """Pool entry point: runs a chunk on this worker's persistent runner.

    The first chunk builds the runner — from the fork-inherited registry
    under fork, or from the delivered :class:`WorkerManifest` under spawn —
    and later chunks reuse it (and its profiled sessions).
    """
    global _WORKER_RUNNER
    if _WORKER_RUNNER is None:
        from repro.scenarios.runner import ScenarioRunner
        if _FORK_REGISTRY is not None:
            registry = _FORK_REGISTRY
        elif _WORKER_MANIFEST is not None:
            registry = _WORKER_MANIFEST.restore()
        else:  # pragma: no cover - defensive
            raise ConfigError("batch worker started without a registry")
        _WORKER_RUNNER = ScenarioRunner(registry=registry)
    return _run_chunk(_WORKER_RUNNER, chunk)


def _resolve_deferred(index: int, scenario: Scenario,
                      registry: OptimizationRegistry,
                      store: SweepStore, report: "BatchReport",
                      finish: Callable[[int, SweepCell], None]) -> None:
    """Wait out another sweep's compute lease on one deferred cell.

    Polls the *local* tier (a pure :meth:`SweepStore.contains` probe: no
    counters, no remote traffic) while the lease stays fresh, and serves
    the entry the moment its owner persists it — that is the cross-sweep
    dedupe.  If the lease is released (or stale enough to steal) without
    a usable entry, the owner crashed or was killed: this sweep inherits
    the cell — after one full :meth:`~SweepStore.get` (remote included),
    in case the result exists beyond the local tier — and computes it
    in-process.
    """
    key = scenario_key(scenario, registry)

    def serve(values: Dict[str, object]) -> None:
        report.hits += 1
        finish(index, SweepCell(scenario=scenario, key=key, cached=True,
                                baseline_us=values["baseline_us"],
                                predicted_us=values["predicted_us"]))

    while True:
        if store.contains(scenario):
            values = store.get(scenario)
            if _values_ok(values):
                serve(values)
                return
        lease = store.lease(key)
        if lease.try_acquire():
            # the inherited computation can outlast the steal window just
            # like a normal chunk: keep this claim fresh on a time cadence
            stop_refresh = threading.Event()

            def _keep_fresh() -> None:
                from repro.scenarios.backends import LEASE_STEAL_SECONDS
                while not stop_refresh.wait(LEASE_STEAL_SECONDS / 4):
                    lease.refresh()

            refresher = threading.Thread(target=_keep_fresh, daemon=True)
            refresher.start()
            try:
                # one full read-through; the write-back rides our lease
                values = store.get(scenario, lease=lease)
                if _values_ok(values):
                    serve(values)
                    return
                from repro.scenarios.runner import ScenarioRunner
                runner = ScenarioRunner(registry=registry)
                ((_, baseline_us, predicted_us),) = _run_chunk(
                    runner, [(index, scenario.to_dict())])
                store.put(scenario, {"baseline_us": baseline_us,
                                     "predicted_us": predicted_us},
                          lease=lease)
                report.computed += 1
                finish(index, SweepCell(scenario=scenario, key=key,
                                        cached=False,
                                        baseline_us=baseline_us,
                                        predicted_us=predicted_us))
            finally:
                stop_refresh.set()
                refresher.join(timeout=5.0)
                lease.release()
            return
        time.sleep(DEDUPE_POLL_SECONDS)


def _partition(scenarios: Sequence[Scenario], pending: Sequence[int],
               jobs: int) -> List[List[_Cell]]:
    """Chunk pending cells, grouping cells of one workload together.

    Scenarios sharing a (model, batch size, training config) profile the
    same session, so they stay adjacent; each workload group is split into
    at most ``jobs // n_groups`` chunks (always ≥ 1) so a single-workload
    grid still occupies every worker.
    """
    groups: Dict[object, List[int]] = {}
    for index in pending:
        scenario = scenarios[index]
        key = (scenario.model, scenario.batch_size,
               scenario.build_config())
        groups.setdefault(key, []).append(index)
    chunks: List[List[_Cell]] = []
    splits = max(1, jobs // max(1, len(groups)))
    for indices in groups.values():
        size = math.ceil(len(indices) / splits)
        for start in range(0, len(indices), size):
            chunks.append([(i, scenarios[i].to_dict())
                           for i in indices[start:start + size]])
    return chunks


def _resolve_start_method(start_method: Optional[str], workers: int,
                          manifest: WorkerManifest) -> str:
    """Pick how pending chunks execute: ``fork``, ``spawn`` or ``serial``.

    ``None`` prefers fork where it is both available *and safe* (not
    macOS: Darwin lists fork but forking a threaded parent there is
    crash-prone, which is why CPython's own default is spawn), then spawn
    if the runtime state is picklable, then fork as a last resort before
    degrading to an in-process serial run with identical rows.  An
    explicit method is honored or rejected loudly.
    """
    if start_method is not None and start_method not in START_METHODS:
        raise ConfigError(
            f"unknown start method {start_method!r}; "
            f"choose from {list(START_METHODS)}"
        )
    if workers <= 1 or start_method == "serial":
        return "serial"
    if _WORKER_RUNNER is not None:  # nested call inside a worker
        return "serial"
    available = multiprocessing.get_all_start_methods()
    if start_method is None:
        fork_is_safe = "fork" in available and sys.platform != "darwin"
        if fork_is_safe:
            return "fork"
        if "spawn" in available:
            try:
                manifest.dumps()
                return "spawn"
            except ConfigError:
                pass  # unpicklable runtime state: fall through
        if "fork" in available:
            return "fork"
        return "serial"
    if start_method not in available:
        raise ConfigError(
            f"start method {start_method!r} is not available on this "
            f"platform; available: {available}"
        )
    return start_method


def run_batch(
    scenarios: Sequence[Scenario],
    registry: Optional[OptimizationRegistry] = None,
    store: Optional[SweepStore] = None,
    jobs: Optional[int] = None,
    force: bool = False,
    progress: Optional[Callable[[int, int, SweepCell], None]] = None,
    start_method: Optional[str] = None,
) -> BatchReport:
    """Evaluate scenarios through the store + process-pool substrate.

    Args:
        scenarios: the grid cells, already expanded.
        registry: optimization registry (also salts store keys).
        store: persistent result store; cells found there are served
            without simulation (including read-through from the store's
            remote tier, if it has one) and newly computed cells are
            written back locally.  Missing cells are claimed under
            per-key leases, so concurrent sweeps sharing the store
            compute each identical cell once.
        jobs: worker processes; ``None`` uses one per CPU, ``1`` runs
            serially in-process (same rows either way).
        force: recompute every cell even on a store hit (entries are
            overwritten with the fresh rows).
        progress: called as ``progress(done, total, cell)`` after every
            cell — store hits immediately, computed cells as their chunk
            completes (completion order, not input order).
        start_method: ``"fork"`` (inherit runtime state), ``"spawn"``
            (rebuild it in each worker from a :class:`WorkerManifest`),
            ``"serial"`` (no pool), or ``None`` to pick automatically
            (fork where available and safe — not macOS — then spawn,
            then serial).  Rows are bit-identical regardless.

    Returns:
        A :class:`BatchReport` whose ``cells`` are in input order and
        bit-identical to serial :meth:`ScenarioRunner.run` calls.
    """
    registry = registry or DEFAULT_REGISTRY
    if store is not None and store.registry is not registry:
        # one fingerprint must govern both resolution and addressing
        raise ConfigError("sweep store and batch executor must share one "
                          "optimization registry")
    scenarios = list(scenarios)
    total = len(scenarios)
    cells: List[Optional[SweepCell]] = [None] * total
    report = BatchReport(cells=[], workers=1)
    done = 0

    def finish(index: int, cell: SweepCell) -> None:
        nonlocal done
        cells[index] = cell
        done += 1
        if progress is not None:
            progress(done, total, cell)

    pending: List[int] = []
    for index, scenario in enumerate(scenarios):
        key = scenario_key(scenario, registry)
        values = store.get(scenario) if store is not None and not force \
            else None
        if _values_ok(values):
            report.hits += 1
            finish(index, SweepCell(
                scenario=scenario, key=key, cached=True,
                baseline_us=values["baseline_us"],
                predicted_us=values["predicted_us"]))
        else:
            pending.append(index)

    # claim each missing cell's compute lease so two concurrent sweeps
    # over one store dedupe identical cells: unclaimable cells are being
    # computed by another sweep right now and are *deferred* — we pick
    # their results up (or inherit the work) after our own cells finish
    deferred: List[int] = []
    owned: Dict[str, FileLease] = {}
    owned_lock = threading.Lock()
    if store is not None and not force and pending:
        claimed: List[int] = []
        for index in pending:
            key = scenario_key(scenarios[index], registry)
            if key in owned:
                claimed.append(index)  # duplicate cell of a key we own
                continue
            lease = store.lease(key)
            if lease.try_acquire():
                owned[key] = lease
                claimed.append(index)
            else:
                deferred.append(index)
        pending = claimed

    # keep the claims fresh on a *time* cadence while cells compute: a
    # single chunk can legitimately run longer than the steal threshold,
    # and a stolen claim means a concurrent sweep re-simulates the cell
    stop_refresh = threading.Event()
    refresher: Optional[threading.Thread] = None
    if owned:
        def _keep_claims_fresh() -> None:
            from repro.scenarios.backends import LEASE_STEAL_SECONDS
            while not stop_refresh.wait(LEASE_STEAL_SECONDS / 4):
                with owned_lock:
                    leases = list(owned.values())
                for lease in leases:
                    lease.refresh()

        refresher = threading.Thread(target=_keep_claims_fresh,
                                     daemon=True)
        refresher.start()

    def record(index: int, baseline_us: float, predicted_us: float) -> None:
        scenario = scenarios[index]
        key = scenario_key(scenario, registry)
        with owned_lock:
            lease = owned.pop(key, None)
        try:
            if store is not None:
                # the write rides the compute lease we already hold for
                # this key (if any) instead of waiting on its own lock
                store.put(scenario, {"baseline_us": baseline_us,
                                     "predicted_us": predicted_us},
                          lease=lease)
        finally:
            if lease is not None:
                lease.release()  # persisted: waiting sweeps read it now
        finish(index, SweepCell(scenario=scenario, key=key, cached=False,
                                baseline_us=baseline_us,
                                predicted_us=predicted_us))

    try:
        if pending:
            jobs = default_processes() if jobs is None else max(1, jobs)
            chunks = _partition(scenarios, pending, jobs)
            workers = min(jobs, len(chunks))
            report.workers = workers
            report.computed = len(pending)

            manifest = WorkerManifest.capture(
                registry,
                model_names=[scenarios[i].model for i in pending],
                policy_names=[scenarios[i].schedule_policy for i in pending
                              if scenarios[i].schedule_policy is not None])
            method = _resolve_start_method(start_method, workers, manifest)
            report.start_method = method
            if method != "serial":
                pool_kwargs: Dict[str, object] = {}
                if method == "spawn":
                    pool_kwargs["initializer"] = _worker_init
                    pool_kwargs["initargs"] = (manifest.dumps(),)
                global _FORK_REGISTRY
                _FORK_REGISTRY = registry if method == "fork" else None
                try:
                    ctx = multiprocessing.get_context(method)
                    with ProcessPoolExecutor(max_workers=workers,
                                             mp_context=ctx,
                                             **pool_kwargs) as pool:
                        futures = [pool.submit(_worker_run_chunk, chunk)
                                   for chunk in chunks]
                        for future in as_completed(futures):
                            for index, baseline_us, predicted_us \
                                    in future.result():
                                record(index, baseline_us, predicted_us)
                finally:
                    _FORK_REGISTRY = None
            else:
                from repro.scenarios.runner import ScenarioRunner
                report.workers = 1
                runner = ScenarioRunner(registry=registry)
                for chunk in chunks:
                    for index, baseline_us, predicted_us in \
                            _run_chunk(runner, chunk):
                        record(index, baseline_us, predicted_us)

        for index in deferred:
            _resolve_deferred(index, scenarios[index], registry, store,
                              report, finish)
    finally:
        stop_refresh.set()
        if refresher is not None:
            refresher.join(timeout=5.0)
        with owned_lock:
            leftovers = list(owned.values())
            owned.clear()
        for lease in leftovers:
            lease.release()

    report.cells = [cell for cell in cells if cell is not None]
    if len(report.cells) != total:  # pragma: no cover - defensive
        raise ConfigError("batch executor lost cells; this is a bug")
    return report
