"""Multiprocess batch execution of scenario grids over a result store.

The fork-based :meth:`WhatIfSession.sweep` parallelizes *predictions of one
workload*; large scenario catalogs also need the *profiling* fanned out and
finished cells remembered.  :func:`run_batch` is that substrate:

* cells already in the :class:`~repro.scenarios.store.SweepStore` are
  skipped up front (resume is the default behaviour of handing in a store);
* the remaining cells are partitioned **by workload** — scenarios sharing a
  (model, batch size, training config) land in the same chunks, and each
  worker process keeps one :class:`~repro.scenarios.runner.ScenarioRunner`
  alive across chunks, so a workload is profiled at most once per worker
  (and, once its graph runs hot, its compiled simulation baseline —
  `repro.core.compiled` — is lowered at most once per worker too);
* chunks run on a ``ProcessPoolExecutor`` under either start method:
  **fork** (runners, custom registries and runtime-registered models are
  inherited, never pickled) or **spawn** (each worker rebuilds its runner
  from a pickled :class:`WorkerManifest` — Windows workers, where fork
  does not exist, and macOS workers, where forking a threaded parent is
  unsafe, run the same sweeps);
* results stream back in completion order — the parent persists each cell
  to the store the moment its chunk finishes (a killed sweep resumes from
  the last completed chunk) and reports progress — while the returned rows
  keep input order.  **All store I/O stays in the parent**: workers only
  ever return plain numbers, so store stats, byte caps and leases see
  every write;
* each missing cell is *claimed* through a per-key
  :class:`~repro.scenarios.backends.FileLease` before it is computed, so
  two concurrent sweeps over one store dedupe identical cells: the sweep
  that loses the claim defers the cell, serves the winner's entry the
  moment it lands, and inherits the computation only if the winner's
  lease goes stale (a crash) without producing one.  With a
  lease-capable ``remote`` hub the claim escalates across hosts
  (:meth:`~repro.scenarios.store.SweepStore.compute_lease`): the hub
  grants each cell's claim to exactly one host, the winner publishes
  the entry to the hub at record time *before* releasing the claim, and
  deferring hosts read it through — N hosts partition one grid with no
  coordinator, each identical cell computed once anywhere.  The remote
  layer fails open: an unreachable or lease-less hub degrades to
  single-host coordination, never a stuck sweep;
* the pool **survives its own workers dying**: a worker the kernel
  OOM-kills (or the chaos hook SIGKILLs) breaks the
  ``ProcessPoolExecutor`` — instead of aborting the sweep, the parent
  keeps every recorded result, keeps holding the unfinished cells'
  compute leases (the work is still ours), rebuilds the pool, and
  requeues the unfinished cells as single-cell chunks so a
  worker-killing cell isolates itself.  Each requeue charges a bounded
  per-cell retry budget (``max_cell_retries``, ``repro sweep
  --max-cell-retries``); a cell that exhausts it is **quarantined** and
  re-run serially in the parent — where the chaos kill hook never fires
  — or, if it still fails, reported in ``BatchReport.failures`` with
  its lease released promptly so a concurrent sweep is never stalled
  for the full steal window.  Deterministic chunk exceptions travel the
  same requeue → quarantine → report path, so one poisoned cell cannot
  abort a thousand-cell sweep.

Because the simulator and the keyed PRNG are deterministic, pool results
are bit-identical to a serial run under *either* start method — and under
injected worker crashes and backend faults;
``tests/test_sweep_determinism.py`` pins serial / fork-sweep / process-pool
/ spawn-pool / cached / remote-warm / chaos rows against each other.
``docs/robustness.md`` is the written failure-mode contract.

"""

import math
import multiprocessing
import pickle
import sys
import threading
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.parallel import default_processes
from repro.common.errors import ConfigError
from repro.models.base import ModelSpec
from repro.models.registry import register_model, runtime_registered_models
from repro.scenarios.backends import FileLease
from repro.scenarios.registry import (
    DEFAULT_REGISTRY,
    OptimizationRegistry,
    OptimizationSpec,
)
from repro.scenarios.scenario import (
    Scenario,
    register_schedule_policy,
    runtime_schedule_policies,
)
from repro.scenarios.store import SweepStore, scenario_key

#: how often a deferred cell re-checks the store while another sweep's
#: lease holder is computing it
DEDUPE_POLL_SECONDS = 0.05

#: a deferred cell with a remote hub configured does one full
#: read-through (and cross-host claim attempt) every this many local
#: polls — the winner may be on another host, but the hub should not be
#: hammered at the local poll cadence
REMOTE_PROBE_POLLS = 5

#: one unit of worker work: (cell index, scenario dict)
_Cell = Tuple[int, Dict[str, object]]

#: start methods run_batch accepts (``None`` = pick automatically)
START_METHODS = ("fork", "spawn", "serial")

#: how many times one cell may be requeued after its chunk crashed or
#: failed before it is quarantined to the parent (``--max-cell-retries``)
DEFAULT_MAX_CELL_RETRIES = 2

#: fork-inherited state (set in the parent immediately before the pool
#: forks, cleared after; never pickled)
_FORK_REGISTRY: Optional[OptimizationRegistry] = None

#: spawn-delivered state (pickled into each worker by the pool initializer)
_WORKER_MANIFEST: Optional["WorkerManifest"] = None

#: per-worker-process runner, built lazily and kept across chunks so every
#: workload is profiled at most once per worker
_WORKER_RUNNER = None


@dataclass(frozen=True)
class WorkerManifest:
    """Everything a fresh interpreter needs to run this parent's scenarios.

    A ``fork`` worker inherits runtime state — models added through
    :func:`~repro.models.registry.register_model`, optimization specs
    registered after import, whole custom registries — for free.  A
    ``spawn`` worker starts from a clean interpreter, so that state must
    be captured here, pickled across, and replayed by :meth:`restore`.

    Attributes:
        fingerprint: the parent registry's
            :meth:`~repro.scenarios.registry.OptimizationRegistry.fingerprint`;
            :meth:`restore` verifies the rebuilt registry matches, so a
            parent/worker version skew fails loudly instead of silently
            keying results differently.
        default_registry: whether the parent used the shared
            :data:`~repro.scenarios.registry.DEFAULT_REGISTRY` (the worker
            then starts from its own import-time copy) or a custom
            registry (the worker rebuilds one from ``specs`` alone).
        specs: optimization specs the worker must register — the runtime
            additions for the default registry, every spec for a custom one.
        models: runtime-registered (name, builder) model entries.
        schedule_policies: runtime-registered (name, factory) entries of
            :data:`~repro.scenarios.scenario.NAMED_SCHEDULE_POLICIES` —
            scenarios declaring a runtime-registered ``schedule_policy``
            would otherwise fail validation in a fresh spawn interpreter.

    Builders and spec factories must be *importable* module-level
    callables: pickling carries only their qualified names, and the worker
    re-imports them.  Closures and lambdas cannot cross a spawn boundary —
    :func:`run_batch` detects that up front and says so.
    """

    fingerprint: str
    default_registry: bool = True
    specs: Tuple[OptimizationSpec, ...] = ()
    models: Tuple[Tuple[str, Callable[..., ModelSpec]], ...] = ()
    schedule_policies: Tuple[Tuple[str, Callable[[], object]], ...] = ()

    @classmethod
    def capture(cls, registry: Optional[OptimizationRegistry] = None,
                model_names: Optional[Sequence[str]] = None,
                policy_names: Optional[Sequence[str]] = None
                ) -> "WorkerManifest":
        """Snapshot the current process's runtime registrations.

        ``model_names`` limits the carried model builders to the ones a
        grid actually references (case-insensitive), and ``policy_names``
        does the same for runtime-registered schedule policies, so an
        unrelated — possibly unpicklable — registration elsewhere in the
        process never blocks a spawn sweep that does not use it.
        """
        registry = registry or DEFAULT_REGISTRY
        models = runtime_registered_models()
        if model_names is not None:
            wanted = {str(name).lower() for name in model_names}
            models = {name: builder for name, builder in models.items()
                      if name in wanted}
        policies = runtime_schedule_policies()
        if policy_names is not None:
            wanted_policies = {str(name) for name in policy_names}
            policies = {name: factory for name, factory in policies.items()
                        if name in wanted_policies}
        return cls(
            fingerprint=registry.fingerprint(),
            default_registry=registry is DEFAULT_REGISTRY,
            specs=tuple(registry.runtime_specs()),
            models=tuple(sorted(models.items())),
            schedule_policies=tuple(sorted(policies.items())),
        )

    def restore(self) -> OptimizationRegistry:
        """Replay the captured state in this interpreter.

        Registers the carried model builders and schedule policies,
        rebuilds the optimization registry (on top of the local default
        registry, or from scratch for a custom one), and verifies its
        fingerprint against the parent's before anything runs under
        mismatched keys.
        """
        for name, builder in self.models:
            register_model(name, builder, overwrite=True)
        for name, factory in self.schedule_policies:
            register_schedule_policy(name, factory, overwrite=True)
        if self.default_registry:
            registry = DEFAULT_REGISTRY
        else:
            registry = OptimizationRegistry()
        for spec in self.specs:
            if spec.key not in registry:
                registry.register(spec)
        if registry.fingerprint() != self.fingerprint:
            raise ConfigError(
                "worker registry fingerprint does not match the parent's; "
                "the worker interpreter resolves optimizations differently "
                "(version skew between parent and worker environments?)"
            )
        return registry

    def dumps(self) -> bytes:
        """Pickle this manifest, diagnosing unpicklable registrations."""
        try:
            return pickle.dumps(self)
        except Exception as exc:
            raise ConfigError(
                "cannot pickle the worker manifest for spawn workers: "
                f"{exc}.  Model builders and optimization factories must "
                "be importable module-level callables (not closures or "
                "lambdas) to cross a spawn boundary; use the fork start "
                "method for unpicklable registrations."
            ) from None


@dataclass(frozen=True)
class SweepCell:
    """One computed (or cache-served) grid cell."""

    scenario: Scenario
    key: str
    baseline_us: float
    predicted_us: float
    cached: bool


@dataclass(frozen=True)
class CellFailure:
    """One grid cell that produced no row, and why.

    Only cells that failed *in the parent too* land here: a cell reaches
    this report after its retry budget was spent requeuing it through
    rebuilt pools and its quarantined serial re-run still raised.
    """

    index: int
    label: str
    error: str


@dataclass
class BatchReport:
    """What one :func:`run_batch` call did.

    Every input cell is accounted for exactly once across
    ``cells`` (done: served from the store or computed) and ``failures``
    (no row could be produced); ``retried``/``quarantined``/
    ``pool_rebuilds`` narrate the recovery work it took to get there.
    """

    cells: List[SweepCell] = field(default_factory=list)  # input order
    hits: int = 0
    computed: int = 0
    workers: int = 1
    start_method: str = "serial"
    retried: int = 0        # cell requeues after a crashed/failed chunk
    quarantined: int = 0    # cells whose budget ran out, re-run in-parent
    failed: int = 0         # cells with no row (== len(failures))
    pool_rebuilds: int = 0  # worker pools rebuilt after a crash
    failures: List[CellFailure] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.cells)


def _values_ok(values: Optional[Dict[str, object]]) -> bool:
    """A stored ``predict`` entry must carry both timings as numbers."""
    if values is None:
        return False
    timings = (values.get("baseline_us"), values.get("predicted_us"))
    return all(isinstance(v, float) for v in timings)


def _run_chunk(runner, chunk: Sequence[_Cell]) -> List[Tuple[int, float, float]]:
    """Execute one chunk of cells on a runner, returning plain numbers."""
    out = []
    for index, data in chunk:
        outcome = runner.run(Scenario.from_dict(data))
        out.append((index, outcome.baseline_us, outcome.predicted_us))
    return out


def _worker_init(manifest_bytes: bytes) -> None:
    """Spawn-pool initializer: deliver the manifest to this worker."""
    global _WORKER_MANIFEST
    _WORKER_MANIFEST = pickle.loads(manifest_bytes)


def _worker_run_chunk(chunk: Sequence[_Cell]) -> List[Tuple[int, float, float]]:
    """Pool entry point: runs a chunk on this worker's persistent runner.

    The first chunk builds the runner — from the fork-inherited registry
    under fork, or from the delivered :class:`WorkerManifest` under spawn —
    and later chunks reuse it (and its profiled sessions).  Before each
    cell the worker consults the env-gated chaos kill hook
    (:func:`repro.scenarios.faults.maybe_kill_worker`): only *workers*
    do, so a quarantined cell re-run in the parent always completes.
    """
    global _WORKER_RUNNER
    if _WORKER_RUNNER is None:
        from repro.scenarios.runner import ScenarioRunner
        if _FORK_REGISTRY is not None:
            registry = _FORK_REGISTRY
        elif _WORKER_MANIFEST is not None:
            registry = _WORKER_MANIFEST.restore()
        else:  # pragma: no cover - defensive
            raise ConfigError("batch worker started without a registry")
        _WORKER_RUNNER = ScenarioRunner(registry=registry)
    from repro.scenarios.faults import maybe_kill_worker
    out = []
    for index, data in chunk:
        maybe_kill_worker(index)
        outcome = _WORKER_RUNNER.run(Scenario.from_dict(data))
        out.append((index, outcome.baseline_us, outcome.predicted_us))
    return out


def _resolve_deferred(index: int, scenario: Scenario,
                      registry: OptimizationRegistry,
                      store: SweepStore, report: "BatchReport",
                      finish: Callable[[int, SweepCell], None]) -> None:
    """Wait out another sweep's compute lease on one deferred cell.

    Polls the *local* tier (a pure :meth:`SweepStore.contains` probe: no
    counters, no remote traffic) while the lease stays fresh, and serves
    the entry the moment its owner persists it — that is the cross-sweep
    dedupe.  When the store has a remote hub, the claim's holder may be
    a *different host* whose entry only ever lands on the hub: every
    :data:`REMOTE_PROBE_POLLS`-th poll does one full read-through (and
    only then re-attempts the cross-host claim, throttling hub
    traffic).  If the lease is released (or stale enough to steal)
    without a usable entry, the owner crashed or was killed: this sweep
    inherits the cell — after one full :meth:`~SweepStore.get` (remote
    included), in case the result exists beyond the local tier — and
    computes it in-process.
    """
    key = scenario_key(scenario, registry)
    probe_remote = store.remote is not None
    polls = 0

    def serve(values: Dict[str, object]) -> None:
        report.hits += 1
        finish(index, SweepCell(scenario=scenario, key=key, cached=True,
                                baseline_us=values["baseline_us"],
                                predicted_us=values["predicted_us"]))

    while True:
        if store.contains(scenario):
            values = store.get(scenario)
            if _values_ok(values):
                serve(values)
                return
        polls += 1
        if probe_remote:
            if polls % REMOTE_PROBE_POLLS:
                time.sleep(DEDUPE_POLL_SECONDS)
                continue  # local probes stay cheap between hub round-trips
            values = store.get(scenario)  # the winner may be another host
            if _values_ok(values):
                serve(values)
                return
        lease = store.compute_lease(key)
        if lease.try_acquire():
            # the inherited computation can outlast the steal window just
            # like a normal chunk: keep this claim fresh on a time cadence
            stop_refresh = threading.Event()

            def _keep_fresh() -> None:
                from repro.scenarios.backends import LEASE_STEAL_SECONDS
                while not stop_refresh.wait(LEASE_STEAL_SECONDS / 4):
                    lease.refresh()

            refresher = threading.Thread(target=_keep_fresh, daemon=True)
            refresher.start()
            try:
                # one full read-through; the write-back rides our lease
                values = store.get(scenario, lease=lease)
                if _values_ok(values):
                    serve(values)
                    return
                from repro.scenarios.runner import ScenarioRunner
                runner = ScenarioRunner(registry=registry)
                ((_, baseline_us, predicted_us),) = _run_chunk(
                    runner, [(index, scenario.to_dict())])
                store.put(scenario, {"baseline_us": baseline_us,
                                     "predicted_us": predicted_us},
                          lease=lease)
                if getattr(lease, "remote_owned", False):
                    store.publish(key)  # before release: see record()
                report.computed += 1
                finish(index, SweepCell(scenario=scenario, key=key,
                                        cached=False,
                                        baseline_us=baseline_us,
                                        predicted_us=predicted_us))
            finally:
                stop_refresh.set()
                refresher.join(timeout=5.0)
                lease.release()
            return
        time.sleep(DEDUPE_POLL_SECONDS)


def _partition(scenarios: Sequence[Scenario], pending: Sequence[int],
               jobs: int) -> List[List[_Cell]]:
    """Chunk pending cells, grouping cells of one workload together.

    Scenarios sharing a (model, batch size, training config) profile the
    same session, so they stay adjacent; each workload group is split into
    at most ``jobs // n_groups`` chunks (always ≥ 1) so a single-workload
    grid still occupies every worker.
    """
    groups: Dict[object, List[int]] = {}
    for index in pending:
        scenario = scenarios[index]
        key = (scenario.model, scenario.batch_size,
               scenario.build_config())
        groups.setdefault(key, []).append(index)
    chunks: List[List[_Cell]] = []
    splits = max(1, jobs // max(1, len(groups)))
    for indices in groups.values():
        size = math.ceil(len(indices) / splits)
        for start in range(0, len(indices), size):
            chunks.append([(i, scenarios[i].to_dict())
                           for i in indices[start:start + size]])
    return chunks


def _resolve_start_method(start_method: Optional[str], workers: int,
                          manifest: WorkerManifest) -> str:
    """Pick how pending chunks execute: ``fork``, ``spawn`` or ``serial``.

    ``None`` prefers fork where it is both available *and safe* (not
    macOS: Darwin lists fork but forking a threaded parent there is
    crash-prone, which is why CPython's own default is spawn), then spawn
    if the runtime state is picklable, then fork as a last resort before
    degrading to an in-process serial run with identical rows.  An
    explicit method is honored or rejected loudly.
    """
    if start_method is not None and start_method not in START_METHODS:
        raise ConfigError(
            f"unknown start method {start_method!r}; "
            f"choose from {list(START_METHODS)}"
        )
    if workers <= 1 or start_method == "serial":
        return "serial"
    if _WORKER_RUNNER is not None:  # nested call inside a worker
        return "serial"
    available = multiprocessing.get_all_start_methods()
    if start_method is None:
        fork_is_safe = "fork" in available and sys.platform != "darwin"
        if fork_is_safe:
            return "fork"
        if "spawn" in available:
            try:
                manifest.dumps()
                return "spawn"
            except ConfigError:
                pass  # unpicklable runtime state: fall through
        if "fork" in available:
            return "fork"
        return "serial"
    if start_method not in available:
        raise ConfigError(
            f"start method {start_method!r} is not available on this "
            f"platform; available: {available}"
        )
    return start_method


def run_batch(
    scenarios: Sequence[Scenario],
    registry: Optional[OptimizationRegistry] = None,
    store: Optional[SweepStore] = None,
    jobs: Optional[int] = None,
    force: bool = False,
    progress: Optional[Callable[[int, int, SweepCell], None]] = None,
    start_method: Optional[str] = None,
    max_cell_retries: int = DEFAULT_MAX_CELL_RETRIES,
) -> BatchReport:
    """Evaluate scenarios through the store + process-pool substrate.

    Args:
        scenarios: the grid cells, already expanded.
        registry: optimization registry (also salts store keys).
        store: persistent result store; cells found there are served
            without simulation (including read-through from the store's
            remote tier, if it has one) and newly computed cells are
            written back locally.  Missing cells are claimed under
            per-key leases, so concurrent sweeps sharing the store
            compute each identical cell once.
        jobs: worker processes; ``None`` uses one per CPU, ``1`` runs
            serially in-process (same rows either way).
        force: recompute every cell even on a store hit (entries are
            overwritten with the fresh rows).
        progress: called as ``progress(done, total, cell)`` after every
            cell — store hits immediately, computed cells as their chunk
            completes (completion order, not input order).
        start_method: ``"fork"`` (inherit runtime state), ``"spawn"``
            (rebuild it in each worker from a :class:`WorkerManifest`),
            ``"serial"`` (no pool), or ``None`` to pick automatically
            (fork where available and safe — not macOS — then spawn,
            then serial).  Rows are bit-identical regardless.
        max_cell_retries: how many times one cell may be requeued after
            its chunk crashed the pool (or raised) before the cell is
            quarantined and re-run serially in the parent; a cell that
            fails even there is reported in ``BatchReport.failures``
            instead of aborting the sweep.

    Returns:
        A :class:`BatchReport` whose ``cells`` are in input order and
        bit-identical to serial :meth:`ScenarioRunner.run` calls, and
        whose done/retried/quarantined/failed counters account for every
        input cell.
    """
    registry = registry or DEFAULT_REGISTRY
    if store is not None and store.registry is not registry:
        # one fingerprint must govern both resolution and addressing
        raise ConfigError("sweep store and batch executor must share one "
                          "optimization registry")
    if max_cell_retries < 0:
        raise ConfigError("max_cell_retries cannot be negative")
    scenarios = list(scenarios)
    total = len(scenarios)
    cells: List[Optional[SweepCell]] = [None] * total
    report = BatchReport(cells=[], workers=1)
    done = 0

    def finish(index: int, cell: SweepCell) -> None:
        nonlocal done
        cells[index] = cell
        done += 1
        if progress is not None:
            progress(done, total, cell)

    pending: List[int] = []
    for index, scenario in enumerate(scenarios):
        key = scenario_key(scenario, registry)
        values = store.get(scenario) if store is not None and not force \
            else None
        if _values_ok(values):
            report.hits += 1
            finish(index, SweepCell(
                scenario=scenario, key=key, cached=True,
                baseline_us=values["baseline_us"],
                predicted_us=values["predicted_us"]))
        else:
            pending.append(index)

    # claim each missing cell's compute lease so two concurrent sweeps
    # over one store dedupe identical cells: unclaimable cells are being
    # computed by another sweep right now (possibly on another host, via
    # the hub's lease plane) and are *deferred* — we pick their results
    # up (or inherit the work) after our own cells finish
    deferred: List[int] = []
    owned: Dict[str, FileLease] = {}  # may hold ComputeLease (same surface)
    owned_lock = threading.Lock()
    if store is not None and not force and pending:
        claimed: List[int] = []
        for index in pending:
            key = scenario_key(scenarios[index], registry)
            if key in owned:
                claimed.append(index)  # duplicate cell of a key we own
                continue
            lease = store.compute_lease(key)
            if lease.try_acquire():
                if getattr(lease, "remote_owned", False):
                    # claim-then-recheck: a peer host may have published
                    # this cell between our miss above and this claim
                    # being granted (publish precedes claim release, so
                    # a granted claim with an entry present means the
                    # previous winner already finished)
                    values = store.get(scenarios[index])
                    if _values_ok(values):
                        lease.release()
                        report.hits += 1
                        finish(index, SweepCell(
                            scenario=scenarios[index], key=key, cached=True,
                            baseline_us=values["baseline_us"],
                            predicted_us=values["predicted_us"]))
                        continue
                owned[key] = lease
                claimed.append(index)
            else:
                deferred.append(index)
        pending = claimed

    # keep the claims fresh on a *time* cadence while cells compute: a
    # single chunk can legitimately run longer than the steal threshold,
    # and a stolen claim means a concurrent sweep re-simulates the cell
    stop_refresh = threading.Event()
    refresher: Optional[threading.Thread] = None
    if owned:
        def _keep_claims_fresh() -> None:
            from repro.scenarios.backends import LEASE_STEAL_SECONDS
            while not stop_refresh.wait(LEASE_STEAL_SECONDS / 4):
                with owned_lock:
                    leases = list(owned.values())
                for lease in leases:
                    lease.refresh()

        refresher = threading.Thread(target=_keep_claims_fresh,
                                     name="repro-claim-refresher",
                                     daemon=True)
        refresher.start()

    def release_claim(index: int) -> Optional[FileLease]:
        """Pop the compute lease of one cell (if this sweep holds it)."""
        key = scenario_key(scenarios[index], registry)
        with owned_lock:
            return owned.pop(key, None)

    def record(index: int, baseline_us: float, predicted_us: float) -> None:
        scenario = scenarios[index]
        key = scenario_key(scenario, registry)
        lease = release_claim(index)
        try:
            if store is not None:
                # the write rides the compute lease we already hold for
                # this key (if any) instead of waiting on its own lock
                store.put(scenario, {"baseline_us": baseline_us,
                                     "predicted_us": predicted_us},
                          lease=lease)
                if getattr(lease, "remote_owned", False):
                    # the cross-host handshake: publish to the hub
                    # *before* releasing the claim, so peers deferring
                    # on it find the bytes the moment it frees
                    store.publish(key)
        finally:
            if lease is not None:
                lease.release()  # persisted: waiting sweeps read it now
        report.computed += 1
        finish(index, SweepCell(scenario=scenario, key=key, cached=False,
                                baseline_us=baseline_us,
                                predicted_us=predicted_us))

    def fail(index: int, error: BaseException) -> None:
        """Record one unproducible cell, releasing its lease promptly.

        The release matters as much as the bookkeeping: a failed cell's
        claim must not sit until the steal window expires, or a
        concurrent sweep sharing the store stalls on a cell this one
        already knows it cannot produce.
        """
        lease = release_claim(index)
        if lease is not None:
            lease.release()
        report.failed += 1
        report.failures.append(CellFailure(
            index=index, label=scenarios[index].label(), error=str(error)))

    def run_quarantined(index: int, runner) -> None:
        """Serially re-run one over-budget cell in the parent.

        The chaos kill hook only fires in pool workers, so a cell that
        kept killing workers completes here; a cell that raises even in
        the parent is deterministic poison and is reported failed.
        """
        report.quarantined += 1
        try:
            ((_, baseline_us, predicted_us),) = _run_chunk(
                runner, [(index, scenarios[index].to_dict())])
        except Exception as exc:
            fail(index, exc)
        else:
            record(index, baseline_us, predicted_us)

    def run_pool_with_recovery(method: str, workers: int,
                               manifest: WorkerManifest) -> None:
        """Drive the worker pool, surviving crashed workers and chunks.

        Each round submits the remaining cells — workload-grouped chunks
        on the first round, single-cell chunks after any crash so a
        worker-killing cell isolates itself instead of charging its
        chunk-mates' budgets forever.  A broken pool (a worker died:
        OOM killer, SIGKILL, hardware) keeps all recorded results and
        all held leases, charges one retry to every unfinished cell,
        and rebuilds; cells over budget are quarantined to the parent.
        """
        pool_kwargs: Dict[str, object] = {}
        if method == "spawn":
            pool_kwargs["initializer"] = _worker_init
            pool_kwargs["initargs"] = (manifest.dumps(),)
        remaining: List[int] = list(pending)
        attempts: Dict[int, int] = {}
        quarantine_runner = None
        first_round = True
        ctx = multiprocessing.get_context(method)
        while remaining:
            over_budget = [i for i in remaining
                           if attempts.get(i, 0) > max_cell_retries]
            remaining = [i for i in remaining
                         if attempts.get(i, 0) <= max_cell_retries]
            if over_budget:
                if quarantine_runner is None:
                    from repro.scenarios.runner import ScenarioRunner
                    quarantine_runner = ScenarioRunner(registry=registry)
                for index in over_budget:
                    run_quarantined(index, quarantine_runner)
            if not remaining:
                break
            if first_round:
                chunks = _partition(scenarios, remaining, jobs)
            else:
                chunks = [[(i, scenarios[i].to_dict())] for i in remaining]
            done_round: Set[int] = set()
            try:
                with ProcessPoolExecutor(max_workers=workers,
                                         mp_context=ctx,
                                         **pool_kwargs) as pool:
                    future_chunks = {
                        pool.submit(_worker_run_chunk, chunk): chunk
                        for chunk in chunks}
                    for future in as_completed(future_chunks):
                        try:
                            results = future.result()
                        except BrokenProcessPool:
                            raise  # a worker died: rebuild below
                        except Exception:
                            # a deterministic chunk failure: charge only
                            # this chunk's cells and requeue them (they
                            # reproduce — or get quarantined and their
                            # true error reported from the parent re-run)
                            chunk = future_chunks[future]
                            for index, _data in chunk:
                                attempts[index] = attempts.get(index, 0) + 1
                            report.retried += len(chunk)
                            continue
                        for index, baseline_us, predicted_us in results:
                            record(index, baseline_us, predicted_us)
                            done_round.add(index)
            except BrokenProcessPool:
                unfinished = [i for i in remaining if i not in done_round]
                for index in unfinished:
                    attempts[index] = attempts.get(index, 0) + 1
                report.retried += len(unfinished)
                report.pool_rebuilds += 1
            remaining = [i for i in remaining if i not in done_round]
            first_round = False

    try:
        if pending:
            jobs = default_processes() if jobs is None else max(1, jobs)
            chunks = _partition(scenarios, pending, jobs)
            workers = min(jobs, len(chunks))
            report.workers = workers

            manifest = WorkerManifest.capture(
                registry,
                model_names=[scenarios[i].model for i in pending],
                policy_names=[scenarios[i].schedule_policy for i in pending
                              if scenarios[i].schedule_policy is not None])
            method = _resolve_start_method(start_method, workers, manifest)
            report.start_method = method
            if method != "serial":
                global _FORK_REGISTRY
                _FORK_REGISTRY = registry if method == "fork" else None
                try:
                    run_pool_with_recovery(method, workers, manifest)
                finally:
                    _FORK_REGISTRY = None
            else:
                from repro.scenarios.runner import ScenarioRunner
                report.workers = 1
                runner = ScenarioRunner(registry=registry)
                # per-cell fault tolerance matches the pool path: a
                # poisoned cell is reported, the rest still get rows
                for chunk in chunks:
                    for index, data in chunk:
                        try:
                            ((_, baseline_us, predicted_us),) = _run_chunk(
                                runner, [(index, data)])
                        except Exception as exc:
                            fail(index, exc)
                        else:
                            record(index, baseline_us, predicted_us)

        for index in deferred:
            _resolve_deferred(index, scenarios[index], registry, store,
                              report, finish)
    finally:
        # the crash path runs through here too: whatever broke above, the
        # claim refresher stops and every still-held compute lease is
        # released, so a dying sweep never stalls a concurrent one for
        # the full steal window
        stop_refresh.set()
        if refresher is not None:
            refresher.join(timeout=5.0)
        with owned_lock:
            leftovers = list(owned.values())
            owned.clear()
        for lease in leftovers:
            lease.release()

    report.cells = [cell for cell in cells if cell is not None]
    if len(report.cells) + report.failed != total:  # pragma: no cover
        raise ConfigError("batch executor lost cells; this is a bug")
    return report
