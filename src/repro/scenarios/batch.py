"""Multiprocess batch execution of scenario grids over a result store.

The fork-based :meth:`WhatIfSession.sweep` parallelizes *predictions of one
workload*; large scenario catalogs also need the *profiling* fanned out and
finished cells remembered.  :func:`run_batch` is that substrate:

* cells already in the :class:`~repro.scenarios.store.SweepStore` are
  skipped up front (resume is the default behaviour of handing in a store);
* the remaining cells are partitioned **by workload** — scenarios sharing a
  (model, batch size, training config) land in the same chunks, and each
  worker process keeps one :class:`~repro.scenarios.runner.ScenarioRunner`
  alive across chunks, so a workload is profiled at most once per worker;
* chunks run on a ``ProcessPoolExecutor`` (fork context: runners, custom
  registries and runtime-registered models are inherited, never pickled;
  platforms without fork fall back to an in-process serial run with
  identical results);
* results stream back in completion order — the parent persists each cell
  to the store the moment its chunk finishes (a killed sweep resumes from
  the last completed chunk) and reports progress — while the returned rows
  keep input order.

Because the simulator and the keyed PRNG are deterministic, pool results
are bit-identical to a serial run; ``tests/test_sweep_determinism.py``
pins serial / fork-sweep / process-pool / cached rows against each other.
"""

import math
import multiprocessing
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.analysis.parallel import default_processes
from repro.common.errors import ConfigError
from repro.scenarios.registry import DEFAULT_REGISTRY, OptimizationRegistry
from repro.scenarios.scenario import Scenario
from repro.scenarios.store import SweepStore, scenario_key

#: one unit of worker work: (cell index, scenario dict)
_Cell = Tuple[int, Dict[str, object]]

#: fork-inherited state (set in the parent immediately before the pool
#: forks, cleared after; never pickled)
_FORK_REGISTRY: Optional[OptimizationRegistry] = None

#: per-worker-process runner, built lazily and kept across chunks so every
#: workload is profiled at most once per worker
_WORKER_RUNNER = None


@dataclass(frozen=True)
class SweepCell:
    """One computed (or cache-served) grid cell."""

    scenario: Scenario
    key: str
    baseline_us: float
    predicted_us: float
    cached: bool


@dataclass
class BatchReport:
    """What one :func:`run_batch` call did."""

    cells: List[SweepCell]  # input order
    hits: int = 0
    computed: int = 0
    workers: int = 1

    def __len__(self) -> int:
        return len(self.cells)


def _values_ok(values: Optional[Dict[str, object]]) -> bool:
    """A stored ``predict`` entry must carry both timings as numbers."""
    if values is None:
        return False
    timings = (values.get("baseline_us"), values.get("predicted_us"))
    return all(isinstance(v, float) for v in timings)


def _run_chunk(runner, chunk: Sequence[_Cell]) -> List[Tuple[int, float, float]]:
    """Execute one chunk of cells on a runner, returning plain numbers."""
    out = []
    for index, data in chunk:
        outcome = runner.run(Scenario.from_dict(data))
        out.append((index, outcome.baseline_us, outcome.predicted_us))
    return out


def _worker_run_chunk(chunk: Sequence[_Cell]) -> List[Tuple[int, float, float]]:
    """Pool entry point: runs a chunk on this worker's persistent runner."""
    global _WORKER_RUNNER
    if _WORKER_RUNNER is None:
        from repro.scenarios.runner import ScenarioRunner
        _WORKER_RUNNER = ScenarioRunner(registry=_FORK_REGISTRY)
    return _run_chunk(_WORKER_RUNNER, chunk)


def _partition(scenarios: Sequence[Scenario], pending: Sequence[int],
               jobs: int) -> List[List[_Cell]]:
    """Chunk pending cells, grouping cells of one workload together.

    Scenarios sharing a (model, batch size, training config) profile the
    same session, so they stay adjacent; each workload group is split into
    at most ``jobs // n_groups`` chunks (always ≥ 1) so a single-workload
    grid still occupies every worker.
    """
    groups: Dict[object, List[int]] = {}
    for index in pending:
        scenario = scenarios[index]
        key = (scenario.model, scenario.batch_size,
               scenario.build_config())
        groups.setdefault(key, []).append(index)
    chunks: List[List[_Cell]] = []
    splits = max(1, jobs // max(1, len(groups)))
    for indices in groups.values():
        size = math.ceil(len(indices) / splits)
        for start in range(0, len(indices), size):
            chunks.append([(i, scenarios[i].to_dict())
                           for i in indices[start:start + size]])
    return chunks


def run_batch(
    scenarios: Sequence[Scenario],
    registry: Optional[OptimizationRegistry] = None,
    store: Optional[SweepStore] = None,
    jobs: Optional[int] = None,
    force: bool = False,
    progress: Optional[Callable[[int, int, SweepCell], None]] = None,
) -> BatchReport:
    """Evaluate scenarios through the store + process-pool substrate.

    Args:
        scenarios: the grid cells, already expanded.
        registry: optimization registry (also salts store keys).
        store: persistent result store; cells found there are served
            without simulation and newly computed cells are written back.
        jobs: worker processes; ``None`` uses one per CPU, ``1`` runs
            serially in-process (same rows either way).
        force: recompute every cell even on a store hit (entries are
            overwritten with the fresh rows).
        progress: called as ``progress(done, total, cell)`` after every
            cell — store hits immediately, computed cells as their chunk
            completes (completion order, not input order).

    Returns:
        A :class:`BatchReport` whose ``cells`` are in input order and
        bit-identical to serial :meth:`ScenarioRunner.run` calls.
    """
    registry = registry or DEFAULT_REGISTRY
    if store is not None and store.registry is not registry:
        # one fingerprint must govern both resolution and addressing
        raise ConfigError("sweep store and batch executor must share one "
                          "optimization registry")
    scenarios = list(scenarios)
    total = len(scenarios)
    cells: List[Optional[SweepCell]] = [None] * total
    report = BatchReport(cells=[], workers=1)
    done = 0

    def finish(index: int, cell: SweepCell) -> None:
        nonlocal done
        cells[index] = cell
        done += 1
        if progress is not None:
            progress(done, total, cell)

    pending: List[int] = []
    for index, scenario in enumerate(scenarios):
        key = scenario_key(scenario, registry)
        values = store.get(scenario) if store is not None and not force \
            else None
        if _values_ok(values):
            report.hits += 1
            finish(index, SweepCell(
                scenario=scenario, key=key, cached=True,
                baseline_us=values["baseline_us"],
                predicted_us=values["predicted_us"]))
        else:
            pending.append(index)

    if pending:
        jobs = default_processes() if jobs is None else max(1, jobs)
        chunks = _partition(scenarios, pending, jobs)
        workers = min(jobs, len(chunks))
        report.workers = workers
        report.computed = len(pending)

        def record(index: int, baseline_us: float, predicted_us: float) -> None:
            scenario = scenarios[index]
            key = scenario_key(scenario, registry)
            if store is not None:
                store.put(scenario, {"baseline_us": baseline_us,
                                     "predicted_us": predicted_us})
            finish(index, SweepCell(scenario=scenario, key=key, cached=False,
                                    baseline_us=baseline_us,
                                    predicted_us=predicted_us))

        use_pool = (
            workers > 1
            and _WORKER_RUNNER is None  # nested call: stay serial
            and "fork" in multiprocessing.get_all_start_methods()
        )
        if use_pool:
            global _FORK_REGISTRY
            _FORK_REGISTRY = registry
            try:
                ctx = multiprocessing.get_context("fork")
                with ProcessPoolExecutor(max_workers=workers,
                                         mp_context=ctx) as pool:
                    futures = [pool.submit(_worker_run_chunk, chunk)
                               for chunk in chunks]
                    for future in as_completed(futures):
                        for index, baseline_us, predicted_us in future.result():
                            record(index, baseline_us, predicted_us)
            finally:
                _FORK_REGISTRY = None
        else:
            from repro.scenarios.runner import ScenarioRunner
            report.workers = 1
            runner = ScenarioRunner(registry=registry)
            for chunk in chunks:
                for index, baseline_us, predicted_us in _run_chunk(runner,
                                                                   chunk):
                    record(index, baseline_us, predicted_us)

    report.cells = [cell for cell in cells if cell is not None]
    if len(report.cells) != total:  # pragma: no cover - defensive
        raise ConfigError("batch executor lost cells; this is a bug")
    return report
