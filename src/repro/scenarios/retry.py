"""One retry policy for every transient-fault path.

Before this module, each transient-failure site invented its own policy:
:class:`~repro.scenarios.backends.HTTPBackend` hard-coded a flat 30-second
down-window, ``repro store push``/``pull`` died on the first mid-transfer
hiccup, and the batch executor had no story at all for a worker the kernel
OOM-killed.  :class:`RetryPolicy` replaces all of that with a single
documented shape:

* **exponential backoff** — attempt *n* waits
  ``base_delay_s * multiplier**(n-1)``, capped at ``max_delay_s``;
* **deterministic seeded jitter** — each delay is perturbed by up to
  ``±jitter`` (a fraction), derived from :func:`repro.common.prng`'s
  keyed hash of ``(seed, attempt)`` rather than a shared mutable RNG, so
  a retry schedule is a pure function of the policy.  Two replicas with
  different seeds de-synchronize (no thundering herd); one replica replays
  identically (tests can pin exact delays);
* **attempt and deadline caps** — ``max_attempts`` bounds tries,
  ``deadline_s`` bounds total elapsed time including the next sleep;
  whichever trips first ends the retry loop and re-raises the last error.

Policies are frozen dataclasses with dict/JSON round-tripping, so a CLI
flag, a config file and a test can all describe the same schedule.  The
adopters: :class:`~repro.scenarios.backends.HTTPBackend` escalates its
down-window along a policy (reset on success), ``store push``/``pull``
retry each transfer op under one (``--retries``), and
:func:`~repro.scenarios.batch.run_batch` bounds crashed-cell requeues
with its ``max_cell_retries`` budget.  ``docs/robustness.md`` is the
written failure-mode contract.
"""

import time
from dataclasses import asdict, dataclass, field, replace
from typing import Callable, Dict, Optional, Tuple, Type, TypeVar

from repro.common.errors import ConfigError
from repro.common.prng import stable_uniform

T = TypeVar("T")

#: attempts a transient-fault path makes by default (first try + retries)
DEFAULT_MAX_ATTEMPTS = 3


@dataclass(frozen=True)
class RetryPolicy:
    """A deterministic exponential-backoff schedule with caps.

    Attributes:
        max_attempts: total tries (the first attempt included); ``1``
            means "never retry".
        base_delay_s: the delay before the first retry.
        multiplier: geometric growth factor between consecutive delays.
        max_delay_s: ceiling any single delay is clamped to (applied
            before jitter).
        jitter: maximum fractional perturbation of each delay, in
            ``[0, 1)`` — ``0.1`` means each delay lands within ±10% of
            its nominal value, at a point fully determined by ``seed``
            and the attempt number.
        deadline_s: optional cap on total elapsed time; a retry whose
            sleep would overrun the deadline is not taken.
        seed: folds into the jitter derivation so distinct clients
            spread out while any one client replays exactly.
    """

    max_attempts: int = DEFAULT_MAX_ATTEMPTS
    base_delay_s: float = 0.2
    multiplier: float = 2.0
    max_delay_s: float = 30.0
    jitter: float = 0.1
    deadline_s: Optional[float] = None
    seed: int = 0

    def __post_init__(self) -> None:
        """Reject shapes that cannot describe a real schedule."""
        if self.max_attempts < 1:
            raise ConfigError("max_attempts must be >= 1 (1 = no retries)")
        if self.base_delay_s < 0 or self.max_delay_s < 0:
            raise ConfigError("retry delays cannot be negative")
        if self.multiplier < 1.0:
            raise ConfigError("multiplier must be >= 1.0 (backoff cannot "
                              "shrink)")
        if not 0.0 <= self.jitter < 1.0:
            raise ConfigError(f"jitter must be in [0, 1), got {self.jitter}")
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ConfigError("deadline_s must be positive (or None)")

    def delay_for(self, attempt: int) -> float:
        """The backoff before retry number ``attempt`` (1-based).

        Pure and deterministic: exponential growth from ``base_delay_s``,
        clamped to ``max_delay_s``, then jittered by a stable hash of
        ``(seed, attempt)`` — no RNG state, no wall clock.
        """
        if attempt < 1:
            raise ConfigError("retry attempts are numbered from 1")
        nominal = min(self.max_delay_s,
                      self.base_delay_s * self.multiplier ** (attempt - 1))
        if self.jitter:
            u = stable_uniform(f"retry:{self.seed}:{attempt}")
            nominal *= 1.0 + self.jitter * (2.0 * u - 1.0)
        return max(0.0, nominal)

    def schedule(self) -> Tuple[float, ...]:
        """Every delay this policy would sleep, in order (for reports)."""
        return tuple(self.delay_for(n)
                     for n in range(1, self.max_attempts))

    def call(self, fn: Callable[[], T], *,
             retry_on: Tuple[Type[BaseException], ...] = (Exception,),
             sleep: Callable[[float], None] = time.sleep,
             on_retry: Optional[Callable[[int, float, BaseException],
                                         None]] = None) -> T:
        """Run ``fn`` under this policy, re-raising after the caps trip.

        Args:
            fn: the zero-argument operation to attempt.
            retry_on: exception types that count as transient; anything
                else propagates immediately.
            sleep: injection point for tests (defaults to
                :func:`time.sleep`).
            on_retry: optional observer called as ``on_retry(attempt,
                delay_s, error)`` before each sleep — how the CLI narrates
                "retrying push in 0.4s".

        Returns:
            ``fn()``'s result from the first successful attempt.

        Raises:
            The last transient error, once ``max_attempts`` is exhausted
            or the next sleep would overrun ``deadline_s``.
        """
        start = time.monotonic()
        attempt = 1
        while True:
            try:
                return fn()
            except retry_on as exc:
                if attempt >= self.max_attempts:
                    raise
                delay = self.delay_for(attempt)
                if (self.deadline_s is not None
                        and time.monotonic() - start + delay
                        > self.deadline_s):
                    raise
                if on_retry is not None:
                    on_retry(attempt, delay, exc)
                sleep(delay)
                attempt += 1

    def with_seed(self, seed: int) -> "RetryPolicy":
        """This schedule re-keyed for another client (same caps/shape)."""
        return replace(self, seed=seed)

    def to_dict(self) -> Dict[str, object]:
        """Plain-dict form (JSON-ready; the inverse of :meth:`from_dict`)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "RetryPolicy":
        """Rebuild a policy from :meth:`to_dict` output, loudly.

        Unknown keys are rejected rather than ignored — a typo'd field in
        a JSON policy must not silently fall back to a default.
        """
        known = {f.name for f in cls.__dataclass_fields__.values()}
        unknown = set(data) - known
        if unknown:
            raise ConfigError(
                f"unknown RetryPolicy field(s) {sorted(unknown)}; "
                f"expected a subset of {sorted(known)}"
            )
        return cls(**data)


def no_retry() -> RetryPolicy:
    """A single-attempt policy (the explicit "fail fast" spelling)."""
    return RetryPolicy(max_attempts=1, base_delay_s=0.0, jitter=0.0)


def sync_retry_policy(retries: int = DEFAULT_MAX_ATTEMPTS - 1,
                      base_delay_s: float = 0.2,
                      seed: int = 0) -> RetryPolicy:
    """The ``store push``/``pull`` transfer policy (``--retries N``).

    ``retries`` counts *additional* attempts after the first, matching
    the CLI flag's meaning; ``retries=0`` fails on the first error.
    """
    if retries < 0:
        raise ConfigError("--retries cannot be negative")
    return RetryPolicy(max_attempts=retries + 1, base_delay_s=base_delay_s,
                       seed=seed)


@dataclass(frozen=True)
class BackoffState:
    """Mutable-by-replacement failure streak for a down-window adopter.

    :class:`~repro.scenarios.backends.HTTPBackend` keeps one of these per
    instance: each consecutive transport failure escalates the down
    window along ``policy.delay_for(streak)``, and any success resets the
    streak to zero — so a briefly-flaky remote recovers immediately while
    a dead one costs geometrically fewer probes.
    """

    policy: RetryPolicy = field(default_factory=RetryPolicy)
    streak: int = 0

    def after_failure(self) -> Tuple["BackoffState", float]:
        """The escalated state plus the down-window length to apply now.

        The streak is capped at ``max_attempts`` so the window saturates
        at the policy's largest delay instead of growing without bound.
        """
        streak = min(self.streak + 1, self.policy.max_attempts)
        return (replace(self, streak=streak),
                self.policy.delay_for(streak))

    def after_success(self) -> "BackoffState":
        """The reset state (a reachable remote clears its history)."""
        if self.streak == 0:
            return self
        return replace(self, streak=0)
