"""Constructors for cuDNN/cuBLAS/NCCL-style kernels.

Each function returns a :class:`~repro.kernels.kernel.KernelSpec` whose FLOP
and byte counts follow the standard analytical formulas for that operation.
Kernel *names* deliberately mimic the strings CUPTI reports for the real
libraries (``volta_sgemm_...``, ``scudnn_...``, ``vectorized_elementwise_kernel``,
``ncclAllReduceRingLLKernel_sum_f32``) because Daydream's optimization models
select tasks by name substring.
"""

from typing import Iterable

from repro.kernels.kernel import KernelKind, KernelSpec

FP32_BYTES = 4


# --- dense linear algebra -----------------------------------------------------

def sgemm(m: int, n: int, k: int, batch: int = 1, tag: str = "nn") -> KernelSpec:
    """Dense (batched) matrix multiply ``[m,k] @ [k,n]``."""
    flops = 2.0 * m * n * k * batch
    bytes_ = FP32_BYTES * batch * (m * k + k * n + m * n)
    return KernelSpec(
        name=f"volta_sgemm_128x64_{tag}",
        kind=KernelKind.GEMM,
        flops=flops,
        bytes=bytes_,
        tensor_core_eligible=True,
        metadata={"m": m, "n": n, "k": k, "batch": batch},
    )


# --- convolutions ---------------------------------------------------------------

def _conv_output_hw(h: int, w: int, kernel: int, stride: int, padding: int):
    oh = (h + 2 * padding - kernel) // stride + 1
    ow = (w + 2 * padding - kernel) // stride + 1
    return oh, ow


def conv2d_forward(
    batch: int, c_in: int, h: int, w: int, c_out: int,
    kernel: int, stride: int = 1, padding: int = 0,
) -> KernelSpec:
    """cuDNN convolution forward kernel."""
    oh, ow = _conv_output_hw(h, w, kernel, stride, padding)
    flops = 2.0 * batch * c_out * oh * ow * c_in * kernel * kernel
    bytes_ = FP32_BYTES * (
        batch * c_in * h * w            # input
        + c_out * c_in * kernel * kernel  # weights
        + batch * c_out * oh * ow         # output
    )
    return KernelSpec(
        name=f"scudnn_128x64_relu_interior_nn_v1_k{kernel}",
        kind=KernelKind.CONV,
        flops=flops,
        bytes=bytes_,
        tensor_core_eligible=True,
        metadata={"c_in": c_in, "c_out": c_out, "k": kernel, "stride": stride,
                  "output_bytes": FP32_BYTES * batch * c_out * oh * ow},
    )


def conv2d_backward_data(
    batch: int, c_in: int, h: int, w: int, c_out: int,
    kernel: int, stride: int = 1, padding: int = 0,
) -> KernelSpec:
    """cuDNN convolution backward-data (dX) kernel: same cost as forward."""
    fwd = conv2d_forward(batch, c_in, h, w, c_out, kernel, stride, padding)
    return KernelSpec(
        name=f"scudnn_128x64_dgrad_interior_nn_v1_k{kernel}",
        kind=KernelKind.CONV,
        flops=fwd.flops,
        bytes=fwd.bytes,
        tensor_core_eligible=True,
        metadata=dict(fwd.metadata),
    )


def conv2d_backward_filter(
    batch: int, c_in: int, h: int, w: int, c_out: int,
    kernel: int, stride: int = 1, padding: int = 0,
) -> KernelSpec:
    """cuDNN convolution backward-filter (dW) kernel: same cost as forward."""
    fwd = conv2d_forward(batch, c_in, h, w, c_out, kernel, stride, padding)
    return KernelSpec(
        name=f"scudnn_128x64_wgrad_interior_nn_v1_k{kernel}",
        kind=KernelKind.CONV,
        flops=fwd.flops,
        bytes=fwd.bytes,
        tensor_core_eligible=True,
        metadata=dict(fwd.metadata),
    )


# --- pointwise / normalization ---------------------------------------------------

def elementwise(numel: float, reads: int = 1, writes: int = 1,
                flops_per_elem: float = 1.0, tag: str = "") -> KernelSpec:
    """Generic pointwise kernel (``at::native::vectorized_elementwise_kernel``)."""
    suffix = f"_{tag}" if tag else ""
    return KernelSpec(
        name=f"vectorized_elementwise_kernel{suffix}",
        kind=KernelKind.ELEMENTWISE,
        flops=numel * flops_per_elem,
        bytes=FP32_BYTES * numel * (reads + writes),
    )


def relu_forward(numel: float) -> KernelSpec:
    """ReLU activation forward."""
    spec = elementwise(numel, reads=1, writes=1, tag="RELU")
    return spec


def relu_backward(numel: float) -> KernelSpec:
    """ReLU activation backward (needs forward output + grad)."""
    return elementwise(numel, reads=2, writes=1, tag="RELU_bwd")


def add_tensor(numel: float) -> KernelSpec:
    """Residual/bias add."""
    return elementwise(numel, reads=2, writes=1, tag="add")


def batchnorm_forward(numel: float) -> KernelSpec:
    """Batchnorm forward: statistics collection + input transform."""
    return KernelSpec(
        name="batch_norm_collect_statistics_kernel",
        kind=KernelKind.BATCHNORM,
        flops=numel * 4.0,
        bytes=FP32_BYTES * numel * 3,
    )


def batchnorm_backward(numel: float) -> KernelSpec:
    """Batchnorm backward: reduces gradients and rescales."""
    return KernelSpec(
        name="batch_norm_backward_reduce_kernel",
        kind=KernelKind.BATCHNORM,
        flops=numel * 5.0,
        bytes=FP32_BYTES * numel * 4,
    )


def layernorm_forward(numel: float) -> KernelSpec:
    """LayerNorm forward (Welford + affine transform)."""
    return KernelSpec(
        name="cuApplyLayerNorm",
        kind=KernelKind.LAYERNORM,
        flops=numel * 5.0,
        bytes=FP32_BYTES * numel * 3,
    )


def layernorm_backward(numel: float) -> KernelSpec:
    """LayerNorm backward."""
    return KernelSpec(
        name="cuComputeGradInputLayerNorm",
        kind=KernelKind.LAYERNORM,
        flops=numel * 7.0,
        bytes=FP32_BYTES * numel * 4,
    )


def softmax_forward(numel: float) -> KernelSpec:
    """Row-wise softmax forward."""
    return KernelSpec(
        name="softmax_warp_forward",
        kind=KernelKind.SOFTMAX,
        flops=numel * 4.0,
        bytes=FP32_BYTES * numel * 2,
    )


def softmax_backward(numel: float) -> KernelSpec:
    """Row-wise softmax backward."""
    return KernelSpec(
        name="softmax_warp_backward",
        kind=KernelKind.SOFTMAX,
        flops=numel * 5.0,
        bytes=FP32_BYTES * numel * 3,
    )


def dropout(numel: float) -> KernelSpec:
    """Fused dropout (mask generation + apply)."""
    return KernelSpec(
        name="fused_dropout_kernel",
        kind=KernelKind.DROPOUT,
        flops=numel * 2.0,
        bytes=FP32_BYTES * numel * 2,
    )


def pooling_forward(numel_out: float, window: int = 4) -> KernelSpec:
    """Max/avg pooling forward."""
    return KernelSpec(
        name="pooling_fw_4d_kernel",
        kind=KernelKind.POOLING,
        flops=numel_out * window,
        bytes=FP32_BYTES * numel_out * (window + 1),
    )


def pooling_backward(numel_out: float, window: int = 4) -> KernelSpec:
    """Max/avg pooling backward."""
    return KernelSpec(
        name="pooling_bw_4d_kernel",
        kind=KernelKind.POOLING,
        flops=numel_out * window,
        bytes=FP32_BYTES * numel_out * (window + 1),
    )


def embedding_forward(batch_tokens: float, dim: int) -> KernelSpec:
    """Embedding gather."""
    numel = batch_tokens * dim
    return KernelSpec(
        name="indexSelectLargeIndex",
        kind=KernelKind.EMBEDDING,
        flops=0.0,
        bytes=FP32_BYTES * numel * 2,
    )


def embedding_backward(batch_tokens: float, dim: int) -> KernelSpec:
    """Embedding scatter-add backward."""
    numel = batch_tokens * dim
    return KernelSpec(
        name="embedding_backward_feature_kernel",
        kind=KernelKind.EMBEDDING,
        flops=numel,
        bytes=FP32_BYTES * numel * 3,
    )


def reduction(numel: float, tag: str = "sum") -> KernelSpec:
    """Full reduction (loss, grad-norm)."""
    return KernelSpec(
        name=f"reduce_kernel_{tag}",
        kind=KernelKind.REDUCTION,
        flops=numel,
        bytes=FP32_BYTES * numel,
    )


# --- optimizer ------------------------------------------------------------------

#: names of the per-tensor pointwise kernels one Adam step issues in PyTorch.
ADAM_STEP_KERNELS = (
    "PointwiseApply2_mul_exp_avg",       # m = b1*m
    "PointwiseApply2_add_grad",          # m += (1-b1)*g
    "PointwiseApply2_mul_exp_avg_sq",    # v = b2*v
    "PointwiseApply3_addcmul",           # v += (1-b2)*g*g
    "PointwiseApply1_sqrt",              # sqrt(v)
    "PointwiseApply2_add_eps",           # + eps
    "PointwiseApply3_addcdiv",           # p -= lr*m/denom
    "PointwiseApply2_weight_decay",      # p -= lr*wd*p
    "PointwiseApply1_bias_corr1",
    "PointwiseApply1_bias_corr2",
    "PointwiseApply2_grad_scale",
    "PointwiseApply1_zero_grad",
    "PointwiseApply2_step_count",
)


def adam_step_kernels(param_numel: float) -> Iterable[KernelSpec]:
    """The sequence of pointwise kernels one Adam update issues per tensor.

    PyTorch's unfused Adam launches ~13 small kernels per parameter tensor;
    that count reproduces the paper's observation of 2633 weight-update
    kernels for BERT_base and 5164 for BERT_large (Section 6.3).
    """
    for name in ADAM_STEP_KERNELS:
        yield KernelSpec(
            name=name,
            kind=KernelKind.OPTIMIZER,
            flops=param_numel * 1.0,
            bytes=FP32_BYTES * param_numel * 2,
        )


def sgd_step_kernels(param_numel: float) -> Iterable[KernelSpec]:
    """SGD with momentum: two pointwise kernels per tensor."""
    for name in ("PointwiseApply2_momentum", "PointwiseApply2_sgd_update"):
        yield KernelSpec(
            name=name,
            kind=KernelKind.OPTIMIZER,
            flops=param_numel,
            bytes=FP32_BYTES * param_numel * 2,
        )


def fused_adam_kernel(total_param_numel: float) -> KernelSpec:
    """Apex FusedAdam: one multi-tensor kernel updating every parameter."""
    return KernelSpec(
        name="multi_tensor_apply_kernel_fused_adam",
        kind=KernelKind.OPTIMIZER,
        flops=total_param_numel * 13.0,
        bytes=FP32_BYTES * total_param_numel * 8,
    )


# --- memory copies ----------------------------------------------------------------

def memcpy_h2d(size_bytes: float) -> KernelSpec:
    """Host-to-device copy (input batch upload)."""
    return KernelSpec(
        name="CUDA memcpy HtoD",
        kind=KernelKind.MEMCPY_H2D,
        bytes=size_bytes,
    )


def memcpy_d2h(size_bytes: float) -> KernelSpec:
    """Device-to-host copy (loss readback)."""
    return KernelSpec(
        name="CUDA memcpy DtoH",
        kind=KernelKind.MEMCPY_D2H,
        bytes=size_bytes,
    )


# --- communication -----------------------------------------------------------------

def nccl_allreduce(size_bytes: float) -> KernelSpec:
    """NCCL ring all-reduce kernel for one gradient bucket."""
    return KernelSpec(
        name="ncclAllReduceRingLLKernel_sum_f32",
        kind=KernelKind.COMM,
        bytes=size_bytes * 2,   # in-place read+write on device
        metadata={"size_bytes": size_bytes},
    )


def nccl_reduce_scatter(size_bytes: float) -> KernelSpec:
    """NCCL reduce-scatter kernel (BlueConnect decomposition)."""
    return KernelSpec(
        name="ncclReduceScatterRingLLKernel_sum_f32",
        kind=KernelKind.COMM,
        bytes=size_bytes,
        metadata={"size_bytes": size_bytes},
    )


def nccl_allgather(size_bytes: float) -> KernelSpec:
    """NCCL all-gather kernel (BlueConnect decomposition)."""
    return KernelSpec(
        name="ncclAllGatherRingLLKernel_f32",
        kind=KernelKind.COMM,
        bytes=size_bytes,
        metadata={"size_bytes": size_bytes},
    )
