"""Kernel specifications and the analytical (roofline) cost model."""

from repro.kernels.kernel import KernelKind, KernelSpec
from repro.kernels.costmodel import KernelCostModel
from repro.kernels import library

__all__ = ["KernelKind", "KernelSpec", "KernelCostModel", "library"]
