"""Roofline-style kernel duration model.

``duration = max(flops / achieved_flops, bytes / achieved_bw) + fixed overhead``

with a small deterministic per-kernel jitter standing in for all the
real-world effects a formula misses (tiling, occupancy, cache reuse).  The
jitter is keyed by the kernel's identity so the same workload always yields
the same trace.

Half precision:

* **tensor-core-eligible** kernels (GEMM/conv) run against the fp16 peak;
  the *achieved* speedup over fp32 is clamped to a deterministic 2.4-3.2x
  band, matching NVIDIA's "up to 3x" guidance the paper leans on;
* memory-bound kernels halve their DRAM traffic, i.e. roughly 2x faster;
* fp16 also halves memcpy payloads.

This is the ground-truth side of the reproduction.  Daydream's AMP *model*
(Algorithm 3) never sees this code: it applies flat /3 and /2 heuristics to
the fp32 trace, and the difference between the two is the reproduced
prediction error of Figure 5.
"""

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.common.errors import ConfigError
from repro.common.prng import biased_factor, jitter_factor
from repro.hw.device import GPUSpec
from repro.kernels.kernel import KernelKind, KernelSpec

# Durations are pure functions of (gpu, jitter, kernel, precision, salt);
# sweeps re-run identical engine iterations dozens of times (e.g. Figure 8's
# ground truth per bandwidth/cluster cell), so memoize across runs.  The
# cache is value-keyed — kernel specs are recreated per run in places (the
# optimizer-step generators) but compare equal, and KernelSpec caches its
# hash — bounded, and fork-shared read-mostly by sweep workers.
_DURATION_CACHE: Dict[Tuple, float] = {}
_DURATION_CACHE_MAX = 1 << 20

# Achieved tensor-core speedup band for compute-bound kernels.
_TC_SPEEDUP_LOW = 2.2
_TC_SPEEDUP_HIGH = 3.0
# Achieved fp16 speedup band for memory-bound kernels (traffic halves, but
# fixed overheads do not).
_MEM_SPEEDUP_LOW = 1.7
_MEM_SPEEDUP_HIGH = 2.0


@dataclass(frozen=True)
class KernelCostModel:
    """Maps a :class:`KernelSpec` to a duration on a given GPU.

    Attributes:
        gpu: the device executing the kernel.
        jitter: relative spread of the deterministic per-kernel perturbation.
    """

    gpu: GPUSpec
    jitter: float = 0.03

    def duration_us(
        self,
        kernel: KernelSpec,
        precision: str = "fp32",
        key_salt: str = "",
    ) -> float:
        """Duration of ``kernel`` in microseconds.

        Args:
            kernel: the kernel to execute.
            precision: ``"fp32"`` or ``"fp16"`` (AMP ground truth).
            key_salt: extra string mixed into the jitter key, letting callers
                distinguish e.g. repeated instances of one kernel.
        """
        if precision not in ("fp32", "fp16"):
            raise ConfigError(f"unknown precision {precision!r}")
        # key on the full GPUSpec (frozen, value-hashable), not just its
        # name: two same-named specs with different roofline parameters
        # must never share durations
        cache_key = (self.gpu, self.jitter, kernel, precision, key_salt)
        cached = _DURATION_CACHE.get(cache_key)
        if cached is not None:
            return cached
        base = self._fp32_duration_us(kernel)
        if precision == "fp16":
            base = base / self._fp16_speedup(kernel)
        key = f"{self.gpu.name}/{kernel.name}/{kernel.flops:.0f}/{kernel.bytes:.0f}/{key_salt}"
        duration = base * jitter_factor(key, self.jitter)
        if len(_DURATION_CACHE) >= _DURATION_CACHE_MAX:
            _DURATION_CACHE.clear()
        _DURATION_CACHE[cache_key] = duration
        return duration

    # -- internals -------------------------------------------------------------

    def _fp32_duration_us(self, kernel: KernelSpec) -> float:
        if kernel.kind.is_memcpy:
            if kernel.kind is KernelKind.MEMCPY_D2D:
                rate = self.gpu.achieved_bytes_per_us()
            else:
                rate = self.gpu.pcie_bytes_per_us()
            return kernel.bytes / rate + self.gpu.kernel_overhead_us
        compute_us = kernel.flops / self.gpu.achieved_flops_per_us("fp32")
        memory_us = kernel.bytes / self.gpu.achieved_bytes_per_us()
        return max(compute_us, memory_us) + self.gpu.kernel_overhead_us

    def _fp16_speedup(self, kernel: KernelSpec) -> float:
        """Achieved end-to-end fp16 speedup of this kernel vs fp32."""
        key = f"fp16/{self.gpu.name}/{kernel.name}/{kernel.flops:.0f}/{kernel.bytes:.0f}"
        if kernel.kind.is_memcpy:
            # payload halves; overheads do not
            return biased_factor(key, 1.8, 2.0)
        if kernel.tensor_core_eligible and self.gpu.has_tensor_cores:
            return biased_factor(key, _TC_SPEEDUP_LOW, _TC_SPEEDUP_HIGH)
        if kernel.kind.is_compute_bound:
            # compute-bound but no tensor cores: modest fp16 ALU gain
            return biased_factor(key, 1.1, 1.3)
        return biased_factor(key, _MEM_SPEEDUP_LOW, _MEM_SPEEDUP_HIGH)

    def fused_duration_us(self, kernels, name: str = "fused_kernel") -> float:
        """Duration of a kernel fusing ``kernels`` into one launch.

        Fusion keeps all the FLOPs but eliminates the per-kernel fixed
        overhead and the intermediate DRAM round-trips; we model the fused
        kernel as the roofline of summed FLOPs and ~60% of summed bytes, plus
        a single fixed overhead.  This is the *ground-truth* fusion cost —
        Daydream's FusedAdam model instead estimates the fused duration as
        the plain sum of the removed kernels' durations (paper Algorithm 4),
        which overestimates and yields the Figure-7 error.
        """
        kernels = list(kernels)
        if not kernels:
            raise ConfigError("cannot fuse an empty kernel list")
        total_flops = sum(k.flops for k in kernels)
        total_bytes = sum(k.bytes for k in kernels) * 0.6
        compute_us = total_flops / self.gpu.achieved_flops_per_us("fp32")
        memory_us = total_bytes / self.gpu.achieved_bytes_per_us()
        key = f"fused/{self.gpu.name}/{name}/{total_flops:.0f}/{total_bytes:.0f}"
        return (max(compute_us, memory_us) + self.gpu.kernel_overhead_us) * jitter_factor(
            key, self.jitter
        )
