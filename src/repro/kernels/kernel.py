"""Kernel specifications.

A :class:`KernelSpec` is the unit of work the framework engine launches on
the (simulated) GPU: a named kernel with FLOP and byte counts, from which the
cost model derives a duration.  Names follow cuDNN/cuBLAS conventions
(``sgemm``, ``scudnn``, ``elementwise``, ...) because Daydream's published
transformation heuristics *select kernels by name substring* — e.g. the AMP
model speeds kernels whose name contains ``sgemm`` or ``scudnn`` by 3x and
everything else by 2x (paper Algorithm 3).
"""

import enum
from dataclasses import dataclass, field, replace
from typing import Dict

from repro.common.errors import ConfigError


class KernelKind(enum.Enum):
    """Coarse classification used by the cost model and by what-if models."""

    GEMM = "gemm"                    # dense matrix multiply (cuBLAS)
    CONV = "conv"                    # convolution (cuDNN)
    ELEMENTWISE = "elementwise"      # pointwise arithmetic / activation
    BATCHNORM = "batchnorm"          # batch-normalization statistics/apply
    LAYERNORM = "layernorm"
    SOFTMAX = "softmax"
    REDUCTION = "reduction"          # sums, norms, loss reductions
    EMBEDDING = "embedding"          # gather / scatter-add
    POOLING = "pooling"
    DROPOUT = "dropout"
    OPTIMIZER = "optimizer"          # weight-update elementwise ops
    MEMCPY_H2D = "memcpy_h2d"
    MEMCPY_D2H = "memcpy_d2h"
    MEMCPY_D2D = "memcpy_d2d"
    COMM = "comm"                    # NCCL / parameter-server primitive
    MISC = "misc"

    @property
    def is_memcpy(self) -> bool:
        return self in (
            KernelKind.MEMCPY_H2D,
            KernelKind.MEMCPY_D2H,
            KernelKind.MEMCPY_D2D,
        )

    @property
    def is_compute_bound(self) -> bool:
        """Kernels that saturate ALUs rather than memory bandwidth."""
        return self in (KernelKind.GEMM, KernelKind.CONV)


@dataclass(frozen=True)
class KernelSpec:
    """One GPU kernel (or memory copy) to be executed by the engine.

    Attributes:
        name: cuDNN/cuBLAS-style kernel name (substring-matchable).
        kind: coarse classification for the cost model.
        flops: floating-point operations performed.
        bytes: DRAM traffic in bytes (reads + writes).
        tensor_core_eligible: can use tensor cores under fp16 (GEMM/conv).
        metadata: free-form annotations (gradient size, bucket id, ...).
    """

    name: str
    kind: KernelKind
    flops: float = 0.0
    bytes: float = 0.0
    tensor_core_eligible: bool = False
    metadata: Dict[str, object] = field(default_factory=dict, compare=False)

    def __post_init__(self) -> None:
        if self.flops < 0 or self.bytes < 0:
            raise ConfigError(f"negative flops/bytes in kernel {self.name!r}")
        if not self.name:
            raise ConfigError("kernel name must be non-empty")
        # specs key the kernel-duration memo; cache the hash of the compare
        # fields once (metadata is compare=False and stays excluded)
        object.__setattr__(self, "_hash", hash(
            (self.name, self.kind, self.flops, self.bytes,
             self.tensor_core_eligible)))

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if other.__class__ is KernelSpec:
            return (self.name == other.name and self.kind is other.kind
                    and self.flops == other.flops
                    and self.bytes == other.bytes
                    and self.tensor_core_eligible == other.tensor_core_eligible)
        return NotImplemented

    def arithmetic_intensity(self) -> float:
        """FLOPs per DRAM byte; infinite for pure-compute, 0 for pure-copy."""
        if self.bytes == 0:
            return float("inf") if self.flops > 0 else 0.0
        return self.flops / self.bytes

    def with_metadata(self, **kwargs: object) -> "KernelSpec":
        """Return a copy with extra metadata entries merged in."""
        merged = dict(self.metadata)
        merged.update(kwargs)
        return replace(self, metadata=merged)

    def scaled(self, flop_factor: float = 1.0, byte_factor: float = 1.0) -> "KernelSpec":
        """Return a copy with flops/bytes scaled (e.g. layer-dimension change)."""
        if flop_factor < 0 or byte_factor < 0:
            raise ConfigError("scale factors must be non-negative")
        return replace(
            self, flops=self.flops * flop_factor, bytes=self.bytes * byte_factor
        )
