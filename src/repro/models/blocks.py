"""Reusable layer constructors shared by the model zoo.

Each helper builds a :class:`~repro.models.base.LayerSpec` with realistic
forward/backward kernel sequences and parameter tensors for one common layer
type.  Model files compose these into full networks.
"""

from typing import List

from repro.kernels import library as K
from repro.models.base import LayerSpec, ParamTensor


def conv_layer(
    name: str,
    batch: int,
    c_in: int,
    h: int,
    w: int,
    c_out: int,
    kernel: int,
    stride: int = 1,
    padding: int = 0,
    bias: bool = False,
) -> LayerSpec:
    """2-D convolution: one cuDNN kernel forward, dgrad + wgrad backward."""
    fwd = [K.conv2d_forward(batch, c_in, h, w, c_out, kernel, stride, padding)]
    bwd = [
        K.conv2d_backward_data(batch, c_in, h, w, c_out, kernel, stride, padding),
        K.conv2d_backward_filter(batch, c_in, h, w, c_out, kernel, stride, padding),
    ]
    params = [ParamTensor(f"{name}.weight", c_out * c_in * kernel * kernel)]
    oh, ow = _out_hw(h, w, kernel, stride, padding)
    if bias:
        params.append(ParamTensor(f"{name}.bias", c_out))
        fwd.append(K.add_tensor(batch * c_out * oh * ow))
        bwd.append(K.reduction(batch * c_out * oh * ow, tag="bias_grad"))
    return LayerSpec(name=name, kind="conv", forward_kernels=fwd,
                     backward_kernels=bwd, params=params)


def batchnorm_layer(name: str, batch: int, channels: int, h: int, w: int) -> LayerSpec:
    """2-D batch normalization."""
    numel = batch * channels * h * w
    return LayerSpec(
        name=name,
        kind="batchnorm",
        forward_kernels=[K.batchnorm_forward(numel)],
        backward_kernels=[K.batchnorm_backward(numel)],
        params=[
            ParamTensor(f"{name}.weight", channels),
            ParamTensor(f"{name}.bias", channels),
        ],
    )


def relu_layer(name: str, numel: int) -> LayerSpec:
    """In-place ReLU activation."""
    return LayerSpec(
        name=name,
        kind="relu",
        forward_kernels=[K.relu_forward(numel)],
        backward_kernels=[K.relu_backward(numel)],
    )


def add_layer(name: str, numel: int) -> LayerSpec:
    """Residual addition (no parameters)."""
    return LayerSpec(
        name=name,
        kind="add",
        forward_kernels=[K.add_tensor(numel)],
        backward_kernels=[K.add_tensor(numel)],
    )


def pool_layer(name: str, numel_out: int, window: int = 4) -> LayerSpec:
    """Max/avg pooling."""
    return LayerSpec(
        name=name,
        kind="pool",
        forward_kernels=[K.pooling_forward(numel_out, window)],
        backward_kernels=[K.pooling_backward(numel_out, window)],
    )


def linear_layer(
    name: str,
    batch_rows: int,
    in_features: int,
    out_features: int,
    bias: bool = True,
) -> LayerSpec:
    """Fully-connected layer: sgemm forward, dgrad + wgrad sgemms backward."""
    fwd = [K.sgemm(batch_rows, out_features, in_features, tag="nn")]
    bwd = [
        K.sgemm(batch_rows, in_features, out_features, tag="nt"),  # dX
        K.sgemm(in_features, out_features, batch_rows, tag="tn"),  # dW
    ]
    params = [ParamTensor(f"{name}.weight", in_features * out_features)]
    if bias:
        params.append(ParamTensor(f"{name}.bias", out_features))
        fwd.append(K.add_tensor(batch_rows * out_features))
        bwd.append(K.reduction(batch_rows * out_features, tag="bias_grad"))
    return LayerSpec(name=name, kind="linear", forward_kernels=fwd,
                     backward_kernels=bwd, params=params)


def dropout_layer(name: str, numel: int) -> LayerSpec:
    """Fused dropout layer."""
    return LayerSpec(
        name=name,
        kind="dropout",
        forward_kernels=[K.dropout(numel)],
        backward_kernels=[K.dropout(numel)],
    )


def embedding_layer(
    name: str, batch_tokens: int, vocab: int, dim: int
) -> LayerSpec:
    """Token embedding lookup."""
    return LayerSpec(
        name=name,
        kind="embedding",
        forward_kernels=[K.embedding_forward(batch_tokens, dim)],
        backward_kernels=[K.embedding_backward(batch_tokens, dim)],
        params=[ParamTensor(f"{name}.weight", vocab * dim)],
    )


def loss_layer(name: str, batch_rows: int, classes: int) -> LayerSpec:
    """Softmax cross-entropy loss head."""
    numel = batch_rows * classes
    return LayerSpec(
        name=name,
        kind="loss",
        forward_kernels=[K.softmax_forward(numel), K.reduction(batch_rows, tag="loss")],
        backward_kernels=[K.softmax_backward(numel)],
    )


def _out_hw(h: int, w: int, kernel: int, stride: int, padding: int):
    oh = (h + 2 * padding - kernel) // stride + 1
    ow = (w + 2 * padding - kernel) // stride + 1
    return oh, ow


def conv_bn_relu(
    prefix: str,
    batch: int,
    c_in: int,
    h: int,
    w: int,
    c_out: int,
    kernel: int,
    stride: int = 1,
    padding: int = 0,
) -> List[LayerSpec]:
    """The ubiquitous CNN building block: conv -> batchnorm -> ReLU."""
    oh, ow = _out_hw(h, w, kernel, stride, padding)
    return [
        conv_layer(f"{prefix}.conv", batch, c_in, h, w, c_out, kernel, stride, padding),
        batchnorm_layer(f"{prefix}.bn", batch, c_out, oh, ow),
        relu_layer(f"{prefix}.relu", batch * c_out * oh * ow),
    ]
