"""DNN model zoo: layer graphs for the paper's five evaluation models."""

from repro.models.base import LayerSpec, ModelSpec, ParamTensor, Phase
from repro.models.registry import available_models, build_model

__all__ = [
    "LayerSpec",
    "ModelSpec",
    "ParamTensor",
    "Phase",
    "available_models",
    "build_model",
]
