"""DenseNet-121 (Huang et al.).

DenseNet is the batchnorm-heavy CNN the paper uses to evaluate the
*reconstructing batchnorm* optimization (Section 6.4): every dense unit is
BN -> ReLU -> 1x1 conv -> BN -> ReLU -> 3x3 conv, so a large fraction of
runtime sits in memory-bound normalization/activation kernels — exactly what
Jung et al.'s restructuring attacks.
"""

from typing import List

from repro.models.base import LayerSpec, ModelSpec
from repro.models.blocks import (
    batchnorm_layer,
    conv_layer,
    linear_layer,
    loss_layer,
    pool_layer,
    relu_layer,
)

IMAGENET_SAMPLE_BYTES = 3 * 224 * 224 * 4

GROWTH_RATE = 32
BN_SIZE = 4  # bottleneck width multiplier: 1x1 conv outputs BN_SIZE * k
BLOCK_CONFIG = (6, 12, 24, 16)  # dense units per block (DenseNet-121)


def _dense_unit(prefix: str, batch: int, c_in: int, h: int) -> List[LayerSpec]:
    """One dense unit: BN-ReLU-Conv1x1(4k) -> BN-ReLU-Conv3x3(k)."""
    mid = BN_SIZE * GROWTH_RATE
    layers: List[LayerSpec] = []
    layers.append(batchnorm_layer(f"{prefix}.norm1", batch, c_in, h, h))
    layers.append(relu_layer(f"{prefix}.relu1", batch * c_in * h * h))
    layers.append(conv_layer(f"{prefix}.conv1", batch, c_in, h, h, mid, 1))
    layers.append(batchnorm_layer(f"{prefix}.norm2", batch, mid, h, h))
    layers.append(relu_layer(f"{prefix}.relu2", batch * mid * h * h))
    layers.append(conv_layer(f"{prefix}.conv2", batch, mid, h, h, GROWTH_RATE, 3, 1, 1))
    return layers


def _transition(prefix: str, batch: int, c_in: int, h: int) -> List[LayerSpec]:
    """Transition: BN-ReLU-Conv1x1(c/2) -> 2x2 avgpool."""
    c_out = c_in // 2
    layers: List[LayerSpec] = []
    layers.append(batchnorm_layer(f"{prefix}.norm", batch, c_in, h, h))
    layers.append(relu_layer(f"{prefix}.relu", batch * c_in * h * h))
    layers.append(conv_layer(f"{prefix}.conv", batch, c_in, h, h, c_out, 1))
    layers.append(pool_layer(f"{prefix}.pool", batch * c_out * (h // 2) * (h // 2)))
    return layers


def build_densenet121(batch_size: int = 64) -> ModelSpec:
    """Build the DenseNet-121 training workload."""
    b = batch_size
    layers: List[LayerSpec] = []
    layers.append(conv_layer("stem.conv", b, 3, 224, 224, 64, 7, 2, 3))
    layers.append(batchnorm_layer("stem.bn", b, 64, 112, 112))
    layers.append(relu_layer("stem.relu", b * 64 * 112 * 112))
    layers.append(pool_layer("stem.maxpool", b * 64 * 56 * 56, window=9))

    channels = 64
    h = 56
    for block_idx, n_units in enumerate(BLOCK_CONFIG, start=1):
        for unit_idx in range(1, n_units + 1):
            prefix = f"denseblock{block_idx}.denselayer{unit_idx}"
            layers.extend(_dense_unit(prefix, b, channels, h))
            channels += GROWTH_RATE
        if block_idx != len(BLOCK_CONFIG):
            layers.extend(_transition(f"transition{block_idx}", b, channels, h))
            channels //= 2
            h //= 2

    layers.append(batchnorm_layer("final.bn", b, channels, h, h))
    layers.append(relu_layer("final.relu", b * channels * h * h))
    layers.append(pool_layer("final.avgpool", b * channels, window=h * h))
    layers.append(linear_layer("classifier", b, channels, 1000))
    layers.append(loss_layer("loss", b, 1000))

    return ModelSpec(
        name="densenet121",
        layers=layers,
        batch_size=batch_size,
        input_sample_bytes=IMAGENET_SAMPLE_BYTES,
        default_optimizer="sgd",
        cpu_gap_scale=1.0,
        application="image_classification",
    )
