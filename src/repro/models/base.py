"""Layer- and model-level specifications.

A :class:`ModelSpec` is an ordered list of :class:`LayerSpec` objects — the
same abstraction a framework's layer modules provide, and the abstraction
Daydream maps low-level tasks back onto.  Each layer carries:

* the GPU kernels its **forward** and **backward** phases launch (in launch
  order), and
* its **parameter tensors**, from which the optimizer lowering derives the
  weight-update kernels and the communication payloads (gradient sizes).

Nothing here knows about time: durations come from the cost model, and
ordering/overlap from the framework engine.
"""

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Sequence

from repro.common.errors import ConfigError
from repro.kernels.kernel import KernelSpec

FP32_BYTES = 4


class Phase(Enum):
    """The three phases of a training iteration (paper Section 2.1)."""

    FORWARD = "forward"
    BACKWARD = "backward"
    WEIGHT_UPDATE = "weight_update"


@dataclass(frozen=True)
class ParamTensor:
    """One learnable tensor (weight or bias) of a layer."""

    name: str
    numel: int

    def __post_init__(self) -> None:
        if self.numel <= 0:
            raise ConfigError(f"parameter {self.name!r} must have numel > 0")

    @property
    def grad_bytes(self) -> int:
        """Size of this tensor's fp32 gradient in bytes."""
        return self.numel * FP32_BYTES


@dataclass
class LayerSpec:
    """One DNN layer: kernels per phase plus parameter tensors.

    Attributes:
        name: unique layer name within the model (e.g. ``layer3.2.conv1``).
        kind: coarse layer type (``conv``, ``batchnorm``, ``relu``,
            ``linear``, ``lstm``, ``attention``, ``embedding``, ...), used by
            layer-level what-if models (reconstructing batchnorm, MetaFlow).
        forward_kernels: GPU kernels the forward pass launches, in order.
        backward_kernels: GPU kernels the backward pass launches, in order.
        params: learnable tensors (empty for activations/pooling).
    """

    name: str
    kind: str
    forward_kernels: List[KernelSpec] = field(default_factory=list)
    backward_kernels: List[KernelSpec] = field(default_factory=list)
    params: List[ParamTensor] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigError("layer name must be non-empty")

    @property
    def param_numel(self) -> int:
        """Total learnable elements in this layer."""
        return sum(p.numel for p in self.params)

    @property
    def grad_bytes(self) -> int:
        """Total gradient payload this layer contributes, in bytes."""
        return sum(p.grad_bytes for p in self.params)

    def kernels(self, phase: Phase) -> List[KernelSpec]:
        """Kernels launched by the given phase of this layer."""
        if phase is Phase.FORWARD:
            return self.forward_kernels
        if phase is Phase.BACKWARD:
            return self.backward_kernels
        raise ConfigError("weight-update kernels come from the optimizer lowering")


@dataclass
class ModelSpec:
    """A full DNN training workload description.

    Attributes:
        name: model identifier (``resnet50``, ``bert_large``, ...).
        layers: layers in forward execution order.
        batch_size: mini-batch size this spec was built for.
        input_sample_bytes: bytes of one input sample (H2D copy sizing).
        default_optimizer: ``"adam"`` or ``"sgd"`` — what the paper trains
            this model with.
        cpu_gap_scale: multiplier on the framework's per-kernel dispatch gap.
            Transformer implementations (BERT) have far more Python/front-end
            overhead per kernel than static CNN graphs; this knob reproduces
            the paper's observation that BERT is CPU-bound.
        application: task family, for Table-2-style reporting.
    """

    name: str
    layers: List[LayerSpec]
    batch_size: int
    input_sample_bytes: int
    default_optimizer: str = "sgd"
    cpu_gap_scale: float = 1.0
    application: str = ""

    def __post_init__(self) -> None:
        if self.batch_size <= 0:
            raise ConfigError("batch_size must be positive")
        if self.default_optimizer not in ("sgd", "adam"):
            raise ConfigError(f"unknown optimizer {self.default_optimizer!r}")
        names = [layer.name for layer in self.layers]
        if len(names) != len(set(names)):
            dupes = sorted({n for n in names if names.count(n) > 1})
            raise ConfigError(f"duplicate layer names: {dupes}")
        self._by_name: Dict[str, LayerSpec] = {l.name: l for l in self.layers}

    # -- lookups ---------------------------------------------------------------

    def layer(self, name: str) -> LayerSpec:
        """Layer by exact name; raises ``ConfigError`` if unknown."""
        try:
            return self._by_name[name]
        except KeyError:
            raise ConfigError(f"model {self.name!r} has no layer {name!r}") from None

    def layers_of_kind(self, kind: str) -> List[LayerSpec]:
        """All layers of a given kind, in forward order."""
        return [l for l in self.layers if l.kind == kind]

    # -- aggregate statistics ---------------------------------------------------

    @property
    def param_numel(self) -> int:
        """Total learnable parameters."""
        return sum(l.param_numel for l in self.layers)

    @property
    def param_tensors(self) -> List[ParamTensor]:
        """All parameter tensors in forward-layer order."""
        return [p for l in self.layers for p in l.params]

    @property
    def grad_bytes(self) -> int:
        """Total gradient payload per iteration in bytes."""
        return sum(l.grad_bytes for l in self.layers)

    @property
    def input_batch_bytes(self) -> int:
        """Bytes of one mini-batch of inputs."""
        return self.input_sample_bytes * self.batch_size

    def backward_order(self) -> Sequence[LayerSpec]:
        """Layers in backward execution order (reverse of forward)."""
        return list(reversed(self.layers))

    def kernel_count(self, phase: Phase) -> int:
        """Number of GPU kernels launched in a forward or backward pass."""
        return sum(len(l.kernels(phase)) for l in self.layers)

    def summary(self) -> str:
        """Human-readable one-paragraph summary."""
        return (
            f"{self.name}: {len(self.layers)} layers, "
            f"{self.param_numel / 1e6:.1f}M params, "
            f"batch={self.batch_size}, optimizer={self.default_optimizer}, "
            f"{self.kernel_count(Phase.FORWARD)} fwd / "
            f"{self.kernel_count(Phase.BACKWARD)} bwd kernels"
        )
