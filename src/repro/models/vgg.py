"""VGG-19 (Simonyan & Zisserman) on ImageNet-sized inputs.

VGG-19 is the communication-heavy model of the paper's P3 evaluation
(Figure 10): ~143M parameters, most of them in the three giant
fully-connected layers, make gradient transfer the dominant cost in
distributed training at low bandwidth.
"""

from typing import List

from repro.models.base import LayerSpec, ModelSpec
from repro.models.blocks import (
    conv_layer,
    dropout_layer,
    linear_layer,
    loss_layer,
    pool_layer,
    relu_layer,
)

IMAGENET_SAMPLE_BYTES = 3 * 224 * 224 * 4

# VGG-19 configuration "E": channel width per conv block, 'M' = maxpool.
_VGG19_CFG = [
    64, 64, "M",
    128, 128, "M",
    256, 256, 256, 256, "M",
    512, 512, 512, 512, "M",
    512, 512, 512, 512, "M",
]


def build_vgg19(batch_size: int = 64) -> ModelSpec:
    """Build the VGG-19 training workload."""
    b = batch_size
    layers: List[LayerSpec] = []
    c_in, h = 3, 224
    conv_idx = 0
    pool_idx = 0
    for entry in _VGG19_CFG:
        if entry == "M":
            h //= 2
            pool_idx += 1
            layers.append(pool_layer(f"features.pool{pool_idx}", b * c_in * h * h))
            continue
        c_out = int(entry)
        conv_idx += 1
        prefix = f"features.conv{conv_idx}"
        layers.append(conv_layer(prefix, b, c_in, h, h, c_out, 3, 1, 1, bias=True))
        layers.append(relu_layer(f"{prefix}.relu", b * c_out * h * h))
        c_in = c_out

    # classifier: 25088 -> 4096 -> 4096 -> 1000, with dropout
    layers.append(linear_layer("classifier.fc6", b, 512 * 7 * 7, 4096))
    layers.append(relu_layer("classifier.relu6", b * 4096))
    layers.append(dropout_layer("classifier.drop6", b * 4096))
    layers.append(linear_layer("classifier.fc7", b, 4096, 4096))
    layers.append(relu_layer("classifier.relu7", b * 4096))
    layers.append(dropout_layer("classifier.drop7", b * 4096))
    layers.append(linear_layer("classifier.fc8", b, 4096, 1000))
    layers.append(loss_layer("loss", b, 1000))

    return ModelSpec(
        name="vgg19",
        layers=layers,
        batch_size=batch_size,
        input_sample_bytes=IMAGENET_SAMPLE_BYTES,
        default_optimizer="sgd",
        cpu_gap_scale=1.0,
        application="image_classification",
    )
