"""BERT base/large (Devlin et al.) fine-tuning on SQuAD (seq len 384).

The paper's language-modeling workload (Figures 5-8).  Two properties of
real PyTorch BERT matter for reproduction and are modeled explicitly:

* each transformer block launches *many small kernels* (transposes, bias
  adds, masks, scales) besides the big GEMMs, so the CPU dispatch path is a
  large runtime fraction (``cpu_gap_scale`` > 1);
* the Adam weight-update phase launches ~13 pointwise kernels per parameter
  tensor — 2,633 kernels for BERT_base and 5,164 for BERT_large per the
  paper (Section 6.3) — making weight update 30-45% of iteration time and
  the prime target for FusedAdam.
"""

from typing import List

from repro.kernels import library as K
from repro.models.base import LayerSpec, ModelSpec, ParamTensor

WORD_VOCAB = 30_522
POS_VOCAB = 512
TYPE_VOCAB = 2
SEQ_LEN = 384


def _attention_layer(name: str, batch: int, seq: int, hidden: int,
                     heads: int) -> LayerSpec:
    """Multi-head self-attention with output projection.

    Parameter tensors: Wq/bq, Wk/bk, Wv/bv, Wo/bo (8 tensors).
    """
    tokens = batch * seq
    head_dim = hidden // heads
    fwd: List[K.KernelSpec] = []
    bwd: List[K.KernelSpec] = []
    # Q, K, V projections
    for proj in ("query", "key", "value"):
        fwd.append(K.sgemm(tokens, hidden, hidden, tag=f"attn_{proj}"))
        fwd.append(K.add_tensor(tokens * hidden))            # bias
        fwd.append(K.elementwise(tokens * hidden, tag="transpose_for_scores"))
    # scores = Q K^T / sqrt(d), + mask, softmax, dropout
    fwd.append(K.sgemm(seq, seq, head_dim, batch=batch * heads, tag="attn_scores"))
    fwd.append(K.elementwise(batch * heads * seq * seq, tag="scale"))
    fwd.append(K.add_tensor(batch * heads * seq * seq))      # attention mask
    fwd.append(K.softmax_forward(batch * heads * seq * seq))
    fwd.append(K.dropout(batch * heads * seq * seq))
    # context = P V, transpose back, output projection + bias + dropout
    fwd.append(K.sgemm(seq, head_dim, seq, batch=batch * heads, tag="attn_context"))
    fwd.append(K.elementwise(tokens * hidden, tag="transpose_back"))
    fwd.append(K.sgemm(tokens, hidden, hidden, tag="attn_output"))
    fwd.append(K.add_tensor(tokens * hidden))
    fwd.append(K.dropout(tokens * hidden))

    # backward mirrors forward with dgrad+wgrad per GEMM
    for proj in ("output",):
        bwd.append(K.sgemm(tokens, hidden, hidden, tag=f"attn_{proj}_dgrad"))
        bwd.append(K.sgemm(hidden, hidden, tokens, tag=f"attn_{proj}_wgrad"))
        bwd.append(K.reduction(tokens * hidden, tag="bias_grad"))
    bwd.append(K.dropout(tokens * hidden))
    bwd.append(K.elementwise(tokens * hidden, tag="transpose_back_bwd"))
    bwd.append(K.sgemm(seq, seq, head_dim, batch=batch * heads, tag="attn_context_dgrad"))
    bwd.append(K.sgemm(seq, head_dim, seq, batch=batch * heads, tag="attn_context_wgrad"))
    bwd.append(K.dropout(batch * heads * seq * seq))
    bwd.append(K.softmax_backward(batch * heads * seq * seq))
    bwd.append(K.elementwise(batch * heads * seq * seq, tag="scale_bwd"))
    bwd.append(K.sgemm(seq, head_dim, seq, batch=batch * heads, tag="attn_scores_dgrad_q"))
    bwd.append(K.sgemm(seq, head_dim, seq, batch=batch * heads, tag="attn_scores_dgrad_k"))
    for proj in ("query", "key", "value"):
        bwd.append(K.elementwise(tokens * hidden, tag="transpose_for_scores_bwd"))
        bwd.append(K.sgemm(tokens, hidden, hidden, tag=f"attn_{proj}_dgrad"))
        bwd.append(K.sgemm(hidden, hidden, tokens, tag=f"attn_{proj}_wgrad"))
        bwd.append(K.reduction(tokens * hidden, tag="bias_grad"))

    params = []
    for proj in ("query", "key", "value", "output"):
        params.append(ParamTensor(f"{name}.{proj}.weight", hidden * hidden))
        params.append(ParamTensor(f"{name}.{proj}.bias", hidden))
    return LayerSpec(name=name, kind="attention", forward_kernels=fwd,
                     backward_kernels=bwd, params=params)


def _layernorm_layer(name: str, tokens: int, hidden: int) -> LayerSpec:
    """Residual add + LayerNorm."""
    numel = tokens * hidden
    return LayerSpec(
        name=name,
        kind="layernorm",
        forward_kernels=[K.add_tensor(numel), K.layernorm_forward(numel)],
        backward_kernels=[K.layernorm_backward(numel), K.add_tensor(numel)],
        params=[ParamTensor(f"{name}.weight", hidden),
                ParamTensor(f"{name}.bias", hidden)],
    )


def _ffn_layer(name: str, tokens: int, hidden: int, inner: int) -> LayerSpec:
    """Position-wise feed-forward: H -> 4H -> GELU -> H, + dropout."""
    fwd = [
        K.sgemm(tokens, inner, hidden, tag="ffn_in"),
        K.add_tensor(tokens * inner),
        K.elementwise(tokens * inner, flops_per_elem=8.0, tag="gelu"),
        K.sgemm(tokens, hidden, inner, tag="ffn_out"),
        K.add_tensor(tokens * hidden),
        K.dropout(tokens * hidden),
    ]
    bwd = [
        K.dropout(tokens * hidden),
        K.sgemm(tokens, inner, hidden, tag="ffn_out_dgrad"),
        K.sgemm(inner, hidden, tokens, tag="ffn_out_wgrad"),
        K.reduction(tokens * hidden, tag="bias_grad"),
        K.elementwise(tokens * inner, flops_per_elem=10.0, tag="gelu_bwd"),
        K.sgemm(tokens, hidden, inner, tag="ffn_in_dgrad"),
        K.sgemm(hidden, inner, tokens, tag="ffn_in_wgrad"),
        K.reduction(tokens * inner, tag="bias_grad"),
    ]
    params = [
        ParamTensor(f"{name}.intermediate.weight", hidden * inner),
        ParamTensor(f"{name}.intermediate.bias", inner),
        ParamTensor(f"{name}.output.weight", inner * hidden),
        ParamTensor(f"{name}.output.bias", hidden),
    ]
    return LayerSpec(name=name, kind="ffn", forward_kernels=fwd,
                     backward_kernels=bwd, params=params)


def _embeddings(tokens: int, hidden: int) -> List[LayerSpec]:
    word = LayerSpec(
        name="embeddings.word",
        kind="embedding",
        forward_kernels=[K.embedding_forward(tokens, hidden)],
        backward_kernels=[K.embedding_backward(tokens, hidden)],
        params=[ParamTensor("embeddings.word.weight", WORD_VOCAB * hidden)],
    )
    pos = LayerSpec(
        name="embeddings.position",
        kind="embedding",
        forward_kernels=[K.embedding_forward(tokens, hidden),
                         K.add_tensor(tokens * hidden)],
        backward_kernels=[K.embedding_backward(tokens, hidden)],
        params=[ParamTensor("embeddings.position.weight", POS_VOCAB * hidden)],
    )
    seg = LayerSpec(
        name="embeddings.token_type",
        kind="embedding",
        forward_kernels=[K.embedding_forward(tokens, hidden),
                         K.add_tensor(tokens * hidden)],
        backward_kernels=[K.embedding_backward(tokens, hidden)],
        params=[ParamTensor("embeddings.token_type.weight", TYPE_VOCAB * hidden)],
    )
    ln = LayerSpec(
        name="embeddings.layernorm",
        kind="layernorm",
        forward_kernels=[K.layernorm_forward(tokens * hidden),
                         K.dropout(tokens * hidden)],
        backward_kernels=[K.dropout(tokens * hidden),
                          K.layernorm_backward(tokens * hidden)],
        params=[ParamTensor("embeddings.layernorm.weight", hidden),
                ParamTensor("embeddings.layernorm.bias", hidden)],
    )
    return [word, pos, seg, ln]


def _build_bert(name: str, n_blocks: int, hidden: int, heads: int,
                batch_size: int, seq_len: int) -> ModelSpec:
    tokens = batch_size * seq_len
    inner = hidden * 4
    layers: List[LayerSpec] = []
    layers.extend(_embeddings(tokens, hidden))
    for i in range(n_blocks):
        blk = f"encoder.layer{i}"
        layers.append(_attention_layer(f"{blk}.attention", batch_size, seq_len,
                                       hidden, heads))
        layers.append(_layernorm_layer(f"{blk}.attention.layernorm", tokens, hidden))
        layers.append(_ffn_layer(f"{blk}.ffn", tokens, hidden, inner))
        layers.append(_layernorm_layer(f"{blk}.ffn.layernorm", tokens, hidden))
    # SQuAD span-prediction head
    qa = LayerSpec(
        name="qa_outputs",
        kind="linear",
        forward_kernels=[K.sgemm(tokens, 2, hidden, tag="qa"),
                         K.softmax_forward(tokens * 2)],
        backward_kernels=[K.softmax_backward(tokens * 2),
                          K.sgemm(tokens, hidden, 2, tag="qa_dgrad"),
                          K.sgemm(hidden, 2, tokens, tag="qa_wgrad")],
        params=[ParamTensor("qa_outputs.weight", hidden * 2),
                ParamTensor("qa_outputs.bias", 2)],
    )
    layers.append(qa)
    return ModelSpec(
        name=name,
        layers=layers,
        batch_size=batch_size,
        input_sample_bytes=seq_len * 12,  # input ids + mask + type ids (int32)
        default_optimizer="adam",
        cpu_gap_scale=4.0,
        application="language_modeling",
    )


def build_bert_base(batch_size: int = 4, seq_len: int = SEQ_LEN) -> ModelSpec:
    """BERT_base: 12 transformer blocks, hidden 768, 12 heads."""
    return _build_bert("bert_base", 12, 768, 12, batch_size, seq_len)


def build_bert_large(batch_size: int = 2, seq_len: int = SEQ_LEN) -> ModelSpec:
    """BERT_large: 24 transformer blocks, hidden 1024, 16 heads."""
    return _build_bert("bert_large", 24, 1024, 16, batch_size, seq_len)
