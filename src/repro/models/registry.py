"""Model registry: name -> builder, with optional batch-size override."""

from typing import Callable, Dict, List, Optional

from repro.common.errors import ConfigError
from repro.models.base import ModelSpec
from repro.models.bert import build_bert_base, build_bert_large
from repro.models.densenet import build_densenet121
from repro.models.gnmt import build_gnmt
from repro.models.resnet import build_resnet50
from repro.models.vgg import build_vgg19

_BUILDERS: Dict[str, Callable[..., ModelSpec]] = {
    "resnet50": build_resnet50,
    "vgg19": build_vgg19,
    "densenet121": build_densenet121,
    "gnmt": build_gnmt,
    "bert_base": build_bert_base,
    "bert_large": build_bert_large,
}

#: names registered after import (spawn workers rebuild these from a
#: manifest; a fresh interpreter only has the shipped zoo above)
_RUNTIME_NAMES: set = set()

# paper aliases
_ALIASES = {
    "seq2seq": "gnmt",
    "bert-base": "bert_base",
    "bert-large": "bert_large",
    "resnet-50": "resnet50",
    "vgg-19": "vgg19",
    "densenet-121": "densenet121",
}


def available_models() -> List[str]:
    """Names of all registered models."""
    return sorted(_BUILDERS)


def register_model(name: str, builder: Callable[..., ModelSpec],
                   overwrite: bool = False) -> None:
    """Register a custom model builder under a name.

    The builder must accept an optional ``batch_size`` keyword.  Registered
    models work everywhere zoo models do — including declarative
    :class:`~repro.scenarios.scenario.Scenario` files, which reference
    models by name.
    """
    key = name.lower()
    if not overwrite and (key in _BUILDERS or key in _ALIASES):
        raise ConfigError(f"model {name!r} is already registered")
    # an alias would shadow the new builder in build_model's resolution
    _ALIASES.pop(key, None)
    _BUILDERS[key] = builder
    _RUNTIME_NAMES.add(key)


def runtime_registered_models() -> Dict[str, Callable[..., ModelSpec]]:
    """Builders added via :func:`register_model` after import.

    A fresh interpreter (a ``spawn`` pool worker, a colleague's shell)
    only has the shipped zoo; these are the entries a
    :class:`~repro.scenarios.batch.WorkerManifest` must carry across so
    scenarios referencing custom models resolve there too.
    """
    return {name: _BUILDERS[name] for name in sorted(_RUNTIME_NAMES)
            if name in _BUILDERS}


def build_model(name: str, batch_size: Optional[int] = None) -> ModelSpec:
    """Build a model by name.

    Args:
        name: registered name or paper alias (case-insensitive).
        batch_size: override the model's default mini-batch size.
    """
    key = name.lower()
    key = _ALIASES.get(key, key)
    try:
        builder = _BUILDERS[key]
    except KeyError:
        raise ConfigError(
            f"unknown model {name!r}; available: {available_models()}"
        ) from None
    if batch_size is None:
        return builder()
    return builder(batch_size=batch_size)
