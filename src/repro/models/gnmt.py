"""GNMT (Wu et al.): 8-layer LSTM seq2seq with attention, WMT16-sized.

This is the paper's machine-translation workload ("Seq2Seq" in Figures 5-9).
LSTM layers are lowered the way cuDNN executes them: one large input GEMM
over all timesteps, plus chunked recurrent GEMMs and fused gate kernels.
Most compute sits in fully-connected/embedding GEMMs, matching the paper's
observation that GNMT has essentially no concurrent kernels (Section 7.5).
"""

from typing import List

from repro.kernels import library as K
from repro.models.base import LayerSpec, ModelSpec, ParamTensor
from repro.models.blocks import dropout_layer, loss_layer

VOCAB = 32_000
HIDDEN = 1024
SEQ_LEN = 25           # average WMT16 sentence length after BPE
RECURRENT_CHUNKS = 8   # cuDNN streams the recurrence in chunks


def _lstm_layer(
    name: str, batch: int, seq: int, input_dim: int, hidden: int,
    bidirectional: bool = False,
) -> LayerSpec:
    """One (possibly bidirectional) LSTM layer."""
    directions = 2 if bidirectional else 1
    rows = batch * seq
    chunk_rows = max(1, rows // RECURRENT_CHUNKS)
    fwd: List[K.KernelSpec] = []
    bwd: List[K.KernelSpec] = []
    params: List[ParamTensor] = []
    for d in range(directions):
        suffix = f".dir{d}" if bidirectional else ""
        # one big input GEMM across all timesteps
        fwd.append(K.sgemm(rows, 4 * hidden, input_dim, tag="lstm_ih"))
        # chunked recurrent GEMMs + fused gate pointwise kernels
        for _ in range(RECURRENT_CHUNKS):
            fwd.append(K.sgemm(chunk_rows, 4 * hidden, hidden, tag="lstm_hh"))
            fwd.append(K.elementwise(chunk_rows * hidden * 4, reads=2, writes=2,
                                     flops_per_elem=6.0, tag="lstm_gates"))
        # backward: dgrad for both GEMM families + gate backward + wgrads
        bwd.append(K.sgemm(rows, input_dim, 4 * hidden, tag="lstm_ih_dgrad"))
        for _ in range(RECURRENT_CHUNKS):
            bwd.append(K.sgemm(chunk_rows, hidden, 4 * hidden, tag="lstm_hh_dgrad"))
            bwd.append(K.elementwise(chunk_rows * hidden * 4, reads=3, writes=2,
                                     flops_per_elem=8.0, tag="lstm_gates_bwd"))
        bwd.append(K.sgemm(4 * hidden, input_dim, rows, tag="lstm_ih_wgrad"))
        bwd.append(K.sgemm(4 * hidden, hidden, rows, tag="lstm_hh_wgrad"))
        params.append(ParamTensor(f"{name}{suffix}.weight_ih", 4 * hidden * input_dim))
        params.append(ParamTensor(f"{name}{suffix}.weight_hh", 4 * hidden * hidden))
        params.append(ParamTensor(f"{name}{suffix}.bias_ih", 4 * hidden))
        params.append(ParamTensor(f"{name}{suffix}.bias_hh", 4 * hidden))
    return LayerSpec(name=name, kind="lstm", forward_kernels=fwd,
                     backward_kernels=bwd, params=params)


def _attention_layer(name: str, batch: int, seq_dec: int, seq_enc: int,
                     hidden: int) -> LayerSpec:
    """Bahdanau-style attention: score GEMM, softmax, context GEMM, mix."""
    fwd = [
        K.sgemm(seq_dec, seq_enc, hidden, batch=batch, tag="attn_score"),
        K.softmax_forward(batch * seq_dec * seq_enc),
        K.sgemm(seq_dec, hidden, seq_enc, batch=batch, tag="attn_context"),
        K.sgemm(batch * seq_dec, hidden, 2 * hidden, tag="attn_mix"),
    ]
    bwd = [
        K.sgemm(batch * seq_dec, 2 * hidden, hidden, tag="attn_mix_dgrad"),
        K.sgemm(hidden, 2 * hidden, batch * seq_dec, tag="attn_mix_wgrad"),
        K.sgemm(seq_dec, seq_enc, hidden, batch=batch, tag="attn_context_dgrad"),
        K.softmax_backward(batch * seq_dec * seq_enc),
        K.sgemm(seq_dec, hidden, seq_enc, batch=batch, tag="attn_score_dgrad"),
    ]
    params = [ParamTensor(f"{name}.linear", 2 * hidden * hidden)]
    return LayerSpec(name=name, kind="attention", forward_kernels=fwd,
                     backward_kernels=bwd, params=params)


def build_gnmt(batch_size: int = 128, seq_len: int = SEQ_LEN) -> ModelSpec:
    """Build the GNMT training workload."""
    b = batch_size
    tokens = b * seq_len
    layers: List[LayerSpec] = []

    # encoder
    layers.append(_embedding("encoder.embedding", tokens, VOCAB, HIDDEN))
    layers.append(_lstm_layer("encoder.lstm0", b, seq_len, HIDDEN, HIDDEN,
                              bidirectional=True))
    layers.append(_lstm_layer("encoder.lstm1", b, seq_len, 2 * HIDDEN, HIDDEN))
    layers.append(_lstm_layer("encoder.lstm2", b, seq_len, HIDDEN, HIDDEN))
    layers.append(_lstm_layer("encoder.lstm3", b, seq_len, HIDDEN, HIDDEN))
    layers.append(dropout_layer("encoder.dropout", tokens * HIDDEN))

    # decoder with attention
    layers.append(_embedding("decoder.embedding", tokens, VOCAB, HIDDEN))
    layers.append(_lstm_layer("decoder.lstm0", b, seq_len, HIDDEN, HIDDEN))
    layers.append(_attention_layer("decoder.attention", b, seq_len, seq_len, HIDDEN))
    layers.append(_lstm_layer("decoder.lstm1", b, seq_len, 2 * HIDDEN, HIDDEN))
    layers.append(_lstm_layer("decoder.lstm2", b, seq_len, HIDDEN, HIDDEN))
    layers.append(_lstm_layer("decoder.lstm3", b, seq_len, HIDDEN, HIDDEN))
    layers.append(dropout_layer("decoder.dropout", tokens * HIDDEN))

    # classifier over the vocabulary — the dominant GEMM
    layers.append(_classifier("decoder.classifier", tokens, HIDDEN, VOCAB))
    layers.append(loss_layer("loss", tokens, 1))

    return ModelSpec(
        name="gnmt",
        layers=layers,
        batch_size=batch_size,
        input_sample_bytes=seq_len * 8,  # two int32 token streams
        default_optimizer="adam",
        cpu_gap_scale=3.5,
        application="machine_translation",
    )


def _embedding(name: str, tokens: int, vocab: int, dim: int) -> LayerSpec:
    return LayerSpec(
        name=name,
        kind="embedding",
        forward_kernels=[K.embedding_forward(tokens, dim)],
        backward_kernels=[K.embedding_backward(tokens, dim)],
        params=[ParamTensor(f"{name}.weight", vocab * dim)],
    )


def _classifier(name: str, rows: int, hidden: int, vocab: int) -> LayerSpec:
    fwd = [K.sgemm(rows, vocab, hidden, tag="classifier")]
    bwd = [
        K.sgemm(rows, hidden, vocab, tag="classifier_dgrad"),
        K.sgemm(hidden, vocab, rows, tag="classifier_wgrad"),
    ]
    return LayerSpec(name=name, kind="linear", forward_kernels=fwd,
                     backward_kernels=bwd,
                     params=[ParamTensor(f"{name}.weight", hidden * vocab)])
