"""ResNet-50 (He et al.) on ImageNet-sized inputs.

Built from bottleneck blocks (1x1 -> 3x3 -> 1x1 convolutions with a residual
connection), stages of [3, 4, 6, 3] blocks.  The paper trains ResNet-50 with
SGD on ImageNet; this is the image-classification workload of Table 2 and
appears in Figures 1, 5, 6, 8, and 10.
"""

from typing import List

from repro.models.base import LayerSpec, ModelSpec
from repro.models.blocks import (
    add_layer,
    batchnorm_layer,
    conv_layer,
    linear_layer,
    loss_layer,
    pool_layer,
    relu_layer,
)

IMAGENET_SAMPLE_BYTES = 3 * 224 * 224 * 4  # CHW fp32


def _bottleneck(
    prefix: str,
    batch: int,
    c_in: int,
    h: int,
    mid: int,
    stride: int,
    downsample: bool,
) -> List[LayerSpec]:
    """One bottleneck residual block; returns its layers in forward order."""
    c_out = mid * 4
    h_out = h // stride
    layers: List[LayerSpec] = []
    layers.append(conv_layer(f"{prefix}.conv1", batch, c_in, h, h, mid, 1))
    layers.append(batchnorm_layer(f"{prefix}.bn1", batch, mid, h, h))
    layers.append(relu_layer(f"{prefix}.relu1", batch * mid * h * h))
    layers.append(
        conv_layer(f"{prefix}.conv2", batch, mid, h, h, mid, 3, stride, 1)
    )
    layers.append(batchnorm_layer(f"{prefix}.bn2", batch, mid, h_out, h_out))
    layers.append(relu_layer(f"{prefix}.relu2", batch * mid * h_out * h_out))
    layers.append(
        conv_layer(f"{prefix}.conv3", batch, mid, h_out, h_out, c_out, 1)
    )
    layers.append(batchnorm_layer(f"{prefix}.bn3", batch, c_out, h_out, h_out))
    if downsample:
        layers.append(
            conv_layer(f"{prefix}.downsample.conv", batch, c_in, h, h, c_out, 1, stride)
        )
        layers.append(
            batchnorm_layer(f"{prefix}.downsample.bn", batch, c_out, h_out, h_out)
        )
    layers.append(add_layer(f"{prefix}.add", batch * c_out * h_out * h_out))
    layers.append(relu_layer(f"{prefix}.relu3", batch * c_out * h_out * h_out))
    return layers


def build_resnet50(batch_size: int = 64) -> ModelSpec:
    """Build the ResNet-50 training workload."""
    b = batch_size
    layers: List[LayerSpec] = []
    # stem: 7x7/2 conv -> bn -> relu -> 3x3/2 maxpool
    layers.append(conv_layer("stem.conv", b, 3, 224, 224, 64, 7, 2, 3))
    layers.append(batchnorm_layer("stem.bn", b, 64, 112, 112))
    layers.append(relu_layer("stem.relu", b * 64 * 112 * 112))
    layers.append(pool_layer("stem.maxpool", b * 64 * 56 * 56, window=9))

    stage_cfg = [  # (blocks, mid_channels, input_h, first_stride)
        (3, 64, 56, 1),
        (4, 128, 56, 2),
        (6, 256, 28, 2),
        (3, 512, 14, 2),
    ]
    c_in = 64
    for stage_idx, (blocks, mid, h_in, first_stride) in enumerate(stage_cfg, start=1):
        h = h_in
        for block_idx in range(blocks):
            stride = first_stride if block_idx == 0 else 1
            downsample = block_idx == 0
            prefix = f"layer{stage_idx}.{block_idx}"
            layers.extend(_bottleneck(prefix, b, c_in, h, mid, stride, downsample))
            c_in = mid * 4
            h = h // stride

    layers.append(pool_layer("avgpool", b * 2048, window=49))
    layers.append(linear_layer("fc", b, 2048, 1000))
    layers.append(loss_layer("loss", b, 1000))

    return ModelSpec(
        name="resnet50",
        layers=layers,
        batch_size=batch_size,
        input_sample_bytes=IMAGENET_SAMPLE_BYTES,
        default_optimizer="sgd",
        cpu_gap_scale=1.0,
        application="image_classification",
    )
