"""Daydream reproduction: what-if analysis for DNN training optimizations.

Reproduces Zhu, Phanishayee & Pekhimenko, "Daydream: Accurately Estimating
the Efficacy of Optimizations for DNN Training" (USENIX ATC 2020).

Quickstart::

    from repro import WhatIfSession
    from repro.optimizations import AutomaticMixedPrecision

    session = WhatIfSession.profile("resnet50")
    print(session.predict(AutomaticMixedPrecision()))

The package layers:

* ``repro.hw`` / ``repro.kernels`` / ``repro.models`` — the simulated
  hardware substrate (device specs, roofline cost model, model zoo);
* ``repro.framework`` — the PyTorch/MXNet/Caffe-like execution engine that
  produces CUPTI-style traces and the ground-truth optimization runs;
* ``repro.tracing`` — trace records and containers;
* ``repro.core`` — Daydream itself: dependency graph, construction,
  task-to-layer mapping, Algorithm-1 simulator, transformation primitives;
* ``repro.optimizations`` — the ten what-if models;
* ``repro.analysis`` — the :class:`WhatIfSession` front-end and metrics;
* ``repro.scenarios`` — the declarative layer: optimization registry,
  composable pipelines, JSON scenarios/grids, and the
  :class:`~repro.scenarios.runner.ScenarioRunner`;
* ``repro.experiments`` — one runner per paper table/figure (all declared
  as scenarios).

See ``docs/architecture.md`` for the full layer stack.
"""

from repro.analysis.session import Prediction, WhatIfSession
from repro.core.construction import build_graph
from repro.core.graph import DependencyGraph
from repro.core.simulate import simulate
from repro.framework.config import TrainingConfig
from repro.framework.engine import Engine, profile_iteration
from repro.hw.device import GPU_2080TI, GPU_P4000, GPU_V100, get_gpu
from repro.hw.network import NetworkSpec
from repro.hw.topology import ClusterSpec
from repro.models.registry import available_models, build_model, register_model
from repro.scenarios import (
    Scenario,
    ScenarioGrid,
    ScenarioRunner,
    default_registry,
)
from repro.tracing.trace import Trace

__version__ = "1.0.0"

__all__ = [
    "WhatIfSession",
    "Prediction",
    "build_graph",
    "DependencyGraph",
    "simulate",
    "TrainingConfig",
    "Engine",
    "profile_iteration",
    "GPU_2080TI",
    "GPU_P4000",
    "GPU_V100",
    "get_gpu",
    "NetworkSpec",
    "ClusterSpec",
    "available_models",
    "build_model",
    "register_model",
    "Scenario",
    "ScenarioGrid",
    "ScenarioRunner",
    "default_registry",
    "Trace",
    "__version__",
]
