"""Execution simulation — the paper's Algorithm 1, event-driven.

The simulator traverses the dependency graph, dispatching each task to its
execution thread:

* ``u.start = max(P[thread], max over parents of parent end)``;
* ``P[thread] = u.start + u.duration + u.gap``;
* a task becomes dispatchable when its explicit parents *and* its thread
  predecessor have executed.

The engine is a lazy-deletion min-heap keyed on each dispatchable task's
*feasible start* (plus a policy key and a FIFO sequence number): O(N log N)
instead of the naive per-dispatch frontier scan's O(N * F).  A popped entry
whose thread made progress since it was pushed is stale; it is re-pushed
with its recomputed feasible start (feasible starts only grow, so lazy
reinsertion is exact, not approximate).

The ``schedule`` step (Algorithm 1 line 9) stays pluggable two ways:

* a :class:`SchedulePolicy` ranks dispatchable tasks via a secondary key
  (after feasible start, before FIFO order) and runs on the heap engine —
  this is how P3's priority queue (``make_priority_scheduler``) and other
  Schedule-primitive overrides plug in;
* a legacy callable ``(frontier, progress) -> task`` (the seed protocol)
  still works and routes to the reference frontier-scan engine, since an
  arbitrary function of the whole frontier cannot be heapified.

Both engines implement identical semantics; the equivalence is
property-tested against an independent reference in the test suite.
"""

import heapq
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.common.errors import SimulationError
from repro.core.graph import DependencyGraph
from repro.core.task import Task
from repro.tracing.records import ExecutionThread

#: Legacy scheduler protocol: picks the next task to dispatch from the
#: frontier, given the frontier and the per-thread progress map.
Scheduler = Callable[[List[Task], Dict[ExecutionThread, float]], Task]


@dataclass
class SimulationResult:
    """Outcome of one simulation run.

    Attributes:
        start_us: simulated start time of every task.
        makespan_us: end of the last task (excluding its trailing gap) —
            the predicted iteration time.
        thread_busy: per-thread busy intervals ``(start, end)`` for
            breakdown analysis.
    """

    start_us: Dict[Task, float]
    makespan_us: float
    thread_busy: Dict[ExecutionThread, List[Tuple[float, float]]] = field(
        default_factory=dict
    )

    def end_us(self, task: Task) -> float:
        """Simulated completion time of a task."""
        return self.start_us[task] + task.duration

    def critical_tasks(self, top: int = 10) -> List[Task]:
        """The ``top`` tasks by duration — a quick bottleneck view."""
        return heapq.nlargest(top, self.start_us, key=lambda t: t.duration)


class SchedulePolicy:
    """A heap-friendly scheduling policy (the paper's Schedule primitive).

    The event-driven engine orders dispatchable tasks by
    ``(feasible_start, policy.key(task), fifo_sequence)``; subclasses
    override :meth:`key` to reorder ties without forfeiting the O(N log N)
    engine.  The default key (0 for every task) reproduces the
    earliest-feasible-start, FIFO-tie-break baseline schedule.
    """

    def key(self, task: Task) -> float:
        """Secondary sort key; smaller dispatches first among feasible ties."""
        return 0.0


class PrioritySchedulePolicy(SchedulePolicy):
    """P3-style priority override (paper Appendix Algorithm 7).

    Among dispatchable tasks, the earliest feasible start still wins (work
    conservation), but when several prioritized tasks could start at the
    same instant the one with the highest ``task.priority`` goes first.

    Instances are also callable with the legacy ``(frontier, progress)``
    protocol so code written against the seed API keeps working.
    """

    def __init__(self, is_prioritized: Callable[[Task], bool]) -> None:
        self._is_prioritized = is_prioritized

    def key(self, task: Task) -> float:
        return -float(task.priority) if self._is_prioritized(task) else 0.0

    def __call__(self, frontier: List[Task],
                 progress: Dict[ExecutionThread, float]) -> Task:
        best: Optional[Task] = None
        best_key: Optional[Tuple[float, float]] = None
        for task in frontier:
            feasible = max(progress.get(task.thread, 0.0),
                           task.metadata["_ready_us"])
            key = (feasible, self.key(task))
            if best_key is None or key < best_key:
                best, best_key = task, key
        assert best is not None
        return best


def make_priority_scheduler(
    is_prioritized: Callable[[Task], bool],
) -> PrioritySchedulePolicy:
    """Build the P3 priority schedule override (see
    :class:`PrioritySchedulePolicy`)."""
    return PrioritySchedulePolicy(is_prioritized)


def earliest_start_scheduler(
    frontier: List[Task], progress: Dict[ExecutionThread, float]
) -> Task:
    """Default schedule as a legacy callable: earliest feasible start, FIFO
    tie-break.  Retained for the reference engine and API compatibility; the
    default simulate path uses the heap engine instead."""
    best = frontier[0]
    best_time = max(progress.get(best.thread, 0.0), best.metadata["_ready_us"])
    for task in frontier[1:]:
        feasible = max(progress.get(task.thread, 0.0), task.metadata["_ready_us"])
        if feasible < best_time:
            best = task
            best_time = feasible
    return best


def simulate(
    graph: DependencyGraph,
    scheduler: Optional[Scheduler] = None,
) -> SimulationResult:
    """Run Algorithm 1 over the graph and return predicted timings.

    ``scheduler`` may be a :class:`SchedulePolicy` (heap engine, O(N log N))
    or a legacy ``(frontier, progress) -> task`` callable (reference engine,
    O(N * F)).  ``None`` uses the default earliest-start policy on the heap
    engine.

    Raises:
        SimulationError: if the graph deadlocks (cycle), or a custom
            scheduler returns a task that is not in the frontier.
    """
    if scheduler is None:
        return _simulate_event_driven(graph, _DEFAULT_POLICY)
    if isinstance(scheduler, SchedulePolicy):
        return _simulate_event_driven(graph, scheduler)
    return _simulate_reference(graph, scheduler)


_DEFAULT_POLICY = SchedulePolicy()


def _simulate_event_driven(
    graph: DependencyGraph, policy: SchedulePolicy
) -> SimulationResult:
    """Heap-based event-driven engine keyed on feasible start."""
    # the base policy keys every task 0.0; skip the per-push call for it
    trivial_key = type(policy) is SchedulePolicy
    policy_key = policy.key
    succ = graph._succ
    pred = graph._pred
    # per-task state [pending_refs, thread_index, ready_us]: one dict lookup
    # per release instead of separate refs/ready/thread maps
    state: Dict[Task, List] = {}
    initial: List[Task] = []

    # map threads to dense indices so the inner loop indexes flat lists
    # instead of hashing ExecutionThread keys on every dispatch
    threads = graph.threads()
    progress: List[float] = [0.0] * len(threads)
    busy_lists: List[List[Tuple[float, float]]] = [[] for _ in threads]
    ordered_at: List[bool] = [graph.is_ordered(t) for t in threads]

    heads = graph._heads
    nxt_link = graph._next
    for i, thread in enumerate(threads):
        ordered = ordered_at[i]
        first = True
        task = heads.get(thread)
        while task is not None:
            n = len(pred[task])
            if ordered and not first:
                n += 1
            state[task] = [n, i, 0.0]
            if n == 0:
                initial.append(task)
            first = False
            task = nxt_link[task]

    total = len(state)
    start_us: Dict[Task, float] = {}
    makespan = 0.0
    # heap entries: (feasible_start, policy_key, fifo_seq, thread_idx, task);
    # the seq makes ties FIFO in frontier-entry order, matching the reference
    # engine's frontier-scan order (and keeps tuple comparison from ever
    # reaching the task).  A task's ready time is final once its last
    # reference drops (all parents done), so the pushed feasible start can
    # only go stale through *thread progress* — re-checked on pop.
    heap: List[Tuple[float, float, int, int, Task]] = [
        (0.0, 0.0 if trivial_key else policy_key(task), seq, state[task][1],
         task)
        for seq, task in enumerate(initial)
    ]
    heapq.heapify(heap)
    seq = len(initial)
    push = heapq.heappush
    pop = heapq.heappop

    while heap:
        feasible, pkey, s, ti, task = pop(heap)
        cur = progress[ti]
        if cur > feasible:
            # stale entry: the thread advanced since this was pushed
            push(heap, (cur, pkey, s, ti, task))
            continue
        now = feasible
        start_us[task] = now
        duration = task.duration
        end = now + duration
        if end > makespan:
            makespan = end
        progress[ti] = end + task.gap
        if duration > 0:
            busy_lists[ti].append((now, end))
        children = succ[task]
        if children:
            for child in children:
                st = state[child]
                if st[2] < end:
                    st[2] = end
                n = st[0] - 1
                st[0] = n
                if n == 0:
                    ci = st[1]
                    cf = progress[ci]
                    rc = st[2]
                    push(heap, (cf if cf > rc else rc,
                                0.0 if trivial_key else policy_key(child),
                                seq, ci, child))
                    seq += 1
        nxt = nxt_link[task] if ordered_at[ti] else None
        if nxt is not None:
            # thread order: predecessor completion gates the successor, but
            # the gap is enforced via thread progress, not readiness
            st = state[nxt]
            if st[2] < end:
                st[2] = end
            n = st[0] - 1
            st[0] = n
            if n == 0:
                cf = progress[ti]
                rc = st[2]
                push(heap, (cf if cf > rc else rc,
                            0.0 if trivial_key else policy_key(nxt),
                            seq, ti, nxt))
                seq += 1

    if len(start_us) != total:
        raise SimulationError(
            f"deadlock: executed {len(start_us)} of {total} tasks "
            "(dependency cycle)"
        )
    return SimulationResult(
        start_us=start_us, makespan_us=makespan,
        thread_busy=dict(zip(threads, busy_lists)),
    )


def _simulate_reference(
    graph: DependencyGraph, scheduler: Scheduler
) -> SimulationResult:
    """The seed frontier-scan engine, kept for legacy callable schedulers."""
    # reference counts: explicit preds + one for the thread predecessor
    refs: Dict[Task, int] = {}
    thread_next: Dict[Task, Optional[Task]] = {}
    for thread in graph.threads():
        ordered = graph.is_ordered(thread)
        prev: Optional[Task] = None
        for i, task in enumerate(graph.iter_tasks_on(thread)):
            refs[task] = len(graph.predecessors(task)) + (
                1 if ordered and i > 0 else 0)
            thread_next[task] = None
            if ordered and prev is not None:
                thread_next[prev] = task
            task.metadata["_ready_us"] = 0.0
            prev = task

    frontier: List[Task] = [t for t, r in refs.items() if r == 0]
    progress: Dict[ExecutionThread, float] = {t: 0.0 for t in graph.threads()}
    start_us: Dict[Task, float] = {}
    busy: Dict[ExecutionThread, List[Tuple[float, float]]] = {
        t: [] for t in graph.threads()
    }
    total = len(graph)

    while frontier:
        task = scheduler(frontier, progress)
        try:
            frontier.remove(task)
        except ValueError:
            raise SimulationError(
                f"scheduler returned a task outside the frontier: {task!r}"
            ) from None
        start = max(progress[task.thread], task.metadata["_ready_us"])
        start_us[task] = start
        end = start + task.duration
        progress[task.thread] = end + task.gap
        if task.duration > 0:
            busy[task.thread].append((start, end))

        def _release(child: Task) -> None:
            child.metadata["_ready_us"] = max(child.metadata["_ready_us"], end)
            refs[child] -= 1
            if refs[child] == 0:
                frontier.append(child)

        for child in graph.successors(task):
            _release(child)
        nxt = thread_next[task]
        if nxt is not None:
            # thread order: predecessor completion gates the successor, but
            # the gap is enforced via thread progress, not readiness
            nxt.metadata["_ready_us"] = max(nxt.metadata["_ready_us"], end)
            refs[nxt] -= 1
            if refs[nxt] == 0:
                frontier.append(nxt)

    if len(start_us) != total:
        raise SimulationError(
            f"deadlock: executed {len(start_us)} of {total} tasks "
            "(dependency cycle)"
        )
    for task in start_us:
        task.metadata.pop("_ready_us", None)
    makespan = max((start_us[t] + t.duration for t in start_us), default=0.0)
    return SimulationResult(start_us=start_us, makespan_us=makespan,
                            thread_busy=busy)
