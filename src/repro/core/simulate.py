"""Execution simulation — the paper's Algorithm 1.

The simulator traverses the dependency graph, dispatching each frontier task
to its execution thread:

* ``u.start = max(P[thread], max over parents of parent end)``;
* ``P[thread] = u.start + u.duration + u.gap``;
* a task joins the frontier when its explicit parents *and* its thread
  predecessor have executed.

The ``schedule`` step (line 9) is pluggable: the default picks the task with
the globally earliest feasible start, and optimization models may override
it (P3's priority queue, vDNN's prefetch delay — paper Section 4.4).
"""

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.common.errors import SimulationError
from repro.core.graph import DependencyGraph
from repro.core.task import Task
from repro.tracing.records import ExecutionThread

#: A scheduler picks the next task to dispatch from the frontier.
#: It receives the frontier and the per-thread progress map.
Scheduler = Callable[[List[Task], Dict[ExecutionThread, float]], Task]


@dataclass
class SimulationResult:
    """Outcome of one simulation run.

    Attributes:
        start_us: simulated start time of every task.
        makespan_us: end of the last task (excluding its trailing gap) —
            the predicted iteration time.
        thread_busy: per-thread busy intervals ``(start, end)`` for
            breakdown analysis.
    """

    start_us: Dict[Task, float]
    makespan_us: float
    thread_busy: Dict[ExecutionThread, List[Tuple[float, float]]] = field(
        default_factory=dict
    )

    def end_us(self, task: Task) -> float:
        """Simulated completion time of a task."""
        return self.start_us[task] + task.duration

    def critical_tasks(self, top: int = 10) -> List[Task]:
        """The ``top`` tasks by duration — a quick bottleneck view."""
        tasks = sorted(self.start_us, key=lambda t: t.duration, reverse=True)
        return tasks[:top]


def earliest_start_scheduler(
    frontier: List[Task], progress: Dict[ExecutionThread, float]
) -> Task:
    """Default scheduler: earliest feasible start, FIFO tie-break."""
    best = frontier[0]
    best_time = max(progress.get(best.thread, 0.0), best.metadata["_ready_us"])
    for task in frontier[1:]:
        feasible = max(progress.get(task.thread, 0.0), task.metadata["_ready_us"])
        if feasible < best_time:
            best = task
            best_time = feasible
    return best


def simulate(
    graph: DependencyGraph,
    scheduler: Optional[Scheduler] = None,
) -> SimulationResult:
    """Run Algorithm 1 over the graph and return predicted timings.

    Raises:
        SimulationError: if the graph deadlocks (cycle), or a custom
            scheduler returns a task that is not in the frontier.
    """
    scheduler = scheduler or earliest_start_scheduler

    # reference counts: explicit preds + one for the thread predecessor
    refs: Dict[Task, int] = {}
    thread_next: Dict[Task, Optional[Task]] = {}
    for thread in graph.threads():
        tasks = graph.tasks_on(thread)
        ordered = graph.is_ordered(thread)
        for i, task in enumerate(tasks):
            refs[task] = len(graph.predecessors(task)) + (
                1 if ordered and i > 0 else 0)
            thread_next[task] = (tasks[i + 1]
                                 if ordered and i + 1 < len(tasks) else None)
            task.metadata["_ready_us"] = 0.0

    frontier: List[Task] = [t for t, r in refs.items() if r == 0]
    progress: Dict[ExecutionThread, float] = {t: 0.0 for t in graph.threads()}
    start_us: Dict[Task, float] = {}
    busy: Dict[ExecutionThread, List[Tuple[float, float]]] = {
        t: [] for t in graph.threads()
    }
    total = len(graph)

    while frontier:
        task = scheduler(frontier, progress)
        try:
            frontier.remove(task)
        except ValueError:
            raise SimulationError(
                f"scheduler returned a task outside the frontier: {task!r}"
            ) from None
        start = max(progress[task.thread], task.metadata["_ready_us"])
        start_us[task] = start
        end = start + task.duration
        progress[task.thread] = end + task.gap
        if task.duration > 0:
            busy[task.thread].append((start, end))

        def _release(child: Task) -> None:
            child.metadata["_ready_us"] = max(child.metadata["_ready_us"], end)
            refs[child] -= 1
            if refs[child] == 0:
                frontier.append(child)

        for child in graph.successors(task):
            _release(child)
        nxt = thread_next[task]
        if nxt is not None:
            # thread order: predecessor completion gates the successor, but
            # the gap is enforced via thread progress, not readiness
            nxt.metadata["_ready_us"] = max(nxt.metadata["_ready_us"], end)
            refs[nxt] -= 1
            if refs[nxt] == 0:
                frontier.append(nxt)

    if len(start_us) != total:
        raise SimulationError(
            f"deadlock: executed {len(start_us)} of {total} tasks "
            "(dependency cycle)"
        )
    for task in start_us:
        task.metadata.pop("_ready_us", None)
    makespan = max((start_us[t] + t.duration for t in start_us), default=0.0)
    return SimulationResult(start_us=start_us, makespan_us=makespan,
                            thread_busy=busy)


def make_priority_scheduler(
    is_prioritized: Callable[[Task], bool],
) -> Scheduler:
    """Build a scheduler that breaks feasibility ties by ``task.priority``.

    Among frontier tasks, the earliest feasible start still wins (work
    conservation), but when several prioritized tasks could start at the
    same instant the one with the highest priority goes first — the paper's
    P3 schedule override (Appendix Algorithm 7).
    """

    def scheduler(frontier: List[Task],
                  progress: Dict[ExecutionThread, float]) -> Task:
        best: Optional[Task] = None
        best_key: Optional[Tuple[float, float]] = None
        for task in frontier:
            feasible = max(progress.get(task.thread, 0.0),
                           task.metadata["_ready_us"])
            pri = -float(task.priority) if is_prioritized(task) else 0.0
            key = (feasible, pri)
            if best_key is None or key < best_key:
                best, best_key = task, key
        assert best is not None
        return best

    return scheduler
