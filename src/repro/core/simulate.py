"""Execution simulation — the paper's Algorithm 1, event-driven.

The simulator traverses the dependency graph, dispatching each task to its
execution thread:

* ``u.start = max(P[thread], max over parents of parent end)``;
* ``P[thread] = u.start + u.duration + u.gap``;
* a task becomes dispatchable when its explicit parents *and* its thread
  predecessor have executed.

The engine is a lazy-deletion min-heap keyed on each dispatchable task's
*feasible start* (plus a policy key and the task's stable ordinal):
O(N log N) instead of the naive per-dispatch frontier scan's O(N * F).  A
popped entry whose thread made progress since it was pushed is stale; it is
re-pushed with its recomputed feasible start (feasible starts only grow, so
lazy reinsertion is exact, not approximate).

Ties in ``(feasible_start, policy_key)`` break on the task's **stable
ordinal** (thread-major position; see
:func:`repro.core.compiled.stable_ordinals`) in every engine, so dispatch
order — and therefore every simulated timestamp — is a pure function of
the graph *data*, never of allocation addresses or frontier-entry history.

The ``schedule`` step (Algorithm 1 line 9) stays pluggable two ways:

* a :class:`SchedulePolicy` ranks dispatchable tasks via a secondary key
  (after feasible start, before ordinal order) and runs on the heap
  engines — this is how P3's priority queue (``make_priority_scheduler``)
  and other Schedule-primitive overrides plug in.  Policy runs are served
  by the compiled array engine (:mod:`repro.core.compiled`) once a graph's
  lowering is warm, with this module's object-graph engine as the
  bit-identical fallback and property-test reference;
* a legacy callable ``(frontier, progress) -> task`` (the seed protocol)
  still works and routes to the reference frontier-scan engine, since an
  arbitrary function of the whole frontier cannot be heapified.

All engines implement identical semantics; the equivalence is
property-tested against an independent reference in the test suite.
"""

import heapq
from bisect import insort
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.common.errors import SimulationError
from repro.core.graph import DependencyGraph
from repro.core.task import Task
from repro.tracing.records import ExecutionThread

#: Legacy scheduler protocol: picks the next task to dispatch from the
#: frontier, given the frontier and the per-thread progress map.
Scheduler = Callable[[List[Task], Dict[ExecutionThread, float]], Task]


@dataclass
class SimulationResult:
    """Outcome of one simulation run.

    Attributes:
        start_us: simulated start time of every task.
        makespan_us: end of the last task (excluding its trailing gap) —
            the predicted iteration time.
        thread_busy: per-thread busy intervals ``(start, end)`` for
            breakdown analysis.
        ordinals: the stable task ordinals this run dispatched under
            (thread-major; see :func:`repro.core.compiled.stable_ordinals`).
            Used to order duration ties deterministically in
            :meth:`critical_tasks`.
    """

    start_us: Dict[Task, float]
    makespan_us: float
    thread_busy: Dict[ExecutionThread, List[Tuple[float, float]]] = field(
        default_factory=dict
    )
    ordinals: Optional[Dict[Task, int]] = None

    def end_us(self, task: Task) -> float:
        """Simulated completion time of a task."""
        return self.start_us[task] + task.duration

    def critical_tasks(self, top: int = 10) -> List[Task]:
        """The ``top`` tasks by duration — a quick bottleneck view.

        Duration ties break by stable ordinal (earlier ordinal first)
        when this result carries them, so the ranking is a pure function
        of the graph data — never of dict insertion or allocation order.
        """
        if self.ordinals is not None:
            ordinals = self.ordinals
            return heapq.nlargest(
                top, self.start_us,
                key=lambda t: (t.duration, -ordinals.get(t, 0)))
        return heapq.nlargest(top, self.start_us, key=lambda t: t.duration)


class SchedulePolicy:
    """A heap-friendly scheduling policy (the paper's Schedule primitive).

    The event-driven engines order dispatchable tasks by
    ``(feasible_start, policy.key(task), stable_ordinal)``; subclasses
    override :meth:`key` to reorder ties without forfeiting the O(N log N)
    engine.  The default key (0 for every task) reproduces the
    earliest-feasible-start, ordinal-tie-break baseline schedule.
    """

    def key(self, task: Task) -> float:
        """Secondary sort key; smaller dispatches first among feasible ties."""
        return 0.0


class PrioritySchedulePolicy(SchedulePolicy):
    """P3-style priority override (paper Appendix Algorithm 7).

    Among dispatchable tasks, the earliest feasible start still wins (work
    conservation), but when several prioritized tasks could start at the
    same instant the one with the highest ``task.priority`` goes first.

    Instances are also callable with the legacy ``(frontier, progress)``
    protocol so code written against the seed API keeps working.
    """

    def __init__(self, is_prioritized: Callable[[Task], bool]) -> None:
        self._is_prioritized = is_prioritized

    def key(self, task: Task) -> float:
        return -float(task.priority) if self._is_prioritized(task) else 0.0

    def __call__(self, frontier: List[Task],
                 progress: Dict[ExecutionThread, float]) -> Task:
        best: Optional[Task] = None
        best_key: Optional[Tuple[float, float]] = None
        for task in frontier:
            feasible = max(progress.get(task.thread, 0.0),
                           task.metadata["_ready_us"])
            key = (feasible, self.key(task))
            if best_key is None or key < best_key:
                best, best_key = task, key
        assert best is not None
        return best


def make_priority_scheduler(
    is_prioritized: Callable[[Task], bool],
) -> PrioritySchedulePolicy:
    """Build the P3 priority schedule override (see
    :class:`PrioritySchedulePolicy`)."""
    return PrioritySchedulePolicy(is_prioritized)


def earliest_start_scheduler(
    frontier: List[Task], progress: Dict[ExecutionThread, float]
) -> Task:
    """Default schedule as a legacy callable: earliest feasible start,
    stable-ordinal tie-break (the reference engine keeps its frontier
    ordinal-sorted, so first-wins scanning ties on ordinals).  Retained for
    the reference engine and API compatibility; the default simulate path
    uses the heap engines instead."""
    best = frontier[0]
    best_time = max(progress.get(best.thread, 0.0), best.metadata["_ready_us"])
    for task in frontier[1:]:
        feasible = max(progress.get(task.thread, 0.0), task.metadata["_ready_us"])
        if feasible < best_time:
            best = task
            best_time = feasible
    return best


def simulate(
    graph: DependencyGraph,
    scheduler: Optional[Scheduler] = None,
) -> SimulationResult:
    """Run Algorithm 1 over the graph and return predicted timings.

    ``scheduler`` may be a :class:`SchedulePolicy` (heap engines,
    O(N log N)) or a legacy ``(frontier, progress) -> task`` callable
    (reference engine, O(N * F)).  ``None`` uses the default
    earliest-start policy.

    Policy runs auto-select the compiled array engine
    (:mod:`repro.core.compiled`) when the graph's lowering is warm: the
    second simulate of an unmutated graph compiles it, and every later run
    skips graph setup entirely.  One-shot graphs (a fresh what-if overlay,
    simulated once) never pay the lowering cost.  Engine selection never
    affects results — the engines are pinned bit-identical.

    Raises:
        SimulationError: if the graph deadlocks (cycle), or a custom
            scheduler returns a task that is not in the frontier.
    """
    if scheduler is None:
        scheduler = _DEFAULT_POLICY
    if isinstance(scheduler, SchedulePolicy):
        compiled = _warm_compiled(graph)
        if compiled is not None:
            return compiled.run(scheduler)
        return _simulate_event_driven(graph, scheduler)
    return _simulate_reference(graph, scheduler)


_DEFAULT_POLICY = SchedulePolicy()


def _warm_compiled(graph):
    """The graph's compiled lowering, warming it on the second policy run.

    Tiered like a JIT: generation G's first simulate runs the object
    engine (no lowering cost for one-shot overlay graphs); its second
    marks the graph hot and compiles; subsequent runs reuse the cache
    until a mutation bumps the generation.
    """
    from repro.core.compiled import compiled_for
    generation = graph._generation
    compiled = graph._compiled
    if compiled is not None and compiled.generation == generation:
        return compiled
    if graph.__dict__.get("_hot_generation") == generation:
        return compiled_for(graph)
    graph._hot_generation = generation
    return None


def _simulate_event_driven(
    graph: DependencyGraph, policy: SchedulePolicy
) -> SimulationResult:
    """Heap-based event-driven engine keyed on feasible start."""
    # the base policy keys every task 0.0; skip the per-push call for it
    trivial_key = type(policy) is SchedulePolicy
    policy_key = policy.key
    succ = graph._succ
    pred = graph._pred
    # per-task state [pending_refs, thread_index, ready_us]: one dict lookup
    # per release instead of separate refs/ready/thread maps
    state: Dict[Task, List] = {}
    initial: List[Task] = []

    # map threads to dense indices so the inner loop indexes flat lists
    # instead of hashing ExecutionThread keys on every dispatch
    threads = graph.threads()
    progress: List[float] = [0.0] * len(threads)
    busy_lists: List[List[Tuple[float, float]]] = [[] for _ in threads]
    ordered_at: List[bool] = [graph.is_ordered(t) for t in threads]

    heads = graph._heads
    nxt_link = graph._next
    # this walk is thread-major, so enumeration order IS the stable
    # ordinal order (see repro.core.compiled.stable_ordinals)
    ordinals: Dict[Task, int] = {}
    count = 0
    for i, thread in enumerate(threads):
        ordered = ordered_at[i]
        first = True
        task = heads.get(thread)
        while task is not None:
            ordinals[task] = count
            count += 1
            n = len(pred[task])
            if ordered and not first:
                n += 1
            state[task] = [n, i, 0.0]
            if n == 0:
                initial.append(task)
            first = False
            task = nxt_link[task]

    total = len(state)
    start_us: Dict[Task, float] = {}
    makespan = 0.0
    # heap entries: (feasible_start, policy_key, ordinal, thread_idx, task);
    # the stable ordinal breaks ties allocation-independently (and keeps
    # tuple comparison from ever reaching the task — ordinals are unique).
    # A task's ready time is final once its last reference drops (all
    # parents done), so the pushed feasible start can only go stale through
    # *thread progress* — re-checked on pop.
    heap: List[Tuple[float, float, int, int, Task]] = [
        (0.0, 0.0 if trivial_key else policy_key(task), ordinals[task],
         state[task][1], task)
        for task in initial
    ]
    heapq.heapify(heap)
    push = heapq.heappush
    pop = heapq.heappop

    while heap:
        feasible, pkey, o, ti, task = pop(heap)
        cur = progress[ti]
        if cur > feasible:
            # stale entry: the thread advanced since this was pushed
            push(heap, (cur, pkey, o, ti, task))
            continue
        now = feasible
        start_us[task] = now
        duration = task.duration
        end = now + duration
        if end > makespan:
            makespan = end
        progress[ti] = end + task.gap
        if duration > 0:
            busy_lists[ti].append((now, end))
        children = succ[task]
        if children:
            for child in children:
                st = state[child]
                if st[2] < end:
                    st[2] = end
                n = st[0] - 1
                st[0] = n
                if n == 0:
                    ci = st[1]
                    cf = progress[ci]
                    rc = st[2]
                    push(heap, (cf if cf > rc else rc,
                                0.0 if trivial_key else policy_key(child),
                                ordinals[child], ci, child))
        nxt = nxt_link[task] if ordered_at[ti] else None
        if nxt is not None:
            # thread order: predecessor completion gates the successor, but
            # the gap is enforced via thread progress, not readiness
            st = state[nxt]
            if st[2] < end:
                st[2] = end
            n = st[0] - 1
            st[0] = n
            if n == 0:
                cf = progress[ti]
                rc = st[2]
                push(heap, (cf if cf > rc else rc,
                            0.0 if trivial_key else policy_key(nxt),
                            ordinals[nxt], ti, nxt))

    if len(start_us) != total:
        raise SimulationError(
            f"deadlock: executed {len(start_us)} of {total} tasks "
            "(dependency cycle)"
        )
    return SimulationResult(
        start_us=start_us, makespan_us=makespan,
        thread_busy=dict(zip(threads, busy_lists)),
        ordinals=ordinals,
    )


def _simulate_reference(
    graph: DependencyGraph, scheduler: Scheduler
) -> SimulationResult:
    """The seed frontier-scan engine, kept for legacy callable schedulers."""
    # reference counts: explicit preds + one for the thread predecessor.
    # The walk is thread-major, so enumeration order IS stable-ordinal order.
    refs: Dict[Task, int] = {}
    thread_next: Dict[Task, Optional[Task]] = {}
    ordinals: Dict[Task, int] = {}
    for thread in graph.threads():
        ordered = graph.is_ordered(thread)
        prev: Optional[Task] = None
        for i, task in enumerate(graph.iter_tasks_on(thread)):
            ordinals[task] = len(ordinals)
            refs[task] = len(graph.predecessors(task)) + (
                1 if ordered and i > 0 else 0)
            thread_next[task] = None
            if ordered and prev is not None:
                thread_next[prev] = task
            task.metadata["_ready_us"] = 0.0
            prev = task

    # the frontier is kept sorted by stable ordinal (refs iterates in
    # insertion = ordinal order; releases insort below), so a scheduler
    # scanning it first-wins breaks feasible-start ties exactly like the
    # heap engines' ordinal tie-break
    frontier: List[Task] = [t for t, r in refs.items() if r == 0]
    progress: Dict[ExecutionThread, float] = {t: 0.0 for t in graph.threads()}
    start_us: Dict[Task, float] = {}
    busy: Dict[ExecutionThread, List[Tuple[float, float]]] = {
        t: [] for t in graph.threads()
    }
    total = len(graph)

    try:
        while frontier:
            task = scheduler(frontier, progress)
            try:
                frontier.remove(task)
            except ValueError:
                raise SimulationError(
                    f"scheduler returned a task outside the frontier: {task!r}"
                ) from None
            start = max(progress[task.thread], task.metadata["_ready_us"])
            start_us[task] = start
            end = start + task.duration
            progress[task.thread] = end + task.gap
            if task.duration > 0:
                busy[task.thread].append((start, end))

            def _release(child: Task) -> None:
                child.metadata["_ready_us"] = max(
                    child.metadata["_ready_us"], end)
                refs[child] -= 1
                if refs[child] == 0:
                    insort(frontier, child, key=ordinals.__getitem__)

            for child in graph.successors(task):
                _release(child)
            nxt = thread_next[task]
            if nxt is not None:
                # thread order: predecessor completion gates the successor,
                # but the gap is enforced via thread progress, not readiness
                nxt.metadata["_ready_us"] = max(nxt.metadata["_ready_us"], end)
                refs[nxt] -= 1
                if refs[nxt] == 0:
                    insort(frontier, nxt, key=ordinals.__getitem__)
    finally:
        # scrub the scratch metadata even when the scheduler or a deadlock
        # raises mid-run — over *every* task, not just the executed ones
        for task in refs:
            task.metadata.pop("_ready_us", None)

    if len(start_us) != total:
        raise SimulationError(
            f"deadlock: executed {len(start_us)} of {total} tasks "
            "(dependency cycle)"
        )
    makespan = max((start_us[t] + t.duration for t in start_us), default=0.0)
    return SimulationResult(start_us=start_us, makespan_us=makespan,
                            thread_busy=busy, ordinals=ordinals)
