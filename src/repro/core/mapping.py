"""Synchronization-free task-to-layer mapping (paper Section 4.3).

The framework instrumentation records a timestamp window ``C_L`` around each
layer phase on the CPU (the *markers* in our traces).  Mapping works without
any added CUDA synchronization:

1. every CPU task whose start falls inside a layer's CPU window belongs to
   that layer/phase;
2. every GPU task whose *launch API* falls inside the window belongs to the
   same layer/phase, found through the CUPTI correlation ID.

This is exactly Figure 3 of the paper: GPU kernels are attributed by the
CUDA launch calls invoked during ``C_L``, never by their own (asynchronous,
possibly much later) execution timestamps.
"""

from typing import Dict, List, Optional, Tuple

from repro.common.errors import MappingError
from repro.core.graph import DependencyGraph
from repro.core.task import Task
from repro.tracing.records import EventCategory
from repro.tracing.trace import Trace


def map_tasks_to_layers(graph: DependencyGraph, trace: Trace) -> int:
    """Fill ``task.layer``/``task.phase`` from the trace's layer markers.

    Returns:
        The number of tasks that received a layer assignment.

    Raises:
        MappingError: if marker windows overlap on the same CPU thread
            (instrumentation bug) — ambiguity would corrupt the mapping.
    """
    windows = _marker_windows(trace)
    if not windows:
        return 0

    mapped = 0
    for thread in graph.threads():
        if not thread.is_cpu:
            continue
        thread_windows = windows.get(thread.index, [])
        if not thread_windows:
            continue
        idx = 0
        for task in graph.iter_tasks_on(thread):
            start = task.trace_start_us
            while (idx < len(thread_windows)
                   and thread_windows[idx][1] <= start):
                idx += 1
            if idx >= len(thread_windows):
                break
            win_start, win_end, layer, phase = thread_windows[idx]
            if not win_start <= start < win_end:
                continue
            mapped += _assign(task, layer, phase)
    return mapped


def _assign(task: Task, layer: str, phase: Optional[str]) -> int:
    """Assign layer/phase to a CPU task and its correlated GPU task."""
    count = 0
    if task.layer is None:
        task.layer = layer
        task.phase = phase
        count += 1
    launched = task.metadata.get("launches")
    if isinstance(launched, Task) and launched.layer is None:
        launched.layer = layer
        launched.phase = phase
        count += 1
    return count


def _marker_windows(
    trace: Trace,
) -> Dict[int, List[Tuple[float, float, str, Optional[str]]]]:
    """Per-CPU-thread sorted, non-overlapping marker windows."""
    windows: Dict[int, List[Tuple[float, float, str, Optional[str]]]] = {}
    for marker in trace.by_category(EventCategory.MARKER):
        if marker.layer is None:
            raise MappingError(f"marker {marker.name!r} lacks a layer name")
        windows.setdefault(marker.thread.index, []).append(
            (marker.start_us, marker.end_us, marker.layer, marker.phase)
        )
    for thread_index, wins in windows.items():
        wins.sort()
        for prev, cur in zip(wins, wins[1:]):
            if cur[0] < prev[1] - 1e-6:
                raise MappingError(
                    f"overlapping layer windows on cpu:{thread_index}: "
                    f"{prev[2]}#{prev[3]} and {cur[2]}#{cur[3]}"
                )
    return windows


def mapping_coverage(graph: DependencyGraph) -> float:
    """Fraction of GPU tasks that carry a layer assignment.

    Useful as a quality metric: input upload and iteration-boundary syncs
    legitimately stay unmapped, so coverage is high but below 1.0.
    """
    gpu_tasks = [t for t in graph.tasks() if t.is_gpu]
    if not gpu_tasks:
        return 0.0
    return sum(1 for t in gpu_tasks if t.layer is not None) / len(gpu_tasks)
