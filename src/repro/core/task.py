"""The Task: one node of Daydream's kernel-level dependency graph.

A task corresponds to one GPU kernel, CUDA memory copy, CUDA runtime API
call, data-loading step, or communication primitive (paper Section 4.2.1).
Tasks carry the fields Algorithm 1 needs — execution thread, duration, gap —
plus the layer/phase mapping that graph transformations rely on.

Tasks use *identity* semantics (``eq=False``): two tasks with identical
fields are still distinct graph nodes, and tasks are hashable so they can
key adjacency sets.
"""

import enum
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.common.errors import ConfigError
from repro.tracing.records import ExecutionThread


class TaskKind(enum.Enum):
    """What kind of work a task represents."""

    CPU = "cpu"            # CUDA runtime API or other CPU work
    GPU_KERNEL = "gpu_kernel"
    MEMCPY = "memcpy"
    COMM = "comm"
    DATALOAD = "dataload"

    @property
    def is_gpu(self) -> bool:
        return self in (TaskKind.GPU_KERNEL, TaskKind.MEMCPY)


@dataclass(eq=False)
class Task:
    """One node in the dependency graph.

    Attributes:
        name: task name (CUDA API / kernel / primitive name).
        kind: task classification.
        thread: execution thread (CPU process, CUDA stream, comm channel).
        duration: execution time in microseconds.
        gap: idle time *after* this task on its thread before the next task
            can start (non-CUDA CPU runtime the profiler can't see; paper
            Section 4.2.1 'Gap').  Simulated as part of thread progress.
        layer: DNN layer this task belongs to (filled by the task-to-layer
            mapping; ``None`` if unmapped).
        phase: ``forward`` / ``backward`` / ``weight_update`` when known.
        correlation_id: CUPTI correlation (links launch APIs and kernels).
        size_bytes: payload for memcpy/comm tasks.
        priority: scheduling priority used by custom schedulers (P3).
        trace_start_us: the task's start time in the *measured* trace
            (informational; simulation recomputes start times).
        metadata: free-form annotations.
    """

    name: str
    kind: TaskKind
    thread: ExecutionThread
    duration: float
    gap: float = 0.0
    layer: Optional[str] = None
    phase: Optional[str] = None
    correlation_id: Optional[int] = None
    size_bytes: float = 0.0
    priority: int = 0
    trace_start_us: float = 0.0
    metadata: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.duration < 0:
            raise ConfigError(f"task {self.name!r} has negative duration")
        if self.gap < 0:
            raise ConfigError(f"task {self.name!r} has negative gap")

    def __setattr__(self, name: str, value: object) -> None:
        # Copy-on-write write barrier: while a task is shared between a base
        # graph and an overlay (graph.overlay()), the base stashes itself
        # under ``_cow_base``; the first attribute write materializes a
        # pristine clone in the base before the mutation lands here.
        base = self.__dict__.get("_cow_base")
        if base is not None:
            base._cow_task_written(self)
        # Compiled-lowering write barrier: a lowering pass (see
        # repro.core.compiled) stamps every task it captured; the first
        # in-place write pops the stamp and bumps the owning graph's
        # mutation generation so the cached CompiledGraph is rebuilt.
        stamp = self.__dict__.pop("_sim_stamp", None)
        if stamp is not None:
            stamp.bump()
        object.__setattr__(self, name, value)

    def clone(self) -> "Task":
        """A fast field-for-field clone (fresh identity, own metadata dict).

        Bypasses dataclass ``__init__`` — the source task already satisfies
        the constructor invariants — and never carries over copy-on-write
        seals.  Task-valued metadata still references the *original* linked
        tasks; graph-level cloning remaps those.
        """
        out = object.__new__(Task)
        d = out.__dict__
        d.update(self.__dict__)
        d.pop("_cow_base", None)
        d.pop("_sim_stamp", None)
        d["metadata"] = dict(self.metadata)
        return out

    @property
    def is_gpu(self) -> bool:
        """True for GPU-side tasks (kernels and memory copies)."""
        return self.kind.is_gpu

    @property
    def is_cpu(self) -> bool:
        """True for CPU-side tasks (runtime APIs, data loading)."""
        return self.kind in (TaskKind.CPU, TaskKind.DATALOAD)

    @property
    def is_comm(self) -> bool:
        """True for communication primitives."""
        return self.kind is TaskKind.COMM

    def scale_duration(self, factor: float) -> None:
        """Scale this task's duration (the shrink/scale primitive)."""
        if factor < 0:
            raise ConfigError("scale factor must be non-negative")
        self.duration *= factor

    def __repr__(self) -> str:  # compact, for debugging
        layer = f" layer={self.layer}" if self.layer else ""
        return (f"Task({self.name!r}, {self.kind.value}, {self.thread}, "
                f"dur={self.duration:.1f}us{layer})")
