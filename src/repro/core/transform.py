"""Graph-transformation primitives (paper Sections 3-4.4).

Daydream models optimizations as combinations of a small primitive set:

* ``select``             — pick tasks of interest (by predicate, name
                           substring, layer, or phase);
* ``scale`` / ``shrink`` — change task durations;
* ``insert`` / ``remove``— add or delete tasks, keeping launch APIs and
                           their GPU kernels consistent;
* ``schedule``           — override the simulator's scheduling policy
                           (handled in :mod:`repro.core.simulate`).

These functions mutate a graph in place; optimization models normally apply
them to ``graph.copy()`` so one baseline profile answers many questions.
"""

from typing import Callable, Iterable, List, Optional

from repro.common.errors import GraphConsistencyError
from repro.core.graph import DependencyGraph
from repro.core.task import Task, TaskKind
from repro.tracing.records import ExecutionThread

# ----------------------------------------------------------------- selection

def select_gpu_tasks(graph: DependencyGraph) -> List[Task]:
    """All GPU-side tasks (kernels + memory copies)."""
    return graph.select(lambda t: t.is_gpu)


def select_by_name(graph: DependencyGraph, *substrings: str) -> List[Task]:
    """Tasks whose name contains any of the given substrings."""
    return graph.select(lambda t: any(s in t.name for s in substrings))


def select_by_layer(
    graph: DependencyGraph,
    layer_predicate: Callable[[str], bool],
    phase: Optional[str] = None,
) -> List[Task]:
    """Tasks mapped to layers matching a predicate (and optionally a phase)."""
    return graph.select(
        lambda t: t.layer is not None and layer_predicate(t.layer)
        and (phase is None or t.phase == phase)
    )


def select_by_phase(graph: DependencyGraph, phase: str) -> List[Task]:
    """Tasks mapped to one training phase."""
    return graph.select(lambda t: t.phase == phase)


# -------------------------------------------------------------- scale/shrink

def scale_durations(tasks: Iterable[Task], factor: float) -> int:
    """Multiply task durations by ``factor``; returns the task count."""
    count = 0
    for task in tasks:
        task.scale_duration(factor)
        count += 1
    return count


def shrink_durations(tasks: Iterable[Task], divisor: float) -> int:
    """Divide task durations by ``divisor`` (the paper's shrink primitive)."""
    if divisor <= 0:
        raise GraphConsistencyError("shrink divisor must be positive")
    return scale_durations(tasks, 1.0 / divisor)


# ------------------------------------------------------------- insert/remove

def remove_gpu_task(graph: DependencyGraph, gpu_task: Task,
                    remove_launch: bool = True) -> None:
    """Remove a GPU task and (by default) its CPU launch API.

    Mirrors the paper's Figure 4(b): deleting a GPU kernel also deletes the
    ``cudaLaunchKernel`` that triggered it, since a fused/removed kernel is
    never launched.  The launch's gap is preserved on its thread predecessor
    only implicitly — removing the launch removes its trailing gap, which is
    exactly the CPU time the optimization eliminates.
    """
    if not gpu_task.is_gpu:
        raise GraphConsistencyError(f"not a GPU task: {gpu_task!r}")
    launch = gpu_task.metadata.get("launched_by")
    graph.remove(gpu_task)
    if remove_launch and isinstance(launch, Task) and launch in graph:
        graph.remove(launch)


def insert_gpu_task(
    graph: DependencyGraph,
    cpu_anchor: Task,
    gpu_anchor: Optional[Task],
    kernel_name: str,
    duration_us: float,
    launch_duration_us: float = 9.0,
    kind: TaskKind = TaskKind.GPU_KERNEL,
    layer: Optional[str] = None,
    phase: Optional[str] = None,
) -> Task:
    """Insert a GPU task plus its CPU launch API (paper Figure 4(b)).

    Args:
        graph: the graph to mutate.
        cpu_anchor: CPU task after which the new launch API is inserted.
        gpu_anchor: GPU task after which the new kernel is inserted in its
            stream's order; ``None`` appends to the stream of the anchor's
            correlated kernel (or the first GPU stream).
        kernel_name: name of the new kernel.
        duration_us: estimated kernel duration.
        launch_duration_us: duration of the inserted ``cudaLaunchKernel``.

    Returns:
        The inserted GPU task (its launch is reachable via metadata).
    """
    launch = Task(
        name="cudaLaunchKernel", kind=TaskKind.CPU, thread=cpu_anchor.thread,
        duration=launch_duration_us, layer=layer, phase=phase,
        metadata={"inserted": True},
    )
    graph.insert_after(cpu_anchor, launch)

    if gpu_anchor is None:
        gpu_threads = [t for t in graph.threads() if t.is_gpu]
        if not gpu_threads:
            raise GraphConsistencyError("graph has no GPU stream to insert into")
        stream = gpu_threads[0]
        gpu_task = Task(
            name=kernel_name, kind=kind, thread=stream, duration=duration_us,
            layer=layer, phase=phase, metadata={"inserted": True},
        )
        graph.append(gpu_task)
    else:
        gpu_task = Task(
            name=kernel_name, kind=kind, thread=gpu_anchor.thread,
            duration=duration_us, layer=layer, phase=phase,
            metadata={"inserted": True},
        )
        graph.insert_after(gpu_anchor, gpu_task)

    graph.add_dependency(launch, gpu_task)
    launch.metadata["launches"] = gpu_task
    gpu_task.metadata["launched_by"] = launch
    return gpu_task


def insert_comm_task(
    graph: DependencyGraph,
    channel: ExecutionThread,
    name: str,
    duration_us: float,
    after: Optional[Task] = None,
    depends_on: Iterable[Task] = (),
    successors: Iterable[Task] = (),
    size_bytes: float = 0.0,
    priority: int = 0,
) -> Task:
    """Insert a communication primitive on a channel.

    Args:
        channel: target communication channel (created on first use).
        after: position in the channel's order (append when ``None``).
        depends_on: tasks that must finish first (e.g. the backward kernels
            producing the gradients).
        successors: tasks gated by this primitive (e.g. weight update).
    """
    task = Task(
        name=name, kind=TaskKind.COMM, thread=channel, duration=duration_us,
        size_bytes=size_bytes, priority=priority, metadata={"inserted": True},
    )
    if after is None:
        graph.append(task)
    else:
        graph.insert_after(after, task)
    for dep in depends_on:
        graph.add_dependency(dep, task)
    for succ in successors:
        graph.add_dependency(task, succ)
    return task


# ------------------------------------------------------------------ utilities

def total_duration(tasks: Iterable[Task]) -> float:
    """Sum of task durations (used by fusion estimates)."""
    return sum(t.duration for t in tasks)


def first_in_thread_order(graph: DependencyGraph, tasks: Iterable[Task]) -> Task:
    """The earliest of ``tasks`` in its thread's program order."""
    candidates = list(tasks)
    if not candidates:
        raise GraphConsistencyError("empty task set")
    per_thread: dict = {}
    for task in candidates:
        per_thread.setdefault(task.thread, []).append(task)
    # prefer the first thread's earliest task deterministically
    thread = sorted(per_thread)[0]
    order = {t: i for i, t in enumerate(graph.tasks_on(thread))}
    return min(per_thread[thread], key=lambda t: order[t])
