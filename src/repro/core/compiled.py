"""Compiled simulation core: struct-of-arrays lowering + array engine.

The object-graph engine in :mod:`repro.core.simulate` spends most of its
time chasing Python attribute lookups and dict probes per dispatched task.
This module lowers a :class:`~repro.core.graph.DependencyGraph` once into
flat, densely indexed arrays and runs Algorithm 1 over integers:

* **stable ordinals** — every task gets a dense ordinal assigned
  thread-major (threads in sorted order, tasks in linked-list order
  within each thread).  Ordinals are a pure function of the graph *data*,
  never of allocation addresses, and both simulation engines break
  feasible-start ties on them — which is what makes simulation results
  allocation-independent (the historical fig10 "last-ulp tie" drift came
  from ``id()``-ordered successor-set iteration);
* **struct-of-arrays** — per-ordinal ``duration`` / ``gap`` /
  ``thread_idx`` float/int arrays plus CSR successor/predecessor index
  arrays.  Arrays are numpy when available and stdlib ``array.array``
  otherwise (the dependency stays soft; semantics are identical because
  the hot loop runs over plain-list views either way — CPython indexes
  lists faster than it unboxes numpy scalars);
* **the array engine** — a lazy-deletion min-heap over
  ``(feasible_start, policy_key, ordinal)`` integer entries.  No Task
  object is touched between heapify and the final result assembly;
* **batched multi-simulate** — :func:`simulate_many` amortizes the
  lowering across every cell of a what-if grid that shares a baseline:
  each :class:`CellDelta` patches sparse per-task duration/gap overrides
  onto copies of the baseline arrays and re-runs only the engine loop.

Invalidation contract (see ``docs/perf.md``): a compiled graph is cached
on its ``DependencyGraph`` keyed by the graph's mutation generation.
Structural mutations (append/insert/remove/edges/``mark_unordered``/
copy-on-write task swaps) bump the generation directly; in-place ``Task``
field writes bump it through the write stamp the lowering pass leaves on
each task (``Task.__setattr__`` consults it exactly like the existing
copy-on-write barrier).  A stale cache is therefore impossible — at worst
a conservative bump forces one redundant relowering.
"""

import heapq
import os
import weakref
from array import array
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.common.errors import SimulationError
from repro.core.task import Task
from repro.tracing.records import ExecutionThread

if os.environ.get("REPRO_FORCE_NO_NUMPY"):  # the no-numpy CI matrix leg
    _np = None
else:
    try:
        import numpy as _np
    except ImportError:  # pragma: no cover - exercised via the env gate
        _np = None

#: whether the soft numpy dependency resolved (the array engine runs —
#: bit-identically — either way; numpy only accelerates bulk array ops)
HAVE_NUMPY = _np is not None


def _float_array(values: Sequence[float]):
    """A float64 struct-of-arrays column (numpy, or ``array('d')``)."""
    if _np is not None:
        return _np.asarray(values, dtype=_np.float64)
    return array("d", values)


def _int_array(values: Sequence[int]):
    """A signed index column (numpy int64, or ``array('q')``)."""
    if _np is not None:
        return _np.asarray(values, dtype=_np.int64)
    return array("q", values)


#: shared empty successor row (never mutated by the engine)
_EMPTY_ROW: List[int] = []


def stable_ordinals(graph) -> Dict[Task, int]:
    """Dense, allocation-independent ordinals: topological-by-thread.

    Threads are enumerated in their sorted order and each thread's tasks
    in linked-list order, so two graphs with identical *data* assign
    identical ordinals no matter how their Task objects were allocated.
    Within every ordered thread the numbering is topological; across
    threads it is the deterministic total order both engines use to break
    scheduling ties.
    """
    ordinal: Dict[Task, int] = {}
    for thread in graph.threads():
        for task in graph.iter_tasks_on(thread):
            ordinal[task] = len(ordinal)
    return ordinal


class _WriteStamp:
    """Invalidation hook the lowering pass leaves on every task.

    ``Task.__setattr__`` pops and fires the stamp on the first in-place
    field write after a lowering, bumping the owning graph's mutation
    generation so the cached :class:`CompiledGraph` is rebuilt.  One
    shared stamp per graph keeps the lowering pass to a single dict write
    per task.
    """

    __slots__ = ("_graph_ref",)

    def __init__(self, graph) -> None:
        self._graph_ref = weakref.ref(graph)

    def bump(self) -> None:
        graph = self._graph_ref()
        if graph is not None:
            graph._generation += 1


@dataclass
class CompiledGraph:
    """A dependency graph lowered to flat arrays, ready for the array engine.

    Attributes (all task columns are indexed by stable ordinal):
        tasks: ordinal → Task (for result assembly only).
        ordinal: Task → ordinal.
        duration / gap: float64 columns.
        thread_idx / tnext: dense thread index of each task, and the
            ordinal of its thread successor (−1 when the thread is
            unordered or the task is last on its thread).
        indegree: explicit predecessors + 1 for a gated thread
            predecessor — the simulator's initial reference counts.
        succ_indptr / succ_indices: CSR explicit-successor lists, each
            row sorted by ordinal.
        pred_indptr / pred_indices: CSR explicit-predecessor lists.
        threads / ordered: dense thread table and per-thread order flags.
        generation: the graph mutation generation this lowering captured.
    """

    tasks: List[Task]
    ordinal: Dict[Task, int]
    duration: object
    gap: object
    thread_idx: object
    tnext: object
    indegree: object
    succ_indptr: object
    succ_indices: object
    threads: List[ExecutionThread]
    ordered: List[bool]
    generation: int = 0
    # predecessor CSR is derived from the successor CSR on first access
    # (an O(E) counting pass), so the common compile-and-run path never
    # pays for it
    _pred_csr: Optional[Tuple[object, object]] = field(
        default=None, repr=False)
    # plain-list views for the hot loop (CPython list indexing beats both
    # numpy scalar unboxing and array.array getitem)
    _duration_l: List[float] = field(default_factory=list, repr=False)
    _gap_l: List[float] = field(default_factory=list, repr=False)
    _thread_idx_l: List[int] = field(default_factory=list, repr=False)
    _tnext_l: List[int] = field(default_factory=list, repr=False)
    _indegree_l: List[int] = field(default_factory=list, repr=False)
    _succ_rows: List[List[int]] = field(default_factory=list, repr=False)

    def __len__(self) -> int:
        return len(self.tasks)

    @classmethod
    def build(cls, graph) -> "CompiledGraph":
        """Lower ``graph`` to struct-of-arrays form.  O(N + E)."""
        threads = graph.threads()
        ordered = [graph.is_ordered(t) for t in threads]

        # one linked-list walk per thread assigns ordinals, reads every
        # per-task field, and leaves the write stamp; within a thread
        # ordinals are consecutive, so an ordered thread's successor link
        # is simply ``i + 1``
        stamp = _WriteStamp(graph)
        tasks: List[Task] = []
        ordinal: Dict[Task, int] = {}
        duration: List[float] = []
        gap: List[float] = []
        thread_idx: List[int] = []
        tnext: List[int] = []
        indegree: List[int] = []
        nxt_link = graph._next
        heads = graph._heads
        pred = graph._pred
        append = tasks.append
        for ti, thread in enumerate(threads):
            is_ordered = ordered[ti]
            task = heads.get(thread)
            first = True
            i = len(tasks)
            while task is not None:
                ordinal[task] = i
                append(task)
                d = task.__dict__
                d["_sim_stamp"] = stamp
                duration.append(d["duration"])
                gap.append(d["gap"])
                thread_idx.append(ti)
                deg = len(pred[task])
                if is_ordered and not first:
                    deg += 1
                indegree.append(deg)
                first = False
                i += 1
                task = nxt_link[task]
                tnext.append(i if is_ordered and task is not None else -1)
        n = len(tasks)

        succ = graph._succ
        succ_rows: List[List[int]] = []
        succ_indptr = [0] * (n + 1)
        succ_indices: List[int] = []
        rows_append = succ_rows.append
        for i, task in enumerate(tasks):
            # adjacency rows are overwhelmingly empty or single-element;
            # specializing those sizes skips most of the sort calls
            succs = succ[task]
            m = len(succs)
            if m == 0:
                rows_append(_EMPTY_ROW)
            elif m == 1:
                (s,) = succs
                row = [ordinal[s]]
                rows_append(row)
                succ_indices.append(row[0])
            else:
                row = sorted(ordinal[s] for s in succs)
                rows_append(row)
                succ_indices.extend(row)
            succ_indptr[i + 1] = len(succ_indices)

        compiled = cls(
            tasks=tasks,
            ordinal=ordinal,
            duration=_float_array(duration),
            gap=_float_array(gap),
            thread_idx=_int_array(thread_idx),
            tnext=_int_array(tnext),
            indegree=_int_array(indegree),
            succ_indptr=_int_array(succ_indptr),
            succ_indices=_int_array(succ_indices),
            threads=threads,
            ordered=ordered,
            generation=getattr(graph, "_generation", 0),
        )
        compiled._duration_l = duration
        compiled._gap_l = gap
        compiled._thread_idx_l = thread_idx
        compiled._tnext_l = tnext
        compiled._indegree_l = indegree
        compiled._succ_rows = succ_rows
        return compiled

    # ------------------------------------------------------- derived columns

    @property
    def pred_indptr(self):
        return self._pred_csr_pair()[0]

    @property
    def pred_indices(self):
        return self._pred_csr_pair()[1]

    def _pred_csr_pair(self) -> Tuple[object, object]:
        """Transpose the successor CSR into the predecessor CSR.  O(N + E).

        Rows come out ordinal-sorted automatically because the outer loop
        visits sources in ordinal order.
        """
        if self._pred_csr is None:
            n = len(self.tasks)
            counts = [0] * (n + 1)
            for row in self._succ_rows:
                for c in row:
                    counts[c + 1] += 1
            for i in range(1, n + 1):
                counts[i] += counts[i - 1]
            indices = [0] * counts[n]
            cursor = counts[:]
            for i, row in enumerate(self._succ_rows):
                for c in row:
                    indices[cursor[c]] = i
                    cursor[c] += 1
            self._pred_csr = (_int_array(counts), _int_array(indices))
        return self._pred_csr

    # ----------------------------------------------------------- simulation

    def policy_keys(self, policy) -> Optional[List[float]]:
        """Per-ordinal secondary sort keys for a ``SchedulePolicy``.

        ``None`` means every key is 0.0 (the default policy), letting the
        engine skip the column entirely.
        """
        from repro.core.simulate import SchedulePolicy
        if type(policy) is SchedulePolicy:
            return None
        key = policy.key
        return [key(task) for task in self.tasks]

    def run(self, policy=None,
            duration: Optional[List[float]] = None,
            gap: Optional[List[float]] = None):
        """Run Algorithm 1 over the arrays; returns a SimulationResult.

        ``duration``/``gap`` override the baseline columns (plain lists,
        ordinal-indexed) — this is how :func:`simulate_many` re-runs the
        engine under a cell's sparse delta without re-lowering.
        """
        from repro.core.simulate import SchedulePolicy, SimulationResult
        if policy is None:
            policy = SchedulePolicy()
        pkeys = self.policy_keys(policy)
        starts, makespan, busy_lists = _run_arrays(
            len(self.tasks),
            duration if duration is not None else self._duration_l,
            gap if gap is not None else self._gap_l,
            self._thread_idx_l, self._tnext_l, self._indegree_l,
            self._succ_rows, len(self.threads), pkeys,
            all(self.ordered),
        )
        return SimulationResult(
            start_us=dict(zip(self.tasks, starts)),
            makespan_us=makespan,
            thread_busy=dict(zip(self.threads, busy_lists)),
            ordinals=self.ordinal,
        )


def _run_arrays(n: int, dur: List[float], gap: List[float],
                thread_idx: List[int], tnext: List[int],
                indegree: List[int], succ_rows: List[List[int]],
                n_threads: int, pkeys: Optional[List[float]],
                all_ordered: bool = False,
                ) -> Tuple[List[float], float, List[List[Tuple[float, float]]]]:
    """The array engine inner loop: integer heap entries, no Task objects.

    Heap entries are ``(feasible_start, policy_key, ordinal)`` (the policy
    column is dropped when every key is 0.0).  Ordinals are unique, so
    tuple comparison never needs a fourth element, and the ordinal
    tie-break makes dispatch order a pure function of the graph data.
    Stale entries (thread advanced since push) are re-pushed with their
    recomputed feasible start — exact, since feasible starts only grow.

    When every thread is *ordered* the heap disappears entirely
    (``all_ordered``): a task's start is ``max(thread progress, ready)``
    and both are final by the time its last predecessor executes — the
    chain edge pins each thread's dispatch order, so the global pop order
    carries no information and a plain worklist computes the identical
    fixpoint (same starts, same per-thread busy order, same makespan).
    Scheduling only has degrees of freedom on unordered channels, which
    is exactly when the heap paths below run.
    """
    indeg = indegree[:]
    ready = [0.0] * n
    starts = [0.0] * n
    progress = [0.0] * n_threads
    busy_lists: List[List[Tuple[float, float]]] = [[] for _ in range(n_threads)]
    executed = 0
    makespan = 0.0
    push = heapq.heappush
    pop = heapq.heappop

    if all_ordered:
        stack = [i for i in range(n) if indeg[i] == 0]
        append = stack.append
        while stack:
            i = stack.pop()
            ti = thread_idx[i]
            cur = progress[ti]
            rd = ready[i]
            feasible = cur if cur > rd else rd
            starts[i] = feasible
            d = dur[i]
            end = feasible + d
            if end > makespan:
                makespan = end
            progress[ti] = end + gap[i]
            if d > 0.0:
                busy_lists[ti].append((feasible, end))
            executed += 1
            for c in succ_rows[i]:
                if ready[c] < end:
                    ready[c] = end
                r = indeg[c] - 1
                indeg[c] = r
                if r == 0:
                    append(c)
            c = tnext[i]
            if c >= 0:
                if ready[c] < end:
                    ready[c] = end
                r = indeg[c] - 1
                indeg[c] = r
                if r == 0:
                    append(c)
    elif pkeys is None:
        heap = [(0.0, i) for i in range(n) if indeg[i] == 0]
        heapq.heapify(heap)
        while heap:
            feasible, i = pop(heap)
            ti = thread_idx[i]
            cur = progress[ti]
            if cur > feasible:
                push(heap, (cur, i))
                continue
            starts[i] = feasible
            d = dur[i]
            end = feasible + d
            if end > makespan:
                makespan = end
            progress[ti] = end + gap[i]
            if d > 0.0:
                busy_lists[ti].append((feasible, end))
            executed += 1
            for c in succ_rows[i]:
                if ready[c] < end:
                    ready[c] = end
                r = indeg[c] - 1
                indeg[c] = r
                if r == 0:
                    cf = progress[thread_idx[c]]
                    rc = ready[c]
                    push(heap, (cf if cf > rc else rc, c))
            c = tnext[i]
            if c >= 0:
                if ready[c] < end:
                    ready[c] = end
                r = indeg[c] - 1
                indeg[c] = r
                if r == 0:
                    cf = progress[ti]
                    rc = ready[c]
                    push(heap, (cf if cf > rc else rc, c))
    else:
        heap3 = [(0.0, pkeys[i], i) for i in range(n) if indeg[i] == 0]
        heapq.heapify(heap3)
        while heap3:
            feasible, pk, i = pop(heap3)
            ti = thread_idx[i]
            cur = progress[ti]
            if cur > feasible:
                push(heap3, (cur, pk, i))
                continue
            starts[i] = feasible
            d = dur[i]
            end = feasible + d
            if end > makespan:
                makespan = end
            progress[ti] = end + gap[i]
            if d > 0.0:
                busy_lists[ti].append((feasible, end))
            executed += 1
            for c in succ_rows[i]:
                if ready[c] < end:
                    ready[c] = end
                r = indeg[c] - 1
                indeg[c] = r
                if r == 0:
                    cf = progress[thread_idx[c]]
                    rc = ready[c]
                    push(heap3, (cf if cf > rc else rc, pkeys[c], c))
            c = tnext[i]
            if c >= 0:
                if ready[c] < end:
                    ready[c] = end
                r = indeg[c] - 1
                indeg[c] = r
                if r == 0:
                    cf = progress[ti]
                    rc = ready[c]
                    push(heap3, (cf if cf > rc else rc, pkeys[c], c))

    if executed != n:
        raise SimulationError(
            f"deadlock: executed {executed} of {n} tasks (dependency cycle)"
        )
    return starts, makespan, busy_lists


def compiled_for(graph) -> CompiledGraph:
    """The cached :class:`CompiledGraph` of ``graph``, relowered when stale.

    Validity is keyed on the graph's mutation generation: structural
    mutations and copy-on-write materializations bump it directly, and
    in-place task field writes bump it through the write stamps
    :meth:`CompiledGraph.build` leaves behind.
    """
    compiled = graph._compiled
    generation = graph._generation
    if compiled is not None and compiled.generation == generation:
        return compiled
    compiled = CompiledGraph.build(graph)
    graph._compiled = compiled
    return compiled


# -------------------------------------------------------- batched multi-sim


@dataclass(frozen=True)
class CellDelta:
    """One what-if cell as sparse overrides onto a shared baseline.

    ``durations``/``gaps`` map tasks of the *baseline* graph to their
    overridden values; everything unmentioned keeps the baseline value.
    Cells are cheap: :func:`simulate_many` patches them onto copies of
    the compiled baseline's columns without touching the graph.
    """

    label: str = "delta"
    durations: Dict[Task, float] = field(default_factory=dict)
    gaps: Dict[Task, float] = field(default_factory=dict)

    @classmethod
    def scale_durations(cls, tasks: Iterable[Task], factor: float,
                        label: str = "scaled") -> "CellDelta":
        """Scale the duration of each task by ``factor`` (≥ 0)."""
        if factor < 0:
            raise SimulationError("duration scale factor must be >= 0")
        return cls(label=label,
                   durations={t: t.duration * factor for t in tasks})


def simulate_many(compiled: CompiledGraph, cells: Sequence[CellDelta],
                  policy=None) -> List[object]:
    """Simulate every cell of a shared-baseline grid on one lowering.

    The baseline columns are copied per cell (O(N) list copies — numpy
    bulk copies when available), each cell's sparse overrides are patched
    in by ordinal (O(|delta|)), and only the engine loop re-runs.  Cells
    referencing tasks outside the baseline raise ``SimulationError``.

    Returns one ``SimulationResult`` per cell, in cell order,
    bit-identical to lowering and simulating each patched graph from
    scratch.
    """
    ordinal = compiled.ordinal
    results = []
    for cell in cells:
        duration = gap = None
        if cell.durations:
            duration = compiled._duration_l[:]
            try:
                for task, value in cell.durations.items():
                    duration[ordinal[task]] = value
            except KeyError:
                raise SimulationError(
                    f"cell {cell.label!r} overrides a task outside the "
                    "compiled baseline") from None
        if cell.gaps:
            gap = compiled._gap_l[:]
            try:
                for task, value in cell.gaps.items():
                    gap[ordinal[task]] = value
            except KeyError:
                raise SimulationError(
                    f"cell {cell.label!r} overrides a task outside the "
                    "compiled baseline") from None
        results.append(compiled.run(policy, duration=duration, gap=gap))
    return results
