"""Runtime decomposition: CPU-only / GPU-only / CPU+GPU parallel (Figure 6).

The paper defines (Section 6.2):

* **CPU-only** — CPU busy while no GPU kernel executes;
* **GPU-only** — CPU waiting for the GPU (sync APIs, blocking copies);
* **CPU+GPU** — both busy.

We compute these with interval algebra over the simulated (or traced) busy
intervals.  CPU busy time includes the inter-task gaps — they are real CPU
work (Python front-end, framework dispatch) that CUPTI simply cannot see —
but excludes the wait portion of synchronization APIs, which is GPU time
from the CPU's perspective.
"""

from dataclasses import dataclass
from typing import List, Tuple

from repro.common.intervals import intersect_total, subtract_total
from repro.core.graph import DependencyGraph
from repro.core.simulate import SimulationResult

Interval = Tuple[float, float]


@dataclass(frozen=True)
class RuntimeBreakdown:
    """The Figure-6 decomposition of one iteration, in microseconds."""

    total_us: float
    cpu_only_us: float
    gpu_only_us: float
    parallel_us: float

    @property
    def other_us(self) -> float:
        """Idle residue (neither processor busy)."""
        return max(0.0, self.total_us - self.cpu_only_us - self.gpu_only_us
                   - self.parallel_us)

    def as_row(self) -> List[float]:
        """``[total, cpu_only, gpu_only, parallel]`` in milliseconds."""
        return [self.total_us / 1000.0, self.cpu_only_us / 1000.0,
                self.gpu_only_us / 1000.0, self.parallel_us / 1000.0]


def compute_breakdown(
    graph: DependencyGraph, result: SimulationResult
) -> RuntimeBreakdown:
    """Decompose a simulated iteration into the Figure-6 components."""
    cpu_busy: List[Interval] = []
    gpu_busy: List[Interval] = []
    for thread, intervals in result.thread_busy.items():
        if thread.is_cpu:
            cpu_busy.extend(intervals)
        elif thread.is_gpu:
            gpu_busy.extend(intervals)
    # gaps after CPU tasks are CPU work the profiler can't see
    for task in graph.tasks():
        if task.is_cpu and task.gap > 0 and task in result.start_us:
            end = result.end_us(task)
            cpu_busy.append((end, end + task.gap))

    total = result.makespan_us
    parallel = intersect_total(cpu_busy, gpu_busy)
    cpu_only = subtract_total(cpu_busy, gpu_busy)
    gpu_only = subtract_total(gpu_busy, cpu_busy)
    # clamp tiny numerical residue
    covered = parallel + cpu_only + gpu_only
    if covered > total:
        scale = total / covered
        parallel, cpu_only, gpu_only = (parallel * scale, cpu_only * scale,
                                        gpu_only * scale)
    return RuntimeBreakdown(
        total_us=total,
        cpu_only_us=cpu_only,
        gpu_only_us=gpu_only,
        parallel_us=parallel,
    )
