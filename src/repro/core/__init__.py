"""Daydream core: kernel-level dependency graph, simulator, transformations."""

from repro.core.task import Task, TaskKind
from repro.core.graph import DependencyGraph
from repro.core.construction import build_graph
from repro.core.mapping import map_tasks_to_layers
from repro.core.simulate import (
    SchedulePolicy,
    Scheduler,
    SimulationResult,
    make_priority_scheduler,
    simulate,
)
from repro.core.breakdown import RuntimeBreakdown, compute_breakdown
from repro.core import transform

__all__ = [
    "Task",
    "TaskKind",
    "DependencyGraph",
    "build_graph",
    "map_tasks_to_layers",
    "SimulationResult",
    "SchedulePolicy",
    "Scheduler",
    "make_priority_scheduler",
    "simulate",
    "RuntimeBreakdown",
    "compute_breakdown",
    "transform",
]
