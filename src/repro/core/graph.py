"""The kernel-level dependency graph.

Structure (paper Section 4.2):

* **threads** — per-execution-thread ordered task sequences.  The paper's
  dependency types 1 and 2 (sequential CPU order, sequential CUDA-stream
  order) are represented *implicitly* by this order: a task always depends
  on its thread predecessor.  Each thread's order is kept as a doubly-linked
  list (``_prev``/``_next`` maps plus per-thread head/tail), so the
  transformation primitives are O(1) pointer splices:

  =====================  ==========
  primitive              complexity
  =====================  ==========
  ``append``             O(1)
  ``insert_after``       O(1)
  ``insert_before``      O(1)
  ``remove``             O(1) + O(preds x succs) when rewiring
  ``thread_successor``   O(1)
  ``thread_predecessor`` O(1)
  ``add_dependency``     O(1)
  ``copy``               O(N + E)
  ``overlay``            O(N) pointer copies, no task cloning
  =====================  ==========

* **explicit edges** — cross-thread dependencies: launch->kernel correlation,
  CUDA synchronization, and communication (dependency types 3-5), plus any
  edges optimization models add.

Mutating operations keep the graph consistent and are the substrate of the
transformation primitives in :mod:`repro.core.transform`.

Copy-on-write overlays
----------------------

:meth:`DependencyGraph.overlay` builds a cheap writable view for what-if
questions: the overlay gets private copies of the *structure* (edges and
thread links — plain pointer maps) but shares the :class:`Task` objects with
the base graph.  Shared tasks carry a write barrier (see
``Task.__setattr__``): the first attribute write to a shared task makes the
base graph swap in a pristine clone of it (keeping cached simulation results
consistent via swap listeners), so only *mutated* tasks are ever
materialized.  Removing tasks or rewiring edges in the overlay touches only
the overlay's private structure and materializes nothing.
"""

import gc
import weakref
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Set

from repro.common.errors import GraphConsistencyError
from repro.core.task import Task
from repro.tracing.records import ExecutionThread


class DependencyGraph:
    """Mutable kernel-level dependency graph with per-thread task order."""

    def __init__(self) -> None:
        self._succ: Dict[Task, Set[Task]] = {}
        self._pred: Dict[Task, Set[Task]] = {}
        # intrusive per-thread doubly-linked order
        self._next: Dict[Task, Optional[Task]] = {}
        self._prev: Dict[Task, Optional[Task]] = {}
        self._heads: Dict[ExecutionThread, Task] = {}
        self._tails: Dict[ExecutionThread, Task] = {}
        self._counts: Dict[ExecutionThread, int] = {}
        self._unordered: Set[ExecutionThread] = set()
        # copy-on-write bookkeeping
        self._overlays: List["weakref.ref[DependencyGraph]"] = []
        self._swap_listeners: List[Callable[[Task, Task], None]] = []
        self._cow_base: Optional["DependencyGraph"] = None
        self._shared: Set[Task] = set()
        # compiled-lowering cache (see repro.core.compiled): _generation
        # counts mutations; the cached CompiledGraph is valid only while
        # its captured generation matches
        self._generation: int = 0
        self._compiled = None

    # -------------------------------------------------------------- ordering

    def mark_unordered(self, thread: ExecutionThread) -> None:
        """Drop the implicit sequential dependency on one thread.

        CPU threads and CUDA streams execute tasks in recorded program order
        (the paper's dependency types 1 and 2).  Communication channels have
        no such order: they serialize only through thread progress, and the
        *scheduler* decides ordering — which is exactly how P3's priority
        rescheduling works (paper Section 4.4, Schedule).
        """
        self._unordered.add(thread)
        self._generation += 1

    def is_ordered(self, thread: ExecutionThread) -> bool:
        """Whether the thread's task list implies sequential dependencies."""
        return thread not in self._unordered

    # ----------------------------------------------------------------- queries

    def __len__(self) -> int:
        return sum(self._counts.values())

    def __contains__(self, task: Task) -> bool:
        return task in self._succ

    def threads(self) -> List[ExecutionThread]:
        """All execution threads, sorted."""
        return sorted(self._heads)

    def iter_tasks_on(self, thread: ExecutionThread) -> Iterator[Task]:
        """Tasks on one thread in execution order (zero-copy iterator).

        The iterator walks the live linked list; take a snapshot with
        :meth:`tasks_on` if the loop body splices this thread's order.
        """
        task = self._heads.get(thread)
        nxt = self._next
        while task is not None:
            yield task
            task = nxt[task]

    def tasks_on(self, thread: ExecutionThread) -> List[Task]:
        """Tasks on one thread in execution order (a snapshot list)."""
        return list(self.iter_tasks_on(thread))

    def iter_tasks(self) -> Iterator[Task]:
        """All tasks, grouped by thread, in thread order (zero-copy)."""
        for thread in self.threads():
            yield from self.iter_tasks_on(thread)

    def tasks(self) -> List[Task]:
        """All tasks, grouped by thread, in thread order."""
        return list(self.iter_tasks())

    def select(self, predicate: Callable[[Task], bool]) -> List[Task]:
        """The Select primitive: all tasks satisfying ``predicate``."""
        return [t for t in self.iter_tasks() if predicate(t)]

    def successors(self, task: Task) -> Set[Task]:
        """Explicit (cross-thread) successors of a task.

        Returns the graph's *live* adjacency set — do not mutate it, and
        snapshot it (``set(...)``) before loops that add or remove the
        same task's edges.  Zero-copy so the simulator's inner loop stays
        allocation-free.
        """
        self._require(task)
        return self._succ[task]

    def predecessors(self, task: Task) -> Set[Task]:
        """Explicit (cross-thread) predecessors of a task (live set — see
        :meth:`successors` for the aliasing caveat)."""
        self._require(task)
        return self._pred[task]

    def thread_predecessor(self, task: Task) -> Optional[Task]:
        """The task immediately before ``task`` on its thread, if any."""
        self._require(task)
        return self._prev[task]

    def thread_successor(self, task: Task) -> Optional[Task]:
        """The task immediately after ``task`` on its thread, if any."""
        self._require(task)
        return self._next[task]

    # ---------------------------------------------------------------- mutation

    def append(self, task: Task) -> Task:
        """Append a task at the end of its thread's order.  O(1)."""
        if task in self._succ:
            raise GraphConsistencyError(f"task already in graph: {task!r}")
        self._generation += 1
        thread = task.thread
        tail = self._tails.get(thread)
        self._prev[task] = tail
        self._next[task] = None
        if tail is None:
            self._heads[thread] = task
            self._counts[thread] = 1
        else:
            self._next[tail] = task
            self._counts[thread] += 1
        self._tails[thread] = task
        self._succ[task] = set()
        self._pred[task] = set()
        return task

    def insert_after(self, anchor: Task, task: Task) -> Task:
        """Insert ``task`` right after ``anchor`` in ``anchor``'s thread order.

        ``task.thread`` is forced to ``anchor.thread`` (the paper's insert
        primitive inserts into an execution thread's linked list).  O(1).
        """
        self._require(anchor)
        if task in self._succ:
            raise GraphConsistencyError(f"task already in graph: {task!r}")
        self._generation += 1
        thread = anchor.thread
        task.thread = thread
        nxt = self._next[anchor]
        self._prev[task] = anchor
        self._next[task] = nxt
        self._next[anchor] = task
        if nxt is None:
            self._tails[thread] = task
        else:
            self._prev[nxt] = task
        self._counts[thread] += 1
        self._succ[task] = set()
        self._pred[task] = set()
        return task

    def insert_before(self, anchor: Task, task: Task) -> Task:
        """Insert ``task`` right before ``anchor`` in thread order.  O(1)."""
        self._require(anchor)
        if task in self._succ:
            raise GraphConsistencyError(f"task already in graph: {task!r}")
        self._generation += 1
        thread = anchor.thread
        task.thread = thread
        prv = self._prev[anchor]
        self._next[task] = anchor
        self._prev[task] = prv
        self._prev[anchor] = task
        if prv is None:
            self._heads[thread] = task
        else:
            self._next[prv] = task
        self._counts[thread] += 1
        self._succ[task] = set()
        self._pred[task] = set()
        return task

    def remove(self, task: Task, rewire: bool = True) -> None:
        """Remove a task.  O(1) splice plus optional O(preds x succs) rewire.

        With ``rewire=True`` (default) each explicit predecessor is connected
        to each explicit successor, preserving transitive ordering across the
        removed node.  Sequential thread order heals automatically (the
        linked-list splice joins the neighbors).
        """
        succs = self._succ.pop(task, None)
        if succs is None:
            raise GraphConsistencyError(f"task not in graph: {task!r}")
        self._generation += 1
        preds = self._pred.pop(task)
        for p in preds:
            self._succ[p].discard(task)
        for s in succs:
            self._pred[s].discard(task)
        if rewire:
            for p in preds:
                succ_p = self._succ[p]
                for s in succs:
                    if p is not s:
                        succ_p.add(s)
                        self._pred[s].add(p)
        thread = task.thread
        prv = self._prev.pop(task)
        nxt = self._next.pop(task)
        if prv is None:
            if nxt is None:
                del self._heads[thread]
                del self._tails[thread]
                del self._counts[thread]
            else:
                self._heads[thread] = nxt
                self._prev[nxt] = None
                self._counts[thread] -= 1
        else:
            self._next[prv] = nxt
            if nxt is None:
                self._tails[thread] = prv
            else:
                self._prev[nxt] = prv
            self._counts[thread] -= 1
        if self._cow_base is not None:
            self._shared.discard(task)

    def add_dependency(self, src: Task, dst: Task) -> None:
        """Add an explicit edge ``src -> dst``.  O(1)."""
        self._require(src)
        self._require(dst)
        if src is dst:
            raise GraphConsistencyError(f"self-dependency on {src!r}")
        self._generation += 1
        self._succ[src].add(dst)
        self._pred[dst].add(src)

    def remove_dependency(self, src: Task, dst: Task) -> None:
        """Remove an explicit edge if present.  O(1)."""
        self._require(src)
        self._require(dst)
        self._generation += 1
        self._succ[src].discard(dst)
        self._pred[dst].discard(src)

    # ------------------------------------------------------------- validation

    def validate(self) -> None:
        """Check graph invariants; raise :class:`GraphConsistencyError`.

        * linked-list order is internally consistent (counts, head/tail,
          prev/next symmetry);
        * no explicit edge points backwards within one thread's order;
        * the combined graph (explicit edges + thread order) is acyclic.
        """
        position: Dict[Task, int] = {}
        for thread, head in self._heads.items():
            prev = None
            count = 0
            task = head
            while task is not None:
                if self._prev[task] is not prev:
                    raise GraphConsistencyError(
                        f"broken prev link at {task!r} on {thread}"
                    )
                if task.thread != thread:
                    raise GraphConsistencyError(
                        f"{task!r} linked on {thread} but claims {task.thread}"
                    )
                position[task] = count
                count += 1
                prev = task
                task = self._next[task]
            if self._tails[thread] is not prev:
                raise GraphConsistencyError(f"broken tail link on {thread}")
            if self._counts[thread] != count:
                raise GraphConsistencyError(
                    f"count mismatch on {thread}: "
                    f"{self._counts[thread]} recorded, {count} linked"
                )
        if len(position) != len(self._succ):
            raise GraphConsistencyError(
                f"{len(self._succ)} tasks in adjacency but "
                f"{len(position)} linked in thread order"
            )
        for src, dsts in self._succ.items():
            for dst in dsts:
                if src.thread == dst.thread and self.is_ordered(src.thread):
                    if position[src] >= position[dst]:
                        raise GraphConsistencyError(
                            f"edge {src!r} -> {dst!r} contradicts thread order"
                        )
        self._topological_order()  # raises on cycle

    def _topological_order(self) -> List[Task]:
        indeg: Dict[Task, int] = {}
        for thread in self._heads:
            ordered = self.is_ordered(thread)
            first = True
            for task in self.iter_tasks_on(thread):
                indeg[task] = len(self._pred[task]) + (
                    0 if first or not ordered else 1)
                first = False
        ready = [t for t, d in indeg.items() if d == 0]
        order: List[Task] = []
        while ready:
            task = ready.pop()
            order.append(task)
            children: Iterable[Task] = self._succ[task]
            if self.is_ordered(task.thread):
                nxt = self._next[task]
                if nxt is not None:
                    children = list(children) + [nxt]
            for child in children:
                indeg[child] -= 1
                if indeg[child] == 0:
                    ready.append(child)
        if len(order) != len(self):
            raise GraphConsistencyError(
                f"dependency cycle: only {len(order)} of {len(self)} tasks "
                "are reachable"
            )
        return order

    # --------------------------------------------------------------- internals

    def _require(self, task: Task) -> None:
        if task not in self._succ:
            raise GraphConsistencyError(f"task not in graph: {task!r}")

    # ----------------------------------------------------------------- cloning

    def copy(self) -> "DependencyGraph":
        """Deep-copy the graph (tasks are cloned; safe to mutate the copy).

        Optimization models transform a copy so the baseline graph can be
        reused for many what-if questions (paper Section 7.1: profile once,
        ask many questions).  For the common transform-and-simulate path
        prefer :meth:`overlay`, which skips cloning unmutated tasks.
        """
        # everything allocated here stays live; pause the collector so the
        # allocation burst doesn't trigger full scans mid-copy
        gc_was_enabled = gc.isenabled()
        if gc_was_enabled:
            gc.disable()
        try:
            return self._copy_impl()
        finally:
            if gc_was_enabled:
                gc.enable()

    def _copy_impl(self) -> "DependencyGraph":
        out = DependencyGraph()
        out._unordered = set(self._unordered)
        clone_of: Dict[Task, Task] = {}
        heads = out._heads
        tails = out._tails
        nxt_out = out._next
        prv_out = out._prev
        nxt_in = self._next
        new = object.__new__
        for thread, head in self._heads.items():
            prev_clone: Optional[Task] = None
            task: Optional[Task] = head
            while task is not None:
                # inlined Task.clone(): this loop dominates copy() cost
                clone = new(Task)
                cd = clone.__dict__
                cd.update(task.__dict__)
                cd.pop("_cow_base", None)
                cd.pop("_sim_stamp", None)
                cd["metadata"] = dict(cd["metadata"])
                clone_of[task] = clone
                prv_out[clone] = prev_clone
                if prev_clone is None:
                    heads[thread] = clone
                else:
                    nxt_out[prev_clone] = clone
                prev_clone = clone
                task = nxt_in[task]
            nxt_out[prev_clone] = None
            tails[thread] = prev_clone
        out._counts = dict(self._counts)
        succ_out = out._succ
        pred_out = out._pred
        for task, clone in clone_of.items():
            # adjacency sets are overwhelmingly empty or single-element;
            # specializing those sizes avoids set-comprehension frames
            succs = self._succ[task]
            n = len(succs)
            if n == 0:
                succ_out[clone] = set()
            elif n == 1:
                (s,) = succs
                succ_out[clone] = {clone_of[s]}
            else:
                succ_out[clone] = {clone_of[s] for s in succs}
            preds = self._pred[task]
            n = len(preds)
            if n == 0:
                pred_out[clone] = set()
            elif n == 1:
                (p,) = preds
                pred_out[clone] = {clone_of[p]}
            else:
                pred_out[clone] = {clone_of[p] for p in preds}
        # remap task-valued metadata (launch<->kernel links) onto the clones
        for clone in clone_of.values():
            metadata = clone.metadata
            stale = None
            for key, value in metadata.items():
                if isinstance(value, Task):
                    remapped = clone_of.get(value)
                    if remapped is not None:
                        metadata[key] = remapped
                    else:
                        stale = [key] if stale is None else stale + [key]
            if stale:
                for key in stale:
                    del metadata[key]
        return out

    # ------------------------------------------------------------ copy-on-write

    def overlay(self) -> "DependencyGraph":
        """Build a copy-on-write view of this graph.

        The overlay owns private structure (edges, thread links) but shares
        task objects with this graph until they are written; the first
        attribute write to a shared task materializes it (this graph swaps in
        a pristine clone and keeps the mutated original for the overlay).
        Mutating the overlay never changes what this graph's tasks look like.

        Overlays do not nest; asking an overlay for an overlay falls back to
        a full :meth:`copy`.
        """
        if self._cow_base is not None:
            return self.copy()
        self._quiesce_overlays()
        out = DependencyGraph()
        out._unordered = set(self._unordered)
        out._succ = {t: set(s) for t, s in self._succ.items()}
        out._pred = {t: set(s) for t, s in self._pred.items()}
        out._next = dict(self._next)
        out._prev = dict(self._prev)
        out._heads = dict(self._heads)
        out._tails = dict(self._tails)
        out._counts = dict(self._counts)
        out._cow_base = self
        out._shared = set(self._succ)
        for task in self._succ:
            task.__dict__["_cow_base"] = self
        self._overlays.append(weakref.ref(out))
        return out

    def add_swap_listener(self, listener: Callable[[Task, Task], None]) -> None:
        """Register ``listener(old, new)`` for copy-on-write task swaps.

        Holders of task-keyed caches (e.g. a cached baseline
        ``SimulationResult``) use this to re-key when the base graph swaps a
        written-to shared task for its pristine clone.
        """
        self._swap_listeners.append(listener)

    def _live_overlays(self) -> List["DependencyGraph"]:
        alive: List[DependencyGraph] = []
        refs: List[weakref.ref] = []
        for ref in self._overlays:
            overlay = ref()
            if overlay is not None:
                alive.append(overlay)
                refs.append(ref)
        self._overlays = refs
        return alive

    def _cow_task_written(self, task: Task) -> None:
        """Write-barrier hook: a shared task is about to be mutated.

        Called by ``Task.__setattr__`` *before* the write lands, so the
        task's current state is still pristine.  The base keeps a pristine
        clone; the (single active) overlay keeps the original, which the
        writer is holding a reference to.
        """
        task.__dict__.pop("_cow_base", None)
        # the write invalidates any compiled lowering holding this task —
        # ours, and any live overlay's (the overlay keeps the written-to
        # object; its write stamp may have been overwritten by a later
        # base lowering, so bump the overlays explicitly)
        self._generation += 1
        overlays = self._live_overlays()
        for overlay in overlays:
            overlay._generation += 1
        if task not in self._succ:
            return
        if not overlays:
            return  # no overlay alive: a direct base write mutates in place
        self._materialize_in_base(self._metadata_group(task), overlays)

    def _metadata_group(self, task: Task) -> List[Task]:
        """``task`` plus tasks transitively linked via task-valued metadata.

        Launch APIs and their kernels reference each other through
        ``launches``/``launched_by`` metadata; swapping one without the other
        would leave the base pointing at an overlay-owned task.
        """
        group = [task]
        seen = {task}
        queue = [task]
        while queue:
            for value in queue.pop().metadata.values():
                if (isinstance(value, Task) and value not in seen
                        and value in self._succ):
                    seen.add(value)
                    group.append(value)
                    queue.append(value)
        return group

    def _materialize_in_base(self, group: List[Task],
                             overlays: List["DependencyGraph"]) -> None:
        clone_of: Dict[Task, Task] = {}
        for member in group:
            member.__dict__.pop("_cow_base", None)
            clone = member.clone()
            clone_of[member] = clone
            for overlay in overlays:
                overlay._shared.discard(member)
        for member, clone in clone_of.items():
            self._swap_task(member, clone)
            metadata = clone.metadata
            for key, value in metadata.items():
                if isinstance(value, Task) and value in clone_of:
                    metadata[key] = clone_of[value]

    def _swap_task(self, old: Task, new: Task) -> None:
        """Replace ``old`` with ``new`` in place (same edges, same position)."""
        self._generation += 1
        succs = self._succ.pop(old)
        preds = self._pred.pop(old)
        self._succ[new] = succs
        self._pred[new] = preds
        for s in succs:
            pred_s = self._pred[s]
            pred_s.discard(old)
            pred_s.add(new)
        for p in preds:
            succ_p = self._succ[p]
            succ_p.discard(old)
            succ_p.add(new)
        thread = new.thread
        prv = self._prev.pop(old)
        nxt = self._next.pop(old)
        self._prev[new] = prv
        self._next[new] = nxt
        if prv is None:
            self._heads[thread] = new
        else:
            self._next[prv] = new
        if nxt is None:
            self._tails[thread] = new
        else:
            self._prev[nxt] = new
        for listener in self._swap_listeners:
            listener(old, new)

    def _quiesce_overlays(self) -> None:
        """Detach still-live overlays before handing out a new one.

        A retained overlay (e.g. the graph returned by
        ``predict_simulation``) may still share tasks with the base; give the
        base pristine clones of everything still shared so the old overlay
        can keep mutating its tasks without write barriers.
        """
        for overlay in self._live_overlays():
            if not overlay._shared:
                continue
            group = [t for t in overlay._shared if t in self._succ]
            overlay._shared.clear()
            if group:
                self._materialize_in_base(group, [])
        self._overlays = []
