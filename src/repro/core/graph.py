"""The kernel-level dependency graph.

Structure (paper Section 4.2):

* **threads** — per-execution-thread ordered task lists.  The paper's
  dependency types 1 and 2 (sequential CPU order, sequential CUDA-stream
  order) are represented *implicitly* by these lists: a task always depends
  on its thread predecessor.  This makes the insert/remove primitives cheap
  list splices instead of edge rewiring.
* **explicit edges** — cross-thread dependencies: launch->kernel correlation,
  CUDA synchronization, and communication (dependency types 3-5), plus any
  edges optimization models add.

Mutating operations keep the graph consistent and are the substrate of the
transformation primitives in :mod:`repro.core.transform`.
"""

from typing import Callable, Dict, Iterable, List, Optional, Set

from repro.common.errors import GraphConsistencyError
from repro.core.task import Task
from repro.tracing.records import ExecutionThread


class DependencyGraph:
    """Mutable kernel-level dependency graph with per-thread task order."""

    def __init__(self) -> None:
        self._threads: Dict[ExecutionThread, List[Task]] = {}
        self._succ: Dict[Task, Set[Task]] = {}
        self._pred: Dict[Task, Set[Task]] = {}
        self._position_dirty = True
        self._position: Dict[Task, int] = {}
        self._unordered: Set[ExecutionThread] = set()

    # -------------------------------------------------------------- ordering

    def mark_unordered(self, thread: ExecutionThread) -> None:
        """Drop the implicit sequential dependency on one thread.

        CPU threads and CUDA streams execute tasks in recorded program order
        (the paper's dependency types 1 and 2).  Communication channels have
        no such order: they serialize only through thread progress, and the
        *scheduler* decides ordering — which is exactly how P3's priority
        rescheduling works (paper Section 4.4, Schedule).
        """
        self._unordered.add(thread)

    def is_ordered(self, thread: ExecutionThread) -> bool:
        """Whether the thread's task list implies sequential dependencies."""
        return thread not in self._unordered

    # ----------------------------------------------------------------- queries

    def __len__(self) -> int:
        return sum(len(tasks) for tasks in self._threads.values())

    def __contains__(self, task: Task) -> bool:
        return task in self._succ

    def threads(self) -> List[ExecutionThread]:
        """All execution threads, sorted."""
        return sorted(self._threads)

    def tasks_on(self, thread: ExecutionThread) -> List[Task]:
        """Tasks on one thread in execution order (a copy)."""
        return list(self._threads.get(thread, []))

    def tasks(self) -> List[Task]:
        """All tasks, grouped by thread, in thread order."""
        return [t for thread in self.threads() for t in self._threads[thread]]

    def select(self, predicate: Callable[[Task], bool]) -> List[Task]:
        """The Select primitive: all tasks satisfying ``predicate``."""
        return [t for t in self.tasks() if predicate(t)]

    def successors(self, task: Task) -> Set[Task]:
        """Explicit (cross-thread) successors of a task."""
        self._require(task)
        return set(self._succ[task])

    def predecessors(self, task: Task) -> Set[Task]:
        """Explicit (cross-thread) predecessors of a task."""
        self._require(task)
        return set(self._pred[task])

    def thread_predecessor(self, task: Task) -> Optional[Task]:
        """The task immediately before ``task`` on its thread, if any."""
        tasks = self._threads[task.thread]
        idx = self._index_of(task)
        return tasks[idx - 1] if idx > 0 else None

    def thread_successor(self, task: Task) -> Optional[Task]:
        """The task immediately after ``task`` on its thread, if any."""
        tasks = self._threads[task.thread]
        idx = self._index_of(task)
        return tasks[idx + 1] if idx + 1 < len(tasks) else None

    # ---------------------------------------------------------------- mutation

    def append(self, task: Task) -> Task:
        """Append a task at the end of its thread's order."""
        if task in self._succ:
            raise GraphConsistencyError(f"task already in graph: {task!r}")
        self._threads.setdefault(task.thread, []).append(task)
        self._succ[task] = set()
        self._pred[task] = set()
        self._position_dirty = True
        return task

    def insert_after(self, anchor: Task, task: Task) -> Task:
        """Insert ``task`` right after ``anchor`` in ``anchor``'s thread order.

        ``task.thread`` is forced to ``anchor.thread`` (the paper's insert
        primitive inserts into an execution thread's linked list).
        """
        self._require(anchor)
        if task in self._succ:
            raise GraphConsistencyError(f"task already in graph: {task!r}")
        task.thread = anchor.thread
        tasks = self._threads[anchor.thread]
        tasks.insert(self._index_of(anchor) + 1, task)
        self._succ[task] = set()
        self._pred[task] = set()
        self._position_dirty = True
        return task

    def insert_before(self, anchor: Task, task: Task) -> Task:
        """Insert ``task`` right before ``anchor`` in thread order."""
        self._require(anchor)
        if task in self._succ:
            raise GraphConsistencyError(f"task already in graph: {task!r}")
        task.thread = anchor.thread
        tasks = self._threads[anchor.thread]
        tasks.insert(self._index_of(anchor), task)
        self._succ[task] = set()
        self._pred[task] = set()
        self._position_dirty = True
        return task

    def remove(self, task: Task, rewire: bool = True) -> None:
        """Remove a task.

        With ``rewire=True`` (default) each explicit predecessor is connected
        to each explicit successor, preserving transitive ordering across the
        removed node.  Sequential thread order heals automatically (the list
        splice joins the neighbors).
        """
        self._require(task)
        preds = self._pred.pop(task)
        succs = self._succ.pop(task)
        for p in preds:
            self._succ[p].discard(task)
        for s in succs:
            self._pred[s].discard(task)
        if rewire:
            for p in preds:
                for s in succs:
                    if p is not s:
                        self._succ[p].add(s)
                        self._pred[s].add(p)
        self._threads[task.thread].remove(task)
        if not self._threads[task.thread]:
            del self._threads[task.thread]
        self._position_dirty = True

    def add_dependency(self, src: Task, dst: Task) -> None:
        """Add an explicit edge ``src -> dst``."""
        self._require(src)
        self._require(dst)
        if src is dst:
            raise GraphConsistencyError(f"self-dependency on {src!r}")
        self._succ[src].add(dst)
        self._pred[dst].add(src)

    def remove_dependency(self, src: Task, dst: Task) -> None:
        """Remove an explicit edge if present."""
        self._require(src)
        self._require(dst)
        self._succ[src].discard(dst)
        self._pred[dst].discard(src)

    # ------------------------------------------------------------- validation

    def validate(self) -> None:
        """Check graph invariants; raise :class:`GraphConsistencyError`.

        * no explicit edge points backwards within one thread's order;
        * the combined graph (explicit edges + thread order) is acyclic.
        """
        for src, dsts in self._succ.items():
            for dst in dsts:
                if src.thread == dst.thread and self.is_ordered(src.thread):
                    if self._index_of(src) >= self._index_of(dst):
                        raise GraphConsistencyError(
                            f"edge {src!r} -> {dst!r} contradicts thread order"
                        )
        self._topological_order()  # raises on cycle

    def _topological_order(self) -> List[Task]:
        indeg: Dict[Task, int] = {}
        for thread, thread_tasks in self._threads.items():
            ordered = self.is_ordered(thread)
            for i, task in enumerate(thread_tasks):
                indeg[task] = len(self._pred[task]) + (1 if ordered and i > 0 else 0)
        ready = [t for t, d in indeg.items() if d == 0]
        order: List[Task] = []
        while ready:
            task = ready.pop()
            order.append(task)
            children: Iterable[Task] = self._succ[task]
            if self.is_ordered(task.thread):
                nxt = self.thread_successor(task)
                if nxt is not None:
                    children = list(children) + [nxt]
            for child in children:
                indeg[child] -= 1
                if indeg[child] == 0:
                    ready.append(child)
        if len(order) != len(self):
            raise GraphConsistencyError(
                f"dependency cycle: only {len(order)} of {len(self)} tasks "
                "are reachable"
            )
        return order

    # --------------------------------------------------------------- internals

    def _require(self, task: Task) -> None:
        if task not in self._succ:
            raise GraphConsistencyError(f"task not in graph: {task!r}")

    def _index_of(self, task: Task) -> int:
        if self._position_dirty:
            self._position = {}
            for tasks in self._threads.values():
                for i, t in enumerate(tasks):
                    self._position[t] = i
            self._position_dirty = False
        return self._position[task]

    # ----------------------------------------------------------------- cloning

    def copy(self) -> "DependencyGraph":
        """Deep-copy the graph (tasks are cloned; safe to mutate the copy).

        Optimization models transform a copy so the baseline graph can be
        reused for many what-if questions (paper Section 7.1: profile once,
        ask many questions).
        """
        clone_of: Dict[Task, Task] = {}
        out = DependencyGraph()
        out._unordered = set(self._unordered)
        for thread in self.threads():
            for task in self._threads[thread]:
                clone = Task(
                    name=task.name, kind=task.kind, thread=task.thread,
                    duration=task.duration, gap=task.gap, layer=task.layer,
                    phase=task.phase, correlation_id=task.correlation_id,
                    size_bytes=task.size_bytes, priority=task.priority,
                    trace_start_us=task.trace_start_us,
                    metadata=dict(task.metadata),
                )
                clone_of[task] = clone
                out.append(clone)
        for src, dsts in self._succ.items():
            for dst in dsts:
                out.add_dependency(clone_of[src], clone_of[dst])
        # remap task-valued metadata (launch<->kernel links) onto the clones
        for clone in clone_of.values():
            for key, value in list(clone.metadata.items()):
                if isinstance(value, Task):
                    remapped = clone_of.get(value)
                    if remapped is not None:
                        clone.metadata[key] = remapped
                    else:
                        del clone.metadata[key]
        return out
