"""Dependency-graph construction from CUPTI-like traces (paper Section 4.2).

Implements the five dependency types:

1. **CPU program order** — implicit via per-thread task lists.
2. **CUDA-stream order** — implicit via per-thread task lists.
3. **Correlation** — ``cudaLaunchKernel``/``cudaMemcpyAsync`` -> GPU task,
   via CUPTI correlation IDs.
4. **CUDA synchronization** — a synchronizing API depends on the last GPU
   task (per stream/channel) that completes before the API returns.  The
   *wait* portion of the API's measured duration is stripped, so simulation
   re-derives waiting from dependencies instead of replaying stale waits.
   Blocking DtoH copies are split into a launch part and a wait part.
5. **Communication** — an all-reduce waits for the gradients of its bucket;
   recovered from the bucket metadata the framework instrumentation records.

CPU *gaps* (non-CUDA runtime invisible to the profiler) are measured between
consecutive CPU tasks and attached to the preceding task (Section 4.2.1).
"""

from typing import Dict, List, Optional

from repro.common.errors import TraceError
from repro.core.graph import DependencyGraph
from repro.core.task import Task, TaskKind
from repro.tracing.records import EventCategory, ExecutionThread, TraceEvent
from repro.tracing.trace import Trace

#: measured durations below this are treated as pure API overhead
_MIN_API_US = 1.0

_CATEGORY_TO_KIND = {
    EventCategory.RUNTIME: TaskKind.CPU,
    EventCategory.KERNEL: TaskKind.GPU_KERNEL,
    EventCategory.MEMCPY: TaskKind.MEMCPY,
    EventCategory.COMM: TaskKind.COMM,
    EventCategory.DATALOAD: TaskKind.DATALOAD,
}


def build_graph(trace: Trace, map_layers: bool = True) -> DependencyGraph:
    """Construct the kernel-level dependency graph from a trace.

    Args:
        trace: a profiled iteration (must contain at least one non-marker
            event).
        map_layers: run the synchronization-free task-to-layer mapping
            (Section 4.3) after construction.

    Returns:
        A validated :class:`~repro.core.graph.DependencyGraph`.
    """
    events = [e for e in trace.events if e.category is not EventCategory.MARKER]
    if not events:
        raise TraceError("trace contains no executable events")

    graph = DependencyGraph()
    per_thread: Dict[ExecutionThread, List[TraceEvent]] = {}
    for event in sorted(events, key=lambda e: (e.start_us, e.end_us)):
        per_thread.setdefault(event.thread, []).append(event)

    task_of: Dict[int, Task] = {}          # id(event) -> task
    launch_by_corr: Dict[int, Task] = {}   # correlation id -> CPU launch task
    gpu_by_corr: Dict[int, Task] = {}      # correlation id -> GPU task
    sync_events: List[TraceEvent] = []
    dtoh_waits: List[Task] = []            # wait-halves of blocking DtoH APIs

    for thread in sorted(per_thread):
        thread_events = per_thread[thread]
        for i, event in enumerate(thread_events):
            next_start = (thread_events[i + 1].start_us
                          if i + 1 < len(thread_events) else event.end_us)
            created = _make_tasks(event, next_start)
            for task in created:
                graph.append(task)
            task_of[id(event)] = created[0]
            primary = created[0]
            if event.correlation_id is not None:
                if event.category is EventCategory.RUNTIME:
                    launch_by_corr[event.correlation_id] = primary
                elif event.is_gpu_side:
                    gpu_by_corr[event.correlation_id] = primary
            if _is_sync_api(event):
                sync_events.append(event)
            if len(created) == 2:
                dtoh_waits.append(created[1])

    # dependency type 3: correlation edges
    for corr, gpu_task in gpu_by_corr.items():
        launch = launch_by_corr.get(corr)
        if launch is None:
            raise TraceError(f"GPU task with correlation {corr} has no launch API")
        graph.add_dependency(launch, gpu_task)
        launch.metadata["launches"] = gpu_task
        gpu_task.metadata["launched_by"] = launch

    # dependency type 4: synchronization edges
    for event in sync_events:
        sync_task = task_of[id(event)]
        for gate in _gating_tasks(event, per_thread, task_of):
            if gate is not sync_task:
                graph.add_dependency(gate, sync_task)
    # blocking DtoH: the wait half depends on its memory copy
    for wait_task in dtoh_waits:
        corr = wait_task.correlation_id
        gpu_task = gpu_by_corr.get(corr) if corr is not None else None
        if gpu_task is not None:
            graph.add_dependency(gpu_task, wait_task)

    # dependency type 5: communication edges (ground-truth distributed traces)
    _add_comm_dependencies(trace, graph, per_thread, task_of)

    # data-loading edges: the input upload waits for the loader worker's
    # batch hand-off (framework instrumentation: produces/consumes markers)
    _add_dataload_dependencies(graph)

    graph.validate()
    if map_layers:
        from repro.core.mapping import map_tasks_to_layers
        map_tasks_to_layers(graph, trace)
    return graph


# --------------------------------------------------------------------- helpers

def _make_tasks(event: TraceEvent, next_start_us: float) -> List[Task]:
    """Create the task(s) for one event; blocking DtoH APIs yield two."""
    kind = _CATEGORY_TO_KIND[event.category]
    gap = 0.0
    if kind in (TaskKind.CPU, TaskKind.DATALOAD):
        gap = max(0.0, next_start_us - event.end_us)

    if event.category is EventCategory.RUNTIME and _is_blocking_dtoh(event):
        # Split: a short launch API, then a wait task gated by the copy.
        launch = Task(
            name=event.name, kind=TaskKind.CPU, thread=event.thread,
            duration=_MIN_API_US * 5, gap=0.0,
            correlation_id=event.correlation_id,
            trace_start_us=event.start_us,
            metadata={"oracle_layer": event.layer, "split": "launch"},
        )
        wait = Task(
            name=f"{event.name}#wait", kind=TaskKind.CPU, thread=event.thread,
            duration=_MIN_API_US, gap=gap,
            correlation_id=event.correlation_id,
            trace_start_us=event.start_us,
            metadata={"split": "wait"},
        )
        return [launch, wait]

    duration = event.duration_us
    if _is_sync_api(event):
        # strip the measured wait; simulation re-derives it from edges
        duration = _MIN_API_US * 4
    task = Task(
        name=event.name, kind=kind, thread=event.thread,
        duration=duration, gap=gap,
        correlation_id=event.correlation_id,
        size_bytes=event.size_bytes,
        trace_start_us=event.start_us,
        metadata={"oracle_layer": event.layer, "oracle_phase": event.phase,
                  **event.metadata},
    )
    return [task]


def _is_sync_api(event: TraceEvent) -> bool:
    return (event.category is EventCategory.RUNTIME
            and "Synchronize" in event.name)


def _is_blocking_dtoh(event: TraceEvent) -> bool:
    return "DtoH" in event.name


def _gating_tasks(
    sync_event: TraceEvent,
    per_thread: Dict[ExecutionThread, List[TraceEvent]],
    task_of: Dict[int, Task],
) -> List[Task]:
    """GPU/comm tasks a synchronization API waited for.

    For each GPU stream and communication channel: the last task that ends
    at or before the sync API returns.
    """
    gates: List[Task] = []
    deadline = sync_event.end_us + 1e-6
    for thread, events in per_thread.items():
        if thread.is_cpu:
            continue
        last: Optional[TraceEvent] = None
        for event in events:
            if event.end_us <= deadline:
                last = event
            else:
                break
        if last is not None:
            gates.append(task_of[id(last)])
    return gates


def _add_dataload_dependencies(graph: DependencyGraph) -> None:
    """Wire data-loading tasks to the uploads that consume their batches.

    The loader worker runs on its own CPU thread; the control thread's
    ``cudaMemcpyAsync`` for a mini-batch cannot be issued before the worker
    produced it.  Batches are matched by the ``produces_batch`` /
    ``consumes_batch`` instrumentation metadata.
    """
    producers: Dict[object, Task] = {}
    for task in graph.tasks():
        batch = task.metadata.get("produces_batch")
        if batch is not None and task.kind is TaskKind.DATALOAD:
            producers[batch] = task
    if not producers:
        return
    for task in graph.tasks():
        batch = task.metadata.get("consumes_batch")
        if batch is None:
            continue
        producer = producers.get(batch)
        if producer is None:
            continue
        launch = task.metadata.get("launched_by")
        target = launch if isinstance(launch, Task) else task
        if producer is not target:
            graph.add_dependency(producer, target)


def _add_comm_dependencies(
    trace: Trace,
    graph: DependencyGraph,
    per_thread: Dict[ExecutionThread, List[TraceEvent]],
    task_of: Dict[int, Task],
) -> None:
    """Wire all-reduce tasks to the GPU task that made their bucket ready.

    Uses the wait-free-backprop semantics: a bucket's all-reduce may start
    once the backward kernels of its trigger layer finish.  The trigger GPU
    task is found as the last GPU task ending at or before the primitive's
    observed start.
    """
    comm_events = [e for events in per_thread.values() for e in events
                   if e.category is EventCategory.COMM]
    if not comm_events:
        return
    gpu_events = sorted(
        (e for events in per_thread.values() for e in events if e.is_gpu_side),
        key=lambda e: e.end_us,
    )
    for comm in comm_events:
        trigger: Optional[TraceEvent] = None
        for event in gpu_events:
            if event.end_us <= comm.start_us + 1e-6:
                trigger = event
            else:
                break
        if trigger is not None:
            graph.add_dependency(task_of[id(trigger)], task_of[id(comm)])
