"""Hardware substrate: device specs, network models, cluster topology."""

from repro.hw.device import (
    CPUSpec,
    GPUSpec,
    GPU_2080TI,
    GPU_P4000,
    GPU_V100,
    CPU_EPYC_7601,
    get_gpu,
)
from repro.hw.network import (
    NetworkSpec,
    allgather_time_us,
    ps_pull_time_us,
    ps_push_time_us,
    reduce_scatter_time_us,
    ring_allreduce_time_us,
)
from repro.hw.topology import ClusterSpec

__all__ = [
    "CPUSpec",
    "GPUSpec",
    "GPU_2080TI",
    "GPU_P4000",
    "GPU_V100",
    "CPU_EPYC_7601",
    "get_gpu",
    "NetworkSpec",
    "ring_allreduce_time_us",
    "reduce_scatter_time_us",
    "allgather_time_us",
    "ps_push_time_us",
    "ps_pull_time_us",
    "ClusterSpec",
]
