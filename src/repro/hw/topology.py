"""Cluster topology: machines x GPUs, intra- and inter-machine links.

The paper's Figure 8 sweeps configurations written ``MxG`` (machines x GPUs
per machine) at 10/20/40 Gbps.  The performance-relevant property is the
*bottleneck bandwidth per rank* of the all-reduce ring:

* single machine: GPUs talk over PCIe;
* multiple machines: the ring crosses each NIC, and with ``g`` GPUs per
  machine the NIC is shared by ``g`` ranks' shards, so the effective
  per-rank link is ``NIC / g``.

This simple hierarchical model reproduces the paper's ordering (``2x2``
slower than ``2x1`` at equal NIC speed).
"""

from dataclasses import dataclass

from repro.common.errors import ConfigError
from repro.hw.device import GPUSpec
from repro.hw.network import NetworkSpec


@dataclass(frozen=True)
class ClusterSpec:
    """A homogeneous training cluster.

    Attributes:
        machines: number of machines.
        gpus_per_machine: GPUs in each machine.
        gpu: the GPU model installed in every slot.
        network: inter-machine fabric (ignored for single-machine runs).
    """

    machines: int
    gpus_per_machine: int
    gpu: GPUSpec
    network: NetworkSpec

    def __post_init__(self) -> None:
        if self.machines < 1:
            raise ConfigError("machines must be >= 1")
        if self.gpus_per_machine < 1:
            raise ConfigError("gpus_per_machine must be >= 1")

    @property
    def n_workers(self) -> int:
        """Total number of data-parallel ranks."""
        return self.machines * self.gpus_per_machine

    @property
    def is_distributed(self) -> bool:
        """True if any communication is needed (more than one rank)."""
        return self.n_workers > 1

    @property
    def crosses_network(self) -> bool:
        """True if the all-reduce ring traverses the inter-machine fabric."""
        return self.machines > 1

    def ring_link_bytes_per_us(self) -> float:
        """Bottleneck per-rank link bandwidth for a flat all-reduce ring."""
        if not self.is_distributed:
            raise ConfigError("single-worker cluster has no ring")
        if self.crosses_network:
            return self.network.bytes_per_us() / self.gpus_per_machine
        return self.gpu.pcie_bytes_per_us()

    def ring_latency_us(self) -> float:
        """Per-step latency of the ring (network or PCIe hop)."""
        if self.crosses_network:
            return self.network.latency_us
        return 4.0  # PCIe hop latency

    def label(self) -> str:
        """Configuration label in the paper's ``MxG`` notation."""
        return f"{self.machines}x{self.gpus_per_machine}"
