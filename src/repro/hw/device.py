"""GPU and CPU device specifications.

The paper's testbed uses 4 machines, each with an AMD EPYC 7601 CPU and four
RTX 2080Ti GPUs (PCIe 3.0); the P3 experiments use one P4000 per machine.
We encode peak capabilities plus *achieved-efficiency* factors that a
roofline-style cost model needs: real kernels never hit peak FLOPs or peak
DRAM bandwidth.

All bandwidths here are **device-local** (GPU memory, PCIe); the network
fabric lives in :mod:`repro.hw.network`.
"""

from dataclasses import dataclass, replace

from repro.common.errors import ConfigError
from repro.common.units import SEC


@dataclass(frozen=True)
class GPUSpec:
    """Static description of a GPU model.

    Attributes:
        name: marketing name, used in trace metadata.
        fp32_tflops: peak single-precision throughput (TFLOP/s).
        fp16_tflops: peak half-precision throughput (TFLOP/s). For GPUs with
            tensor cores this is the tensor-core peak; GPUs without tensor
            cores (e.g. P4000) gain little from fp16 math.
        memory_bandwidth_gBps: peak DRAM bandwidth (GB/s).
        memory_gb: DRAM capacity (GB) — used by memory-footprint what-ifs.
        pcie_bandwidth_gBps: host<->device copy bandwidth (GB/s).
        compute_efficiency: achieved fraction of peak FLOPs for dense
            compute-bound kernels (GEMM/conv).
        memory_efficiency: achieved fraction of peak DRAM bandwidth for
            streaming memory-bound kernels.
        kernel_overhead_us: fixed per-kernel device-side overhead (scheduling
            + tail effects); dominates very small kernels.
        has_tensor_cores: whether fp16 GEMM/conv can use tensor cores.
    """

    name: str
    fp32_tflops: float
    fp16_tflops: float
    memory_bandwidth_gBps: float
    memory_gb: float
    pcie_bandwidth_gBps: float = 12.0
    compute_efficiency: float = 0.62
    memory_efficiency: float = 0.78
    kernel_overhead_us: float = 3.0
    has_tensor_cores: bool = True

    def __post_init__(self) -> None:
        if self.fp32_tflops <= 0 or self.memory_bandwidth_gBps <= 0:
            raise ConfigError(f"non-positive peak throughput in {self.name}")
        if not 0 < self.compute_efficiency <= 1:
            raise ConfigError("compute_efficiency must be in (0, 1]")
        if not 0 < self.memory_efficiency <= 1:
            raise ConfigError("memory_efficiency must be in (0, 1]")

    # -- achieved rates, converted to per-microsecond units -------------------

    def achieved_flops_per_us(self, precision: str = "fp32") -> float:
        """Achieved FLOPs per microsecond for compute-bound kernels."""
        if precision == "fp32":
            peak = self.fp32_tflops
        elif precision == "fp16":
            peak = self.fp16_tflops if self.has_tensor_cores else self.fp32_tflops * 1.15
        else:
            raise ConfigError(f"unknown precision {precision!r}")
        return peak * 1e12 * self.compute_efficiency / SEC

    def achieved_bytes_per_us(self) -> float:
        """Achieved DRAM bytes per microsecond for memory-bound kernels."""
        return self.memory_bandwidth_gBps * 1e9 * self.memory_efficiency / SEC

    def pcie_bytes_per_us(self) -> float:
        """Achieved PCIe bytes per microsecond for host<->device copies."""
        return self.pcie_bandwidth_gBps * 1e9 * 0.85 / SEC

    def scaled(self, factor: float) -> "GPUSpec":
        """Return a hypothetical GPU with all throughputs scaled by ``factor``.

        Useful for 'what if my GPU were 2x faster' style questions.
        """
        if factor <= 0:
            raise ConfigError("scale factor must be positive")
        return replace(
            self,
            name=f"{self.name}-x{factor:g}",
            fp32_tflops=self.fp32_tflops * factor,
            fp16_tflops=self.fp16_tflops * factor,
            memory_bandwidth_gBps=self.memory_bandwidth_gBps * factor,
        )


@dataclass(frozen=True)
class CPUSpec:
    """Host-side cost parameters of the framework's control path.

    These are the quantities Daydream's paper calls out as crucial and
    invisible to NVProf: CUDA API durations and the *gaps* between CPU tasks
    (Python front-end, framework dispatch).

    Attributes:
        name: CPU model name.
        launch_api_us: duration of one ``cudaLaunchKernel`` call.
        sync_api_us: base duration of a CUDA synchronization API (excluding
            the wait itself).
        memcpy_api_us: duration of a ``cudaMemcpyAsync`` runtime call.
        malloc_api_us: duration of ``cudaMalloc``/``cudaFree``.
        dispatch_gap_us: framework gap before each kernel launch (operator
            dispatch, autograd bookkeeping).
        layer_gap_us: extra per-layer Python/front-end overhead.
        optimizer_gap_us: per-kernel gap in the weight-update loop (Python
            optimizer iterating parameter tensors).
    """

    name: str
    launch_api_us: float = 9.0
    sync_api_us: float = 4.0
    memcpy_api_us: float = 11.0
    malloc_api_us: float = 18.0
    dispatch_gap_us: float = 4.5
    layer_gap_us: float = 22.0
    optimizer_gap_us: float = 45.0


# --- presets used by the paper's evaluation ----------------------------------

GPU_2080TI = GPUSpec(
    name="RTX-2080Ti",
    fp32_tflops=13.4,
    fp16_tflops=53.8,
    memory_bandwidth_gBps=616.0,
    memory_gb=11.0,
    pcie_bandwidth_gBps=12.0,
    has_tensor_cores=True,
)

GPU_P4000 = GPUSpec(
    name="Quadro-P4000",
    fp32_tflops=5.3,
    fp16_tflops=5.3,
    memory_bandwidth_gBps=243.0,
    memory_gb=8.0,
    pcie_bandwidth_gBps=12.0,
    has_tensor_cores=False,
)

GPU_V100 = GPUSpec(
    name="V100",
    fp32_tflops=15.7,
    fp16_tflops=125.0,
    memory_bandwidth_gBps=900.0,
    memory_gb=16.0,
    pcie_bandwidth_gBps=12.0,
    has_tensor_cores=True,
)

CPU_EPYC_7601 = CPUSpec(name="AMD-EPYC-7601")

_GPU_PRESETS = {
    "2080ti": GPU_2080TI,
    "rtx2080ti": GPU_2080TI,
    "p4000": GPU_P4000,
    "quadrop4000": GPU_P4000,
    "v100": GPU_V100,
}

_CPU_PRESETS = {
    "epyc7601": CPU_EPYC_7601,
    "amdepyc7601": CPU_EPYC_7601,
}


def _preset_key(name: str) -> str:
    return name.lower().replace("-", "").replace("_", "")


def get_gpu(name: str) -> GPUSpec:
    """Look up a GPU preset by (case-insensitive) short name."""
    try:
        return _GPU_PRESETS[_preset_key(name)]
    except KeyError:
        raise ConfigError(
            f"unknown GPU {name!r}; known: {sorted(_GPU_PRESETS)}"
        ) from None


def get_cpu(name: str) -> CPUSpec:
    """Look up a CPU preset by (case-insensitive) short name."""
    try:
        return _CPU_PRESETS[_preset_key(name)]
    except KeyError:
        raise ConfigError(
            f"unknown CPU {name!r}; known: {sorted(_CPU_PRESETS)}"
        ) from None
