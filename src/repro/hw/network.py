"""Analytical network communication models.

Implements the textbook cost formulas Daydream uses to size communication
tasks when predicting distributed training from a single-GPU profile:

* **ring all-reduce** (NCCL): each worker sends/receives ``2 (n-1)/n * S``
  bytes over the slowest link (NVIDIA's published nccl-tests formula [56]);
* **reduce-scatter / all-gather** (the two halves of the ring, used by
  BlueConnect's decomposition);
* **parameter-server push/pull** (MXNet kvstore, used by the P3 model).

Everything returns *theoretical* durations in microseconds.  The ground-truth
executor layers contention/overhead on top of these (see
:mod:`repro.framework.distributed`), which is exactly the gap the paper
measures in Figure 9 (ground truth ~34% above theoretical).
"""

from dataclasses import dataclass

from repro.common.errors import ConfigError
from repro.common.units import gbps_to_bytes_per_us


@dataclass(frozen=True)
class NetworkSpec:
    """An inter-machine network fabric.

    Attributes:
        bandwidth_gbps: per-NIC bandwidth in Gbit/s (10/20/40 in the paper).
        latency_us: one-way per-message latency.
        per_primitive_overhead_us: fixed software overhead per collective
            call (NCCL kernel launch + protocol setup).
    """

    bandwidth_gbps: float
    latency_us: float = 25.0
    per_primitive_overhead_us: float = 60.0

    def __post_init__(self) -> None:
        if self.bandwidth_gbps <= 0:
            raise ConfigError("network bandwidth must be positive")
        if self.latency_us < 0 or self.per_primitive_overhead_us < 0:
            raise ConfigError("latencies must be non-negative")

    def bytes_per_us(self) -> float:
        """Usable bytes per microsecond on one NIC."""
        return gbps_to_bytes_per_us(self.bandwidth_gbps)


def ring_allreduce_time_us(
    size_bytes: float,
    n_workers: int,
    link_bytes_per_us: float,
    latency_us: float = 0.0,
) -> float:
    """Theoretical ring all-reduce duration.

    A ring all-reduce over ``n`` workers moves ``2 (n-1)/n * S`` bytes through
    each worker's slowest link, in ``2 (n-1)`` latency-bound steps.

    Args:
        size_bytes: gradient payload size.
        n_workers: number of participating ranks (``>= 1``).
        link_bytes_per_us: bandwidth of the bottleneck link per rank.
        latency_us: per-step latency.

    Returns:
        Duration in microseconds; 0 for a single worker.
    """
    if n_workers < 1:
        raise ConfigError(f"n_workers must be >= 1, got {n_workers}")
    if size_bytes < 0:
        raise ConfigError("size_bytes must be non-negative")
    if n_workers == 1:
        return 0.0
    if link_bytes_per_us <= 0:
        raise ConfigError("link bandwidth must be positive")
    transfer = 2.0 * (n_workers - 1) / n_workers * size_bytes / link_bytes_per_us
    steps = 2 * (n_workers - 1)
    return transfer + steps * latency_us


def reduce_scatter_time_us(
    size_bytes: float,
    n_workers: int,
    link_bytes_per_us: float,
    latency_us: float = 0.0,
) -> float:
    """Theoretical reduce-scatter duration (first half of the ring)."""
    if n_workers < 1:
        raise ConfigError(f"n_workers must be >= 1, got {n_workers}")
    if n_workers == 1:
        return 0.0
    transfer = (n_workers - 1) / n_workers * size_bytes / link_bytes_per_us
    return transfer + (n_workers - 1) * latency_us


def allgather_time_us(
    size_bytes: float,
    n_workers: int,
    link_bytes_per_us: float,
    latency_us: float = 0.0,
) -> float:
    """Theoretical all-gather duration (second half of the ring)."""
    return reduce_scatter_time_us(size_bytes, n_workers, link_bytes_per_us, latency_us)


def ps_push_time_us(
    size_bytes: float,
    link_bytes_per_us: float,
    latency_us: float = 0.0,
) -> float:
    """Parameter-server push: one worker sends its gradient to the server."""
    if size_bytes < 0:
        raise ConfigError("size_bytes must be non-negative")
    if link_bytes_per_us <= 0:
        raise ConfigError("link bandwidth must be positive")
    return size_bytes / link_bytes_per_us + latency_us


def ps_pull_time_us(
    size_bytes: float,
    link_bytes_per_us: float,
    latency_us: float = 0.0,
) -> float:
    """Parameter-server pull: one worker fetches fresh weights."""
    return ps_push_time_us(size_bytes, link_bytes_per_us, latency_us)
