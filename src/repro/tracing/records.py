"""Trace event records, mirroring what CUPTI exposes.

CUPTI's activity API reports, per record: the activity kind (runtime API,
kernel, memcpy), name, start/end timestamps, the CPU thread or CUDA stream
it ran on, and a **correlation ID** linking each ``cudaLaunchKernel`` call to
the GPU kernel it launched.  Our :class:`TraceEvent` carries exactly those
fields, plus the framework-instrumentation extras Daydream adds (layer
markers with phase tags, communication metadata).
"""

import enum
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Dict, Optional


class EventCategory(enum.Enum):
    """CUPTI activity kinds plus Daydream's instrumentation records."""

    RUNTIME = "runtime"      # CUDA runtime API call on a CPU thread
    KERNEL = "kernel"        # GPU kernel execution on a CUDA stream
    MEMCPY = "memcpy"        # CUDA memory copy on a CUDA stream
    COMM = "comm"            # communication primitive on a network channel
    MARKER = "marker"        # framework layer-phase window (instrumentation)
    DATALOAD = "dataload"    # mini-batch load on a CPU thread


@dataclass(frozen=True, order=True)
class ExecutionThread:
    """Where a task executes: a CPU thread, a CUDA stream, or a comm channel.

    Ordering/frozen so it can key dictionaries and sort deterministically.
    """

    kind: str   # 'cpu' | 'gpu_stream' | 'comm'
    index: int = 0

    def __post_init__(self) -> None:
        if self.kind not in ("cpu", "gpu_stream", "comm"):
            raise ValueError(f"unknown thread kind {self.kind!r}")
        # Threads key every hot dict in simulation and tracing; cache the
        # hash (and the display label, used as a sort key) once instead of
        # recomputing per lookup.
        object.__setattr__(self, "_hash", hash((self.kind, self.index)))
        object.__setattr__(self, "_label", f"{self.kind}:{self.index}")

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if other.__class__ is ExecutionThread:
            return self.kind == other.kind and self.index == other.index
        return NotImplemented

    @property
    def is_cpu(self) -> bool:
        return self.kind == "cpu"

    @property
    def is_gpu(self) -> bool:
        return self.kind == "gpu_stream"

    @property
    def is_comm(self) -> bool:
        return self.kind == "comm"

    def __str__(self) -> str:
        return self._label


@lru_cache(maxsize=None)
def cpu_thread(index: int = 0) -> ExecutionThread:
    """Convenience constructor for a CPU thread (interned)."""
    return ExecutionThread("cpu", index)


@lru_cache(maxsize=None)
def gpu_stream(index: int = 0) -> ExecutionThread:
    """Convenience constructor for a CUDA stream (interned)."""
    return ExecutionThread("gpu_stream", index)


@lru_cache(maxsize=None)
def comm_channel(index: int = 0) -> ExecutionThread:
    """Convenience constructor for a communication channel (interned)."""
    return ExecutionThread("comm", index)


@dataclass(slots=True)
class TraceEvent:
    """One trace record.

    ``slots=True``: engines emit hundreds of thousands of events per sweep;
    slot storage trims per-event memory and attribute access.

    Attributes:
        category: activity kind.
        name: API/kernel/primitive name (CUPTI-style strings).
        start_us: start timestamp (microseconds since trace origin).
        duration_us: duration in microseconds.
        thread: executing CPU thread / CUDA stream / comm channel.
        correlation_id: links a launch API to its GPU kernel (CUPTI semantics);
            ``None`` for records with no correlation.
        layer: DNN layer name (markers always have it; kernels get it only
            after Daydream's task-to-layer mapping).
        phase: ``forward`` / ``backward`` / ``weight_update`` for markers.
        size_bytes: payload size for memcpy/comm events.
        metadata: free-form extras (bucket id, gradient size, ...).
    """

    category: EventCategory
    name: str
    start_us: float
    duration_us: float
    thread: ExecutionThread
    correlation_id: Optional[int] = None
    layer: Optional[str] = None
    phase: Optional[str] = None
    size_bytes: float = 0.0
    metadata: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.duration_us < 0:
            raise ValueError(f"negative duration for event {self.name!r}")

    @property
    def end_us(self) -> float:
        """End timestamp."""
        return self.start_us + self.duration_us

    @property
    def is_gpu_side(self) -> bool:
        """True for events that occupy a CUDA stream."""
        return self.category in (EventCategory.KERNEL, EventCategory.MEMCPY)

    def to_dict(self) -> Dict[str, object]:
        """JSON-serializable representation."""
        return {
            "category": self.category.value,
            "name": self.name,
            "start_us": self.start_us,
            "duration_us": self.duration_us,
            "thread": {"kind": self.thread.kind, "index": self.thread.index},
            "correlation_id": self.correlation_id,
            "layer": self.layer,
            "phase": self.phase,
            "size_bytes": self.size_bytes,
            "metadata": self.metadata,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "TraceEvent":
        """Inverse of :meth:`to_dict`."""
        thread = data["thread"]
        return cls(
            category=EventCategory(data["category"]),
            name=data["name"],
            start_us=float(data["start_us"]),
            duration_us=float(data["duration_us"]),
            thread=ExecutionThread(thread["kind"], int(thread["index"])),
            correlation_id=data.get("correlation_id"),
            layer=data.get("layer"),
            phase=data.get("phase"),
            size_bytes=float(data.get("size_bytes", 0.0)),
            metadata=dict(data.get("metadata", {})),
        )
