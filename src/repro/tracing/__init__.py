"""CUPTI-like trace records and trace containers."""

from repro.tracing.records import (
    EventCategory,
    ExecutionThread,
    TraceEvent,
    comm_channel,
    cpu_thread,
    gpu_stream,
)
from repro.tracing.trace import Trace, render_timeline

__all__ = [
    "EventCategory",
    "ExecutionThread",
    "TraceEvent",
    "Trace",
    "cpu_thread",
    "gpu_stream",
    "comm_channel",
    "render_timeline",
]
