"""Export traces and simulation results to Chrome trace-event JSON.

The output loads in ``chrome://tracing`` / Perfetto, giving the same visual
the paper's Figure 1 shows in NVProf: per-thread swimlanes of runtime APIs,
kernels, memory copies, and communication primitives.  Both measured traces
and *simulated* (what-if) schedules can be exported, so a user can eyeball
exactly how an optimization reshapes the timeline.
"""

import json
from typing import Dict, List

from repro.core.graph import DependencyGraph
from repro.core.simulate import SimulationResult
from repro.tracing.records import EventCategory, ExecutionThread
from repro.tracing.trace import Trace

_CATEGORY_NAMES = {
    EventCategory.RUNTIME: "runtime_api",
    EventCategory.KERNEL: "kernel",
    EventCategory.MEMCPY: "memcpy",
    EventCategory.COMM: "comm",
    EventCategory.DATALOAD: "dataload",
    EventCategory.MARKER: "layer",
}


def _tid(thread: ExecutionThread) -> int:
    """Stable numeric thread id for the viewer (CPU < GPU < comm)."""
    base = {"cpu": 0, "gpu_stream": 100, "comm": 200}[thread.kind]
    return base + thread.index


def trace_to_chrome(trace: Trace) -> str:
    """Serialize a measured trace to Chrome trace-event JSON."""
    events: List[Dict[str, object]] = []
    for event in trace.events:
        record: Dict[str, object] = {
            "name": event.name,
            "cat": _CATEGORY_NAMES[event.category],
            "ph": "X",
            "ts": event.start_us,
            "dur": event.duration_us,
            "pid": 0,
            "tid": _tid(event.thread),
            "args": {},
        }
        if event.layer:
            record["args"]["layer"] = event.layer
        if event.phase:
            record["args"]["phase"] = event.phase
        if event.correlation_id is not None:
            record["args"]["correlation"] = event.correlation_id
        events.append(record)
    events.extend(_thread_names({e.thread for e in trace.events}))
    return json.dumps({"traceEvents": events,
                       "metadata": dict(trace.metadata)})


def simulation_to_chrome(graph: DependencyGraph,
                         result: SimulationResult) -> str:
    """Serialize a simulated schedule (e.g. a what-if outcome) to JSON."""
    events: List[Dict[str, object]] = []
    for task, start in result.start_us.items():
        record: Dict[str, object] = {
            "name": task.name,
            "cat": task.kind.value,
            "ph": "X",
            "ts": start,
            "dur": task.duration,
            "pid": 0,
            "tid": _tid(task.thread),
            "args": {},
        }
        if task.layer:
            record["args"]["layer"] = task.layer
        if task.phase:
            record["args"]["phase"] = task.phase
        events.append(record)
    events.extend(_thread_names(set(graph.threads())))
    return json.dumps({"traceEvents": events})


def _thread_names(threads) -> List[Dict[str, object]]:
    """Metadata records labeling the swimlanes."""
    out = []
    for thread in sorted(threads):
        out.append({
            "name": "thread_name",
            "ph": "M",
            "pid": 0,
            "tid": _tid(thread),
            "args": {"name": str(thread)},
        })
    return out
