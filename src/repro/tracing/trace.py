"""The :class:`Trace` container and a text timeline renderer (Figure 1).

A trace is the output of one profiled training iteration: a list of
:class:`~repro.tracing.records.TraceEvent` plus the framework-instrumentation
metadata Daydream needs for distributed prediction (gradient bucket map,
per-layer gradient sizes, model/device identity).
"""

import json
from dataclasses import dataclass, field
from operator import attrgetter
from typing import Dict, List, Optional

from repro.common.errors import TraceError
from repro.tracing.records import EventCategory, ExecutionThread, TraceEvent

_START_US = attrgetter("start_us")


@dataclass
class Trace:
    """A profiled training iteration.

    Attributes:
        events: all trace records (kept sorted by start time).
        metadata: instrumentation extras; well-known keys:
            ``model``, ``batch_size``, ``gpu``, ``optimizer``, ``precision``,
            ``buckets`` (list of {id, size_bytes, layers, trigger_layer}),
            ``layer_grad_bytes`` (name -> bytes), ``layer_order`` (names).
    """

    events: List[TraceEvent] = field(default_factory=list)
    metadata: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.events.sort(key=lambda e: (e.start_us, e.end_us, str(e.thread)))

    # -- basic queries -----------------------------------------------------------

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    @property
    def start_us(self) -> float:
        """Timestamp of the earliest event."""
        if not self.events:
            raise TraceError("empty trace has no start")
        return min(e.start_us for e in self.events)

    @property
    def end_us(self) -> float:
        """Timestamp of the latest event end."""
        if not self.events:
            raise TraceError("empty trace has no end")
        return max(e.end_us for e in self.events)

    @property
    def duration_us(self) -> float:
        """Wall-clock span of the iteration."""
        return self.end_us - self.start_us

    def by_category(self, category: EventCategory) -> List[TraceEvent]:
        """All events of one category, in start order."""
        return [e for e in self.events if e.category is category]

    def by_thread(self, thread: ExecutionThread) -> List[TraceEvent]:
        """All events on one execution thread, in start order."""
        return [e for e in self.events if e.thread == thread]

    def threads(self) -> List[ExecutionThread]:
        """Distinct execution threads present, sorted."""
        return sorted({e.thread for e in self.events})

    def kernels(self) -> List[TraceEvent]:
        """GPU-side events (kernels + memcpys)."""
        return [e for e in self.events if e.is_gpu_side]

    def markers(self, phase: Optional[str] = None) -> List[TraceEvent]:
        """Layer markers, optionally filtered by phase."""
        out = self.by_category(EventCategory.MARKER)
        if phase is not None:
            out = [e for e in out if e.phase == phase]
        return out

    def find(self, substring: str) -> List[TraceEvent]:
        """Events whose name contains ``substring``."""
        return [e for e in self.events if substring in e.name]

    # -- validation ----------------------------------------------------------------

    def validate(self) -> None:
        """Check CUPTI-like invariants; raise :class:`TraceError` on violation.

        Invariants: non-negative durations; no two events overlap on the same
        execution thread (markers are windows, not tasks, and are exempt);
        every correlation ID is shared by exactly one RUNTIME and at most one
        GPU-side event.
        """
        per_thread: Dict[ExecutionThread, List[TraceEvent]] = {}
        for e in self.events:
            if e.category is EventCategory.MARKER:
                continue
            per_thread.setdefault(e.thread, []).append(e)
        for thread, evs in per_thread.items():
            evs.sort(key=_START_US)
            for prev, cur in zip(evs, evs[1:]):
                if cur.start_us < prev.end_us - 1e-6:
                    raise TraceError(
                        f"overlap on {thread}: {prev.name!r} ends {prev.end_us:.1f}, "
                        f"{cur.name!r} starts {cur.start_us:.1f}"
                    )
        runtime_corr: Dict[int, int] = {}
        gpu_corr: Dict[int, int] = {}
        for e in self.events:
            if e.correlation_id is None:
                continue
            bucket = runtime_corr if e.category is EventCategory.RUNTIME else gpu_corr
            bucket[e.correlation_id] = bucket.get(e.correlation_id, 0) + 1
        for cid, count in runtime_corr.items():
            if count != 1:
                raise TraceError(f"correlation id {cid} on {count} runtime events")
        for cid, count in gpu_corr.items():
            if count != 1:
                raise TraceError(f"correlation id {cid} on {count} GPU events")
        for cid in gpu_corr:
            if cid not in runtime_corr:
                raise TraceError(f"GPU event correlation id {cid} has no launch API")

    # -- serialization ----------------------------------------------------------------

    def to_json(self) -> str:
        """Serialize to a JSON string."""
        return json.dumps(
            {"metadata": self.metadata, "events": [e.to_dict() for e in self.events]}
        )

    @classmethod
    def from_json(cls, text: str) -> "Trace":
        """Deserialize from :meth:`to_json` output."""
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise TraceError(f"invalid trace JSON: {exc}") from exc
        return cls(
            events=[TraceEvent.from_dict(d) for d in data.get("events", [])],
            metadata=dict(data.get("metadata", {})),
        )

    def save(self, path: str) -> None:
        """Write the trace to a file."""
        with open(path, "w") as f:
            f.write(self.to_json())

    @classmethod
    def load(cls, path: str) -> "Trace":
        """Read a trace from a file."""
        with open(path) as f:
            return cls.from_json(f.read())


def render_timeline(
    trace: Trace,
    width: int = 100,
    max_rows: Optional[int] = None,
) -> str:
    """Render an NVProf-style ASCII timeline (paper Figure 1).

    One row per execution thread; each event paints its extent with ``#``
    (kernels), ``=`` (runtime APIs), ``~`` (memcpy), ``@`` (comm), ``.``
    (data loading).
    """
    if not trace.events:
        return "(empty trace)"
    origin = trace.start_us
    span = max(trace.duration_us, 1e-9)
    scale = width / span
    glyph = {
        EventCategory.KERNEL: "#",
        EventCategory.RUNTIME: "=",
        EventCategory.MEMCPY: "~",
        EventCategory.COMM: "@",
        EventCategory.DATALOAD: ".",
    }
    rows: List[str] = [f"timeline: {span / 1000.0:.2f} ms total, 1 col = "
                       f"{span / width / 1000.0:.3f} ms"]
    threads = trace.threads()
    if max_rows is not None:
        threads = threads[:max_rows]
    for thread in threads:
        canvas = [" "] * width
        for e in trace.by_thread(thread):
            if e.category is EventCategory.MARKER:
                continue
            lo = int((e.start_us - origin) * scale)
            hi = max(lo + 1, int((e.end_us - origin) * scale))
            for i in range(lo, min(hi, width)):
                canvas[i] = glyph.get(e.category, "?")
        rows.append(f"{str(thread):>14} |{''.join(canvas)}|")
    return "\n".join(rows)
