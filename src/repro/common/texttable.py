"""Minimal fixed-width text tables for benchmark/report output.

The benchmark harness prints the same rows/series the paper's tables and
figures report.  We avoid external dependencies and keep the renderer tiny:
left-aligned strings, right-aligned numbers, an optional title rule.
"""

from typing import Iterable, List, Sequence


def format_cell(value: object) -> str:
    """Render one cell: floats get 2 decimals, everything else ``str()``."""
    if isinstance(value, float):
        return f"{value:,.2f}"
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str = "",
) -> str:
    """Render a list of rows as a fixed-width text table.

    >>> print(render_table(["a", "b"], [[1, 2.5]]))
    a  b
    -  ----
    1  2.50
    """
    str_rows: List[List[str]] = [[format_cell(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} columns"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt_row(cells: Sequence[str]) -> str:
        return "  ".join(cell.rjust(widths[i]) if _numeric(cells[i]) else
                         cell.ljust(widths[i]) for i, cell in enumerate(cells)).rstrip()

    lines: List[str] = []
    if title:
        lines.append(title)
        lines.append("=" * max(len(title), 1))
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)).rstrip())
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append(fmt_row(row))
    return "\n".join(lines)


def _numeric(cell: str) -> bool:
    stripped = cell.replace(",", "").replace("%", "").strip()
    if not stripped:
        return False
    try:
        float(stripped)
        return True
    except ValueError:
        return False
