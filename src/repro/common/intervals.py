"""Interval algebra over ``(start, end)`` pairs in microseconds.

Used by :mod:`repro.core.breakdown` to compute the paper's Figure-6 runtime
decomposition: *CPU-only*, *GPU-only*, and *CPU+GPU parallel* time are set
differences / intersections of the busy intervals of the two processors.
"""

from typing import Iterable, List, Sequence, Tuple

Interval = Tuple[float, float]


def merge_intervals(intervals: Iterable[Interval]) -> List[Interval]:
    """Merge overlapping/touching intervals into a sorted disjoint list.

    Zero-length and inverted intervals are dropped.
    """
    cleaned = sorted((s, e) for s, e in intervals if e > s)
    merged: List[Interval] = []
    for start, end in cleaned:
        if merged and start <= merged[-1][1]:
            prev_start, prev_end = merged[-1]
            merged[-1] = (prev_start, max(prev_end, end))
        else:
            merged.append((start, end))
    return merged


def total_length(intervals: Iterable[Interval]) -> float:
    """Total covered length of a set of (possibly overlapping) intervals."""
    return sum(e - s for s, e in merge_intervals(intervals))


def intersect(a: Sequence[Interval], b: Sequence[Interval]) -> List[Interval]:
    """Intersection of two interval sets (each may overlap internally)."""
    a_merged = merge_intervals(a)
    b_merged = merge_intervals(b)
    out: List[Interval] = []
    i = j = 0
    while i < len(a_merged) and j < len(b_merged):
        lo = max(a_merged[i][0], b_merged[j][0])
        hi = min(a_merged[i][1], b_merged[j][1])
        if hi > lo:
            out.append((lo, hi))
        if a_merged[i][1] < b_merged[j][1]:
            i += 1
        else:
            j += 1
    return out


def subtract(a: Sequence[Interval], b: Sequence[Interval]) -> List[Interval]:
    """Set difference ``a - b`` as a disjoint interval list."""
    a_merged = merge_intervals(a)
    b_merged = merge_intervals(b)
    out: List[Interval] = []
    j = 0
    for start, end in a_merged:
        cursor = start
        while j < len(b_merged) and b_merged[j][1] <= cursor:
            j += 1
        k = j
        while k < len(b_merged) and b_merged[k][0] < end:
            b_start, b_end = b_merged[k]
            if b_start > cursor:
                out.append((cursor, min(b_start, end)))
            cursor = max(cursor, b_end)
            if cursor >= end:
                break
            k += 1
        if cursor < end:
            out.append((cursor, end))
    return out


def intersect_total(a: Sequence[Interval], b: Sequence[Interval]) -> float:
    """Total length of the intersection of two interval sets."""
    return total_length(intersect(a, b))


def subtract_total(a: Sequence[Interval], b: Sequence[Interval]) -> float:
    """Total length of ``a - b``."""
    return total_length(subtract(a, b))
