"""Time, size, and bandwidth units.

Conventions used throughout the package:

* **time** is a ``float`` in *microseconds* (the native unit of CUPTI traces);
* **size** is a ``float``/``int`` in *bytes*;
* **bandwidth** is expressed in the caller's natural unit (Gbit/s for
  networks, GB/s for device memory) and converted here to bytes/µs.

Keeping all durations in one unit avoids a whole class of silent
unit-mismatch bugs, so every module imports its constants from this file
rather than hard-coding conversion factors.
"""

# --- time constants (in microseconds) ---------------------------------------
US = 1.0
MS = 1_000.0
SEC = 1_000_000.0

# --- size constants (in bytes) -----------------------------------------------
KB = 1_024
MB = 1_024 * 1_024
GB = 1_024 * 1_024 * 1_024

# A gigabit/s expressed in bytes per microsecond:
#   1 Gbps = 1e9 bits/s = 0.125e9 bytes/s = 125 bytes/us
GBPS = 125.0


def bits_to_bytes(bits: float) -> float:
    """Convert a size in bits to bytes."""
    return bits / 8.0


def gbps_to_bytes_per_us(gbps: float) -> float:
    """Convert a network bandwidth in Gbit/s to bytes per microsecond."""
    if gbps < 0:
        raise ValueError(f"bandwidth must be non-negative, got {gbps}")
    return gbps * GBPS


def gBps_to_bytes_per_us(gigabytes_per_sec: float) -> float:
    """Convert a memory bandwidth in GB/s to bytes per microsecond."""
    if gigabytes_per_sec < 0:
        raise ValueError(f"bandwidth must be non-negative, got {gigabytes_per_sec}")
    return gigabytes_per_sec * 1e9 / SEC


def us_to_ms(us: float) -> float:
    """Convert microseconds to milliseconds."""
    return us / MS


def ms_to_us(ms: float) -> float:
    """Convert milliseconds to microseconds."""
    return ms * MS
