"""Deterministic pseudo-randomness keyed by strings.

The ground-truth executor perturbs analytical kernel costs so that real
execution differs from Daydream's heuristic predictions — exactly as a real
GPU differs from a roofline formula.  Perturbations must be:

* **deterministic** — the same kernel in the same workload always gets the
  same duration, so tests and benchmarks are reproducible;
* **independent of iteration order** — keyed by *identity strings*, not by
  a shared mutable RNG state.

We derive a uniform value in ``[0, 1)`` from ``blake2b`` of the key, which is
stable across processes and Python versions (unlike ``hash()``).
"""

import hashlib
import struct


def stable_hash(key: str) -> int:
    """Return a stable 64-bit hash of ``key`` (identical across runs)."""
    digest = hashlib.blake2b(key.encode("utf-8"), digest_size=8).digest()
    return struct.unpack("<Q", digest)[0]


def stable_uniform(key: str) -> float:
    """Return a deterministic uniform sample in ``[0, 1)`` keyed by ``key``."""
    return stable_hash(key) / 2.0**64


def jitter_factor(key: str, spread: float) -> float:
    """Return a multiplicative jitter in ``[1 - spread, 1 + spread]``.

    ``spread`` of 0.03 gives at most +-3% perturbation.  ``spread`` must be in
    ``[0, 1)`` so the factor stays strictly positive.
    """
    if not 0.0 <= spread < 1.0:
        raise ValueError(f"spread must be in [0, 1), got {spread}")
    return 1.0 + spread * (2.0 * stable_uniform(key) - 1.0)


def biased_factor(key: str, low: float, high: float) -> float:
    """Return a deterministic factor uniform in ``[low, high]``.

    Used for effects with a known sign, e.g. 'achieved tensor-core speedup is
    between 2.4x and 3.2x' or 'NCCL contention inflates a primitive by
    20-50%'.
    """
    if high < low:
        raise ValueError(f"empty range [{low}, {high}]")
    return low + (high - low) * stable_uniform(key)
