"""Exception hierarchy for the Daydream reproduction.

Every error raised by this package derives from :class:`DaydreamError` so
callers can catch one base type.  Sub-classes mark which subsystem failed:
trace handling, graph construction/consistency, task-to-layer mapping, or
simulation.
"""


class DaydreamError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class TraceError(DaydreamError):
    """A trace is malformed (bad ordering, unknown record, missing field)."""


class GraphConsistencyError(DaydreamError):
    """The dependency graph violates an invariant (cycle, dangling edge)."""


class MappingError(DaydreamError):
    """Task-to-layer mapping failed (no marker window, ambiguous layer)."""


class SimulationError(DaydreamError):
    """Simulation cannot make progress (deadlock: non-empty graph, empty
    frontier), or a scheduler returned a task outside the frontier."""


class ConfigError(DaydreamError):
    """An invalid configuration value was supplied (negative bandwidth,
    unknown model name, zero workers...)."""
