"""Shared utilities: units, errors, deterministic jitter, interval algebra."""

from repro.common.errors import (
    DaydreamError,
    GraphConsistencyError,
    MappingError,
    SimulationError,
    TraceError,
)
from repro.common.units import (
    GB,
    GBPS,
    KB,
    MB,
    MS,
    SEC,
    US,
    bits_to_bytes,
    gbps_to_bytes_per_us,
    us_to_ms,
)
from repro.common.prng import jitter_factor, stable_hash, stable_uniform
from repro.common.intervals import (
    intersect_total,
    merge_intervals,
    subtract_total,
    total_length,
)

__all__ = [
    "DaydreamError",
    "GraphConsistencyError",
    "MappingError",
    "SimulationError",
    "TraceError",
    "GB",
    "GBPS",
    "KB",
    "MB",
    "MS",
    "SEC",
    "US",
    "bits_to_bytes",
    "gbps_to_bytes_per_us",
    "us_to_ms",
    "jitter_factor",
    "stable_hash",
    "stable_uniform",
    "merge_intervals",
    "total_length",
    "intersect_total",
    "subtract_total",
]
