"""Golden equivalence: ScenarioRunner rows == legacy hand-wired rows.

The experiment modules were ported from hand-wired model → session →
predict pipelines onto the declarative scenario layer.  These tests pin the
port: for fig5, fig7 and fig8 (reduced grids for speed) the rows produced
through :class:`ScenarioRunner` must be *bit-identical* — float for float —
to rows produced by the legacy wiring, reconstructed inline here exactly as
the pre-port modules wrote it.
"""

from repro.analysis.metrics import improvement_percent, prediction_error
from repro.analysis.session import WhatIfSession
from repro.experiments import fig5_amp, fig7_fusedadam, fig8_distributed
from repro.framework import groundtruth
from repro.framework.config import TrainingConfig
from repro.hw.device import GPU_2080TI
from repro.hw.network import NetworkSpec
from repro.hw.topology import ClusterSpec
from repro.models.registry import build_model
from repro.optimizations import (
    AutomaticMixedPrecision,
    DistributedTraining,
    FusedAdam,
)


def test_fig5_rows_match_legacy_wiring():
    ported = fig5_amp.run(models=["resnet50"]).rows

    config = TrainingConfig()
    model = build_model("resnet50")
    session = WhatIfSession.from_model(model, config=config)
    prediction = session.predict(AutomaticMixedPrecision())
    truth = groundtruth.run_amp(model, config)
    legacy = [[
        "resnet50",
        session.baseline_us / 1000.0,
        truth.iteration_us / 1000.0,
        prediction.predicted_us / 1000.0,
        improvement_percent(session.baseline_us, truth.iteration_us),
        prediction_error(prediction.predicted_us, truth.iteration_us) * 100.0,
    ]]
    assert ported == legacy


def test_fig7_rows_match_legacy_wiring():
    ported = fig7_fusedadam.run(models=["bert_base"]).rows

    config = TrainingConfig()
    model = build_model("bert_base")
    session = WhatIfSession.from_model(model, config=config)
    wu_kernels = sum(1 for t in session.graph.tasks()
                     if t.is_gpu and t.phase == "weight_update")
    prediction = session.predict(FusedAdam())
    truth = groundtruth.run_fused_adam(model, config)
    legacy = [[
        "bert_base",
        session.baseline_us / 1000.0,
        truth.iteration_us / 1000.0,
        prediction.predicted_us / 1000.0,
        improvement_percent(session.baseline_us, truth.iteration_us),
        prediction_error(prediction.predicted_us, truth.iteration_us) * 100.0,
        wu_kernels,
    ]]
    assert ported == legacy


def test_fig8_rows_match_legacy_wiring():
    ported = fig8_distributed.run(models=["resnet50"], bandwidths=[10],
                                  configs=[(1, 1), (2, 1), (2, 2)]).rows

    config = TrainingConfig()
    model = build_model("resnet50")
    session = WhatIfSession.from_model(model, config=config)
    legacy = []
    for machines, gpus in ((1, 1), (2, 1), (2, 2)):
        cluster = ClusterSpec(machines, gpus, GPU_2080TI,
                              NetworkSpec(bandwidth_gbps=10))
        if not cluster.is_distributed:
            legacy.append(["resnet50", cluster.label(), 10,
                           session.baseline_us / 1000.0,
                           session.baseline_us / 1000.0, 0.0])
            continue
        truth = groundtruth.run_distributed(model, cluster, config,
                                            sync_before_allreduce=True)
        pred = session.predict(DistributedTraining(), cluster=cluster)
        legacy.append(["resnet50", cluster.label(), 10,
                       truth.iteration_us / 1000.0,
                       pred.predicted_us / 1000.0,
                       prediction_error(pred.predicted_us,
                                        truth.iteration_us) * 100.0])
    assert ported == legacy