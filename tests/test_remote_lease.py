"""The cross-host coordination plane: server-held compute leases.

``POST /leases/<key>`` mirrors :class:`FileLease` semantics over HTTP —
claiming an unheld key is the O_EXCL-equivalent acquisition of a
server-held token, a claim left un-refreshed past the steal window may
be stolen, and refresh/release are token-checked — so N hosts sharing
one hub compute each identical cell exactly once anywhere.  The remote
layer must *fail open*: a dead, read-only or pre-lease hub degrades to
the single-host lease behaviour, never to a stuck sweep.  This file
pins the endpoint semantics, the claim races (including two separate
*processes*), the fail-open ladder, the record-time publish handshake,
and the 24-cell two-host exactly-once acceptance criterion; the CI
``cross-host`` job runs it.
"""

import json
import multiprocessing
import time

import pytest

from helpers import make_tiny_model
from repro.__main__ import main
from repro.common.errors import ConfigError
from repro.models.registry import register_model
from repro.scenarios import (
    BackendError,
    ComputeLease,
    HTTPBackend,
    LocalBackend,
    Scenario,
    ScenarioGrid,
    ScenarioRunner,
    StoreServer,
    SweepStore,
    run_batch,
)

MODEL = "tinylease"

KEY = "ab" * 16
OTHER_KEY = "cd" * 16


def build_tinylease(batch_size=None):
    """Module-level builder: worker processes re-import it by name."""
    return make_tiny_model(batch=batch_size or 4)


@pytest.fixture(scope="module", autouse=True)
def register_tiny_model():
    try:
        register_model(MODEL, build_tinylease)
    except ConfigError:
        pass  # already registered by an earlier module in this process


def entry_bytes_for(key):
    return json.dumps({"key": key}).encode()


# ------------------------------------------------------ endpoint semantics

def test_claim_grants_exactly_one_token(tmp_path):
    with StoreServer(str(tmp_path), port=0) as server:
        a = HTTPBackend(server.url).lease(KEY)
        b = HTTPBackend(server.url).lease(KEY)
        assert a.try_acquire()
        assert a.owned and not a.unavailable
        assert not b.try_acquire()
        assert not b.owned and not b.unavailable  # denied, not unreachable
        a.release()
        assert not a.owned
        assert b.try_acquire()  # released claims are immediately free


def test_release_is_token_checked(tmp_path):
    with StoreServer(str(tmp_path), port=0) as server:
        backend = HTTPBackend(server.url)
        status, token = backend.lease_request(KEY, "claim")
        assert status == "granted" and token
        # a stranger's token releases nothing
        assert backend.lease_request(KEY, "release", "not-the-token")[0] \
            == "denied"
        assert backend.lease_request(KEY, "claim")[0] == "denied"  # still held
        assert backend.lease_request(KEY, "release", token)[0] == "ok"
        assert backend.lease_request(KEY, "claim")[0] == "granted"


def test_steal_after_stale_over_http(tmp_path):
    with StoreServer(str(tmp_path), port=0) as server:
        owner = HTTPBackend(server.url).lease(KEY)
        assert owner.try_acquire()
        thief = HTTPBackend(server.url).lease(KEY)
        assert not thief.try_acquire()  # fresh: no theft
        server.leases.backdate(KEY, age_s=3600.0)  # the owner "crashed"
        assert thief.try_acquire()
        assert server.leases.steals == 1
        # the old owner's token died with the steal: refresh drops
        # ownership, release is a no-op for the thief's claim
        owner.refresh()
        assert not owner.owned
        owner.release()
        thief.refresh()
        assert thief.owned  # the thief's claim survived both attempts


def test_refresh_keeps_a_long_claim_alive_across_the_steal_window(tmp_path):
    with StoreServer(str(tmp_path), port=0,
                     lease_steal_after=0.3) as server:
        owner = HTTPBackend(server.url).lease(KEY)
        assert owner.try_acquire()
        rival = HTTPBackend(server.url).lease(KEY)
        # a chunk outliving the steal window stays claimed while refreshed
        deadline = time.monotonic() + 0.9
        while time.monotonic() < deadline:
            owner.refresh()
            assert owner.owned
            assert not rival.try_acquire()
            time.sleep(0.1)
        owner.release()
        assert rival.try_acquire()


def test_read_only_server_has_no_lease_plane(tmp_path):
    with StoreServer(str(tmp_path), port=0, read_only=True) as server:
        lease = HTTPBackend(server.url).lease(KEY)
        assert not lease.try_acquire()
        assert lease.unavailable  # 403 = no plane, callers fail open


# --------------------------------------------------------------- fail open

def test_remote_lease_fails_open_when_the_server_dies_mid_claim(tmp_path):
    server = StoreServer(str(tmp_path / "hub"), port=0).start()
    backend = HTTPBackend(server.url, timeout_s=0.5)
    held = backend.lease(KEY)
    assert held.try_acquire()
    server.shutdown()  # dies while the claim is held
    # release of the held claim must not raise
    held.release()
    assert not held.owned
    # a fresh claim reports unavailable, and the composite lease then
    # degrades to local-only coordination instead of stalling the sweep
    remote = backend.lease(OTHER_KEY)
    local = LocalBackend(str(tmp_path / "store")).lease(OTHER_KEY)
    composite = ComputeLease(local, remote)
    assert composite.try_acquire()
    assert composite.owned
    assert remote.unavailable and not composite.remote_owned
    composite.release()
    assert not local.owned


def test_compute_lease_defers_to_a_remote_denial(tmp_path):
    with StoreServer(str(tmp_path / "hub"), port=0) as server:
        winner = HTTPBackend(server.url).lease(KEY)
        assert winner.try_acquire()  # "another host" computes this cell
        local_tier = LocalBackend(str(tmp_path / "store"))
        composite = ComputeLease(local_tier.lease(KEY),
                                 HTTPBackend(server.url).lease(KEY))
        assert not composite.try_acquire()
        # the locally-won half was rolled back, not leaked: a fresh
        # local lease acquires immediately
        assert local_tier.lease(KEY).try_acquire()


# --------------------------------------------------- claim races (processes)

def _claim_from_process(url, key, start_evt, out):
    start_evt.wait(5.0)
    lease = HTTPBackend(url).lease(key)
    out.put(lease.try_acquire())


def test_two_processes_claim_one_key_exactly_once(tmp_path):
    ctx = multiprocessing.get_context("fork")
    with StoreServer(str(tmp_path), port=0) as server:
        start_evt = ctx.Event()
        out = ctx.Queue()
        procs = [ctx.Process(target=_claim_from_process,
                             args=(server.url, KEY, start_evt, out))
                 for _ in range(2)]
        for p in procs:
            p.start()
        start_evt.set()
        results = [out.get(timeout=10.0) for _ in procs]
        for p in procs:
            p.join(timeout=10.0)
    assert sorted(results) == [False, True]  # exactly one winner


def _sweep_host(root, hub_url, scenario_dicts, out):
    store = SweepStore(root, remote=hub_url)
    scenarios = [Scenario.from_dict(d) for d in scenario_dicts]
    report = run_batch(scenarios, store=store, start_method="serial")
    out.put({
        "computed": report.computed,
        "hits": report.hits,
        "failed": report.failed,
        "rows": [(c.key, c.baseline_us, c.predicted_us)
                 for c in report.cells],
    })


def test_two_hosts_compute_a_24_cell_grid_exactly_once_between_them(
        tmp_path):
    """The acceptance criterion: winner computes, loser defers-then-serves.

    Two concurrent sweeps on disjoint *processes* with distinct store
    roots share one hub.  Every one of the 24 cells must be computed
    exactly once across both hosts, and both hosts' rows must be
    bit-identical to a serial run.
    """
    grid = ScenarioGrid(
        base=Scenario(model=MODEL,
                      optimizations=["distributed_training"]).with_cluster(
                          2, 1, bandwidth_gbps=10.0),
        axes={
            "cluster.bandwidth_gbps": [4.0, 7.0, 10.0, 14.0, 18.0, 22.0,
                                       26.0, 30.0, 34.0, 38.0, 42.0, 46.0],
            "cluster.machines": [2, 4],
        },
    )
    scenarios = grid.expand()
    assert len(scenarios) == 24
    serial = ScenarioRunner().run_grid(scenarios, processes=1)
    serial_rows = [o.as_row() for o in serial]

    ctx = multiprocessing.get_context("fork")
    with StoreServer(str(tmp_path / "hub"), port=0) as server:
        out = ctx.Queue()
        dicts = [s.to_dict() for s in scenarios]
        hosts = [ctx.Process(target=_sweep_host,
                             args=(str(tmp_path / f"host-{i}"), server.url,
                                   dicts, out))
                 for i in range(2)]
        for p in hosts:
            p.start()
        reports = [out.get(timeout=180.0) for _ in hosts]
        for p in hosts:
            p.join(timeout=30.0)

    assert all(r["failed"] == 0 for r in reports)
    # exactly once anywhere: the hosts partition the grid between them
    assert sum(r["computed"] for r in reports) == len(scenarios)
    for r in reports:
        assert r["computed"] + r["hits"] == len(scenarios)
    # and both hosts' rows are bit-identical to each other and to serial
    assert reports[0]["rows"] == reports[1]["rows"]
    host_values = {key: (baseline, predicted)
                   for key, baseline, predicted in reports[0]["rows"]}
    warm = ScenarioRunner().run_grid(
        scenarios, store=SweepStore(str(tmp_path / "host-0")))
    assert [o.as_row() for o in warm] == serial_rows
    assert len(host_values) == len(scenarios)


# -------------------------------------------------- record-time publishing

def test_winner_publishes_each_cell_to_the_hub_at_record_time(tmp_path):
    scenarios = ScenarioGrid(
        base=Scenario(model=MODEL,
                      optimizations=["distributed_training"]).with_cluster(
                          2, 1, bandwidth_gbps=10.0),
        axes={"cluster.bandwidth_gbps": [10.0, 25.0]},
    ).expand()
    with StoreServer(str(tmp_path / "hub"), port=0) as server:
        host = SweepStore(str(tmp_path / "host"), remote=server.url)
        report = run_batch(scenarios, store=host, start_method="serial")
        assert report.computed == len(scenarios)
        assert host.stats.published == len(scenarios)
        assert host.stats.publish_failures == 0
        hub_keys = set(LocalBackend(str(tmp_path / "hub")).iter_keys())
    # every computed entry reached the hub without an explicit push
    assert {host.key(s) for s in scenarios} <= hub_keys
    # no claims left behind on the server either
    with StoreServer(str(tmp_path / "hub2"), port=0) as server2:
        assert len(server2.leases) == 0


# ------------------------------------------------------ operability surface

def test_stats_endpoint_reports_entries_bytes_leases_uptime(tmp_path):
    backend_dir = LocalBackend(str(tmp_path))
    backend_dir.put(KEY, entry_bytes_for(KEY))
    with StoreServer(str(tmp_path), port=0) as server:
        client = HTTPBackend(server.url)
        assert client.lease(OTHER_KEY).try_acquire()
        payload = client.stats()
    assert payload["entries"] == 1
    assert payload["bytes"] > 0
    assert payload["leases"] == 1
    assert payload["lease_claims"] == 1
    assert payload["uptime_s"] >= 0.0
    assert payload["read_only"] is False
    assert payload["auth_required"] is False


def test_cli_store_stats_probes_the_remote(tmp_path, capsys):
    store_dir = tmp_path / "store"
    store_dir.mkdir()
    with StoreServer(str(tmp_path / "hub"), port=0) as server:
        assert main(["store", "stats", str(store_dir),
                     "--remote", server.url]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["remote"]["entries"] == 0
    assert payload["remote"]["auth_required"] is False


# ------------------------------------------------------------- admin mode

def test_auth_token_gates_put_and_delete_but_not_reads(tmp_path):
    with StoreServer(str(tmp_path), port=0, auth_token="sekrit") as server:
        anon = HTTPBackend(server.url)
        with pytest.raises(BackendError, match="401"):
            anon.put(KEY, entry_bytes_for(KEY))
        wrong = HTTPBackend(server.url, auth_token="wr0ng")
        with pytest.raises(BackendError, match="401"):
            wrong.put(KEY, entry_bytes_for(KEY))
        authed = HTTPBackend(server.url, auth_token="sekrit")
        authed.put(KEY, entry_bytes_for(KEY))
        # reads stay open: auth gates mutation, not consumption
        assert anon.get(KEY) == entry_bytes_for(KEY)
        assert anon.stat(KEY) is not None
        assert anon.stats()["auth_required"] is True
        with pytest.raises(BackendError, match="401"):
            anon.delete(KEY)
        authed.delete(KEY)
        assert anon.get(KEY) is None


def test_push_against_an_admin_hub_needs_the_token(tmp_path, capsys):
    publisher = SweepStore(str(tmp_path / "publisher"))
    publisher.put(Scenario(model=MODEL), {"baseline_us": 1.0,
                                          "predicted_us": 2.0})
    with StoreServer(str(tmp_path / "hub"), port=0,
                     auth_token="sekrit") as server:
        # 401 on push fails loudly (exit 2), transfers nothing...
        assert main(["store", "push", str(tmp_path / "publisher"),
                     "--remote", server.url, "--retries", "0"]) == 2
        err = capsys.readouterr().err
        assert "401" in err
        assert not set(LocalBackend(str(tmp_path / "hub")).iter_keys())
        # ...and the same push with the token lands
        assert main(["store", "push", str(tmp_path / "publisher"),
                     "--remote", server.url, "--retries", "0",
                     "--auth-token", "sekrit"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["transferred"] == 1
