"""Lint-style gate: the scenario layer must stay documented.

The ``repro.scenarios`` package is the public front door (every
experiment, example and CLI command goes through it), so its
documentation is enforced, not hoped for:

* every module in the package carries a substantive module docstring;
* every public class and function *defined* in the package has a
  docstring, and so does every public method of those classes;
* the named substrate APIs the docs lean on — ``SweepStore``, the batch
  executor, ``ScenarioRunner.run_grid`` — are spot-checked explicitly so
  a rename cannot silently drop them out of the generic sweep.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro.scenarios

MIN_MODULE_DOC = 80  # characters: a sentence, not a stub


def scenario_modules():
    names = ["repro.scenarios"]
    for info in pkgutil.iter_modules(repro.scenarios.__path__,
                                     prefix="repro.scenarios."):
        names.append(info.name)
    return [importlib.import_module(name) for name in sorted(names)]


def test_all_scenario_modules_have_module_docstrings():
    missing = [m.__name__ for m in scenario_modules()
               if not m.__doc__ or len(m.__doc__.strip()) < MIN_MODULE_DOC]
    assert not missing, f"undocumented scenario modules: {missing}"


def _public_members(module):
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if not (inspect.isclass(obj) or inspect.isfunction(obj)):
            continue
        if getattr(obj, "__module__", None) != module.__name__:
            continue  # re-exports are documented where they are defined
        yield name, obj


@pytest.mark.parametrize("module", scenario_modules(),
                         ids=lambda m: m.__name__)
def test_public_api_of_scenario_modules_is_documented(module):
    undocumented = []
    for name, obj in _public_members(module):
        if not inspect.getdoc(obj):
            undocumented.append(f"{module.__name__}.{name}")
        if inspect.isclass(obj):
            for attr, member in vars(obj).items():
                if attr.startswith("_"):
                    continue
                if not (inspect.isfunction(member)
                        or isinstance(member, (classmethod, staticmethod,
                                               property))):
                    continue
                target = member.fget if isinstance(member, property) \
                    else member
                if not inspect.getdoc(target):
                    undocumented.append(f"{module.__name__}.{name}.{attr}")
    assert not undocumented, (
        f"public scenario APIs without docstrings: {undocumented}"
    )


def test_the_substrate_entry_points_stay_documented():
    """The names the docs lean on, pinned explicitly."""
    from repro.scenarios import (
        ScenarioRunner,
        SweepStore,
        WorkerManifest,
        run_batch,
    )
    for api in (SweepStore, SweepStore.get, SweepStore.put, SweepStore.gc,
                SweepStore.prune, SweepStore.verify, run_batch,
                WorkerManifest, WorkerManifest.capture,
                WorkerManifest.restore, ScenarioRunner.run_grid):
        doc = inspect.getdoc(api)
        assert doc and len(doc.strip()) > 40, f"{api!r} lost its docstring"
