"""Property tests: the service wire format never drifts from the store.

Two invariants hold for *every* expressible scenario, not just the ones
the end-to-end suite happens to post:

* **wire round-trip** — a scenario serialized to its wire dict, dumped
  to JSON bytes, parsed back by :func:`parse_scenario_payload` and
  re-serialized is unchanged: the wire format *is* the canonical dict
  the store hashes, with no lossy edge;
* **one keying scheme** — the key the service reports for a scenario is
  exactly the :class:`SweepStore` key (= :func:`scenario_key` under the
  shared registry), including the canonical int→float widening, so a
  response key can always be looked up in any store of the same salt.

Hypothesis generates the scenarios; the properties never simulate, so
hundreds of examples stay fast.
"""

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.scenarios import (
    DEFAULT_REGISTRY,
    PredictService,
    Scenario,
    SweepStore,
    canonical_scenario_json,
    parse_scenario_payload,
    scenario_key,
)

# names only need to be strings — from_dict does not resolve the model,
# so the wire format must round-trip unregistered names too
_MODELS = st.sampled_from(["resnet50", "vgg19", "gnmt", "custom_net"])

_OPTIMIZATIONS = st.lists(
    st.sampled_from(["amp", "fused_adam", "gist",
                     {"name": "gist", "params": {"lossy": True}}]),
    max_size=2, unique_by=str)

_CLUSTERS = st.one_of(
    st.none(),
    st.builds(dict,
              machines=st.integers(min_value=1, max_value=4),
              gpus_per_machine=st.integers(min_value=1, max_value=2),
              bandwidth_gbps=st.floats(min_value=1.0, max_value=100.0,
                                       allow_nan=False)))


def _scenario_dicts() -> st.SearchStrategy:
    """Wire-format scenario dicts, omitting fields drawn as ``None``."""
    return st.builds(
        lambda **fields: {k: v for k, v in fields.items() if v is not None},
        model=_MODELS,
        batch_size=st.one_of(st.none(),
                             st.integers(min_value=1, max_value=64)),
        precision=st.one_of(st.none(), st.just("fp32"), st.just("fp16")),
        data_loading_us=st.one_of(
            st.none(),
            st.floats(min_value=0.0, max_value=1e6, allow_nan=False)),
        cluster=_CLUSTERS,
        optimizations=st.one_of(st.none(), _OPTIMIZATIONS),
    )


@settings(max_examples=100, deadline=None)
@given(_scenario_dicts())
def test_wire_format_round_trips_unchanged(payload):
    """parse(json(dict)) → to_dict() is a fixed point of the wire format."""
    scenario = parse_scenario_payload(json.loads(json.dumps(payload)))
    wire = scenario.to_dict()
    assert parse_scenario_payload(wire) == scenario
    assert parse_scenario_payload(wire).to_dict() == wire
    # and the canonical JSON the store hashes is reached either way
    assert canonical_scenario_json(scenario) == \
        canonical_scenario_json(Scenario.from_dict(payload))


@settings(max_examples=100, deadline=None)
@given(_scenario_dicts())
def test_response_keys_equal_sweep_store_keys(tmp_path_factory, payload):
    """No second keying scheme: service keys are SweepStore keys."""
    scenario = parse_scenario_payload(payload)
    service = PredictService()
    store = SweepStore(str(tmp_path_factory.mktemp("store")),
                       registry=DEFAULT_REGISTRY)
    assert service.key_for(scenario) == store.key(scenario)
    assert service.key_for(scenario) == scenario_key(scenario,
                                                     DEFAULT_REGISTRY)


@settings(max_examples=50, deadline=None)
@given(st.integers(min_value=0, max_value=10**6),
       _MODELS)
def test_keys_widen_ints_like_the_canonical_form(us, model):
    """An int where a float belongs keys identically (canonical widening)."""
    as_int = parse_scenario_payload({"model": model, "data_loading_us": us})
    as_float = parse_scenario_payload({"model": model,
                                       "data_loading_us": float(us)})
    assert scenario_key(as_int, DEFAULT_REGISTRY) == \
        scenario_key(as_float, DEFAULT_REGISTRY)


@settings(max_examples=100, deadline=None)
@given(_scenario_dicts())
def test_key_is_stable_across_services(payload):
    """Two service instances agree on every key (it is content, not state)."""
    scenario = parse_scenario_payload(payload)
    assert PredictService().key_for(scenario) == \
        PredictService().key_for(scenario)
