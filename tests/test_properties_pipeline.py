"""End-to-end property tests: random models through the full pipeline.

Hypothesis generates small random-but-valid training workloads; for each we
check the pipeline invariants that every what-if prediction relies on:

* the engine's trace validates (no overlaps, correlations consistent);
* graph construction + simulation replays the traced time (< 1% error);
* the task-to-layer mapping matches the engine's oracle annotations;
* transformations preserve graph validity and never produce negative times;
* physical sanity: shrinking durations never increases the makespan.
"""

from hypothesis import given, settings, strategies as st

from repro.analysis.session import WhatIfSession
from repro.core import transform
from repro.core.construction import build_graph
from repro.core.simulate import simulate
from repro.framework.engine import profile_iteration
from repro.models.base import ModelSpec
from repro.models.blocks import (
    batchnorm_layer,
    conv_layer,
    linear_layer,
    loss_layer,
    relu_layer,
)
from repro.optimizations import AutomaticMixedPrecision


@st.composite
def random_model(draw) -> ModelSpec:
    """A random small CNN/MLP hybrid with a valid layer graph."""
    batch = draw(st.sampled_from([1, 2, 4]))
    n_blocks = draw(st.integers(min_value=1, max_value=3))
    optimizer = draw(st.sampled_from(["sgd", "adam"]))
    layers = []
    c_in, h = 3, 16
    for i in range(n_blocks):
        c_out = draw(st.sampled_from([8, 16, 32]))
        layers.append(conv_layer(f"b{i}.conv", batch, c_in, h, h, c_out,
                                 3, 1, 1))
        if draw(st.booleans()):
            layers.append(batchnorm_layer(f"b{i}.bn", batch, c_out, h, h))
        layers.append(relu_layer(f"b{i}.relu", batch * c_out * h * h))
        c_in = c_out
    layers.append(linear_layer("fc", batch, c_in * h * h, 10))
    layers.append(loss_layer("loss", batch, 10))
    return ModelSpec(
        name="randcnn",
        layers=layers,
        batch_size=batch,
        input_sample_bytes=3 * h * h * 4,
        default_optimizer=optimizer,
    )


@settings(max_examples=15, deadline=None)
@given(random_model())
def test_trace_validates(model):
    profile_iteration(model).validate()


@settings(max_examples=15, deadline=None)
@given(random_model())
def test_replay_fidelity(model):
    trace = profile_iteration(model)
    makespan = simulate(build_graph(trace)).makespan_us
    assert abs(makespan - trace.duration_us) / trace.duration_us < 0.01


@settings(max_examples=15, deadline=None)
@given(random_model())
def test_mapping_matches_oracle(model):
    graph = build_graph(profile_iteration(model))
    for task in graph.tasks():
        oracle = task.metadata.get("oracle_layer")
        if task.is_gpu and oracle:
            assert task.layer == oracle


@settings(max_examples=10, deadline=None)
@given(random_model())
def test_amp_transform_preserves_validity(model):
    session = WhatIfSession.from_model(model)
    graph, result = session.predict_simulation(AutomaticMixedPrecision())
    graph.validate()
    assert 0 < result.makespan_us <= session.baseline_us + 1e-6
    assert all(t.duration >= 0 for t in graph.tasks())


@settings(max_examples=10, deadline=None)
@given(random_model(), st.floats(min_value=1.0, max_value=10.0))
def test_shrinking_never_hurts(model, divisor):
    """Monotonicity: making GPU kernels faster never slows the iteration."""
    session = WhatIfSession.from_model(model)
    graph = session.graph.copy()
    transform.shrink_durations(transform.select_gpu_tasks(graph), divisor)
    assert simulate(graph).makespan_us <= session.baseline_us + 1e-6


@settings(max_examples=10, deadline=None)
@given(random_model())
def test_profile_deterministic(model):
    t1 = profile_iteration(model)
    t2 = profile_iteration(model)
    assert t1.duration_us == t2.duration_us
