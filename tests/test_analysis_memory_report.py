"""Tests for memory-footprint estimation and the what-if report."""

import pytest

from repro.analysis.memory import MemoryFootprint, estimate_footprint, max_batch_size
from repro.analysis.report import OptimizationReport, quick_report
from repro.analysis.session import WhatIfSession
from repro.common.errors import ConfigError
from repro.hw.device import GPU_2080TI, GPUSpec
from repro.models.registry import build_model
from repro.optimizations import AutomaticMixedPrecision, FusedAdam
from repro.optimizations.hardware import GpuUpgrade


class TestMemoryFootprint:
    def test_components_positive(self, tiny_model):
        fp = estimate_footprint(tiny_model)
        assert fp.weights > 0
        assert fp.gradients == fp.weights
        assert fp.activations > 0
        assert fp.total > fp.weights

    def test_adam_doubles_optimizer_state(self, tiny_model):
        adam = estimate_footprint(tiny_model, optimizer="adam")
        sgd = estimate_footprint(tiny_model, optimizer="sgd")
        assert adam.optimizer_state == 2 * sgd.optimizer_state

    def test_unknown_optimizer_rejected(self, tiny_model):
        with pytest.raises(ConfigError):
            estimate_footprint(tiny_model, optimizer="rmsprop")

    def test_bert_large_heavier_than_base(self):
        base = estimate_footprint(build_model("bert_base"))
        large = estimate_footprint(build_model("bert_large"))
        assert large.total > base.total

    def test_activations_scale_with_batch(self):
        small = estimate_footprint(build_model("resnet50", batch_size=16))
        big = estimate_footprint(build_model("resnet50", batch_size=64))
        assert big.activations == pytest.approx(small.activations * 4,
                                                rel=0.05)
        assert big.weights == small.weights

    def test_fits(self):
        fp = MemoryFootprint(weights=1e9, gradients=1e9, optimizer_state=1e9,
                             activations=1e9, workspace=0)
        assert fp.fits(GPU_2080TI)        # 4 GB on an 11 GB card
        tiny_gpu = GPUSpec(name="tiny", fp32_tflops=1, fp16_tflops=1,
                           memory_bandwidth_gBps=100, memory_gb=2.0)
        assert not fp.fits(tiny_gpu)

    def test_as_gb_keys(self, tiny_model):
        gb = estimate_footprint(tiny_model).as_gb()
        assert set(gb) == {"weights_gb", "gradients_gb",
                           "optimizer_state_gb", "activations_gb",
                           "workspace_gb", "total_gb"}


class TestMaxBatchSize:
    def test_resnet_fits_reasonable_batch(self):
        best = max_batch_size(
            lambda b: build_model("resnet50", batch_size=b), GPU_2080TI)
        assert 16 <= best <= 512

    def test_monotone_in_memory(self):
        small_gpu = GPUSpec(name="s", fp32_tflops=10, fp16_tflops=10,
                            memory_bandwidth_gBps=500, memory_gb=4.0)
        big_gpu = GPUSpec(name="b", fp32_tflops=10, fp16_tflops=10,
                          memory_bandwidth_gBps=500, memory_gb=24.0)
        build = lambda b: build_model("resnet50", batch_size=b)
        assert max_batch_size(build, big_gpu) >= max_batch_size(build,
                                                                small_gpu)

    def test_zero_when_nothing_fits(self):
        nano_gpu = GPUSpec(name="n", fp32_tflops=1, fp16_tflops=1,
                           memory_bandwidth_gBps=10, memory_gb=0.001)
        build = lambda b: build_model("resnet50", batch_size=b)
        assert max_batch_size(build, nano_gpu) == 0

    def test_invalid_start_rejected(self):
        with pytest.raises(ConfigError):
            max_batch_size(lambda b: build_model("resnet50", batch_size=b),
                           GPU_2080TI, start=0)


class TestOptimizationReport:
    def test_ranking(self, tiny_model):
        session = WhatIfSession.from_model(tiny_model)
        report = quick_report(session, [AutomaticMixedPrecision(),
                                        FusedAdam(),
                                        GpuUpgrade(1.01)])
        ranked = report.ranked()
        times = [p.predicted_us for p in ranked]
        assert times == sorted(times)
        assert report.best() is ranked[0]

    def test_render_contains_all(self, tiny_model):
        session = WhatIfSession.from_model(tiny_model)
        report = quick_report(session, [AutomaticMixedPrecision(),
                                        FusedAdam()])
        out = report.render()
        assert "amp" in out and "fused_adam" in out
        assert "tinycnn" in out

    def test_best_requires_predictions(self, tiny_model):
        session = WhatIfSession.from_model(tiny_model)
        with pytest.raises(ValueError):
            OptimizationReport(session=session).best()
