"""Tests for the graph-transformation primitives."""

import pytest

from repro.common.errors import GraphConsistencyError
from repro.core import transform
from repro.core.construction import build_graph
from repro.core.graph import DependencyGraph
from repro.core.simulate import simulate
from repro.core.task import Task, TaskKind
from repro.tracing.records import comm_channel, cpu_thread


@pytest.fixture
def tiny_graph(tiny_trace):
    return build_graph(tiny_trace)


class TestSelect:
    def test_select_gpu_tasks(self, tiny_graph):
        gpu = transform.select_gpu_tasks(tiny_graph)
        assert gpu
        assert all(t.is_gpu for t in gpu)

    def test_select_by_name(self, tiny_graph):
        gemm = transform.select_by_name(tiny_graph, "sgemm", "scudnn")
        assert gemm
        assert all("sgemm" in t.name or "scudnn" in t.name for t in gemm)

    def test_select_by_layer(self, tiny_graph):
        conv1 = transform.select_by_layer(tiny_graph, lambda l: l == "conv1")
        assert conv1
        assert all(t.layer == "conv1" for t in conv1)

    def test_select_by_layer_with_phase(self, tiny_graph):
        fwd = transform.select_by_layer(tiny_graph, lambda l: l == "conv1",
                                        phase="forward")
        assert fwd
        assert all(t.phase == "forward" for t in fwd)

    def test_select_by_phase(self, tiny_graph):
        wu = transform.select_by_phase(tiny_graph, "weight_update")
        assert wu
        assert all(t.phase == "weight_update" for t in wu)


class TestScaleShrink:
    def test_scale(self, tiny_graph):
        tasks = transform.select_gpu_tasks(tiny_graph)
        before = transform.total_duration(tasks)
        count = transform.scale_durations(tasks, 0.5)
        assert count == len(tasks)
        assert transform.total_duration(tasks) == pytest.approx(before / 2)

    def test_shrink(self, tiny_graph):
        tasks = transform.select_gpu_tasks(tiny_graph)
        before = transform.total_duration(tasks)
        transform.shrink_durations(tasks, 4.0)
        assert transform.total_duration(tasks) == pytest.approx(before / 4)

    def test_shrink_rejects_nonpositive(self, tiny_graph):
        with pytest.raises(GraphConsistencyError):
            transform.shrink_durations([], 0.0)

    def test_shrinking_gpu_tasks_reduces_makespan(self, tiny_graph):
        baseline = simulate(tiny_graph).makespan_us
        working = tiny_graph.copy()
        transform.shrink_durations(transform.select_gpu_tasks(working), 2.0)
        assert simulate(working).makespan_us < baseline


class TestRemoveGpuTask:
    def test_removes_kernel_and_launch(self, tiny_graph):
        gpu = transform.select_gpu_tasks(tiny_graph)
        victim = next(t for t in gpu if t.phase == "weight_update")
        launch = victim.metadata["launched_by"]
        n = len(tiny_graph)
        transform.remove_gpu_task(tiny_graph, victim)
        assert len(tiny_graph) == n - 2
        assert victim not in tiny_graph
        assert launch not in tiny_graph

    def test_keep_launch_option(self, tiny_graph):
        victim = transform.select_gpu_tasks(tiny_graph)[0]
        launch = victim.metadata["launched_by"]
        transform.remove_gpu_task(tiny_graph, victim, remove_launch=False)
        assert launch in tiny_graph

    def test_rejects_cpu_task(self, tiny_graph):
        cpu = next(t for t in tiny_graph.tasks() if t.is_cpu)
        with pytest.raises(GraphConsistencyError):
            transform.remove_gpu_task(tiny_graph, cpu)

    def test_removal_reduces_makespan(self, tiny_graph):
        baseline = simulate(tiny_graph).makespan_us
        working = tiny_graph.copy()
        wu = [t for t in transform.select_by_phase(working, "weight_update")
              if t.is_gpu]
        for task in wu[:-1]:
            transform.remove_gpu_task(working, task)
        assert simulate(working).makespan_us < baseline


class TestInsertGpuTask:
    def test_inserts_kernel_with_launch(self, tiny_graph):
        anchor_gpu = transform.select_gpu_tasks(tiny_graph)[0]
        anchor_cpu = anchor_gpu.metadata["launched_by"]
        n = len(tiny_graph)
        new = transform.insert_gpu_task(
            tiny_graph, cpu_anchor=anchor_cpu, gpu_anchor=anchor_gpu,
            kernel_name="extra_kernel", duration_us=42.0)
        assert len(tiny_graph) == n + 2
        assert new.thread == anchor_gpu.thread
        assert tiny_graph.thread_successor(anchor_gpu) is new
        launch = new.metadata["launched_by"]
        assert new in tiny_graph.successors(launch)
        tiny_graph.validate()

    def test_insertion_increases_makespan(self, tiny_graph):
        baseline = simulate(tiny_graph).makespan_us
        anchor_gpu = transform.select_gpu_tasks(tiny_graph)[0]
        anchor_cpu = anchor_gpu.metadata["launched_by"]
        transform.insert_gpu_task(
            tiny_graph, cpu_anchor=anchor_cpu, gpu_anchor=anchor_gpu,
            kernel_name="overhead", duration_us=10_000.0)
        assert simulate(tiny_graph).makespan_us > baseline

    def test_append_to_stream_when_no_anchor(self, tiny_graph):
        anchor_cpu = next(t for t in tiny_graph.tasks() if t.is_cpu)
        new = transform.insert_gpu_task(
            tiny_graph, cpu_anchor=anchor_cpu, gpu_anchor=None,
            kernel_name="tail_kernel", duration_us=5.0)
        stream_tasks = tiny_graph.tasks_on(new.thread)
        assert stream_tasks[-1] is new


class TestInsertCommTask:
    def test_insert_with_dependencies(self, tiny_graph):
        bwd_gpu = [t for t in transform.select_by_phase(tiny_graph, "backward")
                   if t.is_gpu]
        wu_cpu = transform.select_by_phase(tiny_graph, "weight_update")[0]
        comm = transform.insert_comm_task(
            tiny_graph, comm_channel(0), "allreduce", duration_us=100.0,
            depends_on=[bwd_gpu[-1]], successors=[wu_cpu], size_bytes=1e6)
        assert comm.is_comm
        assert comm in tiny_graph.successors(bwd_gpu[-1])
        assert wu_cpu in tiny_graph.successors(comm)
        tiny_graph.validate()

    def test_channel_ordering_by_insertion(self):
        g = DependencyGraph()
        first = transform.insert_comm_task(g, comm_channel(0), "a", 10.0)
        second = transform.insert_comm_task(g, comm_channel(0), "b", 10.0)
        res = simulate(g)
        assert res.start_us[second] >= res.end_us(first)


class TestUtilities:
    def test_total_duration(self):
        tasks = [Task(name="t", kind=TaskKind.CPU, thread=cpu_thread(0),
                      duration=float(i)) for i in range(4)]
        assert transform.total_duration(tasks) == 6.0

    def test_first_in_thread_order(self, tiny_graph):
        wu = transform.select_by_phase(tiny_graph, "weight_update")
        cpu_wu = [t for t in wu if t.is_cpu]
        first = transform.first_in_thread_order(tiny_graph, cpu_wu)
        order = tiny_graph.tasks_on(first.thread)
        assert order.index(first) == min(order.index(t) for t in cpu_wu)

    def test_first_in_thread_order_rejects_empty(self, tiny_graph):
        with pytest.raises(GraphConsistencyError):
            transform.first_in_thread_order(tiny_graph, [])
