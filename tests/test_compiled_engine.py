"""The compiled simulation core: lowering, cache invalidation, batching.

Covers the contracts :mod:`repro.core.compiled` documents:

* stable ordinals are a pure function of graph data (thread-major);
* the compiled lowering is cached per graph generation and invalidated by
  every mutation class — structural splices, edge changes, thread order
  flags, copy-on-write swaps, and in-place task field writes (through the
  write stamp);
* ``simulate_many`` answers a shared-baseline cell grid bit-identically
  to mutating and simulating each cell's graph from scratch;
* the satellites: ``_simulate_reference`` scrubs ``_ready_us`` on failure,
  and ``SimulationResult.critical_tasks`` orders duration ties by ordinal.
"""

import pytest

from repro.common.errors import SimulationError
from repro.core.compiled import (
    CellDelta,
    CompiledGraph,
    compiled_for,
    simulate_many,
    stable_ordinals,
)
from repro.core.graph import DependencyGraph
from repro.core.simulate import make_priority_scheduler, simulate
from repro.core.task import Task, TaskKind
from repro.tracing.records import comm_channel, cpu_thread, gpu_stream


def make_task(name, thread, duration, gap=0.0, kind=TaskKind.CPU,
              priority=0):
    return Task(name=name, kind=kind, thread=thread, duration=duration,
                gap=gap, priority=priority)


def small_graph():
    """CPU thread -> GPU stream -> unordered comm channel, with gaps."""
    g = DependencyGraph()
    cpu = [g.append(make_task(f"c{i}", cpu_thread(0), 2.0 + i, gap=0.5))
           for i in range(4)]
    gpu = [g.append(make_task(f"g{i}", gpu_stream(0), 3.0,
                              kind=TaskKind.GPU_KERNEL))
           for i in range(3)]
    for i, k in enumerate(gpu):
        g.add_dependency(cpu[i], k)
    channel = comm_channel(0)
    g.mark_unordered(channel)
    for i in range(2):
        m = g.append(make_task(f"m{i}", channel, 4.0, kind=TaskKind.COMM,
                               priority=i))
        g.add_dependency(gpu[i], m)
    return g


class TestStableOrdinals:
    def test_thread_major_dense_numbering(self):
        g = small_graph()
        ordinals = stable_ordinals(g)
        assert sorted(ordinals.values()) == list(range(len(g)))
        expected = 0
        for thread in g.threads():
            for task in g.iter_tasks_on(thread):
                assert ordinals[task] == expected
                expected += 1

    def test_ordinals_are_allocation_independent(self):
        """Two graphs with identical *data* assign identical ordinals by
        position, no matter the Task allocation order."""
        def build(reverse):
            names = [("b", 1.0), ("a", 2.0), ("c", 3.0)]
            tasks = [make_task(n, cpu_thread(0), d) for n, d in
                     (reversed(names) if reverse else names)]
            if reverse:
                tasks.reverse()  # same append order either way
            g = DependencyGraph()
            for t in tasks:
                g.append(t)
            return g

        fwd, rev = build(False), build(True)
        by_pos_fwd = {o: t.name for t, o in stable_ordinals(fwd).items()}
        by_pos_rev = {o: t.name for t, o in stable_ordinals(rev).items()}
        assert by_pos_fwd == by_pos_rev


class TestCompiledCache:
    def test_compiled_for_caches_per_generation(self):
        g = small_graph()
        assert compiled_for(g) is compiled_for(g)

    @pytest.mark.parametrize("mutate", [
        lambda g: g.append(make_task("new", cpu_thread(0), 1.0)),
        lambda g: g.remove(g.tasks()[0]),
        lambda g: g.add_dependency(g.tasks()[0], g.tasks()[-1]),
        lambda g: g.remove_dependency(g.tasks()[0], g.tasks()[4]),
        lambda g: g.mark_unordered(gpu_stream(0)),
        lambda g: setattr(g.tasks()[2], "duration", 99.0),
        lambda g: g.tasks()[2].scale_duration(0.5),
        lambda g: setattr(g.tasks()[-1], "gap", 7.0),
    ])
    def test_every_mutation_class_invalidates(self, mutate):
        g = small_graph()
        before = compiled_for(g)
        mutate(g)
        after = compiled_for(g)
        assert after is not before
        # and the fresh lowering simulates the *mutated* graph
        assert after.run().start_us == simulate(g).start_us

    def test_second_write_to_one_task_is_stamp_free(self):
        g = small_graph()
        compiled_for(g)
        task = g.tasks()[0]
        task.duration = 5.0
        generation = g._generation
        task.duration = 6.0  # stamp already fired and popped
        assert g._generation == generation

    def test_clone_does_not_carry_the_stamp(self):
        g = small_graph()
        compiled_for(g)
        clone = g.tasks()[0].clone()
        generation = g._generation
        clone.duration = 123.0
        assert g._generation == generation

    def test_graph_copy_does_not_share_cache_or_stamps(self):
        g = small_graph()
        compiled_for(g)
        dup = g.copy()
        assert dup._compiled is None
        generation = g._generation
        dup.tasks()[0].duration = 50.0  # must not invalidate the original
        assert g._generation == generation
        assert compiled_for(g).run().start_us == simulate(g).start_us

    def test_overlay_write_invalidates_base_and_overlay(self):
        g = small_graph()
        overlay = g.overlay()
        base_compiled = compiled_for(g)
        overlay_compiled = compiled_for(overlay)
        overlay.tasks()[1].duration = 42.0  # COW write through the barrier
        assert compiled_for(g) is not base_compiled
        assert compiled_for(overlay) is not overlay_compiled
        assert compiled_for(g).run().start_us == simulate(g).start_us
        assert (compiled_for(overlay).run().start_us
                == simulate(overlay).start_us)

    def test_lazy_predecessor_csr_transposes_successors(self):
        g = small_graph()
        compiled = CompiledGraph.build(g)
        indptr, indices = compiled.pred_indptr, compiled.pred_indices
        ordinals = compiled.ordinal
        for task in g.tasks():
            i = ordinals[task]
            row = sorted(indices[indptr[i]:indptr[i + 1]])
            assert row == sorted(ordinals[p] for p in g.predecessors(task))


class TestSimulateMany:
    def test_cells_match_scratch_simulation(self):
        g = small_graph()
        tasks = g.tasks()
        cells = [
            CellDelta(label="faster-gpu",
                      durations={t: t.duration * 0.5 for t in tasks
                                 if t.is_gpu}),
            CellDelta(label="no-gaps", gaps={t: 0.0 for t in tasks}),
            CellDelta(label="mixed",
                      durations={tasks[0]: 0.0},
                      gaps={tasks[0]: 2.0}),
            CellDelta(label="identity"),
        ]
        results = simulate_many(compiled_for(g), cells)
        assert len(results) == len(cells)
        for cell, result in zip(cells, results):
            scratch = g.copy()
            by_ordinal = {o: t for t, o in stable_ordinals(scratch).items()}
            ordinals = stable_ordinals(g)
            for task, value in cell.durations.items():
                by_ordinal[ordinals[task]].duration = value
            for task, value in cell.gaps.items():
                by_ordinal[ordinals[task]].gap = value
            expected = simulate(scratch)
            assert result.makespan_us == expected.makespan_us
            starts_by_ordinal = {ordinals[t]: s
                                 for t, s in result.start_us.items()}
            expected_by_ordinal = {
                stable_ordinals(scratch)[t]: s
                for t, s in expected.start_us.items()}
            assert starts_by_ordinal == expected_by_ordinal

    def test_cells_share_one_lowering_and_mutate_nothing(self):
        g = small_graph()
        compiled = compiled_for(g)
        before = simulate(g).start_us
        simulate_many(compiled, [
            CellDelta(durations={g.tasks()[0]: 100.0})])
        assert compiled_for(g) is compiled  # grid ran on the cache
        assert simulate(g).start_us == before  # baseline untouched

    def test_priority_policy_applies_per_cell(self):
        g = small_graph()
        policy = make_priority_scheduler(lambda t: t.is_comm)
        (result,) = simulate_many(compiled_for(g), [CellDelta()], policy)
        assert result.start_us == simulate(g, policy).start_us

    def test_foreign_task_raises(self):
        g = small_graph()
        stranger = make_task("stranger", cpu_thread(0), 1.0)
        with pytest.raises(SimulationError, match="outside the compiled"):
            simulate_many(compiled_for(g),
                          [CellDelta(durations={stranger: 1.0})])

    def test_scale_durations_builder(self):
        g = small_graph()
        gpu = [t for t in g.tasks() if t.is_gpu]
        cell = CellDelta.scale_durations(gpu, 0.25, label="gpu/4")
        assert cell.label == "gpu/4"
        assert cell.durations == {t: t.duration * 0.25 for t in gpu}
        with pytest.raises(SimulationError):
            CellDelta.scale_durations(gpu, -1.0)

    def test_session_sweep_mixes_cells_and_optimizations(self):
        from repro.analysis.session import WhatIfSession
        from repro.optimizations import FusedAdam

        session = WhatIfSession.profile("resnet50")
        tasks = session.graph.tasks()
        cell = CellDelta.scale_durations(
            [t for t in tasks if t.is_gpu], 0.5, label="gpu-2x")
        answers = session.sweep([cell, FusedAdam(), CellDelta()])
        assert [p.optimization for p in answers[::2]] == ["gpu-2x", "delta"]
        assert answers[2].predicted_us == session.baseline_us
        assert answers[0].predicted_us < session.baseline_us
        # the batched cells agree with simulate_many directly
        direct = session.simulate_many([cell])
        assert answers[0].predicted_us == direct[0].makespan_us

    def test_runner_run_cells_labels_predictions(self):
        from repro.scenarios.runner import ScenarioRunner
        from repro.scenarios.scenario import Scenario

        runner = ScenarioRunner()
        scenario = Scenario(model="resnet50")
        session = runner.session(scenario)
        cells = [CellDelta.scale_durations(session.graph.tasks(), f,
                                           label=f"x{f}")
                 for f in (0.5, 1.0, 2.0)]
        predictions = runner.run_cells(scenario, cells)
        assert [p.optimization for p in predictions] == ["x0.5", "x1.0",
                                                         "x2.0"]
        assert predictions[1].predicted_us == session.baseline_us
        assert (predictions[0].predicted_us < predictions[1].predicted_us
                < predictions[2].predicted_us)


class TestSatelliteRegressions:
    def test_reference_engine_scrubs_ready_us_on_scheduler_error(self):
        """`_ready_us` must not leak when SimulationError raises mid-run."""
        g = small_graph()
        stranger = make_task("stranger", cpu_thread(9), 1.0)

        def bad_scheduler(frontier, progress):
            if len(progress) and frontier:  # dispatch a foreign task
                return stranger
            return frontier[0]

        with pytest.raises(SimulationError, match="outside the frontier"):
            simulate(g, bad_scheduler)
        for task in g.tasks():
            assert "_ready_us" not in task.metadata

    def test_reference_engine_scrubs_ready_us_on_deadlock(self):
        g = DependencyGraph()
        channel = comm_channel(0)
        g.mark_unordered(channel)
        a = g.append(make_task("a", channel, 1.0, kind=TaskKind.COMM))
        b = g.append(make_task("b", channel, 1.0, kind=TaskKind.COMM))
        g.add_dependency(a, b)
        g.add_dependency(b, a)

        def first(frontier, progress):
            return frontier[0]

        with pytest.raises(SimulationError, match="deadlock"):
            simulate(g, first)
        assert "_ready_us" not in a.metadata
        assert "_ready_us" not in b.metadata

    def test_critical_tasks_breaks_duration_ties_by_ordinal(self):
        g = DependencyGraph()
        # same duration everywhere: the ranking must come out in ordinal
        # (thread-major) order, not dict insertion or allocation order
        gpu = [g.append(make_task(f"g{i}", gpu_stream(0), 5.0,
                                  kind=TaskKind.GPU_KERNEL))
               for i in range(3)]
        cpu = [g.append(make_task(f"c{i}", cpu_thread(0), 5.0))
               for i in range(3)]
        expected = [t.name for t in cpu + gpu]  # cpu threads sort first
        for engine_result in (simulate(g), CompiledGraph.build(g).run()):
            assert engine_result.ordinals is not None
            names = [t.name for t in engine_result.critical_tasks(top=6)]
            assert names == expected
        top2 = [t.name for t in simulate(g).critical_tasks(top=2)]
        assert top2 == expected[:2]
