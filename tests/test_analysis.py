"""Tests for the WhatIfSession front-end and metrics."""

import pytest

from repro.analysis.metrics import improvement_percent, prediction_error, speedup
from repro.analysis.session import Prediction, WhatIfSession
from repro.common.errors import ConfigError
from repro.optimizations import AutomaticMixedPrecision, FusedAdam
from repro.tracing.trace import Trace


class TestMetrics:
    def test_prediction_error(self):
        assert prediction_error(110.0, 100.0) == pytest.approx(0.1)
        assert prediction_error(90.0, 100.0) == pytest.approx(0.1)

    def test_prediction_error_rejects_zero_truth(self):
        with pytest.raises(ConfigError):
            prediction_error(1.0, 0.0)

    def test_speedup(self):
        assert speedup(200.0, 100.0) == 2.0
        with pytest.raises(ConfigError):
            speedup(100.0, 0.0)

    def test_improvement_percent(self):
        assert improvement_percent(200.0, 100.0) == 50.0
        assert improvement_percent(100.0, 120.0) == -20.0
        with pytest.raises(ConfigError):
            improvement_percent(0.0, 10.0)


class TestPrediction:
    def test_derived_quantities(self):
        pred = Prediction(optimization="amp", baseline_us=200.0,
                          predicted_us=100.0)
        assert pred.speedup == 2.0
        assert pred.improvement_percent == 50.0

    def test_str_mentions_name(self):
        pred = Prediction(optimization="amp", baseline_us=200.0,
                          predicted_us=100.0)
        assert "amp" in str(pred)


class TestWhatIfSession:
    def test_profile_by_name(self):
        session = WhatIfSession.profile("resnet50", batch_size=2)
        assert session.baseline_us > 0

    def test_from_model(self, tiny_model):
        session = WhatIfSession.from_model(tiny_model)
        assert session.trace.metadata["model"] == "tinycnn"

    def test_graph_cached(self, tiny_model):
        session = WhatIfSession.from_model(tiny_model)
        assert session.graph is session.graph

    def test_baseline_matches_trace(self, tiny_model):
        session = WhatIfSession.from_model(tiny_model)
        assert session.baseline_us == pytest.approx(
            session.trace.duration_us, rel=0.01)

    def test_predict_does_not_mutate_baseline(self, tiny_model):
        session = WhatIfSession.from_model(tiny_model)
        before = session.baseline_us
        session.predict(AutomaticMixedPrecision())
        session.predict(FusedAdam())
        assert session.baseline_us == before
        # the cached graph still simulates to the baseline time
        from repro.core.simulate import simulate
        assert simulate(session.graph).makespan_us == pytest.approx(before,
                                                                    rel=0.01)

    def test_multiple_questions_one_profile(self, tiny_model):
        """Paper Section 7.1: one profile answers many questions."""
        session = WhatIfSession.from_model(tiny_model)
        amp = session.predict(AutomaticMixedPrecision())
        fused = session.predict(FusedAdam())
        assert amp.optimization == "amp"
        assert fused.optimization == "fused_adam"
        assert amp.predicted_us != fused.predicted_us

    def test_from_trace_roundtrip(self, tiny_model, tmp_path):
        """Profiles survive serialization — analyze on another machine."""
        session = WhatIfSession.from_model(tiny_model)
        path = str(tmp_path / "profile.json")
        session.trace.save(path)
        revived = WhatIfSession.from_trace(Trace.load(path))
        assert revived.baseline_us == pytest.approx(session.baseline_us)
        pred_a = session.predict(AutomaticMixedPrecision())
        pred_b = revived.predict(AutomaticMixedPrecision())
        assert pred_a.predicted_us == pytest.approx(pred_b.predicted_us)

    def test_breakdown_components(self, tiny_model):
        session = WhatIfSession.from_model(tiny_model)
        breakdown = session.breakdown()
        assert breakdown.total_us == pytest.approx(session.baseline_us)
        assert breakdown.parallel_us >= 0
