"""Tests for the Section-5.2 modeling-only optimizations."""

import pytest

from repro.analysis.session import WhatIfSession
from repro.common.errors import ConfigError
from repro.core.simulate import simulate
from repro.hw.device import GPU_2080TI
from repro.hw.network import NetworkSpec
from repro.hw.topology import ClusterSpec
from repro.optimizations import (
    BlueConnect,
    DeepGradientCompression,
    DistributedTraining,
    Gist,
    MetaFlowSubstitution,
    ReconstructBatchnorm,
    VirtualizedDNN,
)
from repro.optimizations.metaflow import (
    SubstitutionPolicy,
    fuse_conv_bn_relu_policy,
)


def cluster(bw=5.0, machines=4, gpus=1):
    return ClusterSpec(machines, gpus, GPU_2080TI, NetworkSpec(bw))


@pytest.fixture
def session(tiny_model):
    return WhatIfSession.from_model(tiny_model)


def distributed_graph(session, cl):
    graph = session.graph.copy()
    DistributedTraining().apply(graph, session.context(cl))
    return graph


class TestReconstructBatchnorm:
    def test_removes_relu_kernels(self, session):
        graph, _ = session.predict_simulation(ReconstructBatchnorm())
        relu_layers = {n for n, k in
                       session.trace.metadata["layer_kinds"].items()
                       if k == "relu"}
        remaining = [t for t in graph.tasks()
                     if t.is_gpu and t.layer in relu_layers]
        assert not remaining

    def test_halves_batchnorm_durations(self, session):
        graph, _ = session.predict_simulation(ReconstructBatchnorm())
        bn_layers = {n for n, k in
                     session.trace.metadata["layer_kinds"].items()
                     if k == "batchnorm"}
        base_bn = sum(t.duration for t in session.graph.tasks()
                      if t.is_gpu and t.layer in bn_layers)
        new_bn = sum(t.duration for t in graph.tasks()
                     if t.is_gpu and t.layer in bn_layers)
        assert new_bn == pytest.approx(base_bn / 2.0, rel=1e-6)

    def test_predicts_improvement(self, session):
        pred = session.predict(ReconstructBatchnorm())
        assert pred.improvement_percent > 0


class TestBlueConnect:
    def test_replaces_allreduce_with_stages(self, session):
        cl = cluster(machines=2, gpus=2)
        graph = distributed_graph(session, cl)
        n_reduce = sum(1 for t in graph.tasks()
                       if t.is_comm and "AllReduce" in t.name)
        BlueConnect().apply(graph, session.context(cl))
        assert not any("AllReduce" in t.name for t in graph.tasks()
                       if t.is_comm)
        stages = [t for t in graph.tasks() if t.is_comm]
        # 2 factors -> 2 reduce-scatter + 2 all-gather per bucket
        assert len(stages) == n_reduce * 4
        graph.validate()

    def test_requires_distributed_graph(self, session):
        with pytest.raises(ConfigError):
            BlueConnect().apply(session.graph.copy(), session.context(cluster()))

    def test_bad_factorization_rejected(self, session):
        cl = cluster(machines=2, gpus=2)
        graph = distributed_graph(session, cl)
        with pytest.raises(ConfigError):
            BlueConnect(factorization=[3]).apply(graph, session.context(cl))

    def test_helps_on_shared_nic(self, session):
        """Hierarchical decomposition beats a flat ring when GPUs share a
        NIC (the BlueConnect use case)."""
        cl = cluster(bw=3.0, machines=4, gpus=2)
        flat = distributed_graph(session, cl)
        flat_time = simulate(flat).makespan_us
        decomposed = distributed_graph(session, cl)
        outcome = BlueConnect().apply(decomposed, session.context(cl))
        assert simulate(outcome.graph).makespan_us < flat_time


class TestMetaFlow:
    def test_remove_and_scale(self, session):
        policy = SubstitutionPolicy(remove_layers=["bn1"],
                                    scale_layers={"conv1": 1.5})
        graph, _ = session.predict_simulation(MetaFlowSubstitution(policy))
        assert not any(t.layer == "bn1" for t in graph.tasks() if t.is_gpu)
        base_conv = sum(t.duration for t in session.graph.tasks()
                        if t.is_gpu and t.layer == "conv1")
        new_conv = sum(t.duration for t in graph.tasks()
                       if t.is_gpu and t.layer == "conv1")
        assert new_conv == pytest.approx(base_conv * 1.5, rel=1e-6)

    def test_fusion_policy_improves(self, session):
        policy = fuse_conv_bn_relu_policy(session.context())
        pred = session.predict(MetaFlowSubstitution(policy))
        assert pred.improvement_percent > 0


class TestVDNN:
    def test_inserts_copies_on_copy_stream(self, session):
        graph, _ = session.predict_simulation(VirtualizedDNN())
        offloads = [t for t in graph.tasks() if "vdnn offload" in t.name]
        prefetches = [t for t in graph.tasks() if "vdnn prefetch" in t.name]
        n_convs = sum(1 for n, k in
                      session.trace.metadata["layer_kinds"].items()
                      if k == "conv")
        assert len(offloads) == len(prefetches) == n_convs
        graph.validate()

    def test_prefetch_gates_backward(self, session):
        graph, result = session.predict_simulation(VirtualizedDNN())
        for prefetch in (t for t in graph.tasks()
                         if "vdnn prefetch" in t.name):
            bwd = [s for s in graph.successors(prefetch)
                   if s.phase == "backward"]
            assert bwd
            for task in bwd:
                assert result.start_us[task] >= result.end_us(prefetch) - 1e-6

    def test_never_speeds_up(self, session):
        pred = session.predict(VirtualizedDNN())
        assert pred.predicted_us >= session.baseline_us - 1e-6

    def test_noop_without_convs(self, session):
        context = session.context()
        context.trace_metadata["layer_kinds"] = {}
        graph = session.graph.copy()
        VirtualizedDNN().apply(graph, context)
        assert simulate(graph).makespan_us == pytest.approx(
            session.baseline_us)


class TestGist:
    def test_inserts_encode_decode(self, session):
        graph, _ = session.predict_simulation(Gist())
        encodes = [t for t in graph.tasks() if "encode" in t.name]
        decodes = [t for t in graph.tasks() if "decode" in t.name]
        assert encodes and decodes
        graph.validate()

    def test_adds_overhead(self, session):
        pred = session.predict(Gist())
        assert pred.predicted_us > session.baseline_us

    def test_lossy_adds_dpr_kernels(self, session):
        graph, _ = session.predict_simulation(Gist(lossy=True))
        assert any("dpr" in t.name for t in graph.tasks())

    def test_cost_factor_scales_inserted_kernels(self, session):
        cheap_graph, _ = session.predict_simulation(Gist(cost_factor=0.1))
        pricey_graph, _ = session.predict_simulation(Gist(cost_factor=2.0))

        def inserted_gpu_time(graph):
            return sum(t.duration for t in graph.tasks()
                       if "gist_sdc" in t.name)

        assert (inserted_gpu_time(pricey_graph)
                == pytest.approx(inserted_gpu_time(cheap_graph) * 20.0,
                                 rel=1e-6))


class TestDGC:
    def test_scales_comm_and_inserts_kernels(self, session):
        cl = cluster()
        graph = distributed_graph(session, cl)
        before = sum(t.duration for t in graph.tasks() if t.is_comm)
        DeepGradientCompression(compression_ratio=0.01).apply(
            graph, session.context(cl))
        after = sum(t.duration for t in graph.tasks() if t.is_comm)
        assert after == pytest.approx(before * 0.01, rel=1e-6)
        assert any("dgc_compress" in t.name for t in graph.tasks())
        assert any("dgc_decompress" in t.name for t in graph.tasks())
        graph.validate()

    def test_requires_distributed_graph(self, session):
        with pytest.raises(ConfigError):
            DeepGradientCompression().apply(session.graph.copy(),
                                            session.context(cluster()))

    def test_invalid_ratio_rejected(self):
        with pytest.raises(ConfigError):
            DeepGradientCompression(compression_ratio=0.0)

    def test_helps_when_comm_bound(self, session):
        cl = cluster(bw=1.0)
        graph = distributed_graph(session, cl)
        before = simulate(graph).makespan_us
        outcome = DeepGradientCompression().apply(graph, session.context(cl))
        assert simulate(outcome.graph).makespan_us < before
