"""Shared fixtures: tiny synthetic models and cached profiles.

Unit tests use ``tiny_model`` (a 5-layer CNN with an Adam optimizer) so each
test runs in milliseconds; integration tests use module/session-scoped
profiles of the real zoo models.
"""

import pytest

from helpers import make_tiny_model

from repro.framework.config import TrainingConfig
from repro.framework.engine import Engine
from repro.models.base import ModelSpec


@pytest.fixture
def tiny_model() -> ModelSpec:
    return make_tiny_model()


@pytest.fixture
def tiny_trace(tiny_model):
    return Engine(model=tiny_model, config=TrainingConfig()).run_iteration()


@pytest.fixture(scope="session")
def resnet_trace():
    from repro.models.registry import build_model
    model = build_model("resnet50")
    return Engine(model=model, config=TrainingConfig()).run_iteration()


@pytest.fixture(scope="session")
def bert_base_trace():
    from repro.models.registry import build_model
    model = build_model("bert_base")
    return Engine(model=model, config=TrainingConfig()).run_iteration()
