"""Shared fixtures: tiny synthetic models and cached profiles.

Unit tests use ``tiny_model`` (a 5-layer CNN with an Adam optimizer) so each
test runs in milliseconds; integration tests use module/session-scoped
profiles of the real zoo models.
"""

import pytest

from repro.framework.config import TrainingConfig
from repro.framework.engine import Engine
from repro.kernels import library as K
from repro.models.base import LayerSpec, ModelSpec, ParamTensor
from repro.models.blocks import (
    batchnorm_layer,
    conv_layer,
    linear_layer,
    loss_layer,
    relu_layer,
)


def make_tiny_model(batch: int = 4, optimizer: str = "adam") -> ModelSpec:
    """A small but structurally complete CNN training workload."""
    layers = [
        conv_layer("conv1", batch, 3, 32, 32, 16, 3, 1, 1),
        batchnorm_layer("bn1", batch, 16, 32, 32),
        relu_layer("relu1", batch * 16 * 32 * 32),
        conv_layer("conv2", batch, 16, 32, 32, 32, 3, 2, 1),
        batchnorm_layer("bn2", batch, 32, 16, 16),
        relu_layer("relu2", batch * 32 * 16 * 16),
        linear_layer("fc", batch, 32 * 16 * 16, 10),
        loss_layer("loss", batch, 10),
    ]
    return ModelSpec(
        name="tinycnn",
        layers=layers,
        batch_size=batch,
        input_sample_bytes=3 * 32 * 32 * 4,
        default_optimizer=optimizer,
        application="testing",
    )


@pytest.fixture
def tiny_model() -> ModelSpec:
    return make_tiny_model()


@pytest.fixture
def tiny_trace(tiny_model):
    return Engine(model=tiny_model, config=TrainingConfig()).run_iteration()


@pytest.fixture(scope="session")
def resnet_trace():
    from repro.models.registry import build_model
    model = build_model("resnet50")
    return Engine(model=model, config=TrainingConfig()).run_iteration()


@pytest.fixture(scope="session")
def bert_base_trace():
    from repro.models.registry import build_model
    model = build_model("bert_base")
    return Engine(model=model, config=TrainingConfig()).run_iteration()
