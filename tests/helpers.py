"""Importable test helpers shared across the suite.

Test modules must import shared model builders from here rather than from
``conftest``: a bare ``from conftest import ...`` resolves against whichever
conftest pytest put on ``sys.path`` first (historically this picked up
``benchmarks/conftest.py`` when running from the repo root, breaking
collection).
"""

from repro.models.base import ModelSpec
from repro.models.blocks import (
    batchnorm_layer,
    conv_layer,
    linear_layer,
    loss_layer,
    relu_layer,
)


def make_tiny_model(batch: int = 4, optimizer: str = "adam") -> ModelSpec:
    """A small but structurally complete CNN training workload."""
    layers = [
        conv_layer("conv1", batch, 3, 32, 32, 16, 3, 1, 1),
        batchnorm_layer("bn1", batch, 16, 32, 32),
        relu_layer("relu1", batch * 16 * 32 * 32),
        conv_layer("conv2", batch, 16, 32, 32, 32, 3, 2, 1),
        batchnorm_layer("bn2", batch, 32, 16, 16),
        relu_layer("relu2", batch * 32 * 16 * 16),
        linear_layer("fc", batch, 32 * 16 * 16, 10),
        loss_layer("loss", batch, 10),
    ]
    return ModelSpec(
        name="tinycnn",
        layers=layers,
        batch_size=batch,
        input_sample_bytes=3 * 32 * 32 * 4,
        default_optimizer=optimizer,
        application="testing",
    )
