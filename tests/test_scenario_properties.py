"""Property-based round-trips for Scenario/ScenarioGrid and content keys.

Scenarios are the repository's durable interchange format — files on disk,
store keys, process-pool payloads all flow through ``to_dict``/``to_json``.
These tests fuzz that surface with the repository's own keyed PRNG
(:mod:`repro.common.prng`), so every "random" scenario is a pure function
of its seed: failures reproduce exactly, everywhere, with no external
fuzzing dependency.

Pinned properties, for every seed:

* ``Scenario.from_dict(s.to_dict()) == s`` and the JSON round trip too;
* the content key (:func:`repro.scenarios.store.scenario_key`) is stable
  under round-tripping, dict key order, JSON formatting, int-vs-float
  spelling, and explicitly declaring default values;
* grids round-trip, expand deterministically, and every expanded cell
  round-trips and hashes to a distinct key along changed axes.
"""

import json

from repro.common.prng import stable_uniform
from repro.scenarios import Scenario, ScenarioGrid, scenario_key
from repro.scenarios.scenario import ClusterShape

N_SEEDS = 60

MODELS = ("resnet50", "vgg19", "gnmt", "bert_base", "densenet121")
FRAMEWORKS = ("pytorch", "mxnet", "caffe")
PRECISIONS = ("fp32", "fp16")
OPTIMIZERS = ("sgd", "adam")
GPU_DECLS = (
    "2080ti",
    "p4000",
    {"preset": "2080ti", "compute_efficiency": 0.25},
    {"preset": "p4000", "memory_bandwidth_gbps": 180.0},
)
STACK_POOL = (
    "amp",
    "fused_adam",
    {"name": "gist", "params": {"lossy": True}},
    {"name": "gpu_upgrade", "params": {"factor": 2.0}},
    "distributed_training",
    {"name": "dgc", "params": {"compression_ratio": 0.05}},
)


class Fuzz:
    """Deterministic value source: a pure function of (seed, draw index)."""

    def __init__(self, seed: int) -> None:
        self.seed = seed
        self.draws = 0

    def unit(self) -> float:
        self.draws += 1
        return stable_uniform(f"scenario-fuzz/{self.seed}/{self.draws}")

    def maybe(self, p: float = 0.5) -> bool:
        return self.unit() < p

    def choice(self, seq):
        return seq[int(self.unit() * len(seq)) % len(seq)]

    def int_between(self, lo: int, hi: int) -> int:
        return lo + int(self.unit() * (hi - lo + 1)) % (hi - lo + 1)


def fuzz_scenario(seed: int) -> Scenario:
    f = Fuzz(seed)
    kwargs = {"model": f.choice(MODELS)}
    if f.maybe():
        kwargs["batch_size"] = f.int_between(1, 64)
    if f.maybe(0.3):
        kwargs["framework"] = f.choice(FRAMEWORKS)
    if f.maybe(0.3):
        kwargs["precision"] = f.choice(PRECISIONS)
    if f.maybe(0.3):
        kwargs["optimizer"] = f.choice(OPTIMIZERS)
    if f.maybe(0.4):
        kwargs["gpu"] = f.choice(GPU_DECLS)
    if f.maybe(0.2):
        kwargs["bucket_cap_mb"] = round(1.0 + 49.0 * f.unit(), 3)
    if f.maybe(0.2):
        kwargs["data_loading_us"] = round(5000.0 * f.unit(), 1)
    stack = [entry for entry in STACK_POOL if f.maybe(0.25)]
    needs_cluster = any(
        (e if isinstance(e, str) else e["name"]) in
        ("distributed_training", "dgc") for e in stack)
    if needs_cluster or f.maybe(0.4):
        kwargs["cluster"] = ClusterShape(
            machines=f.int_between(1, 4),
            gpus_per_machine=f.int_between(1, 2),
            bandwidth_gbps=f.choice((10, 10.0, 20.0, 25.0, 40.0)),
            latency_us=f.choice((25.0, 50.0)),
            gpu=f.choice(GPU_DECLS) if f.maybe(0.3) else None,
        )
    kwargs["optimizations"] = stack
    if f.maybe(0.2):
        kwargs["schedule_policy"] = "comm_priority"
    return Scenario(**kwargs)


def fuzz_grid(seed: int) -> ScenarioGrid:
    f = Fuzz(seed * 7919 + 13)
    base = fuzz_scenario(seed + 100_000)
    axes = {}
    if f.maybe(0.8):
        axes["batch_size"] = sorted({f.int_between(1, 64)
                                     for _ in range(f.int_between(1, 3))})
    if base.cluster is not None and f.maybe(0.8):
        axes["cluster.bandwidth_gbps"] = sorted(
            {f.choice((10.0, 20.0, 25.0, 40.0))
             for _ in range(f.int_between(1, 3))})
    if f.maybe(0.5):
        axes["precision"] = list(PRECISIONS)
    return ScenarioGrid(base=base, axes=axes)


# --------------------------------------------------------------- scenarios

def test_scenario_dict_and_json_round_trip():
    for seed in range(N_SEEDS):
        s = fuzz_scenario(seed)
        assert Scenario.from_dict(s.to_dict()) == s, f"seed {seed}"
        assert Scenario.from_json(s.to_json()) == s, f"seed {seed}"
        # round-tripping twice is a fixed point
        twice = Scenario.from_json(Scenario.from_json(s.to_json()).to_json())
        assert twice == s, f"seed {seed}"


def test_content_key_stable_under_round_trip():
    for seed in range(N_SEEDS):
        s = fuzz_scenario(seed)
        key = scenario_key(s)
        assert scenario_key(Scenario.from_json(s.to_json())) == key, \
            f"seed {seed}"


def test_content_key_ignores_key_order_and_formatting():
    for seed in range(N_SEEDS):
        s = fuzz_scenario(seed)
        data = s.to_dict()
        # reversed key order, nested dicts included, plus dense formatting
        def reorder(obj):
            if isinstance(obj, dict):
                return {k: reorder(obj[k]) for k in reversed(list(obj))}
            if isinstance(obj, list):
                return [reorder(v) for v in obj]
            return obj
        shuffled = json.dumps(reorder(data), separators=(",", ":"))
        pretty = json.dumps(data, indent=4)
        key = scenario_key(s)
        assert scenario_key(Scenario.from_json(shuffled)) == key, f"seed {seed}"
        assert scenario_key(Scenario.from_json(pretty)) == key, f"seed {seed}"


def test_content_key_ignores_numeric_spelling_and_explicit_defaults():
    a = Scenario(model="resnet50", batch_size=32).with_cluster(
        2, 1, bandwidth_gbps=10)
    b = Scenario(model="resnet50", batch_size=32).with_cluster(
        2, 1, bandwidth_gbps=10.0)
    assert scenario_key(a) == scenario_key(b)
    # declaring a default explicitly does not change the content
    explicit = Scenario.from_dict({"model": "resnet50", "batch_size": 32,
                                   "framework": "pytorch",
                                   "precision": "fp32",
                                   "optimizations": [],
                                   "cluster": {"machines": 2,
                                               "gpus_per_machine": 1,
                                               "bandwidth_gbps": 10.0}})
    assert scenario_key(explicit) == scenario_key(a)


def test_content_key_changes_with_semantics():
    for seed in range(0, N_SEEDS, 3):
        s = fuzz_scenario(seed)
        key = scenario_key(s)
        assert scenario_key(s.with_(batch_size=(s.batch_size or 0) + 1)) \
            != key, f"seed {seed}"
        assert scenario_key(s.with_(model=s.model + "x")) != key, \
            f"seed {seed}"


# ------------------------------------------------------------------- grids

def test_grid_round_trip_and_deterministic_expansion():
    for seed in range(N_SEEDS):
        g = fuzz_grid(seed)
        assert ScenarioGrid.from_json(g.to_json()) == g, f"seed {seed}"
        first = [s.to_dict() for s in g.expand()]
        second = [s.to_dict() for s in g.expand()]
        assert first == second, f"seed {seed}"
        assert len(first) == len(g), f"seed {seed}"


def test_grid_cells_round_trip_and_key_distinct():
    for seed in range(0, N_SEEDS, 2):
        g = fuzz_grid(seed)
        cells = g.expand()
        keys = []
        for cell in cells:
            assert Scenario.from_json(cell.to_json()) == cell, f"seed {seed}"
            keys.append(scenario_key(cell))
        # distinct axis values mean distinct content, so distinct keys
        assert len(set(keys)) == len(keys), f"seed {seed}"
